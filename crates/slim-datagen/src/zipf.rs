//! Zipf-skewed hot-entity workloads.
//!
//! The Cab/SM scenarios sample every entity at the same mean rate —
//! exactly the uniform load a statically partitioned engine likes. Real
//! feeds are nothing like that: a delivery fleet's busiest vehicles, a
//! check-in service's power users, or a surveillance feed's downtown
//! cameras produce orders of magnitude more events than the median
//! entity. This module generates that regime with exact ground truth:
//! entity **rank `r` is sampled at `hot_interval_secs · (r+1)^exponent`
//! mean intervals**, so per-entity record counts follow the Zipf
//! rank-frequency law `count(r) ∝ (r+1)^{-exponent}`.
//!
//! Under entity-hash sharding this concentrates the dirty-pair and
//! ingest work of a tick onto the hot entities' home shards —
//! `benches/streaming.rs` uses it to demonstrate the static per-shard
//! partition stalling on the hottest shard and the work-stealing pool
//! recovering the lost parallelism.

use std::collections::HashMap;

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use slim_core::{EntityId, LocationDataset};

use crate::sampling::{sample_records, SamplingMode, TwoViewSample, ViewConfig};
use crate::taxi::{taxi_world, TaxiConfig};

/// Configuration of [`zipf_sample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfConfig {
    /// Ground-truth entities (each present in both views).
    pub num_entities: usize,
    /// Zipf rank-frequency exponent: rank `r` carries `(r+1)^{-s}` of
    /// the sampling rate. `0` = uniform load (the skew-free control).
    pub exponent: f64,
    /// Mean seconds between samples of the *hottest* entity (rank 0);
    /// rank `r` samples every `hot_interval_secs · (r+1)^exponent`
    /// seconds on average.
    pub hot_interval_secs: f64,
    /// Simulated span in seconds.
    pub span_secs: i64,
    /// GPS noise standard deviation, metres.
    pub gps_noise_m: f64,
    /// When set, the **right** view ignores the Zipf law and samples
    /// every entity at this uniform mean interval. That concentrates
    /// the skew on the left side — and, under the streaming engine's
    /// "pair owner = Left entity's shard" rule, onto the hot left
    /// entities' home shards, the exact worst case for a static
    /// partition. `None` = both views follow the same Zipf law.
    pub right_interval_secs: Option<f64>,
    /// RNG seed (world building and sampling both derive from it).
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self {
            num_entities: 200,
            exponent: 1.2,
            hot_interval_secs: 30.0,
            span_secs: 6 * 3600,
            gps_noise_m: 20.0,
            right_interval_secs: None,
            seed: 42,
        }
    }
}

impl ZipfConfig {
    /// The mean sampling interval of rank `rank`.
    pub fn interval_of(&self, rank: usize) -> f64 {
        self.hot_interval_secs * ((rank + 1) as f64).powf(self.exponent)
    }
}

/// Samples a two-view Zipf-skewed workload with exact ground truth.
/// Both views observe the same taxi-style world; entity rank (= world
/// order, deterministic per seed) sets the per-entity sampling rate of
/// *both* views, so an entity hot on one side is hot on the other —
/// the worst case for a statically partitioned engine, since the home
/// shards of the few hot entities own nearly all dirty pairs. Right
/// ids are shuffled into `1_000_000..` exactly like
/// [`crate::sampling::sample_two_views`].
///
/// # Panics
/// Panics on a non-positive entity count, span, or hot interval, or a
/// negative exponent.
pub fn zipf_sample(cfg: &ZipfConfig) -> TwoViewSample {
    assert!(cfg.num_entities > 0, "need at least one entity");
    assert!(cfg.exponent >= 0.0, "Zipf exponent must be non-negative");
    assert!(cfg.hot_interval_secs > 0.0, "hot interval must be positive");
    assert!(cfg.span_secs > 0, "span must be positive");

    let world = taxi_world(&TaxiConfig {
        num_taxis: cfg.num_entities,
        span_secs: cfg.span_secs,
        seed: cfg.seed,
        ..TaxiConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A1F_C0DE);
    let mut right_ids: Vec<u64> = (0..world.len() as u64).map(|k| 1_000_000 + k).collect();
    right_ids.shuffle(&mut rng);

    let mut left_records = Vec::new();
    let mut right_records = Vec::new();
    let mut ground_truth = HashMap::new();
    for (rank, (gt_id, traj)) in world.entities.iter().enumerate() {
        let view = |interval: f64| ViewConfig {
            mean_interval_secs: interval,
            gps_noise_m: cfg.gps_noise_m,
            inclusion_prob: 1.0,
            mode: SamplingMode::Poisson,
        };
        let left_view = view(cfg.interval_of(rank));
        let right_view = view(
            cfg.right_interval_secs
                .unwrap_or(left_view.mean_interval_secs),
        );
        let left_id = EntityId(*gt_id);
        let right_id = EntityId(right_ids[rank]);
        let mut lrng = StdRng::seed_from_u64(cfg.seed ^ (0xA110_0000 + rank as u64));
        let mut rrng = StdRng::seed_from_u64(cfg.seed ^ (0xB220_0000 + rank as u64));
        let l = sample_records(left_id, traj, &left_view, &mut lrng);
        let r = sample_records(right_id, traj, &right_view, &mut rrng);
        if !l.is_empty() && !r.is_empty() {
            ground_truth.insert(left_id, right_id);
        }
        left_records.extend(l);
        right_records.extend(r);
    }
    TwoViewSample {
        left: LocationDataset::from_records(left_records),
        right: LocationDataset::from_records(right_records),
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ZipfConfig {
        ZipfConfig {
            num_entities: 60,
            exponent: 1.3,
            hot_interval_secs: 60.0,
            span_secs: 4 * 3600,
            seed: 11,
            ..ZipfConfig::default()
        }
    }

    /// Per-rank record counts of the left view, rank = world order
    /// (ids are `0..n` in world order for the taxi generator).
    fn rank_counts(sample: &TwoViewSample, n: usize) -> Vec<usize> {
        (0..n as u64)
            .map(|e| sample.left.records_of(EntityId(e)).len())
            .collect()
    }

    #[test]
    fn rank_frequency_follows_the_zipf_law() {
        let c = cfg();
        let s = zipf_sample(&c);
        let counts = rank_counts(&s, c.num_entities);
        // The head dominates: rank 0 far above rank 9 far above rank 49
        // (Poisson noise makes neighbouring ranks overlap; decade gaps
        // don't).
        assert!(
            counts[0] > 3 * counts[9].max(1),
            "rank 0 ({}) vs rank 9 ({})",
            counts[0],
            counts[9]
        );
        assert!(
            counts[9] > 2 * counts[49].max(1),
            "rank 9 ({}) vs rank 49 ({})",
            counts[9],
            counts[49]
        );
        // The realized top-1 share tracks 1/H_n(s) — for n = 60,
        // s = 1.3 that is ≈ 36% — well within a loose band.
        let total: usize = counts.iter().sum();
        let share = counts[0] as f64 / total as f64;
        assert!(
            (0.2..=0.55).contains(&share),
            "rank-0 share {share} outside the Zipf band"
        );
        // Both views exist and ground truth maps the dense head.
        assert!(s.num_common() >= 10, "common entities: {}", s.num_common());
        assert!(s.right.num_records() > 0);
    }

    #[test]
    fn zero_exponent_is_the_uniform_control() {
        let c = ZipfConfig {
            exponent: 0.0,
            ..cfg()
        };
        let s = zipf_sample(&c);
        let counts = rank_counts(&s, c.num_entities);
        let (lo, hi) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        // Poisson counts with equal means: spread stays small.
        assert!(
            hi < 2.5 * lo.max(1.0),
            "uniform control is skewed: min {lo}, max {hi}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = zipf_sample(&cfg());
        let b = zipf_sample(&cfg());
        assert_eq!(a.left.num_records(), b.left.num_records());
        assert_eq!(a.right.num_records(), b.right.num_records());
        assert_eq!(a.ground_truth, b.ground_truth);
        for e in a.left.entities_sorted() {
            let (ra, rb) = (a.left.records_of(e), b.left.records_of(e));
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.time, y.time, "entity {e} sampling must be bit-stable");
            }
        }
        let c = zipf_sample(&ZipfConfig { seed: 12, ..cfg() });
        assert_ne!(
            a.left.num_records(),
            c.left.num_records(),
            "a different seed should perturb the sample"
        );
    }

    #[test]
    fn uniform_right_side_flattens_only_the_right_view() {
        let c = ZipfConfig {
            right_interval_secs: Some(300.0),
            ..cfg()
        };
        let s = zipf_sample(&c);
        // Left keeps the Zipf head; right is near-uniform.
        let left = rank_counts(&s, c.num_entities);
        assert!(left[0] > 3 * left[9].max(1));
        let right: Vec<usize> = s
            .right
            .entities_sorted()
            .iter()
            .map(|&e| s.right.records_of(e).len())
            .collect();
        let (lo, hi) = (
            *right.iter().min().unwrap() as f64,
            *right.iter().max().unwrap() as f64,
        );
        assert!(
            hi < 3.0 * lo.max(1.0),
            "right view should be uniform: min {lo}, max {hi}"
        );
    }

    #[test]
    fn interval_of_scales_by_rank() {
        let c = cfg();
        assert!((c.interval_of(0) - c.hot_interval_secs).abs() < 1e-12);
        assert!(c.interval_of(9) > 10.0 * c.interval_of(0) / 2.0);
        assert!(c.interval_of(20) > c.interval_of(10));
    }

    #[test]
    #[should_panic(expected = "at least one entity")]
    fn zero_entities_panics() {
        let _ = zipf_sample(&ZipfConfig {
            num_entities: 0,
            ..ZipfConfig::default()
        });
    }
}
