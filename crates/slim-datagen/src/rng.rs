//! Distribution samplers on top of `rand`.
//!
//! Only the base `rand` crate is sanctioned for this project, so the
//! handful of distributions the generators need (Gaussian, exponential,
//! Zipf) are implemented and tested here.

use rand::Rng;

/// One standard-normal sample via Box-Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One exponential sample with the given mean (inverse-CDF method).
/// Models Poisson inter-arrival times of service usage.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Zipf sampler over ranks `0..n` with exponent `s`: rank `k` is drawn
/// with probability proportional to `1 / (k+1)^s`. Uses a precomputed CDF
/// and binary search, so construction is `O(n)` and sampling `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 60.0)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..100).all(|_| exponential(&mut rng, 1.0) >= 0.0));
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 of Zipf(1.2, 100) holds ≈ 29% of the mass.
        let share = counts[0] as f64 / 50_000.0;
        assert!((share - 0.29).abs() < 0.05, "rank-0 share {share}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 50_000.0;
            assert!((share - 0.1).abs() < 0.02, "share {share}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
