//! Bursty (on/off) arrival schedules for uneven per-connection rates.
//!
//! The Cab/SM scenarios and the Zipf workload shape *which entities*
//! are hot; this module shapes *when a feed talks*. Real ingest
//! connections are not smooth: a vehicle uploads a buffered trace when
//! it regains coverage, a check-in service flushes batches, a sensor
//! sleeps between duty cycles. The resulting regime is an on/off
//! process — dense bursts at the wire rate separated by silent gaps —
//! which is exactly what stresses a multi-connection ingest tier: the
//! watermark frontier must wait out each connection's silences without
//! stalling the stream, and per-connection backpressure arrives in
//! spikes rather than as steady load.
//!
//! [`bursty_offsets`] turns a config into the delivery-time offset of
//! each of a connection's events: exponentially distributed ON phases
//! delivering at a fixed wire rate, alternating with exponentially
//! distributed OFF silences. Different seeds give different
//! connections genuinely different duty cycles — the uneven-rate mix
//! `benches/streaming.rs` drives through the fan-in tier.

use rand::{rngs::StdRng, SeedableRng};

use crate::rng::exponential;

/// Configuration of [`bursty_offsets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyConfig {
    /// Mean length of an ON phase in seconds (exponentially
    /// distributed; each phase delivers events back to back at
    /// `on_rate_events_per_sec`).
    pub mean_on_secs: f64,
    /// Mean length of an OFF silence in seconds (exponentially
    /// distributed). `0` = no silences: the schedule degenerates to a
    /// steady feed at the ON rate.
    pub mean_off_secs: f64,
    /// Delivery rate *while ON*, in events per second. The long-run
    /// mean rate is this times the duty cycle
    /// `mean_on / (mean_on + mean_off)`.
    pub on_rate_events_per_sec: f64,
    /// RNG seed. Per-connection schedules should derive distinct seeds
    /// (e.g. `base ^ conn`) so the bursts of different feeds do not
    /// line up.
    pub seed: u64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        Self {
            mean_on_secs: 2.0,
            mean_off_secs: 8.0,
            on_rate_events_per_sec: 5_000.0,
            seed: 42,
        }
    }
}

impl BurstyConfig {
    /// The long-run mean delivery rate in events/s: the ON rate scaled
    /// by the duty cycle.
    pub fn mean_rate(&self) -> f64 {
        self.on_rate_events_per_sec * self.mean_on_secs / (self.mean_on_secs + self.mean_off_secs)
    }
}

/// The delivery-time offset, in seconds from the connection's start,
/// of each of `n` events under the on/off process: within an ON phase
/// events are spaced `1 / on_rate` apart; when the phase's
/// exponentially drawn length is spent, the clock jumps over an
/// exponentially drawn OFF silence and the next burst begins. Offsets
/// are non-decreasing, and the whole schedule is a pure function of
/// the config (seed included).
///
/// # Panics
/// Panics on a non-positive ON duration or rate, or a negative OFF
/// duration.
pub fn bursty_offsets(cfg: &BurstyConfig, n: usize) -> Vec<f64> {
    assert!(cfg.mean_on_secs > 0.0, "mean ON duration must be positive");
    assert!(
        cfg.mean_off_secs >= 0.0,
        "mean OFF duration must be non-negative"
    );
    assert!(cfg.on_rate_events_per_sec > 0.0, "ON rate must be positive");

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB0_0575);
    let spacing = 1.0 / cfg.on_rate_events_per_sec;
    let mut offsets = Vec::with_capacity(n);
    let mut now = 0.0f64;
    let mut phase_left = exponential(&mut rng, cfg.mean_on_secs);
    while offsets.len() < n {
        if phase_left <= 0.0 {
            if cfg.mean_off_secs > 0.0 {
                now += exponential(&mut rng, cfg.mean_off_secs);
            }
            phase_left = exponential(&mut rng, cfg.mean_on_secs);
            continue;
        }
        offsets.push(now);
        now += spacing;
        phase_left -= spacing;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BurstyConfig {
        BurstyConfig {
            mean_on_secs: 1.0,
            mean_off_secs: 5.0,
            on_rate_events_per_sec: 100.0,
            seed: 7,
        }
    }

    #[test]
    fn offsets_are_monotone_and_deterministic() {
        let a = bursty_offsets(&cfg(), 2_000);
        assert_eq!(a.len(), 2_000);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "offsets must not go back"
        );
        let b = bursty_offsets(&cfg(), 2_000);
        assert_eq!(a, b, "same config, same schedule — bit for bit");
        let c = bursty_offsets(&BurstyConfig { seed: 8, ..cfg() }, 2_000);
        assert_ne!(a, c, "a different seed must move the bursts");
    }

    #[test]
    fn silences_separate_wire_rate_bursts() {
        let c = cfg();
        let offs = bursty_offsets(&c, 5_000);
        let gaps: Vec<f64> = offs.windows(2).map(|w| w[1] - w[0]).collect();
        let spacing = 1.0 / c.on_rate_events_per_sec;
        // Within a burst, consecutive events sit at exactly the wire
        // spacing; most gaps are intra-burst.
        let intra = gaps.iter().filter(|g| (**g - spacing).abs() < 1e-9).count();
        assert!(
            intra > gaps.len() / 2,
            "bursts should dominate: {intra} of {}",
            gaps.len()
        );
        // The silences are orders of magnitude longer than the spacing.
        let longest = gaps.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            longest > 50.0 * spacing,
            "expected OFF gaps ≫ wire spacing, longest {longest}"
        );
        // The realized mean rate tracks the duty-cycled prediction
        // (loose band: exponential phases are noisy).
        let realized = offs.len() as f64 / offs.last().unwrap();
        let predicted = c.mean_rate();
        assert!(
            (0.3..=3.0).contains(&(realized / predicted)),
            "realized {realized} events/s vs predicted {predicted}"
        );
    }

    #[test]
    fn zero_off_time_is_a_steady_feed() {
        let c = BurstyConfig {
            mean_off_secs: 0.0,
            ..cfg()
        };
        let offs = bursty_offsets(&c, 1_000);
        let spacing = 1.0 / c.on_rate_events_per_sec;
        for (i, off) in offs.iter().enumerate() {
            assert!(
                (off - i as f64 * spacing).abs() < 1e-6,
                "event {i} at {off}, expected steady spacing"
            );
        }
    }

    #[test]
    #[should_panic(expected = "ON rate must be positive")]
    fn zero_rate_panics() {
        let _ = bursty_offsets(
            &BurstyConfig {
                on_rate_events_per_sec: 0.0,
                ..BurstyConfig::default()
            },
            10,
        );
    }
}
