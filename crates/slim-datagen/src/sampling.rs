//! Two-view sampling with ground truth (paper §5.1).
//!
//! From one ground-truth world, two location datasets ("views") are
//! sampled the way two independent services would observe it:
//!
//! * **Entity intersection ratio** controls which entities appear in
//!   both views: `ratio = |common| / |smaller view|`.
//! * Each view samples records at its *own* Poisson arrival times
//!   (services are not used synchronously) and adds GPS noise.
//! * **Record inclusion probability** thins each view's records
//!   independently, modelling differing usage frequencies.
//! * Entity ids are re-drawn per view, so ids carry no linkage signal;
//!   the returned ground truth maps left ids to right ids.

use std::collections::HashMap;

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use slim_core::{EntityId, LocationDataset, Record, Timestamp};

use crate::rng::exponential;
use crate::trajectory::{Trajectory, World};

/// How a service decides *when* to record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingMode {
    /// Poisson arrivals over the whole trajectory span (continuous
    /// tracking, e.g. taxi GPS loggers).
    Poisson,
    /// One potential record per *stay* segment, near the stay's start.
    /// Models check-in services: a user checking in at a venue often
    /// posts on several services within minutes — which is exactly how
    /// the paper's Twitter/Foursquare SM dataset came to be linkable.
    PerStay {
        /// Probability the service captures a given stay.
        capture_prob: f64,
        /// Uniform timestamp jitter after the stay start, seconds.
        jitter_secs: i64,
    },
}

/// How one service observes trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewConfig {
    /// Mean seconds between usage events (Poisson mode).
    pub mean_interval_secs: f64,
    /// GPS noise standard deviation, metres.
    pub gps_noise_m: f64,
    /// Record inclusion probability (paper parameter; default 0.5).
    pub inclusion_prob: f64,
    /// When the service records.
    pub mode: SamplingMode,
}

impl Default for ViewConfig {
    fn default() -> Self {
        Self {
            mean_interval_secs: 600.0,
            gps_noise_m: 25.0,
            inclusion_prob: 0.5,
            mode: SamplingMode::Poisson,
        }
    }
}

/// A linked pair of sampled views plus ground truth.
#[derive(Debug, Clone)]
pub struct TwoViewSample {
    /// First view (the paper's `E`).
    pub left: LocationDataset,
    /// Second view (the paper's `I`).
    pub right: LocationDataset,
    /// Ground truth: left entity id → right entity id for every entity
    /// present in both views.
    pub ground_truth: HashMap<EntityId, EntityId>,
}

impl TwoViewSample {
    /// Number of truly-common entities.
    pub fn num_common(&self) -> usize {
        self.ground_truth.len()
    }
}

/// Samples one entity's records as seen by one service. Shared with
/// the Zipf-skewed sampler ([`crate::zipf`]), which varies the view's
/// sampling interval per entity rank.
pub(crate) fn sample_records(
    entity: EntityId,
    traj: &Trajectory,
    view: &ViewConfig,
    rng: &mut StdRng,
) -> Vec<Record> {
    let mut out = Vec::new();
    let mut push = |pos: geocell::LatLng, t: i64, rng: &mut StdRng| {
        if rng.random_range(0.0..1.0) < view.inclusion_prob {
            let noisy = pos.offset(
                crate::rng::normal(rng, 0.0, view.gps_noise_m).abs(),
                rng.random_range(0.0..std::f64::consts::TAU),
            );
            out.push(Record::new(entity, noisy, Timestamp(t)));
        }
    };
    match view.mode {
        SamplingMode::Poisson => {
            let Some((lo, hi)) = traj.span() else {
                return Vec::new();
            };
            let mut t = lo.secs() + exponential(rng, view.mean_interval_secs) as i64;
            while t <= hi.secs() {
                if let Some(pos) = traj.position_at(Timestamp(t)) {
                    push(pos, t, rng);
                }
                t += exponential(rng, view.mean_interval_secs).max(1.0) as i64;
            }
        }
        SamplingMode::PerStay {
            capture_prob,
            jitter_secs,
        } => {
            for seg in traj.segments() {
                if seg.from != seg.to {
                    continue; // moving segment, not a stay
                }
                if rng.random_range(0.0..1.0) >= capture_prob {
                    continue;
                }
                let span = (seg.t1.secs() - seg.t0.secs()).max(1);
                let t = seg.t0.secs() + rng.random_range(0..jitter_secs.max(1).min(span));
                push(seg.from, t, rng);
            }
        }
    }
    out
}

/// Samples two overlapping views of a world.
///
/// `intersection_ratio ∈ [0, 1]` is the ratio of common entities to the
/// (equal) view size; both views get `m = ⌊N / (2 − ratio)⌋` entities of
/// which `⌊ratio · m⌋` are shared. Left entities keep ids `0..`, right
/// entities get ids `1_000_000 +` a per-view shuffle, so ids are
/// uninformative.
///
/// # Panics
/// Panics if `intersection_ratio` is outside `[0, 1]`.
pub fn sample_two_views(
    world: &World,
    intersection_ratio: f64,
    left_view: &ViewConfig,
    right_view: &ViewConfig,
    seed: u64,
) -> TwoViewSample {
    assert!(
        (0.0..=1.0).contains(&intersection_ratio),
        "intersection ratio {intersection_ratio} outside [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = world.len();
    let m = ((n as f64) / (2.0 - intersection_ratio)).floor() as usize;
    let common = ((intersection_ratio * m as f64).round() as usize).min(m);
    let extra = m - common;

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let common_idx = &order[..common];
    let left_only = &order[common..common + extra.min(n.saturating_sub(common))];
    let right_start = common + left_only.len();
    let right_only = &order[right_start..(right_start + extra).min(n)];

    let mut left_records = Vec::new();
    let mut right_records = Vec::new();
    let mut ground_truth = HashMap::with_capacity(common);

    // Right ids are shuffled into 1_000_000.. so the numeric order of ids
    // carries no cross-view signal.
    let mut right_ids: Vec<u64> = (0..(common + right_only.len()) as u64)
        .map(|k| 1_000_000 + k)
        .collect();
    right_ids.shuffle(&mut rng);
    let mut next_right = right_ids.into_iter();

    for (k, &idx) in common_idx.iter().enumerate() {
        let (gt_id, traj) = &world.entities[idx];
        let left_id = EntityId(*gt_id);
        let right_id = EntityId(next_right.next().expect("enough right ids"));
        let mut lrng = StdRng::seed_from_u64(seed ^ (0xA5A5_0000 + k as u64));
        let mut rrng = StdRng::seed_from_u64(seed ^ (0x5A5A_0000 + k as u64));
        left_records.extend(sample_records(left_id, traj, left_view, &mut lrng));
        let right_sampled = sample_records(right_id, traj, right_view, &mut rrng);
        if !right_sampled.is_empty() {
            right_records.extend(right_sampled);
        }
        ground_truth.insert(left_id, right_id);
    }
    for (k, &idx) in left_only.iter().enumerate() {
        let (gt_id, traj) = &world.entities[idx];
        let mut lrng = StdRng::seed_from_u64(seed ^ (0xBEEF_0000 + k as u64));
        left_records.extend(sample_records(EntityId(*gt_id), traj, left_view, &mut lrng));
    }
    for (k, &idx) in right_only.iter().enumerate() {
        let (_, traj) = &world.entities[idx];
        let right_id = EntityId(next_right.next().expect("enough right ids"));
        let mut rrng = StdRng::seed_from_u64(seed ^ (0xC0DE_0000 + k as u64));
        right_records.extend(sample_records(right_id, traj, right_view, &mut rrng));
    }

    TwoViewSample {
        left: LocationDataset::from_records(left_records),
        right: LocationDataset::from_records(right_records),
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxi::{taxi_world, TaxiConfig};

    fn world() -> World {
        taxi_world(&TaxiConfig {
            num_taxis: 20,
            span_secs: 24 * 3600,
            num_pois: 60,
            seed: 3,
            ..TaxiConfig::default()
        })
    }

    fn view() -> ViewConfig {
        ViewConfig {
            mean_interval_secs: 300.0,
            gps_noise_m: 15.0,
            inclusion_prob: 0.8,
            mode: SamplingMode::Poisson,
        }
    }

    #[test]
    fn intersection_ratio_respected() {
        let w = world();
        for ratio in [0.0, 0.3, 0.5, 1.0] {
            let s = sample_two_views(&w, ratio, &view(), &view(), 1);
            let m = ((20.0) / (2.0 - ratio)).floor() as usize;
            let expect_common = (ratio * m as f64).round() as usize;
            assert_eq!(s.num_common(), expect_common, "ratio {ratio}");
        }
    }

    #[test]
    fn views_are_asynchronous() {
        let w = world();
        let s = sample_two_views(&w, 1.0, &view(), &view(), 2);
        // Pick a common entity and verify the two views' timestamps differ.
        let (&l, &r) = s.ground_truth.iter().next().unwrap();
        let lt: Vec<i64> = s.left.records_of(l).iter().map(|x| x.time.secs()).collect();
        let rt: Vec<i64> = s
            .right
            .records_of(r)
            .iter()
            .map(|x| x.time.secs())
            .collect();
        assert!(!lt.is_empty() && !rt.is_empty());
        assert_ne!(lt, rt, "views must sample at independent times");
    }

    #[test]
    fn inclusion_probability_thins_records() {
        let w = world();
        let dense = ViewConfig {
            inclusion_prob: 1.0,
            ..view()
        };
        let sparse = ViewConfig {
            inclusion_prob: 0.2,
            ..view()
        };
        let a = sample_two_views(&w, 0.5, &dense, &dense, 3);
        let b = sample_two_views(&w, 0.5, &sparse, &sparse, 3);
        assert!(
            (b.left.num_records() as f64) < 0.5 * a.left.num_records() as f64,
            "thinning failed: {} vs {}",
            b.left.num_records(),
            a.left.num_records()
        );
    }

    #[test]
    fn right_ids_are_anonymized() {
        let w = world();
        let s = sample_two_views(&w, 0.5, &view(), &view(), 4);
        for e in s.right.entities() {
            assert!(e.0 >= 1_000_000, "right id {e} not anonymized");
        }
        for (l, r) in &s.ground_truth {
            assert!(s.left.contains(*l));
            assert!(s.right.contains(*r));
        }
    }

    #[test]
    fn ground_truth_is_one_to_one() {
        let w = world();
        let s = sample_two_views(&w, 0.7, &view(), &view(), 5);
        let mut rights: Vec<EntityId> = s.ground_truth.values().copied().collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), s.ground_truth.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let w = world();
        let a = sample_two_views(&w, 0.5, &view(), &view(), 6);
        let b = sample_two_views(&w, 0.5, &view(), &view(), 6);
        assert_eq!(a.left.num_records(), b.left.num_records());
        assert_eq!(a.right.num_records(), b.right.num_records());
        assert_eq!(a.ground_truth, b.ground_truth);
        let c = sample_two_views(&w, 0.5, &view(), &view(), 7);
        assert_ne!(a.ground_truth, c.ground_truth);
    }

    #[test]
    fn gps_noise_stays_bounded() {
        let w = world();
        let quiet = ViewConfig {
            gps_noise_m: 5.0,
            ..view()
        };
        let s = sample_two_views(&w, 1.0, &quiet, &quiet, 8);
        let (&l, &r) = s.ground_truth.iter().next().unwrap();
        // Records of the same entity at close times should be close.
        let lr = s.left.records_of(l);
        let rr = s.right.records_of(r);
        let mut checked = 0;
        for a in lr.iter().take(50) {
            if let Some(b) = rr
                .iter()
                .find(|b| (b.time.secs() - a.time.secs()).abs() < 30)
            {
                let d = a.location.distance_m(&b.location);
                assert!(d < 2_000.0, "same entity {d} m apart within 30 s");
                checked += 1;
            }
        }
        let _ = checked; // may be zero for very asynchronous samples — fine
    }
}
