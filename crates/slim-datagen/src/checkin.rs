//! Check-in generator — the SM (social-media) dataset stand-in.
//!
//! The paper's SM dataset joins Twitter and Foursquare check-ins:
//! hundreds of thousands of users spread over the globe, each with only
//! ~12 geotagged records over 26 days. We substitute a synthetic
//! population: users live in one of many cities, own a small personal
//! set of venues drawn Zipf-style from their city's venues (heavy-tailed
//! venue popularity is what exercises the IDF term), and perform a
//! handful of timed *stays* at those venues. Between stays their
//! position is unknown (trajectory gaps) — check-in services only see
//! people at venues.

use geocell::LatLng;
use rand::{rngs::StdRng, Rng, SeedableRng};
use slim_core::Timestamp;

use crate::rng::Zipf;
use crate::trajectory::{Segment, Trajectory, World};

/// Check-in world parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckinConfig {
    /// Number of users.
    pub num_users: usize,
    /// Simulation span in seconds (paper: 26 days).
    pub span_secs: i64,
    /// Number of cities across the globe.
    pub num_cities: usize,
    /// Venues per city.
    pub venues_per_city: usize,
    /// Zipf exponent of venue popularity inside a city.
    pub venue_zipf: f64,
    /// Venues a single user frequents (besides the home anchor).
    pub venues_per_user: usize,
    /// Probability a stay happens at the user's *home anchor* — a venue
    /// drawn uniformly (not by popularity), giving each user a
    /// distinctive rare location the way home/work anchors do in real
    /// check-in data. This is what the IDF term keys on.
    pub home_prob: f64,
    /// Mean number of stays per user over the whole span.
    pub mean_stays: f64,
    /// Stay duration range, seconds.
    pub stay_range_secs: (i64, i64),
    /// City radius in metres.
    pub city_radius_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CheckinConfig {
    fn default() -> Self {
        Self {
            num_users: 2_000,
            span_secs: 26 * 24 * 3600,
            num_cities: 40,
            venues_per_city: 150,
            venue_zipf: 1.0,
            venues_per_user: 6,
            home_prob: 0.45,
            mean_stays: 40.0,
            stay_range_secs: (1_200, 7_200),
            city_radius_m: 8_000.0,
            seed: 4242,
        }
    }
}

/// Generates the ground-truth world of check-in users.
pub fn checkin_world(cfg: &CheckinConfig) -> World {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Cities at mid-latitudes around the globe.
    let cities: Vec<LatLng> = (0..cfg.num_cities.max(1))
        .map(|_| {
            LatLng::from_degrees(
                rng.random_range(-55.0..65.0),
                rng.random_range(-179.0..179.0),
            )
        })
        .collect();
    // Venues per city.
    let venues: Vec<Vec<LatLng>> = cities
        .iter()
        .map(|c| {
            (0..cfg.venues_per_city.max(1))
                .map(|_| {
                    let d = rng.random_range(0.0..cfg.city_radius_m);
                    let bearing = rng.random_range(0.0..std::f64::consts::TAU);
                    c.offset(d, bearing)
                })
                .collect()
        })
        .collect();
    let venue_pick = Zipf::new(cfg.venues_per_city.max(1), cfg.venue_zipf);
    let city_pick = Zipf::new(cfg.num_cities.max(1), 1.0); // big cities have more users

    let mut entities = Vec::with_capacity(cfg.num_users);
    for user in 0..cfg.num_users {
        let city = city_pick.sample(&mut rng);
        // Home anchor: uniform over the city's venues, so it is usually a
        // long-tail venue few others frequent.
        let home = venues[city][rng.random_range(0..venues[city].len())];
        // The user's social venue set (may repeat popular venues; dedup).
        let mut mine: Vec<LatLng> = (0..cfg.venues_per_user.max(1))
            .map(|_| venues[city][venue_pick.sample(&mut rng)])
            .collect();
        mine.dedup_by(|a, b| a == b);

        // Poisson-ish number of stays at random times.
        let n_stays = {
            let lambda = cfg.mean_stays.max(1.0);
            // Normal approximation of Poisson is fine for λ ≥ 10 and
            // harmless below (clamped at 1).
            let x = crate::rng::normal(&mut rng, lambda, lambda.sqrt());
            x.round().max(1.0) as usize
        };
        let mut starts: Vec<i64> = (0..n_stays)
            .map(|_| rng.random_range(0..cfg.span_secs.max(1)))
            .collect();
        starts.sort_unstable();

        let mut segments: Vec<Segment> = Vec::with_capacity(n_stays);
        let mut prev_end = i64::MIN;
        for s in starts {
            if s < prev_end {
                continue; // stays must not overlap
            }
            let dur = rng.random_range(cfg.stay_range_secs.0..=cfg.stay_range_secs.1);
            let end = (s + dur).min(cfg.span_secs);
            let venue = if rng.random_range(0.0..1.0) < cfg.home_prob {
                home
            } else {
                mine[rng.random_range(0..mine.len())]
            };
            segments.push(Segment {
                t0: Timestamp(s),
                t1: Timestamp(end),
                from: venue,
                to: venue,
            });
            prev_end = end;
        }
        entities.push((user as u64, Trajectory::new(segments)));
    }
    World { entities }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CheckinConfig {
        CheckinConfig {
            num_users: 30,
            span_secs: 5 * 24 * 3600,
            num_cities: 5,
            venues_per_city: 40,
            mean_stays: 20.0,
            seed: 11,
            ..CheckinConfig::default()
        }
    }

    #[test]
    fn generates_requested_users() {
        let w = checkin_world(&small());
        assert_eq!(w.len(), 30);
        for (_, t) in &w.entities {
            assert!(!t.segments().is_empty());
        }
    }

    #[test]
    fn stays_are_stationary_with_gaps() {
        let w = checkin_world(&small());
        let mut saw_gap = false;
        for (_, t) in &w.entities {
            for s in t.segments() {
                assert_eq!(s.from, s.to, "stays must not move");
            }
            if t.segments().len() >= 2 {
                let a_end = t.segments()[0].t1;
                let b_start = t.segments()[1].t0;
                if b_start > a_end {
                    saw_gap = true;
                }
            }
        }
        assert!(saw_gap, "check-in users should have gaps between stays");
    }

    #[test]
    fn users_cluster_in_cities() {
        let cfg = small();
        let w = checkin_world(&cfg);
        for (id, t) in &w.entities {
            // All of one user's venues fit inside one city's diameter.
            let first = t.segments()[0].from;
            for s in t.segments() {
                assert!(
                    s.from.distance_m(&first) <= 2.0 * cfg.city_radius_m + 1.0,
                    "user {id} spans multiple cities"
                );
            }
        }
    }

    #[test]
    fn sparse_record_counts() {
        let cfg = small();
        let w = checkin_world(&cfg);
        let avg: f64 = w
            .entities
            .iter()
            .map(|(_, t)| t.segments().len() as f64)
            .sum::<f64>()
            / w.len() as f64;
        assert!(
            avg > 5.0 && avg < 40.0,
            "expected sparse check-ins, got avg {avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = checkin_world(&small());
        let b = checkin_world(&small());
        for ((ia, ta), (ib, tb)) in a.entities.iter().zip(&b.entities) {
            assert_eq!(ia, ib);
            assert_eq!(ta.segments(), tb.segments());
        }
    }

    #[test]
    fn venue_popularity_is_heavy_tailed() {
        // Count distinct venues used across users of the biggest city:
        // the most popular venue should host several users.
        let cfg = CheckinConfig {
            num_users: 200,
            num_cities: 2,
            ..small()
        };
        let w = checkin_world(&cfg);
        let mut venue_users: std::collections::HashMap<(i64, i64), usize> =
            std::collections::HashMap::new();
        for (_, t) in &w.entities {
            let mut seen = std::collections::HashSet::new();
            for s in t.segments() {
                let key = (
                    (s.from.lat_deg() * 1e6) as i64,
                    (s.from.lng_deg() * 1e6) as i64,
                );
                if seen.insert(key) {
                    *venue_users.entry(key).or_insert(0) += 1;
                }
            }
        }
        let max_users = venue_users.values().copied().max().unwrap();
        assert!(max_users >= 5, "no popular venue emerged (max {max_users})");
    }
}
