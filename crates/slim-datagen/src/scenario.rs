//! Canned experiment scenarios mirroring the paper's two setups (§5.1).
//!
//! * [`Scenario::cab`] — the Cab analogue: few entities, dense traces
//!   (paper: 265 entities/view, ~10,700 records each).
//! * [`Scenario::sm`] — the SM analogue: many entities, ~12 records each.
//!
//! Both accept a `scale` factor so benches can trade fidelity for
//! runtime; `scale = 1.0` approaches paper-sized inputs, the defaults
//! used by the experiment drivers are smaller (documented per driver in
//! EXPERIMENTS.md).

use crate::checkin::{checkin_world, CheckinConfig};
use crate::sampling::SamplingMode;

/// The SM per-stay observation mode (60% of stays captured, ≤10 min
/// posting jitter).
fn slim_datagen_mode_per_stay() -> SamplingMode {
    SamplingMode::PerStay {
        capture_prob: 0.6,
        jitter_secs: 600,
    }
}
use crate::sampling::{sample_two_views, TwoViewSample, ViewConfig};
use crate::taxi::{taxi_world, TaxiConfig};
use crate::trajectory::World;

/// A named workload scenario: a ground-truth world plus per-view
/// observation models.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name ("cab" / "sm").
    pub name: &'static str,
    /// The ground-truth world.
    pub world: World,
    /// Left-view observation model.
    pub left_view: ViewConfig,
    /// Right-view observation model.
    pub right_view: ViewConfig,
}

impl Scenario {
    /// The Cab-dataset analogue. `scale ∈ (0, 1]` scales entity count and
    /// time span; `scale = 0.25` (default in the drivers) gives ~66 taxis
    /// over ~6 days with high record densities.
    pub fn cab(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 4.0, "unreasonable scale {scale}");
        let span_days = (24.0 * scale).round().clamp(1.0, 24.0) as i64;
        let cfg = TaxiConfig {
            num_taxis: ((265.0 * scale).round() as usize).max(8),
            span_secs: span_days * 24 * 3600,
            seed,
            ..TaxiConfig::default()
        };
        let world = taxi_world(&cfg);
        // Dense usage: the paper's taxis report every ~3 minutes.
        let view = ViewConfig {
            mean_interval_secs: 240.0,
            gps_noise_m: 20.0,
            inclusion_prob: 0.5,
            mode: SamplingMode::Poisson,
        };
        Self {
            name: "cab",
            world,
            left_view: view,
            right_view: view,
        }
    }

    /// The SM-dataset analogue. `scale = 1.0` gives 30,000 users (as in
    /// the paper's sampled setup); the drivers default to ~3,000.
    pub fn sm(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 4.0, "unreasonable scale {scale}");
        let cfg = CheckinConfig {
            num_users: ((30_000.0 * scale).round() as usize).max(50),
            seed,
            ..CheckinConfig::default()
        };
        let world = checkin_world(&cfg);
        // Check-in services capture a stay when the user posts; users
        // cross-post the same venue visit to both services within
        // minutes, which is what makes the real Twitter/Foursquare data
        // linkable at ~12 records/entity. Tuned so inclusion 0.5 matches
        // the paper's density.
        let view = ViewConfig {
            mean_interval_secs: 5_400.0,
            gps_noise_m: 40.0,
            inclusion_prob: 0.5,
            mode: slim_datagen_mode_per_stay(),
        };
        Self {
            name: "sm",
            world,
            left_view: view,
            right_view: view,
        }
    }

    /// Samples the two views at the paper's default intersection ratio
    /// (0.5) or any other.
    pub fn sample(&self, intersection_ratio: f64, seed: u64) -> TwoViewSample {
        sample_two_views(
            &self.world,
            intersection_ratio,
            &self.left_view,
            &self.right_view,
            seed,
        )
    }

    /// Samples with overridden record-inclusion probabilities (the Fig. 7
    /// sweep).
    pub fn sample_with_inclusion(
        &self,
        intersection_ratio: f64,
        inclusion_prob: f64,
        seed: u64,
    ) -> TwoViewSample {
        let l = ViewConfig {
            inclusion_prob,
            ..self.left_view
        };
        let r = ViewConfig {
            inclusion_prob,
            ..self.right_view
        };
        sample_two_views(&self.world, intersection_ratio, &l, &r, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cab_scenario_is_dense() {
        let sc = Scenario::cab(0.05, 1);
        let s = sc.sample(0.5, 1);
        assert!(s.left.num_entities() >= 4);
        assert!(
            s.left.avg_records_per_entity() > 50.0,
            "cab should be dense, got {}",
            s.left.avg_records_per_entity()
        );
    }

    #[test]
    fn sm_scenario_is_sparse_and_large() {
        let sc = Scenario::sm(0.01, 2);
        let s = sc.sample(0.5, 2);
        assert!(s.left.num_entities() > 50);
        assert!(
            s.left.avg_records_per_entity() < 40.0,
            "sm should be sparse, got {}",
            s.left.avg_records_per_entity()
        );
    }

    #[test]
    fn sample_with_inclusion_thins() {
        let sc = Scenario::cab(0.05, 3);
        let dense = sc.sample_with_inclusion(0.5, 0.9, 3);
        let sparse = sc.sample_with_inclusion(0.5, 0.1, 3);
        assert!(sparse.left.num_records() < dense.left.num_records() / 2);
    }

    #[test]
    #[should_panic(expected = "unreasonable scale")]
    fn absurd_scale_panics() {
        let _ = Scenario::cab(100.0, 1);
    }
}
