//! Continuous ground-truth trajectories.
//!
//! Both workload generators produce, per entity, a *continuous* movement
//! history: a sequence of timed segments (linear motion between two
//! points, or a stay when the endpoints coincide), possibly with gaps in
//! between (a check-in user "disappears" between venues). Location
//! services observe these trajectories *asynchronously* — each service
//! samples positions at its own times — which is exactly the asynchrony
//! the SLIM similarity score must tolerate.

use geocell::LatLng;
use slim_core::Timestamp;

/// One motion segment: linear interpolation from `from` (at `t0`) to
/// `to` (at `t1`). A stay is a segment with `from == to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start time (inclusive).
    pub t0: Timestamp,
    /// Segment end time (inclusive).
    pub t1: Timestamp,
    /// Position at `t0`.
    pub from: LatLng,
    /// Position at `t1`.
    pub to: LatLng,
}

impl Segment {
    /// Position at time `t`, or `None` outside `[t0, t1]`.
    pub fn position_at(&self, t: Timestamp) -> Option<LatLng> {
        if t < self.t0 || t > self.t1 {
            return None;
        }
        let dur = (self.t1.secs() - self.t0.secs()) as f64;
        if dur <= 0.0 {
            return Some(self.from);
        }
        let f = (t.secs() - self.t0.secs()) as f64 / dur;
        Some(LatLng::from_degrees(
            self.from.lat_deg() + f * (self.to.lat_deg() - self.from.lat_deg()),
            self.from.lng_deg() + f * (self.to.lng_deg() - self.from.lng_deg()),
        ))
    }
}

/// A continuous (possibly gapped) trajectory: time-sorted, non-overlapping
/// segments.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    segments: Vec<Segment>,
}

impl Trajectory {
    /// Builds a trajectory; segments are sorted by start time.
    ///
    /// # Panics
    /// Panics if any segment has `t1 < t0` or overlaps its successor.
    pub fn new(mut segments: Vec<Segment>) -> Self {
        segments.sort_by_key(|s| s.t0);
        for s in &segments {
            assert!(s.t1 >= s.t0, "segment ends before it starts");
        }
        for w in segments.windows(2) {
            assert!(
                w[1].t0 >= w[0].t1,
                "segments overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        Self { segments }
    }

    /// Position at `t`, or `None` if `t` falls into a gap or outside the
    /// trajectory span. Binary search over segments.
    pub fn position_at(&self, t: Timestamp) -> Option<LatLng> {
        let idx = self.segments.partition_point(|s| s.t1 < t);
        self.segments.get(idx).and_then(|s| s.position_at(t))
    }

    /// The `[start, end]` span, or `None` when empty.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.segments.first(), self.segments.last()) {
            (Some(f), Some(l)) => Some((f.t0, l.t1)),
            _ => None,
        }
    }

    /// The segments (sorted by time).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Maximum speed over all moving segments, metres per second.
    /// Generators use this to assert they respect a speed limit.
    pub fn max_speed_m_per_s(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.t1 > s.t0)
            .map(|s| s.from.distance_m(&s.to) / (s.t1.secs() - s.t0.secs()) as f64)
            .fold(0.0, f64::max)
    }
}

/// A ground-truth world: every entity's true continuous trajectory,
/// keyed by a ground-truth entity id. Views sampled from the same world
/// share these ids in their ground-truth mapping.
#[derive(Debug, Clone, Default)]
pub struct World {
    /// `(ground truth id, trajectory)`, sorted by id.
    pub entities: Vec<(u64, Trajectory)>,
}

impl World {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Joint time span of all trajectories.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        let mut out: Option<(Timestamp, Timestamp)> = None;
        for (_, t) in &self.entities {
            if let Some((lo, hi)) = t.span() {
                out = Some(match out {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ll(lat: f64, lng: f64) -> LatLng {
        LatLng::from_degrees(lat, lng)
    }

    #[test]
    fn segment_interpolates_linearly() {
        let s = Segment {
            t0: Timestamp(0),
            t1: Timestamp(100),
            from: ll(0.0, 0.0),
            to: ll(1.0, 2.0),
        };
        let mid = s.position_at(Timestamp(50)).unwrap();
        assert!((mid.lat_deg() - 0.5).abs() < 1e-9);
        assert!((mid.lng_deg() - 1.0).abs() < 1e-9);
        assert_eq!(s.position_at(Timestamp(-1)), None);
        assert_eq!(s.position_at(Timestamp(101)), None);
    }

    #[test]
    fn stay_segment_is_constant() {
        let s = Segment {
            t0: Timestamp(10),
            t1: Timestamp(20),
            from: ll(5.0, 5.0),
            to: ll(5.0, 5.0),
        };
        for t in 10..=20 {
            let p = s.position_at(Timestamp(t)).unwrap();
            assert!((p.lat_deg() - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_handles_gaps() {
        let t = Trajectory::new(vec![
            Segment {
                t0: Timestamp(0),
                t1: Timestamp(10),
                from: ll(0.0, 0.0),
                to: ll(0.0, 0.0),
            },
            Segment {
                t0: Timestamp(20),
                t1: Timestamp(30),
                from: ll(1.0, 1.0),
                to: ll(1.0, 1.0),
            },
        ]);
        assert!(t.position_at(Timestamp(5)).is_some());
        assert!(t.position_at(Timestamp(15)).is_none(), "gap must be None");
        assert!(t.position_at(Timestamp(25)).is_some());
        assert_eq!(t.span(), Some((Timestamp(0), Timestamp(30))));
    }

    #[test]
    fn position_at_segment_boundaries() {
        let t = Trajectory::new(vec![Segment {
            t0: Timestamp(0),
            t1: Timestamp(10),
            from: ll(0.0, 0.0),
            to: ll(1.0, 0.0),
        }]);
        assert!(t.position_at(Timestamp(0)).is_some());
        assert!(t.position_at(Timestamp(10)).is_some());
        assert!(t.position_at(Timestamp(11)).is_none());
    }

    #[test]
    fn max_speed_computed() {
        // 111 km north in 1000 s ≈ 111 m/s.
        let t = Trajectory::new(vec![Segment {
            t0: Timestamp(0),
            t1: Timestamp(1000),
            from: ll(0.0, 0.0),
            to: ll(1.0, 0.0),
        }]);
        let v = t.max_speed_m_per_s();
        assert!((v - 111.2).abs() < 1.0, "speed {v}");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_segments_panic() {
        let _ = Trajectory::new(vec![
            Segment {
                t0: Timestamp(0),
                t1: Timestamp(10),
                from: ll(0.0, 0.0),
                to: ll(0.0, 0.0),
            },
            Segment {
                t0: Timestamp(5),
                t1: Timestamp(15),
                from: ll(0.0, 0.0),
                to: ll(0.0, 0.0),
            },
        ]);
    }

    #[test]
    fn world_span_unions_entities() {
        let seg = |t0: i64, t1: i64| Segment {
            t0: Timestamp(t0),
            t1: Timestamp(t1),
            from: ll(0.0, 0.0),
            to: ll(0.0, 0.0),
        };
        let w = World {
            entities: vec![
                (0, Trajectory::new(vec![seg(10, 20)])),
                (1, Trajectory::new(vec![seg(0, 5)])),
            ],
        };
        assert_eq!(w.span(), Some((Timestamp(0), Timestamp(20))));
        assert_eq!(w.len(), 2);
    }
}
