//! Taxi-fleet trajectory generator — the Cab-dataset stand-in.
//!
//! The paper's Cab dataset (536 San-Francisco taxis, 11M GPS points over
//! 24 days) is proprietary-ish real data we substitute with a synthetic
//! fleet: each taxi does random-waypoint trips between points of interest
//! inside a city bounding box, at bounded speed, around the clock. The
//! properties that matter for linkage are preserved: spatially dense
//! traces, thousands of records per entity once sampled, a hard speed
//! bound (which makes alibis meaningful), and distinct per-taxi movement
//! patterns.

use geocell::LatLng;
use rand::{rngs::StdRng, Rng, SeedableRng};
use slim_core::Timestamp;

use crate::rng::Zipf;
use crate::trajectory::{Segment, Trajectory, World};

/// Taxi world parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiConfig {
    /// Number of taxis.
    pub num_taxis: usize,
    /// Simulation span in seconds (paper: 24 days).
    pub span_secs: i64,
    /// City center.
    pub center: LatLng,
    /// Half-extent of the city box in metres (records stay within
    /// roughly ±extent of the center).
    pub extent_m: f64,
    /// Number of points of interest taxis travel between.
    pub num_pois: usize,
    /// Number of shared city hubs (downtown, airport, …) every taxi
    /// visits. Hub cells are *popular* — many entities share them — so
    /// the IDF term discounts co-occurrences there, which is what
    /// separates true from false pairs in the real data.
    pub num_hubs: usize,
    /// Probability that a trip targets a hub instead of a home POI.
    pub hub_prob: f64,
    /// Cruising speed range, metres/second.
    pub speed_range_m_per_s: (f64, f64),
    /// Pause range between trips, seconds.
    pub pause_range_secs: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        Self {
            num_taxis: 64,
            span_secs: 3 * 24 * 3600,
            center: LatLng::from_degrees(37.762, -122.435), // San Francisco
            // The real fleet spans the SF peninsula (downtown to the
            // airport, ~25 km); alibi pairs only exist when the service
            // area exceeds the runaway distance of narrow windows.
            extent_m: 15_000.0,
            num_pois: 400,
            num_hubs: 6,
            hub_prob: 0.4,
            speed_range_m_per_s: (6.0, 18.0), // ~20-65 km/h city driving
            pause_range_secs: (60, 900),
            seed: 42,
        }
    }
}

/// Uniform point inside the city box.
fn random_point(rng: &mut StdRng, cfg: &TaxiConfig) -> LatLng {
    let dx = rng.random_range(-cfg.extent_m..cfg.extent_m);
    let dy = rng.random_range(-cfg.extent_m..cfg.extent_m);
    cfg.center
        .offset(dx, std::f64::consts::FRAC_PI_2) // east-west
        .offset(dy, 0.0) // north-south
}

/// Generates the ground-truth world of taxi trajectories.
pub fn taxi_world(cfg: &TaxiConfig) -> World {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pois: Vec<LatLng> = (0..cfg.num_pois.max(2))
        .map(|_| random_point(&mut rng, cfg))
        .collect();
    // Shared hubs cluster near the center (downtown) with one far out
    // (airport-like), drawn Zipf so the core hub dominates.
    let hubs: Vec<LatLng> = (0..cfg.num_hubs.max(1))
        .map(|k| {
            let d = cfg.extent_m * (0.1 + 0.15 * k as f64);
            cfg.center.offset(d, k as f64 * 1.1)
        })
        .collect();
    let hub_pick = Zipf::new(hubs.len(), 1.0);

    let mut entities = Vec::with_capacity(cfg.num_taxis);
    for taxi in 0..cfg.num_taxis {
        // Each taxi favours a home region: a subset of POIs near a random
        // anchor, giving taxis distinguishable patterns.
        let anchor = pois[rng.random_range(0..pois.len())];
        // Home territory: POIs within ~40% of the city extent, so taxis
        // from different neighbourhoods are spatially distinguishable
        // (real fleets have home garages and preferred districts).
        let mut local: Vec<LatLng> = pois
            .iter()
            .copied()
            .filter(|p| p.distance_m(&anchor) < cfg.extent_m * 0.4)
            .collect();
        if local.len() < 2 {
            local = pois.clone();
        }
        // Taxis favour a few stands: destinations are drawn Zipf-style
        // over the taxi's local POIs (sorted by distance to the anchor so
        // the favourite spots are near home). This mirrors real fleets
        // and is what makes dominating-grid-cell signatures stable.
        local.sort_by(|a, b| {
            a.distance_m(&anchor)
                .partial_cmp(&b.distance_m(&anchor))
                .unwrap()
        });
        let pick = Zipf::new(local.len(), 1.4);

        let mut segments = Vec::new();
        let mut t = 0i64;
        let mut pos = local[pick.sample(&mut rng)];
        while t < cfg.span_secs {
            // Pause at the current POI.
            let pause = rng.random_range(cfg.pause_range_secs.0..=cfg.pause_range_secs.1);
            let t_pause_end = (t + pause).min(cfg.span_secs);
            segments.push(Segment {
                t0: Timestamp(t),
                t1: Timestamp(t_pause_end),
                from: pos,
                to: pos,
            });
            t = t_pause_end;
            if t >= cfg.span_secs {
                break;
            }
            // Drive to the next POI at a bounded speed; a share of the
            // trips go to the shared hubs everyone visits.
            let dest = if rng.random_range(0.0..1.0) < cfg.hub_prob {
                hubs[hub_pick.sample(&mut rng)]
            } else {
                local[pick.sample(&mut rng)]
            };
            let dist = pos.distance_m(&dest);
            let speed = rng.random_range(cfg.speed_range_m_per_s.0..=cfg.speed_range_m_per_s.1);
            let dur = ((dist / speed).ceil() as i64).max(1);
            let t_end = (t + dur).min(cfg.span_secs);
            // If the trip is truncated by the span, interpolate the
            // reachable endpoint so speed stays bounded.
            let frac = (t_end - t) as f64 / dur as f64;
            let reach = LatLng::from_degrees(
                pos.lat_deg() + frac * (dest.lat_deg() - pos.lat_deg()),
                pos.lng_deg() + frac * (dest.lng_deg() - pos.lng_deg()),
            );
            segments.push(Segment {
                t0: Timestamp(t),
                t1: Timestamp(t_end),
                from: pos,
                to: reach,
            });
            pos = reach;
            t = t_end;
        }
        entities.push((taxi as u64, Trajectory::new(segments)));
    }
    World { entities }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TaxiConfig {
        TaxiConfig {
            num_taxis: 5,
            span_secs: 6 * 3600,
            num_pois: 50,
            seed: 7,
            ..TaxiConfig::default()
        }
    }

    #[test]
    fn generates_requested_taxis() {
        let w = taxi_world(&small());
        assert_eq!(w.len(), 5);
        for (_, t) in &w.entities {
            assert!(!t.segments().is_empty());
        }
    }

    #[test]
    fn trajectories_cover_the_span_continuously() {
        let cfg = small();
        let w = taxi_world(&cfg);
        for (id, t) in &w.entities {
            let (lo, hi) = t.span().unwrap();
            assert_eq!(lo, Timestamp(0), "taxi {id}");
            assert_eq!(hi, Timestamp(cfg.span_secs), "taxi {id}");
            // Taxis are always somewhere (no gaps).
            for k in 0..50 {
                let probe = Timestamp(k * cfg.span_secs / 50);
                assert!(t.position_at(probe).is_some(), "taxi {id} gap at {probe:?}");
            }
        }
    }

    #[test]
    fn speed_limit_respected() {
        let cfg = small();
        let w = taxi_world(&cfg);
        for (id, t) in &w.entities {
            let v = t.max_speed_m_per_s();
            assert!(
                v <= cfg.speed_range_m_per_s.1 + 1.0,
                "taxi {id} speed {v} m/s"
            );
        }
    }

    #[test]
    fn stays_within_city_bounds() {
        let cfg = small();
        let w = taxi_world(&cfg);
        for (id, t) in &w.entities {
            for s in t.segments() {
                for p in [s.from, s.to] {
                    let d = p.distance_m(&cfg.center);
                    // √2 · extent plus slack for the double offset.
                    assert!(d < cfg.extent_m * 1.7, "taxi {id} strayed {d} m");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = taxi_world(&small());
        let b = taxi_world(&small());
        assert_eq!(a.len(), b.len());
        for ((ia, ta), (ib, tb)) in a.entities.iter().zip(&b.entities) {
            assert_eq!(ia, ib);
            assert_eq!(ta.segments().len(), tb.segments().len());
            assert_eq!(ta.segments().first(), tb.segments().first());
        }
        let mut other_cfg = small();
        other_cfg.seed = 8;
        let c = taxi_world(&other_cfg);
        assert_ne!(
            a.entities[0].1.segments().last(),
            c.entities[0].1.segments().last(),
            "different seeds should differ"
        );
    }

    #[test]
    fn taxis_have_distinct_patterns() {
        let w = taxi_world(&small());
        let probe = Timestamp(3600);
        let positions: Vec<LatLng> = w
            .entities
            .iter()
            .map(|(_, t)| t.position_at(probe).unwrap())
            .collect();
        // At least one pair of taxis is far apart at the probe time.
        let mut max_d: f64 = 0.0;
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                max_d = max_d.max(positions[i].distance_m(&positions[j]));
            }
        }
        assert!(max_d > 500.0, "all taxis bunched together ({max_d} m)");
    }
}
