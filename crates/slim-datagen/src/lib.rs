//! # slim-datagen — synthetic mobility workloads with ground truth
//!
//! The SLIM paper evaluates on two real datasets we cannot ship: GPS
//! traces of San Francisco taxis ("Cab") and joined Twitter/Foursquare
//! check-ins ("SM"). This crate builds synthetic equivalents that
//! preserve the linkage-relevant structure (density, sparsity, speed
//! bounds, heavy-tailed venue popularity, cross-service asynchrony) and
//! — unlike the real data — come with exact ground truth:
//!
//! 1. A generator produces a [`trajectory::World`]: one *continuous*
//!    ground-truth trajectory per entity ([`taxi`], [`checkin`]).
//! 2. [`sampling::sample_two_views`] observes that world twice, the way
//!    two independent services would: per-service Poisson sampling
//!    times, GPS noise, record-inclusion thinning, controlled entity
//!    overlap, re-anonymized ids.
//!
//! [`scenario::Scenario`] wraps both steps behind the paper's "Cab" and
//! "SM" setups with a scale knob.

#![warn(missing_docs)]

pub mod bursty;
pub mod checkin;
pub mod rng;
pub mod sampling;
pub mod scenario;
pub mod taxi;
pub mod trajectory;
pub mod zipf;

pub use bursty::{bursty_offsets, BurstyConfig};
pub use checkin::{checkin_world, CheckinConfig};
pub use sampling::{sample_two_views, SamplingMode, TwoViewSample, ViewConfig};
pub use scenario::Scenario;
pub use taxi::{taxi_world, TaxiConfig};
pub use trajectory::{Segment, Trajectory, World};
pub use zipf::{zipf_sample, ZipfConfig};
