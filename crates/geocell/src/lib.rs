//! # geocell — hierarchical spherical cell decomposition
//!
//! A from-scratch, dependency-light reimplementation of the parts of the
//! Google S2 geometry library that the SLIM mobility-linkage paper
//! (SIGMOD'20) relies on:
//!
//! * a 31-level hierarchical decomposition of the Earth's surface into
//!   cells, addressed by compact 64-bit [`CellId`]s;
//! * mapping a latitude/longitude point to the cell containing it at any
//!   level, and walking the hierarchy (parent/child/level);
//! * estimating the minimum great-circle distance between two cells, which
//!   SLIM's proximity function uses to award close record pairs and to
//!   detect *alibi* pairs (same time window, impossibly distant cells).
//!
//! ## Differences from S2 (documented substitutions)
//!
//! * Children are ordered by a Morton (Z-order) curve rather than S2's
//!   Hilbert curve. SLIM never exploits id adjacency — cell ids are hashed —
//!   so only the containment hierarchy matters, which is identical.
//! * Cell-to-cell distance is a conservative lower bound: great-circle
//!   distance between cell centers minus the two circumradii, clamped at
//!   zero. S2's exact `S2Cell::GetDistance` is tighter for elongated cells
//!   near face corners, but both are exact for the common case the paper
//!   depends on (equal cells → 0, far cells → ≈ center distance).
//!
//! ## Quick example
//!
//! ```
//! use geocell::{CellId, LatLng};
//!
//! let soma = LatLng::from_degrees(37.7785, -122.3975);
//! let cell = CellId::from_latlng(soma, 12);
//! assert_eq!(cell.level(), 12);
//! assert!(cell.parent(10).contains(cell));
//! // A point a few metres away lands in the same level-12 cell.
//! let nearby = LatLng::from_degrees(37.7786, -122.3974);
//! assert_eq!(CellId::from_latlng(nearby, 12), cell);
//! ```

mod cellid;
mod distance;
mod face;
mod latlng;
mod point;

pub use cellid::{CellId, MAX_LEVEL, NUM_FACES};
pub use distance::{
    bounded_distance_m, cell_center_and_radius, cell_circumradius_m, cell_min_distance_m,
    exact_cell_radius_m, EARTH_RADIUS_M,
};
pub use face::{face_uv_to_xyz, st_to_uv, uv_to_st, xyz_to_face_uv};
pub use latlng::LatLng;
pub use point::Point;
