//! Distance estimation between cells.
//!
//! SLIM's proximity function needs `d(c1, c2)`: "the minimum geographical
//! distance between two grid cells" (paper Eq. 1). We compute a
//! conservative lower bound: the great-circle distance between cell
//! centers minus both cells' circumradii, clamped at zero. This is exact
//! for identical cells (0) and asymptotically exact for distant cells,
//! which are the two regimes that drive the similarity score (full award
//! at distance 0, alibi penalty beyond the runaway distance).

use crate::cellid::CellId;

/// Mean Earth radius in metres (the value used by S2).
pub const EARTH_RADIUS_M: f64 = 6_371_010.0;

/// Maximum cell-diagonal metric derivative for the quadratic projection,
/// taken from S2 (`kMaxDiag`). The diagonal of a level-`k` cell is at most
/// `MAX_DIAG_DERIV * 2^-k` radians.
const MAX_DIAG_DERIV: f64 = 1.219_327_231_124_852_6;

/// A loose analytic upper bound on a level-`level` cell's circumradius,
/// in metres: one full max-diagonal. Useful for sizing estimates; the
/// distance computation below uses the exact per-cell radius instead.
pub fn cell_circumradius_m(level: u8) -> f64 {
    MAX_DIAG_DERIV * (0.5f64).powi(level as i32) * EARTH_RADIUS_M
}

/// Exact circumradius of one cell: the farthest vertex from the cell's
/// center. Cell edges are great-circle arcs, so the cell is a convex
/// spherical quadrilateral and its farthest point from any interior
/// point is a vertex.
pub fn exact_cell_radius_m(cell: CellId) -> f64 {
    let center = cell.center();
    cell.vertices()
        .iter()
        .map(|v| center.distance_m(v))
        .fold(0.0, f64::max)
}

/// A cell's center and exact circumradius, bundled for callers that
/// compare one cell against many (computing vertices once per cell
/// instead of once per pair cuts the pairing hot path ~10×).
pub fn cell_center_and_radius(cell: CellId) -> (crate::latlng::LatLng, f64) {
    (cell.center(), exact_cell_radius_m(cell))
}

/// Distance lower bound from precomputed `(center, radius)` pairs; the
/// cells must be distinct and non-nested (callers working at one fixed
/// level need only check equality).
pub fn bounded_distance_m(
    a: &(crate::latlng::LatLng, f64),
    b: &(crate::latlng::LatLng, f64),
) -> f64 {
    // Radii are summed first so the result is exactly symmetric in the
    // arguments (IEEE addition commutes; chained subtraction does not).
    (a.0.distance_m(&b.0) - (a.1 + b.1)).max(0.0)
}

/// Lower bound on the minimum great-circle distance between two cells, in
/// metres: center distance minus both exact circumradii (triangle
/// inequality on the sphere). Returns 0 when either cell contains the
/// other (including equality).
pub fn cell_min_distance_m(a: CellId, b: CellId) -> f64 {
    if a.contains(b) || b.contains(a) {
        return 0.0;
    }
    bounded_distance_m(&cell_center_and_radius(a), &cell_center_and_radius(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latlng::LatLng;

    #[test]
    fn same_cell_distance_zero() {
        let c = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), 12);
        assert_eq!(cell_min_distance_m(c, c), 0.0);
    }

    #[test]
    fn nested_cells_distance_zero() {
        let ll = LatLng::from_degrees(37.0, -122.0);
        let coarse = CellId::from_latlng(ll, 8);
        let fine = CellId::from_latlng(ll, 16);
        assert_eq!(cell_min_distance_m(coarse, fine), 0.0);
        assert_eq!(cell_min_distance_m(fine, coarse), 0.0);
    }

    #[test]
    fn distance_is_lower_bound_on_point_distance() {
        // Any two points inside the cells must be at least this far apart.
        let a_pt = LatLng::from_degrees(37.7749, -122.4194);
        let b_pt = LatLng::from_degrees(34.0522, -118.2437);
        for level in [8u8, 12, 16, 20] {
            let a = CellId::from_latlng(a_pt, level);
            let b = CellId::from_latlng(b_pt, level);
            let bound = cell_min_distance_m(a, b);
            let actual = a_pt.distance_m(&b_pt);
            assert!(
                bound <= actual,
                "level {level}: bound {bound} exceeds point distance {actual}"
            );
            // At fine levels the bound should be close to the true distance.
            if level >= 12 {
                assert!(actual - bound < 2.0 * cell_circumradius_m(level) + 1.0);
            }
        }
    }

    #[test]
    fn circumradius_halves_per_level() {
        for level in 0..30u8 {
            let r0 = cell_circumradius_m(level);
            let r1 = cell_circumradius_m(level + 1);
            assert!((r0 / r1 - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn circumradius_magnitudes_are_sensible() {
        // Level 12 cells are a few km across; the conservative radius is
        // one diagonal, ~2 km.
        let r12 = cell_circumradius_m(12);
        assert!(r12 > 1_000.0 && r12 < 4_000.0, "r12 = {r12}");
        // Level 30 leaf cells ~ centimetres.
        let r30 = cell_circumradius_m(30);
        assert!(r30 < 0.02, "r30 = {r30}");
    }

    #[test]
    fn far_cells_distance_close_to_center_distance() {
        let sf = LatLng::from_degrees(37.7749, -122.4194);
        let nyc = LatLng::from_degrees(40.7128, -74.0060);
        let a = CellId::from_latlng(sf, 14);
        let b = CellId::from_latlng(nyc, 14);
        let d = cell_min_distance_m(a, b);
        let point_d = sf.distance_m(&nyc);
        assert!((d - point_d).abs() / point_d < 0.001);
    }

    #[test]
    fn adjacent_fine_cells_have_small_distance() {
        // Two points ~300 m apart at level 16 (cell size ~150 m): the bound
        // must be small (possibly 0) but definitely below the point distance.
        let a_pt = LatLng::from_degrees(37.7749, -122.4194);
        let b_pt = a_pt.offset(300.0, std::f64::consts::FRAC_PI_2);
        let a = CellId::from_latlng(a_pt, 16);
        let b = CellId::from_latlng(b_pt, 16);
        let d = cell_min_distance_m(a, b);
        assert!(d <= a_pt.distance_m(&b_pt));
        assert!(d < 400.0);
    }
}
