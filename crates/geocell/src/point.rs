//! Unit vectors on the sphere.

use crate::latlng::LatLng;

/// A point in ℝ³, normally a unit vector representing a position on the
/// sphere. Used as the intermediate representation between geodetic
/// coordinates and cube-face cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X component (towards lat 0, lng 0).
    pub x: f64,
    /// Y component (towards lat 0, lng 90°E).
    pub y: f64,
    /// Z component (towards the north pole).
    pub z: f64,
}

impl Point {
    /// Creates a point from raw components (not normalized).
    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the unit-length version of this vector.
    ///
    /// # Panics
    /// Panics if the vector is (numerically) zero.
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        Self::new(self.x / n, self.y / n, self.z / n)
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &Point) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Angle between two unit vectors, in radians. Uses the numerically
    /// stable `atan2(|a×b|, a·b)` formulation.
    pub fn angle(&self, o: &Point) -> f64 {
        let cross = Point::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        );
        cross.norm().atan2(self.dot(o))
    }

    /// Converts a unit vector back to latitude/longitude.
    pub fn to_latlng(&self) -> LatLng {
        let lat = self.z.atan2((self.x * self.x + self.y * self.y).sqrt());
        let lng = self.y.atan2(self.x);
        LatLng::from_radians(lat, lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latlng_point_roundtrip() {
        for &(lat, lng) in &[
            (0.0, 0.0),
            (37.7749, -122.4194),
            (-45.0, 60.0),
            (89.9, 10.0),
            (-89.9, -170.0),
        ] {
            let ll = LatLng::from_degrees(lat, lng);
            let back = ll.to_point().to_latlng();
            assert!((back.lat_deg() - lat).abs() < 1e-9, "lat {lat}");
            assert!((back.lng_deg() - lng).abs() < 1e-9, "lng {lng}");
        }
    }

    #[test]
    fn angle_of_orthogonal_vectors() {
        let a = Point::new(1.0, 0.0, 0.0);
        let b = Point::new(0.0, 1.0, 0.0);
        assert!((a.angle(&b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_of_identical_vectors_is_zero() {
        let a = LatLng::from_degrees(12.0, 34.0).to_point();
        assert!(a.angle(&a) < 1e-12);
    }

    #[test]
    fn angle_matches_haversine() {
        let a = LatLng::from_degrees(37.0, -122.0);
        let b = LatLng::from_degrees(37.1, -122.2);
        let via_angle = a.to_point().angle(&b.to_point()) * crate::EARTH_RADIUS_M;
        let via_hav = a.distance_m(&b);
        assert!(
            (via_angle - via_hav).abs() < 0.5,
            "{via_angle} vs {via_hav}"
        );
    }

    #[test]
    fn normalized_is_unit() {
        let p = Point::new(3.0, 4.0, 12.0).normalized();
        assert!((p.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let _ = Point::new(0.0, 0.0, 0.0).normalized();
    }
}
