//! Cube-face projection of the sphere, following the S2 construction.
//!
//! The sphere is enclosed in a cube; each of the six faces is projected
//! onto the sphere. Points on a face are addressed by `(u, v)` in
//! `[-1, 1]²`. To reduce the area distortion between cells at the face
//! centers and corners, cell subdivision happens in `(s, t)` space in
//! `[0, 1]²`, related to `(u, v)` by S2's quadratic transform.

use crate::point::Point;

/// Converts a cell-space coordinate `s ∈ [0,1]` to a face coordinate
/// `u ∈ [-1,1]` using S2's quadratic transform, which roughly equalizes
/// cell areas across a face.
#[inline]
pub fn st_to_uv(s: f64) -> f64 {
    if s >= 0.5 {
        (1.0 / 3.0) * (4.0 * s * s - 1.0)
    } else {
        (1.0 / 3.0) * (1.0 - 4.0 * (1.0 - s) * (1.0 - s))
    }
}

/// Inverse of [`st_to_uv`].
#[inline]
pub fn uv_to_st(u: f64) -> f64 {
    if u >= 0.0 {
        0.5 * (1.0 + 3.0 * u).sqrt()
    } else {
        1.0 - 0.5 * (1.0 - 3.0 * u).sqrt()
    }
}

/// Returns the face (0-5) containing the direction `p`, which is the axis
/// with the largest absolute component: 0=+x, 1=+y, 2=+z, 3=−x, 4=−y, 5=−z.
pub fn face_of(p: &Point) -> u8 {
    let abs = [p.x.abs(), p.y.abs(), p.z.abs()];
    let mut axis = 0;
    if abs[1] > abs[axis] {
        axis = 1;
    }
    if abs[2] > abs[axis] {
        axis = 2;
    }
    let comp = [p.x, p.y, p.z][axis];
    if comp < 0.0 {
        (axis + 3) as u8
    } else {
        axis as u8
    }
}

/// Projects a unit vector onto a cube face, returning `(face, u, v)`.
pub fn xyz_to_face_uv(p: &Point) -> (u8, f64, f64) {
    let face = face_of(p);
    let (u, v) = match face {
        0 => (p.y / p.x, p.z / p.x),
        1 => (-p.x / p.y, p.z / p.y),
        2 => (-p.x / p.z, -p.y / p.z),
        3 => (p.z / p.x, p.y / p.x),
        4 => (p.z / p.y, -p.x / p.y),
        _ => (-p.y / p.z, -p.x / p.z),
    };
    (face, u, v)
}

/// Inverse of [`xyz_to_face_uv`]: lifts face coordinates back to a
/// (non-normalized) direction vector.
pub fn face_uv_to_xyz(face: u8, u: f64, v: f64) -> Point {
    match face {
        0 => Point::new(1.0, u, v),
        1 => Point::new(-u, 1.0, v),
        2 => Point::new(-u, -v, 1.0),
        3 => Point::new(-1.0, -v, -u),
        4 => Point::new(v, -1.0, -u),
        5 => Point::new(v, u, -1.0),
        _ => panic!("invalid face {face}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latlng::LatLng;

    #[test]
    fn st_uv_roundtrip() {
        for i in 0..=1000 {
            let s = i as f64 / 1000.0;
            let u = st_to_uv(s);
            assert!((-1.0..=1.0).contains(&u), "u out of range: {u}");
            let back = uv_to_st(u);
            assert!((back - s).abs() < 1e-12, "s={s} back={back}");
        }
    }

    #[test]
    fn st_to_uv_endpoints() {
        assert!((st_to_uv(0.0) + 1.0).abs() < 1e-12);
        assert!(st_to_uv(0.5).abs() < 1e-12);
        assert!((st_to_uv(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn st_to_uv_is_monotonic() {
        let mut prev = st_to_uv(0.0);
        for i in 1..=1000 {
            let u = st_to_uv(i as f64 / 1000.0);
            assert!(u > prev);
            prev = u;
        }
    }

    #[test]
    fn face_centers_map_to_axes() {
        assert_eq!(face_of(&Point::new(1.0, 0.0, 0.0)), 0);
        assert_eq!(face_of(&Point::new(0.0, 1.0, 0.0)), 1);
        assert_eq!(face_of(&Point::new(0.0, 0.0, 1.0)), 2);
        assert_eq!(face_of(&Point::new(-1.0, 0.0, 0.0)), 3);
        assert_eq!(face_of(&Point::new(0.0, -1.0, 0.0)), 4);
        assert_eq!(face_of(&Point::new(0.0, 0.0, -1.0)), 5);
    }

    #[test]
    fn face_uv_roundtrip_many_points() {
        for lat in (-80..=80).step_by(7) {
            for lng in (-175..=175).step_by(11) {
                let p = LatLng::from_degrees(lat as f64, lng as f64).to_point();
                let (face, u, v) = xyz_to_face_uv(&p);
                assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&u));
                assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&v));
                let q = face_uv_to_xyz(face, u, v).normalized();
                assert!(p.angle(&q) < 1e-12, "roundtrip failed at {lat},{lng}");
            }
        }
    }

    #[test]
    fn face_center_roundtrip() {
        for face in 0..6u8 {
            let p = face_uv_to_xyz(face, 0.0, 0.0).normalized();
            let (f2, u, v) = xyz_to_face_uv(&p);
            assert_eq!(face, f2);
            assert!(u.abs() < 1e-12 && v.abs() < 1e-12);
        }
    }
}
