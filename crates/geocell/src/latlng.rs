//! Geodetic latitude/longitude coordinates and great-circle distance.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::distance::EARTH_RADIUS_M;
use crate::point::Point;

/// A point on the Earth's surface expressed as latitude/longitude in
/// radians.
///
/// Latitude is clamped to `[-π/2, π/2]` and longitude normalized to
/// `[-π, π]` on construction via [`LatLng::from_degrees`] /
/// [`LatLng::from_radians`], so every constructed value is valid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLng {
    lat_rad: f64,
    lng_rad: f64,
}

impl LatLng {
    /// Creates a `LatLng` from degrees, clamping latitude to ±90° and
    /// wrapping longitude into (−180°, 180°].
    pub fn from_degrees(lat_deg: f64, lng_deg: f64) -> Self {
        Self::from_radians(lat_deg.to_radians(), lng_deg.to_radians())
    }

    /// Creates a `LatLng` from radians, clamping/normalizing as in
    /// [`LatLng::from_degrees`].
    pub fn from_radians(lat_rad: f64, lng_rad: f64) -> Self {
        use std::f64::consts::PI;
        let lat = lat_rad.clamp(-PI / 2.0, PI / 2.0);
        let mut lng = lng_rad;
        if !(-PI..=PI).contains(&lng) {
            lng = lng.rem_euclid(2.0 * PI);
            if lng > PI {
                lng -= 2.0 * PI;
            }
        }
        Self {
            lat_rad: lat,
            lng_rad: lng,
        }
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat_rad
    }

    /// Longitude in radians.
    #[inline]
    pub fn lng_rad(&self) -> f64 {
        self.lng_rad
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_deg(&self) -> f64 {
        self.lat_rad.to_degrees()
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lng_deg(&self) -> f64 {
        self.lng_rad.to_degrees()
    }

    /// Converts to a unit vector on the sphere.
    pub fn to_point(self) -> Point {
        let (sin_lat, cos_lat) = self.lat_rad.sin_cos();
        let (sin_lng, cos_lng) = self.lng_rad.sin_cos();
        Point::new(cos_lat * cos_lng, cos_lat * sin_lng, sin_lat)
    }

    /// Great-circle (haversine) distance to `other` in metres.
    ///
    /// Numerically stable for both tiny and antipodal separations.
    pub fn distance_m(&self, other: &LatLng) -> f64 {
        let dlat = other.lat_rad - self.lat_rad;
        let dlng = other.lng_rad - self.lng_rad;
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat_rad.cos() * other.lat_rad.cos() * (dlng / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().clamp(0.0, 1.0).asin();
        EARTH_RADIUS_M * c
    }

    /// Returns the point obtained by moving `dist_m` metres from `self`
    /// along the initial bearing `bearing_rad` (0 = north, π/2 = east),
    /// following a great circle.
    pub fn offset(&self, dist_m: f64, bearing_rad: f64) -> LatLng {
        let ang = dist_m / EARTH_RADIUS_M;
        let (sin_lat1, cos_lat1) = self.lat_rad.sin_cos();
        let (sin_ang, cos_ang) = ang.sin_cos();
        let sin_lat2 = sin_lat1 * cos_ang + cos_lat1 * sin_ang * bearing_rad.cos();
        let lat2 = sin_lat2.clamp(-1.0, 1.0).asin();
        let y = bearing_rad.sin() * sin_ang * cos_lat1;
        let x = cos_ang - sin_lat1 * sin_lat2;
        let lng2 = self.lng_rad + y.atan2(x);
        LatLng::from_radians(lat2, lng2)
    }
}

impl fmt::Display for LatLng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat_deg(), self.lng_deg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn from_degrees_roundtrip() {
        let ll = LatLng::from_degrees(37.7749, -122.4194);
        assert!((ll.lat_deg() - 37.7749).abs() < EPS);
        assert!((ll.lng_deg() - (-122.4194)).abs() < EPS);
    }

    #[test]
    fn latitude_is_clamped() {
        let ll = LatLng::from_degrees(95.0, 0.0);
        assert!((ll.lat_deg() - 90.0).abs() < EPS);
        let ll = LatLng::from_degrees(-100.0, 0.0);
        assert!((ll.lat_deg() + 90.0).abs() < EPS);
    }

    #[test]
    fn longitude_wraps() {
        let ll = LatLng::from_degrees(0.0, 190.0);
        assert!((ll.lng_deg() + 170.0).abs() < 1e-6, "got {}", ll.lng_deg());
        let ll = LatLng::from_degrees(0.0, -190.0);
        assert!((ll.lng_deg() - 170.0).abs() < 1e-6);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let ll = LatLng::from_degrees(51.5, -0.12);
        assert!(ll.distance_m(&ll) < EPS);
    }

    #[test]
    fn distance_sf_to_la_plausible() {
        // SF to LA is roughly 559 km great-circle.
        let sf = LatLng::from_degrees(37.7749, -122.4194);
        let la = LatLng::from_degrees(34.0522, -118.2437);
        let d = sf.distance_m(&la);
        assert!((d - 559_000.0).abs() < 10_000.0, "distance {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = LatLng::from_degrees(10.0, 20.0);
        let b = LatLng::from_degrees(-33.0, 151.0);
        assert!((a.distance_m(&b) - b.distance_m(&a)).abs() < 1e-6);
    }

    #[test]
    fn quarter_meridian() {
        let equator = LatLng::from_degrees(0.0, 0.0);
        let pole = LatLng::from_degrees(90.0, 0.0);
        let d = equator.distance_m(&pole);
        let expected = EARTH_RADIUS_M * std::f64::consts::FRAC_PI_2;
        assert!((d - expected).abs() < 1.0);
    }

    #[test]
    fn antipodal_distance() {
        let a = LatLng::from_degrees(0.0, 0.0);
        let b = LatLng::from_degrees(0.0, 180.0);
        let d = a.distance_m(&b);
        let expected = EARTH_RADIUS_M * std::f64::consts::PI;
        assert!((d - expected).abs() < 1.0);
    }

    #[test]
    fn to_point_is_unit_length() {
        for &(lat, lng) in &[(0.0, 0.0), (45.0, 45.0), (-89.0, 179.0), (13.3, -77.7)] {
            let p = LatLng::from_degrees(lat, lng).to_point();
            assert!((p.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn offset_north_moves_latitude() {
        let start = LatLng::from_degrees(0.0, 0.0);
        let moved = start.offset(111_195.0, 0.0); // ~1 degree of latitude
        assert!((moved.lat_deg() - 1.0).abs() < 0.01, "{}", moved.lat_deg());
        assert!(moved.lng_deg().abs() < 1e-9);
    }

    #[test]
    fn offset_distance_consistency() {
        let start = LatLng::from_degrees(37.0, -122.0);
        for bearing_deg in [0.0, 45.0, 90.0, 180.0, 270.0] {
            let moved = start.offset(5_000.0, f64::to_radians(bearing_deg));
            let d = start.distance_m(&moved);
            assert!((d - 5_000.0).abs() < 1.0, "bearing {bearing_deg}: {d}");
        }
    }
}
