//! Compact 64-bit hierarchical cell identifiers.
//!
//! The id layout follows S2: the top 3 bits hold the cube face, the next
//! 60 bits hold a position on a space-filling curve over the face (two
//! bits per level, Morton order here), and a single sentinel `1` bit marks
//! the level. A level-`k` cell id has the sentinel at bit `2·(30−k)`, so
//! the level is recoverable from the least-significant set bit, and ids of
//! descendants of a cell form a contiguous range — enabling O(1)
//! `parent`, `contains`, and range queries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::face::{face_uv_to_xyz, st_to_uv, uv_to_st, xyz_to_face_uv};
use crate::latlng::LatLng;
use crate::point::Point;

/// The maximum (finest) subdivision level. Level-30 cells are roughly
/// 1 cm² at the equator, matching the paper's statement that the leaf
/// cells of the hierarchy cover ~1 cm².
pub const MAX_LEVEL: u8 = 30;

/// Number of cube faces.
pub const NUM_FACES: u8 = 6;

const POS_BITS: u32 = 2 * MAX_LEVEL as u32 + 1; // 61

/// A cell in the hierarchical decomposition of the sphere.
///
/// Construct with [`CellId::from_latlng`]; navigate with
/// [`CellId::parent`] / [`CellId::child`]; compare hierarchy with
/// [`CellId::contains`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(u64);

/// Spreads the low 32 bits of `x` so bit `i` moves to bit `2i`.
#[inline]
fn spread_bits(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread_bits`]: gathers even-position bits back together.
#[inline]
fn compact_bits(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

impl CellId {
    /// Builds a cell id from a face and discrete `(i, j)` coordinates
    /// (each in `[0, 2^30)`) at the given level. Coordinates are truncated
    /// to the level's resolution.
    ///
    /// # Panics
    /// Panics if `face >= 6`, `level > 30`, or `i`/`j` exceed 30 bits.
    pub fn from_face_ij(face: u8, i: u32, j: u32, level: u8) -> Self {
        assert!(face < NUM_FACES, "face {face} out of range");
        assert!(level <= MAX_LEVEL, "level {level} out of range");
        assert!(
            i < (1 << MAX_LEVEL) && j < (1 << MAX_LEVEL),
            "ij out of range"
        );
        let morton = (spread_bits(i as u64) << 1) | spread_bits(j as u64);
        // The position is the morton code shifted left by one (occupying
        // bits 1..=60), truncated to the level's precision, with a single
        // sentinel bit at position 2·(30 − level). The shift keeps the
        // sentinel from colliding with a kept morton bit.
        let shift = 2 * (MAX_LEVEL - level) as u32;
        let full = morton << 1;
        let pos = ((full >> (shift + 1)) << (shift + 1)) | (1u64 << shift);
        CellId(((face as u64) << POS_BITS) | pos)
    }

    /// The level-`level` cell containing the given point.
    ///
    /// # Panics
    /// Panics if `level > 30`.
    pub fn from_latlng(ll: LatLng, level: u8) -> Self {
        Self::from_point(&ll.to_point(), level)
    }

    /// The level-`level` cell containing the given unit vector.
    pub fn from_point(p: &Point, level: u8) -> Self {
        let (face, u, v) = xyz_to_face_uv(p);
        let s = uv_to_st(u);
        let t = uv_to_st(v);
        let max = (1u64 << MAX_LEVEL) as f64;
        let i = ((s * max) as i64).clamp(0, (1 << MAX_LEVEL) - 1) as u32;
        let j = ((t * max) as i64).clamp(0, (1 << MAX_LEVEL) - 1) as u32;
        Self::from_face_ij(face, i, j, level)
    }

    /// The raw 64-bit id.
    #[inline]
    pub fn to_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a cell id from its raw value.
    ///
    /// # Panics
    /// Panics if the value is not a valid cell id (bad face or missing
    /// sentinel bit).
    pub fn from_u64(raw: u64) -> Self {
        Self::try_from_u64(raw).unwrap_or_else(|| panic!("invalid cell id {raw:#x}"))
    }

    /// Fallible twin of [`CellId::from_u64`] for untrusted input (e.g.
    /// deserialization): `None` instead of a panic on invalid bits.
    pub fn try_from_u64(raw: u64) -> Option<Self> {
        let id = CellId(raw);
        id.is_valid().then_some(id)
    }

    /// Whether the raw bits form a structurally valid id.
    pub fn is_valid(self) -> bool {
        let face = (self.0 >> POS_BITS) as u8;
        face < NUM_FACES && self.0 & 1 == (self.lsb() & 1) && self.lsb() != 0 && {
            // Sentinel must sit on an even bit position.
            self.lsb().trailing_zeros().is_multiple_of(2) && self.lsb().trailing_zeros() <= 60
        }
    }

    #[inline]
    fn lsb(self) -> u64 {
        self.0 & self.0.wrapping_neg()
    }

    /// The cube face (0-5) this cell lies on.
    #[inline]
    pub fn face(self) -> u8 {
        (self.0 >> POS_BITS) as u8
    }

    /// The subdivision level (0 = face cell, 30 = leaf).
    #[inline]
    pub fn level(self) -> u8 {
        MAX_LEVEL - (self.lsb().trailing_zeros() / 2) as u8
    }

    /// The ancestor of this cell at `level`.
    ///
    /// # Panics
    /// Panics if `level` is greater than this cell's level.
    pub fn parent(self, level: u8) -> Self {
        assert!(
            level <= self.level(),
            "parent level {level} below cell level {}",
            self.level()
        );
        let shift = 2 * (MAX_LEVEL - level) as u32;
        let raw = self.0 & ((1u64 << POS_BITS) - 1);
        let pos = ((raw >> (shift + 1)) << (shift + 1)) | (1u64 << shift);
        CellId(pos | ((self.face() as u64) << POS_BITS))
    }

    /// The `k`-th (0-3, Morton order) child one level below.
    ///
    /// # Panics
    /// Panics if this is already a leaf cell or `k > 3`.
    pub fn child(self, k: u8) -> Self {
        assert!(k < 4, "child index {k} out of range");
        assert!(self.level() < MAX_LEVEL, "leaf cells have no children");
        let old_lsb = self.lsb();
        let new_lsb = old_lsb >> 2;
        CellId(self.0 - old_lsb + (k as u64) * (new_lsb << 1) + new_lsb)
    }

    /// Smallest leaf-level id contained in this cell.
    #[inline]
    pub fn range_min(self) -> u64 {
        self.0 - self.lsb() + 1
    }

    /// Largest leaf-level id contained in this cell.
    #[inline]
    pub fn range_max(self) -> u64 {
        self.0 + self.lsb() - 1
    }

    /// Whether `other` is equal to or a descendant of this cell.
    pub fn contains(self, other: CellId) -> bool {
        self.range_min() <= other.0 && other.0 <= self.range_max()
    }

    /// Discrete `(face, i, j)` coordinates of this cell's minimum corner,
    /// at leaf resolution.
    pub fn to_face_ij(self) -> (u8, u32, u32) {
        let pos = self.0 & ((1u64 << POS_BITS) - 1);
        let morton = (pos - self.lsb()) >> 1; // clear sentinel, undo shift
        let i = compact_bits(morton >> 1) as u32;
        let j = compact_bits(morton) as u32;
        (self.face(), i, j)
    }

    /// The center of this cell, as a latitude/longitude.
    pub fn center(self) -> LatLng {
        let (face, i, j) = self.to_face_ij();
        let half = (1u64 << (MAX_LEVEL - self.level())) as f64 / 2.0;
        let max = (1u64 << MAX_LEVEL) as f64;
        let s = (i as f64 + half) / max;
        let t = (j as f64 + half) / max;
        face_uv_to_xyz(face, st_to_uv(s), st_to_uv(t))
            .normalized()
            .to_latlng()
    }

    /// The four corner vertices of this cell (in `(s, t)` order: min/min,
    /// max/min, min/max, max/max).
    ///
    /// Cell edges are lines in `(u, v)` space, which lift to great-circle
    /// arcs on the sphere — so the cell is a convex spherical
    /// quadrilateral and the farthest point of the cell from any interior
    /// point is one of these vertices.
    pub fn vertices(self) -> [LatLng; 4] {
        let (face, i, j) = self.to_face_ij();
        let size = 1u64 << (MAX_LEVEL - self.level());
        let max = (1u64 << MAX_LEVEL) as f64;
        let s0 = i as f64 / max;
        let s1 = (i as u64 + size) as f64 / max;
        let t0 = j as f64 / max;
        let t1 = (j as u64 + size) as f64 / max;
        let corner = |s: f64, t: f64| {
            face_uv_to_xyz(face, st_to_uv(s), st_to_uv(t))
                .normalized()
                .to_latlng()
        };
        [
            corner(s0, t0),
            corner(s1, t0),
            corner(s0, t1),
            corner(s1, t1),
        ]
    }

    /// A short hex token for logging, analogous to S2 tokens.
    pub fn token(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CellId(f{} L{} {})",
            self.face(),
            self.level(),
            self.token()
        )
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> LatLng {
        LatLng::from_degrees(37.7749, -122.4194)
    }

    #[test]
    fn spread_compact_roundtrip() {
        for x in [0u64, 1, 2, 0xFFFF_FFFF, 0x1234_5678, 0x0F0F_F0F0] {
            assert_eq!(compact_bits(spread_bits(x)), x);
        }
    }

    #[test]
    fn level_is_encoded_correctly() {
        for level in 0..=MAX_LEVEL {
            let id = CellId::from_latlng(sf(), level);
            assert_eq!(id.level(), level, "level {level}");
            assert!(id.is_valid());
        }
    }

    #[test]
    fn parent_contains_child_point() {
        let leaf = CellId::from_latlng(sf(), 30);
        for level in (0..30).rev() {
            let p = leaf.parent(level);
            assert_eq!(p.level(), level);
            assert!(p.contains(leaf));
            // parent at a level equals from_latlng at that level
            assert_eq!(p, CellId::from_latlng(sf(), level));
        }
    }

    #[test]
    fn children_partition_parent() {
        let cell = CellId::from_latlng(sf(), 10);
        let mut range_covered = Vec::new();
        for k in 0..4 {
            let c = cell.child(k);
            assert_eq!(c.level(), 11);
            assert!(cell.contains(c));
            range_covered.push((c.range_min(), c.range_max()));
        }
        range_covered.sort_unstable();
        // Children ranges must tile the parent range exactly.
        assert_eq!(range_covered[0].0, cell.range_min());
        assert_eq!(range_covered[3].1, cell.range_max());
        for w in range_covered.windows(2) {
            assert_eq!(w[0].1 + 2, w[1].0); // adjacent leaf ids differ by 2
        }
    }

    #[test]
    fn sibling_cells_are_disjoint() {
        let cell = CellId::from_latlng(sf(), 8);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(!cell.child(a).contains(cell.child(b)));
                }
            }
        }
    }

    #[test]
    fn center_lies_within_cell() {
        for level in [2u8, 5, 10, 16, 22, 30] {
            let id = CellId::from_latlng(sf(), level);
            let re = CellId::from_latlng(id.center(), level);
            assert_eq!(id, re, "center re-lookup at level {level}");
        }
    }

    #[test]
    fn center_approximates_point_at_high_level() {
        let id = CellId::from_latlng(sf(), 30);
        let d = id.center().distance_m(&sf());
        assert!(d < 0.05, "leaf center {d} m from source point");
    }

    #[test]
    fn face_ij_roundtrip() {
        for level in [0u8, 3, 12, 30] {
            let id = CellId::from_latlng(sf(), level);
            let (f, i, j) = id.to_face_ij();
            assert_eq!(CellId::from_face_ij(f, i, j, level), id);
        }
    }

    #[test]
    fn distinct_points_distinct_leaves() {
        let a = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), 30);
        let b = CellId::from_latlng(LatLng::from_degrees(37.0001, -122.0), 30);
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_points_share_coarse_cell() {
        let a = CellId::from_latlng(LatLng::from_degrees(37.7749, -122.4194), 10);
        let b = CellId::from_latlng(LatLng::from_degrees(37.7750, -122.4195), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn all_faces_reachable() {
        let dirs = [
            (0.0, 0.0),
            (0.0, 90.0),
            (90.0, 0.0),
            (0.0, 180.0),
            (0.0, -90.0),
            (-90.0, 0.0),
        ];
        let mut faces: Vec<u8> = dirs
            .iter()
            .map(|&(lat, lng)| CellId::from_latlng(LatLng::from_degrees(lat, lng), 5).face())
            .collect();
        faces.sort_unstable();
        faces.dedup();
        assert_eq!(faces.len(), 6, "expected all six faces, got {faces:?}");
    }

    #[test]
    fn ordering_respects_containment_ranges() {
        let cell = CellId::from_latlng(sf(), 12);
        let inner = CellId::from_latlng(sf(), 20);
        assert!(cell.range_min() <= inner.to_u64());
        assert!(inner.to_u64() <= cell.range_max());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_face_panics() {
        let _ = CellId::from_face_ij(6, 0, 0, 5);
    }

    #[test]
    #[should_panic(expected = "parent level")]
    fn parent_above_level_panics() {
        let id = CellId::from_latlng(sf(), 5);
        let _ = id.parent(9);
    }

    #[test]
    fn from_u64_roundtrip() {
        let id = CellId::from_latlng(sf(), 17);
        assert_eq!(CellId::from_u64(id.to_u64()), id);
    }
}
