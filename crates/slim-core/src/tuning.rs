//! Spatial-level auto-tuning (paper §3.3) and Kneedle elbow detection.
//!
//! SLIM tunes the spatial grid level for a given temporal window without
//! labeled data: on a sample of entity pairs *within one dataset*, it
//! computes the average ratio of pair similarity to self-similarity at
//! increasing spatial detail. The ratio falls as detail increases and
//! flattens past the useful level; the best trade-off point (elbow) of
//! the curve, found with the Kneedle algorithm, is the chosen level.
//! Repeating for both datasets, the linkage uses the larger elbow level.

use crate::config::SlimConfig;
use crate::dataset::LocationDataset;
use crate::history::HistorySet;
use crate::similarity::SimilarityScorer;
use crate::stats::LinkageStats;
use crate::window::WindowScheme;

/// Kneedle elbow detection (Satopaa et al., 2011) for a curve sampled at
/// `xs` (ascending) with values `ys`. Handles the two shapes SLIM needs:
/// decreasing-convex curves (`decreasing = true`) and increasing-concave
/// curves (`decreasing = false`). Returns the index of the elbow, or
/// `None` for fewer than 3 points or a flat curve.
pub fn kneedle(xs: &[f64], ys: &[f64], decreasing: bool) -> Option<usize> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let (x0, x1) = (xs[0], xs[n - 1]);
    let ymin = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let ymax = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if x1 <= x0 || ymax <= ymin {
        return None;
    }
    // Normalize to the unit square; flip decreasing curves so both shapes
    // become increasing-concave, where the elbow maximizes y_n − x_n.
    let mut best: Option<(f64, usize)> = None;
    for i in 0..n {
        let xn = (xs[i] - x0) / (x1 - x0);
        let mut yn = (ys[i] - ymin) / (ymax - ymin);
        if decreasing {
            yn = 1.0 - yn;
        }
        let diff = yn - xn;
        if best.map(|(b, _)| diff > b).unwrap_or(true) {
            best = Some((diff, i));
        }
    }
    best.map(|(_, i)| i)
}

/// The distinguishability measure of §3.3 at one spatial level: the
/// average over sampled pairs `(u, v)` of `S(u, v) / S(u, u)`. Lower
/// means entities are easier to tell apart.
pub fn pair_self_similarity_ratio(
    dataset: &LocationDataset,
    cfg: &SlimConfig,
    level: u8,
    sample: usize,
) -> f64 {
    let Some((lo, hi)) = dataset.time_span() else {
        return 0.0;
    };
    let scheme = WindowScheme::new(lo, cfg.window_width_secs);
    let domain = scheme.num_windows(hi);
    let hs = HistorySet::build(dataset, scheme, level, domain);
    let mut level_cfg = *cfg;
    level_cfg.spatial_level = level;
    let scorer = SimilarityScorer::new(&level_cfg, &hs, &hs);

    // Deterministic sample: the first `sample` entities in sorted order,
    // crossed with every other entity.
    let entities = hs.entities_sorted();
    let probes = &entities[..sample.min(entities.len())];
    let mut stats = LinkageStats::default();
    let mut total = 0.0;
    let mut count = 0u64;
    for &u in probes {
        let self_sim = scorer.score(u, u, &mut stats).unwrap_or(0.0);
        for &v in &entities {
            if v == u {
                continue;
            }
            // A non-positive self-similarity means the level is too coarse
            // to distinguish even an entity from itself (every bin shared
            // by everyone has idf 0): report full indistinguishability.
            let ratio = if self_sim <= 0.0 {
                1.0
            } else {
                (scorer.score(u, v, &mut stats).unwrap_or(0.0) / self_sim).clamp(0.0, 1.0)
            };
            total += ratio;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Auto-tunes the spatial level for one dataset: evaluates the ratio
/// curve over `levels` (ascending) and returns the elbow level. Falls
/// back to the middle candidate when no elbow is detectable.
pub fn auto_tune_spatial_level(
    dataset: &LocationDataset,
    cfg: &SlimConfig,
    levels: &[u8],
    sample: usize,
) -> u8 {
    assert!(!levels.is_empty(), "need at least one candidate level");
    let xs: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
    let ys: Vec<f64> = levels
        .iter()
        .map(|&l| pair_self_similarity_ratio(dataset, cfg, l, sample))
        .collect();
    match kneedle(&xs, &ys, true) {
        Some(i) => levels[i],
        None => levels[levels.len() / 2],
    }
}

/// Tunes both datasets and returns the larger elbow level, as the paper
/// prescribes ("we use the higher elbow point as the spatial detail
/// level of the linkage").
pub fn auto_tune_linkage_level(
    left: &LocationDataset,
    right: &LocationDataset,
    cfg: &SlimConfig,
    levels: &[u8],
    sample: usize,
) -> u8 {
    auto_tune_spatial_level(left, cfg, levels, sample)
        .max(auto_tune_spatial_level(right, cfg, levels, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EntityId, Record, Timestamp};
    use geocell::LatLng;

    #[test]
    fn kneedle_finds_obvious_elbow() {
        // Sharp decreasing hockey stick with elbow at x = 2.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [100.0, 50.0, 10.0, 8.0, 7.0, 6.5, 6.0];
        let i = kneedle(&xs, &ys, true).unwrap();
        assert!((1..=3).contains(&i), "elbow index {i}");
    }

    #[test]
    fn kneedle_increasing_concave() {
        // y = sqrt-like saturation; knee early.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x + 1.0).ln()).collect();
        let i = kneedle(&xs, &ys, false).unwrap();
        assert!(i < 5, "knee index {i}");
    }

    #[test]
    fn kneedle_degenerate_inputs() {
        assert!(kneedle(&[0.0, 1.0], &[1.0, 0.0], true).is_none());
        assert!(kneedle(&[0.0, 1.0, 2.0], &[3.0, 3.0, 3.0], true).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kneedle_length_mismatch_panics() {
        let _ = kneedle(&[0.0, 1.0, 2.0], &[1.0], true);
    }

    /// Entities moving in distinct neighbourhoods: finer levels must make
    /// them more distinguishable (lower ratio), flattening eventually.
    fn synthetic_dataset() -> LocationDataset {
        let mut records = Vec::new();
        for e in 0..8u64 {
            // Each entity orbits its own anchor ~5 km from the others.
            let anchor = LatLng::from_degrees(37.0 + 0.05 * e as f64, -122.0);
            for k in 0..40i64 {
                let pos = anchor.offset(500.0 * ((k % 5) as f64), (k as f64) * 0.7);
                records.push(Record::new(EntityId(e), pos, Timestamp(k * 900)));
            }
        }
        LocationDataset::from_records(records)
    }

    #[test]
    fn ratio_decreases_with_spatial_detail() {
        let ds = synthetic_dataset();
        let cfg = SlimConfig::default();
        let coarse = pair_self_similarity_ratio(&ds, &cfg, 6, 4);
        let fine = pair_self_similarity_ratio(&ds, &cfg, 14, 4);
        assert!(
            fine < coarse,
            "expected ratio to fall with detail: coarse {coarse} fine {fine}"
        );
    }

    #[test]
    fn auto_tune_returns_candidate_level() {
        let ds = synthetic_dataset();
        let cfg = SlimConfig::default();
        let levels = [6u8, 8, 10, 12, 14, 16];
        let chosen = auto_tune_spatial_level(&ds, &cfg, &levels, 4);
        assert!(levels.contains(&chosen));
        // The elbow should not be the coarsest level for separable data.
        assert!(chosen > 6, "chosen level {chosen}");
    }

    #[test]
    fn linkage_level_takes_max_of_datasets() {
        let ds = synthetic_dataset();
        let cfg = SlimConfig::default();
        let levels = [6u8, 8, 10, 12];
        let l = auto_tune_linkage_level(&ds, &ds, &cfg, &levels, 3);
        let single = auto_tune_spatial_level(&ds, &cfg, &levels, 3);
        assert_eq!(l, single, "identical datasets must agree");
    }
}
