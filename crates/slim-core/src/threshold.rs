//! Automated stop-threshold selection (paper §3.2).
//!
//! After the full bipartite matching, SLIM prunes the matched edges below
//! a score threshold chosen *without ground truth*: a two-component GMM is
//! fitted over the matched edge weights; treating the higher-mean
//! component as true positives yields expected precision/recall/F1 as
//! functions of the threshold, and the threshold maximizing expected F1
//! is selected. Otsu and 2-means alternates are provided (the paper
//! reports they behave similarly).

use serde::{Deserialize, Serialize};

use crate::config::ThresholdMethod;
use crate::gmm::Gmm2;

/// Result of a stop-threshold selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopThreshold {
    /// The selected score threshold; links with scores strictly below it
    /// are dropped.
    pub threshold: f64,
    /// Expected precision at the threshold (GMM method only, else NaN).
    pub expected_precision: f64,
    /// Expected recall at the threshold (GMM method only, else NaN).
    pub expected_recall: f64,
    /// Expected F1 at the threshold (GMM method only, else NaN).
    pub expected_f1: f64,
}

/// Number of candidate thresholds in the grid search.
const GRID: usize = 512;

/// Selects the stop threshold for the given matched-edge scores. Returns
/// `None` when the method cannot produce a threshold (too few scores or a
/// degenerate distribution) — callers then keep every link, which matches
/// the paper's behaviour of thresholding being a *refinement*.
pub fn select_threshold(scores: &[f64], method: ThresholdMethod) -> Option<StopThreshold> {
    match method {
        ThresholdMethod::None => None,
        ThresholdMethod::GmmExpectedF1 => gmm_expected_f1(scores),
        ThresholdMethod::Otsu => otsu(scores).map(plain),
        ThresholdMethod::TwoMeans => two_means(scores).map(plain),
    }
}

fn plain(threshold: f64) -> StopThreshold {
    StopThreshold {
        threshold,
        expected_precision: f64::NAN,
        expected_recall: f64::NAN,
        expected_f1: f64::NAN,
    }
}

/// Expected precision/recall/F1 under a fitted GMM, at threshold `s`
/// (paper §3.2): `R(s) = c₂(1 − F₂(s))`,
/// `P(s) = R(s) / (R(s) + c₁(1 − F₁(s)))`.
pub fn expected_metrics(gmm: &Gmm2, s: f64) -> (f64, f64, f64) {
    let recall_mass = gmm.high.weight * (1.0 - gmm.high.cdf(s));
    let fp_mass = gmm.low.weight * (1.0 - gmm.low.cdf(s));
    // Normalize recall by the total true-positive mass so R(−∞) = 1.
    let recall = if gmm.high.weight > 0.0 {
        recall_mass / gmm.high.weight
    } else {
        0.0
    };
    let precision = if recall_mass + fp_mass > 0.0 {
        recall_mass / (recall_mass + fp_mass)
    } else {
        1.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

fn gmm_expected_f1(scores: &[f64]) -> Option<StopThreshold> {
    let gmm = Gmm2::fit(scores)?;
    let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    best_expected_f1(&gmm, lo, hi)
}

/// Grid-searches `[lo, hi]` for the threshold maximizing expected F1
/// under a fitted mixture — the selection step shared by the batch path
/// and the warm-started [`ThresholdState`].
fn best_expected_f1(gmm: &Gmm2, lo: f64, hi: f64) -> Option<StopThreshold> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return None;
    }
    let mut best = None::<StopThreshold>;
    for k in 0..=GRID {
        let s = lo + (hi - lo) * k as f64 / GRID as f64;
        let (p, r, f1) = expected_metrics(gmm, s);
        if best.map(|b| f1 > b.expected_f1).unwrap_or(true) {
            best = Some(StopThreshold {
                threshold: s,
                expected_precision: p,
                expected_recall: r,
                expected_f1: f1,
            });
        }
    }
    best
}

/// Result of one [`ThresholdState::select`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmSelection {
    /// The selected threshold (`None` exactly when the stateless
    /// [`select_threshold`] would return `None` on the same weights).
    pub threshold: Option<StopThreshold>,
    /// EM iterations spent on the warm-started path (0 when the cold
    /// fit ran — no previous mixture, warm non-convergence, or a
    /// non-GMM method).
    pub warm_iters: u32,
}

/// Stop-threshold selection maintained **under weight deltas** — the
/// streaming engine's form. The caller owns a matching that changes by
/// a bounded region each tick; it feeds the departed and arrived
/// matched weights through [`ThresholdState::remove`] /
/// [`ThresholdState::insert`], and [`ThresholdState::select`] refits
/// from the maintained multiset: a warm-started EM seeded from the
/// previous tick's converged mixture (usually a couple of iterations)
/// with an automatic fall back to the cold [`Gmm2::fit`] whenever the
/// warm fit fails to converge — so the selected threshold is always a
/// converged fit, and a pipeline that discards this state and refits
/// cold (batch finalization) sees no contract change.
///
/// The multiset is kept as sorted `(weight, count)` sufficient
/// statistics: inserts and removals are `O(log n)`, the EM pass is
/// `O(distinct weights)` per iteration, and the degenerate-input
/// checks (`< 2` distinct values, zero range) are `O(1)` reads of the
/// map ends.
#[derive(Debug, Clone, Default)]
pub struct ThresholdState {
    /// Total-order bit key of the weight → (weight, multiplicity).
    weights: std::collections::BTreeMap<u64, (f64, u64)>,
    /// Σ multiplicities.
    n: u64,
    /// The last converged mixture — the warm seed.
    prev_gmm: Option<Gmm2>,
}

/// Monotone `f64 → u64` key: preserves numeric order for all finite
/// values (the standard sign-flip total-order trick), so a `BTreeMap`
/// over keys iterates weights ascending.
fn weight_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl ThresholdState {
    /// An empty state (no weights, no previous mixture).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maintained weights (with multiplicity).
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds one matched weight.
    pub fn insert(&mut self, w: f64) {
        debug_assert!(w.is_finite(), "matched weights must be finite: {w}");
        self.weights.entry(weight_key(w)).or_insert((w, 0)).1 += 1;
        self.n += 1;
    }

    /// Removes one previously inserted matched weight. Removing a
    /// weight that is not present is a caller bug; the call is a
    /// debug-checked no-op in release builds.
    pub fn remove(&mut self, w: f64) {
        let key = weight_key(w);
        match self.weights.get_mut(&key) {
            Some((_, c)) if *c > 1 => {
                *c -= 1;
                self.n -= 1;
            }
            Some(_) => {
                self.weights.remove(&key);
                self.n -= 1;
            }
            None => debug_assert!(false, "removed weight {w} was never inserted"),
        }
    }

    /// Selects the stop threshold over the maintained weights.
    ///
    /// For [`ThresholdMethod::GmmExpectedF1`] with a previous converged
    /// mixture available, the fit is warm-started
    /// ([`Gmm2::fit_warm`]); on warm non-convergence — or on the first
    /// call — the cold [`Gmm2::fit`] runs, so the outcome is always a
    /// converged fit over exactly the maintained weights. Other methods
    /// delegate to the stateless [`select_threshold`].
    pub fn select(&mut self, method: ThresholdMethod) -> WarmSelection {
        if !matches!(method, ThresholdMethod::GmmExpectedF1) {
            let values = self.values();
            return WarmSelection {
                threshold: select_threshold(&values, method),
                warm_iters: 0,
            };
        }
        // O(1) degeneracy gate off the sorted map ends, mirroring the
        // checks inside `Gmm2::fit`.
        let (lo, hi) = match (self.weights.values().next(), self.weights.values().last()) {
            (Some(&(lo, _)), Some(&(hi, _))) if self.weights.len() >= 2 && hi > lo => (lo, hi),
            _ => {
                self.prev_gmm = None;
                return WarmSelection {
                    threshold: None,
                    warm_iters: 0,
                };
            }
        };
        if let Some(prev) = &self.prev_gmm {
            let points: Vec<(f64, u64)> = self.weights.values().copied().collect();
            if let Some(gmm) = Gmm2::fit_warm(&points, prev) {
                let warm_iters = gmm.iterations;
                let threshold = best_expected_f1(&gmm, lo, hi);
                self.prev_gmm = Some(gmm);
                return WarmSelection {
                    threshold,
                    warm_iters,
                };
            }
        }
        // Cold path: bit-identical to the stateless selection over the
        // same weights. A cold fit that exhausted the iteration budget
        // may not have converged — don't seed the next tick from it, or
        // every tick would pay the warm cap *and* the cold cap.
        let values = self.values();
        let gmm = Gmm2::fit(&values);
        self.prev_gmm = gmm.filter(|g| g.iterations < Gmm2::MAX_ITERS);
        WarmSelection {
            threshold: gmm.as_ref().and_then(|g| best_expected_f1(g, lo, hi)),
            warm_iters: 0,
        }
    }

    /// The last converged mixture (the warm seed for the next
    /// [`ThresholdState::select`]) — exported for checkpointing so a
    /// recovered engine's next tick warm-starts exactly like the
    /// unbroken run's would.
    pub fn warm_seed(&self) -> Option<Gmm2> {
        self.prev_gmm
    }

    /// Restores the warm seed from a checkpoint (the inverse of
    /// [`ThresholdState::warm_seed`]). The weight multiset itself is
    /// rebuilt by re-inserting the recovered matching's weights.
    pub fn set_warm_seed(&mut self, seed: Option<Gmm2>) {
        self.prev_gmm = seed;
    }

    /// The maintained weights expanded to a sorted `Vec`.
    fn values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n as usize);
        for &(w, c) in self.weights.values() {
            out.extend(std::iter::repeat_n(w, c as usize));
        }
        out
    }
}

/// Otsu's method: the threshold maximizing between-class variance on a
/// 256-bucket histogram of the scores.
pub fn otsu(scores: &[f64]) -> Option<f64> {
    const BINS: usize = 256;
    if scores.len() < 2 {
        return None;
    }
    let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return None;
    }
    let width = (hi - lo) / BINS as f64;
    let mut hist = [0u64; BINS];
    for &s in scores {
        let b = (((s - lo) / width) as usize).min(BINS - 1);
        hist[b] += 1;
    }
    let total = scores.len() as f64;
    let total_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum::<f64>()
        / total;
    let (mut w0, mut sum0) = (0.0f64, 0.0f64);
    let mut best = (0.0f64, 0usize);
    for (i, &c) in hist.iter().enumerate().take(BINS - 1) {
        w0 += c as f64;
        sum0 += i as f64 * c as f64;
        if w0 == 0.0 || w0 == total {
            continue;
        }
        let w1 = total - w0;
        let m0 = sum0 / w0;
        let m1 = (total_mean * total - sum0) / w1;
        let between = w0 * w1 * (m0 - m1).powi(2);
        if between > best.0 {
            best = (between, i);
        }
    }
    if best.0 == 0.0 {
        return None;
    }
    Some(lo + (best.1 as f64 + 1.0) * width)
}

/// 1-D 2-means: Lloyd's algorithm from extremal seeds; the threshold is
/// the midpoint of the final centroids.
pub fn two_means(scores: &[f64]) -> Option<f64> {
    if scores.len() < 2 {
        return None;
    }
    let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return None;
    }
    let (mut c0, mut c1) = (lo, hi);
    for _ in 0..100 {
        let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0u64, 0.0, 0u64);
        for &x in scores {
            if (x - c0).abs() <= (x - c1).abs() {
                s0 += x;
                n0 += 1;
            } else {
                s1 += x;
                n1 += 1;
            }
        }
        if n0 == 0 || n1 == 0 {
            break;
        }
        let (new0, new1) = (s0 / n0 as f64, s1 / n1 as f64);
        if (new0 - c0).abs() < 1e-12 && (new1 - c1).abs() < 1e-12 {
            c0 = new0;
            c1 = new1;
            break;
        }
        c0 = new0;
        c1 = new1;
    }
    Some((c0 + c1) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn bimodal(seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..400).map(|_| normal(&mut rng, 100.0, 30.0)).collect();
        v.extend((0..400).map(|_| normal(&mut rng, 1000.0, 150.0)));
        v
    }

    #[test]
    fn gmm_threshold_separates_modes() {
        let scores = bimodal(1);
        let t = select_threshold(&scores, ThresholdMethod::GmmExpectedF1).unwrap();
        assert!(
            t.threshold > 200.0 && t.threshold < 900.0,
            "threshold {}",
            t.threshold
        );
        assert!(t.expected_f1 > 0.95);
        assert!(t.expected_precision > 0.9);
        assert!(t.expected_recall > 0.9);
    }

    #[test]
    fn otsu_threshold_separates_modes() {
        let scores = bimodal(2);
        let t = otsu(&scores).unwrap();
        assert!(t > 200.0 && t < 900.0, "otsu threshold {t}");
    }

    #[test]
    fn two_means_threshold_separates_modes() {
        let scores = bimodal(3);
        let t = two_means(&scores).unwrap();
        assert!(t > 200.0 && t < 900.0, "2-means threshold {t}");
    }

    #[test]
    fn methods_roughly_agree() {
        let scores = bimodal(4);
        let g = select_threshold(&scores, ThresholdMethod::GmmExpectedF1)
            .unwrap()
            .threshold;
        let o = otsu(&scores).unwrap();
        let k = two_means(&scores).unwrap();
        // The paper observes similar behaviour across the three; allow a
        // generous band between the modes.
        for t in [g, o, k] {
            assert!(t > 150.0 && t < 950.0, "method disagreement: {g} {o} {k}");
        }
    }

    #[test]
    fn none_method_returns_none() {
        assert!(select_threshold(&bimodal(5), ThresholdMethod::None).is_none());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        for m in [
            ThresholdMethod::GmmExpectedF1,
            ThresholdMethod::Otsu,
            ThresholdMethod::TwoMeans,
        ] {
            assert!(select_threshold(&[], m).is_none());
            assert!(select_threshold(&[5.0], m).is_none());
            assert!(select_threshold(&[2.0, 2.0, 2.0], m).is_none());
        }
    }

    #[test]
    fn warm_state_first_selection_matches_stateless() {
        let scores = bimodal(8);
        let mut state = ThresholdState::new();
        for &w in &scores {
            state.insert(w);
        }
        let warm = state.select(ThresholdMethod::GmmExpectedF1);
        let stateless = select_threshold(&scores, ThresholdMethod::GmmExpectedF1).unwrap();
        assert_eq!(warm.warm_iters, 0, "first fit must be cold");
        assert_eq!(warm.threshold.unwrap(), stateless);
    }

    #[test]
    fn warm_state_reselect_is_warm_and_agrees() {
        let scores = bimodal(9);
        let mut state = ThresholdState::new();
        for &w in &scores {
            state.insert(w);
        }
        let first = state.select(ThresholdMethod::GmmExpectedF1);
        // A localized matching change: a few weights leave, a few enter.
        for &w in &scores[..3] {
            state.remove(w);
        }
        state.insert(550.0);
        state.insert(1020.0);
        let second = state.select(ThresholdMethod::GmmExpectedF1);
        assert!(second.warm_iters > 0, "second fit must be warm-started");
        let t1 = first.threshold.unwrap().threshold;
        let t2 = second.threshold.unwrap().threshold;
        assert!(
            (t1 - t2).abs() < 100.0,
            "warm threshold drifted: {t1} vs {t2}"
        );
        assert_eq!(state.len(), scores.len() - 1);
    }

    #[test]
    fn warm_state_handles_duplicate_weights() {
        let mut state = ThresholdState::new();
        for _ in 0..50 {
            state.insert(1.0);
            state.insert(10.0);
        }
        state.insert(1.5);
        let sel = state.select(ThresholdMethod::GmmExpectedF1);
        let t = sel.threshold.unwrap().threshold;
        assert!(t > 1.5 && t <= 10.0, "threshold {t}");
        // Remove one copy of a duplicated weight: count drops, value stays.
        state.remove(1.0);
        assert_eq!(state.len(), 100);
        let again = state.select(ThresholdMethod::GmmExpectedF1);
        assert!(again.threshold.is_some());
    }

    #[test]
    fn warm_state_degenerate_and_non_gmm_paths() {
        let mut state = ThresholdState::new();
        assert!(state.is_empty());
        state.insert(2.0);
        state.insert(2.0);
        // One distinct value: degenerate, like the stateless path.
        let sel = state.select(ThresholdMethod::GmmExpectedF1);
        assert!(sel.threshold.is_none());
        // Non-GMM methods delegate to the stateless selection.
        let scores = bimodal(10);
        for &w in &scores {
            state.insert(w);
        }
        state.remove(2.0);
        state.remove(2.0);
        let o = state.select(ThresholdMethod::Otsu);
        assert_eq!(o.warm_iters, 0);
        assert_eq!(
            o.threshold.map(|t| t.threshold),
            otsu(&{
                let mut s = scores.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s
            })
        );
        assert!(state.select(ThresholdMethod::None).threshold.is_none());
    }

    #[test]
    fn expected_metrics_limits() {
        let gmm = Gmm2::fit(&bimodal(6)).unwrap();
        // Below all data: recall 1.
        let (_, r, _) = expected_metrics(&gmm, -1e9);
        assert!((r - 1.0).abs() < 1e-9);
        // Above all data: recall 0, precision defined as 1.
        let (p, r, f1) = expected_metrics(&gmm, 1e9);
        assert_eq!(r, 0.0);
        assert!(p >= 0.0 && f1 == 0.0);
        // Precision increases with s in a bimodal setting.
        let (p_low, ..) = expected_metrics(&gmm, 150.0);
        let (p_mid, ..) = expected_metrics(&gmm, 500.0);
        assert!(p_mid >= p_low);
    }
}
