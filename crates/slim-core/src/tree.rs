//! Hierarchical temporal aggregation tree.
//!
//! The mobility-history representation (paper §2.3, Fig. 1) organizes the
//! temporal windows as a binary tree: leaves hold the set of spatial cell
//! ids visited in one window, and every non-leaf node keeps the occurrence
//! counts of the cell ids in its subtree. The non-leaf counts exist to
//! answer *dominating grid cell* queries over arbitrary window ranges in
//! `O(log n)` node merges (paper §4), which is what the LSH signature
//! construction uses.
//!
//! The tree is stored sparsely: only nodes whose subtree contains at least
//! one record are materialized.

use std::collections::HashMap;

use geocell::CellId;

use crate::window::WindowIdx;

/// Sorted `(cell, count)` vector — the aggregate stored at each node.
pub type CellCounts = Vec<(CellId, u32)>;

/// Subtracts `src` from `dst` (both sorted by cell id), dropping cells
/// whose count reaches zero. Counts in `dst` must cover `src`; this is
/// the inverse of [`merge_counts`] used by incremental window eviction.
///
/// # Panics
/// Panics (debug builds) if `src` contains a cell or count absent from
/// `dst`.
pub fn subtract_counts(dst: &mut CellCounts, src: &[(CellId, u32)]) {
    if src.is_empty() {
        return;
    }
    let mut j = 0;
    dst.retain_mut(|(cell, count)| {
        while j < src.len() && src[j].0 < *cell {
            debug_assert!(false, "subtracting cell absent from aggregate");
            j += 1;
        }
        if j < src.len() && src[j].0 == *cell {
            debug_assert!(src[j].1 <= *count, "subtracting more than present");
            *count = count.saturating_sub(src[j].1);
            j += 1;
        }
        *count > 0
    });
}

/// Merges `src` into `dst`, summing counts; both must be sorted by cell id
/// and `dst` remains sorted.
pub fn merge_counts(dst: &mut CellCounts, src: &[(CellId, u32)]) {
    if src.is_empty() {
        return;
    }
    if dst.is_empty() {
        dst.extend_from_slice(src);
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < src.len() {
        match dst[i].0.cmp(&src[j].0) {
            std::cmp::Ordering::Less => {
                merged.push(dst[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(src[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push((dst[i].0, dst[i].1 + src[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&src[j..]);
    *dst = merged;
}

/// A sparse segment tree over window indices `[0, domain)`, aggregating
/// per-window cell counts at every internal node.
#[derive(Debug, Clone)]
pub struct TemporalTree {
    /// Power-of-two domain size.
    size: u32,
    /// 1-based implicit node index → aggregated counts. Only non-empty
    /// nodes are stored.
    nodes: HashMap<u64, CellCounts>,
}

impl TemporalTree {
    /// Builds the tree from per-window leaf counts. `domain` is the number
    /// of windows covered (leaves with indices `>= domain` are rejected).
    ///
    /// # Panics
    /// Panics if a leaf index is outside the domain.
    pub fn build(domain: u32, leaves: impl Iterator<Item = (WindowIdx, CellCounts)>) -> Self {
        let size = domain.max(1).next_power_of_two();
        let mut nodes: HashMap<u64, CellCounts> = HashMap::new();
        for (w, counts) in leaves {
            assert!(w < domain, "leaf window {w} outside domain {domain}");
            // Walk from the leaf node up to the root, merging counts.
            let mut node = size as u64 + w as u64;
            while node >= 1 {
                merge_counts(nodes.entry(node).or_default(), &counts);
                if node == 1 {
                    break;
                }
                node /= 2;
            }
        }
        Self { size, nodes }
    }

    /// An empty tree covering `domain` windows, ready for incremental
    /// [`TemporalTree::insert`] calls.
    pub fn new(domain: u32) -> Self {
        Self {
            size: domain.max(1).next_power_of_two(),
            nodes: HashMap::new(),
        }
    }

    /// Adds `counts` to the leaf of window `w`, updating every ancestor
    /// aggregate in `O(log n)` merges. The domain grows automatically
    /// (by rebuilding from the stored leaves — rare, amortized `O(1)`
    /// per insert) when `w` falls outside it.
    pub fn insert(&mut self, w: WindowIdx, counts: &[(CellId, u32)]) {
        if counts.is_empty() {
            return;
        }
        if w >= self.size {
            self.grow(w + 1);
        }
        let mut node = self.size as u64 + w as u64;
        loop {
            merge_counts(self.nodes.entry(node).or_default(), counts);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    /// Removes the whole leaf of window `w`, subtracting its counts from
    /// every ancestor. No-op if the window holds no records.
    pub fn remove_window(&mut self, w: WindowIdx) {
        if w >= self.size {
            return;
        }
        let leaf = self.size as u64 + w as u64;
        let Some(counts) = self.nodes.remove(&leaf) else {
            return;
        };
        let mut node = leaf / 2;
        loop {
            if let Some(agg) = self.nodes.get_mut(&node) {
                subtract_counts(agg, &counts);
                if agg.is_empty() {
                    self.nodes.remove(&node);
                }
            }
            if node <= 1 {
                break;
            }
            node /= 2;
        }
    }

    /// Doubles the domain until it covers `min_domain`, preserving all
    /// leaves. Internal aggregates are rebuilt because leaf node indices
    /// shift with the tree size.
    fn grow(&mut self, min_domain: u32) {
        let leaves: Vec<(WindowIdx, CellCounts)> = self
            .nodes
            .iter()
            .filter(|&(&n, _)| n >= self.size as u64)
            .map(|(&n, c)| ((n - self.size as u64) as WindowIdx, c.clone()))
            .collect();
        *self = Self::build(min_domain.max(1).next_power_of_two(), leaves.into_iter());
    }

    /// Aggregated counts over the half-open window range `[lo, hi)`.
    pub fn query(&self, lo: WindowIdx, hi: WindowIdx) -> CellCounts {
        let mut out = CellCounts::new();
        if lo >= hi {
            return out;
        }
        self.query_rec(1, 0, self.size, lo, hi.min(self.size), &mut out);
        out
    }

    fn query_rec(
        &self,
        node: u64,
        node_lo: u32,
        node_hi: u32,
        lo: u32,
        hi: u32,
        out: &mut CellCounts,
    ) {
        if lo >= node_hi || hi <= node_lo {
            return;
        }
        let Some(counts) = self.nodes.get(&node) else {
            return; // empty subtree
        };
        if lo <= node_lo && node_hi <= hi {
            merge_counts(out, counts);
            return;
        }
        let mid = (node_lo + node_hi) / 2;
        self.query_rec(node * 2, node_lo, mid, lo, hi, out);
        self.query_rec(node * 2 + 1, mid, node_hi, lo, hi, out);
    }

    /// The *dominating grid cell* over `[lo, hi)` at spatial level
    /// `level`: the cell (coarsened to `level`) with the highest record
    /// count, ties broken towards the smallest cell id. Returns `None`
    /// when the range holds no records.
    ///
    /// `level` must be at or above (coarser than) the level the counts
    /// were recorded at; finer levels cannot be recovered from aggregates.
    pub fn dominating_cell(&self, lo: WindowIdx, hi: WindowIdx, level: u8) -> Option<CellId> {
        let counts = self.query(lo, hi);
        dominating_of(&counts, level)
    }

    /// Number of materialized tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Picks the dominating cell of an aggregate, coarsened to `level`.
pub fn dominating_of(counts: &[(CellId, u32)], level: u8) -> Option<CellId> {
    let mut agg: HashMap<CellId, u32> = HashMap::new();
    for &(cell, count) in counts {
        let key = if cell.level() > level {
            cell.parent(level)
        } else {
            cell
        };
        *agg.entry(key).or_insert(0) += count;
    }
    agg.into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(cell, _)| cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn cell(lng: f64, level: u8) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(10.0, lng), level)
    }

    fn counts(v: &[(CellId, u32)]) -> CellCounts {
        let mut c = v.to_vec();
        c.sort_by_key(|&(id, _)| id);
        c
    }

    #[test]
    fn merge_counts_sums_and_sorts() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let c = cell(2.0, 12);
        let mut dst = counts(&[(a, 1), (c, 2)]);
        merge_counts(&mut dst, &counts(&[(a, 3), (b, 5)]));
        let expect = counts(&[(a, 4), (b, 5), (c, 2)]);
        assert_eq!(dst, expect);
    }

    #[test]
    fn merge_into_empty() {
        let a = cell(0.0, 12);
        let mut dst = CellCounts::new();
        merge_counts(&mut dst, &[(a, 7)]);
        assert_eq!(dst, vec![(a, 7)]);
    }

    #[test]
    fn query_full_range_equals_total() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let tree = TemporalTree::build(
            8,
            vec![
                (0, counts(&[(a, 2)])),
                (3, counts(&[(a, 1), (b, 4)])),
                (7, counts(&[(b, 1)])),
            ]
            .into_iter(),
        );
        let total = tree.query(0, 8);
        assert_eq!(total, counts(&[(a, 3), (b, 5)]));
    }

    #[test]
    fn query_partial_ranges() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let tree = TemporalTree::build(
            10,
            vec![(0, counts(&[(a, 2)])), (5, counts(&[(b, 3)]))].into_iter(),
        );
        assert_eq!(tree.query(0, 5), counts(&[(a, 2)]));
        assert_eq!(tree.query(5, 10), counts(&[(b, 3)]));
        assert_eq!(tree.query(1, 5), CellCounts::new());
        assert_eq!(tree.query(3, 3), CellCounts::new());
    }

    #[test]
    fn query_beyond_domain_is_clamped() {
        let a = cell(0.0, 12);
        let tree = TemporalTree::build(3, vec![(2, counts(&[(a, 1)]))].into_iter());
        assert_eq!(tree.query(0, 100), counts(&[(a, 1)]));
    }

    #[test]
    fn dominating_cell_picks_max_count() {
        let a = cell(0.0, 12);
        let b = cell(20.0, 12);
        let tree = TemporalTree::build(
            4,
            vec![
                (0, counts(&[(a, 3), (b, 1)])),
                (1, counts(&[(b, 1)])),
                (2, counts(&[(b, 2)])),
            ]
            .into_iter(),
        );
        // Over the full range: b has 4, a has 3.
        assert_eq!(tree.dominating_cell(0, 4, 12), Some(b));
        // Over just window 0: a dominates.
        assert_eq!(tree.dominating_cell(0, 1, 12), Some(a));
        // Empty range.
        assert_eq!(tree.dominating_cell(3, 4, 12), None);
    }

    #[test]
    fn dominating_cell_coarsens_level() {
        // Two nearby fine cells share a coarse parent; together they
        // out-count a distant cell.
        let fine1 = CellId::from_latlng(LatLng::from_degrees(10.0, 0.0), 16);
        // A sibling of fine1 under the same level-15 parent, guaranteeing a
        // shared ancestor at level 8.
        let fine2 = (0..4)
            .map(|k| fine1.parent(15).child(k))
            .find(|&c| c != fine1)
            .unwrap();
        let far = CellId::from_latlng(LatLng::from_degrees(10.0, 40.0), 16);
        let tree = TemporalTree::build(
            2,
            vec![(0, counts(&[(fine1, 2), (fine2, 2), (far, 3)]))].into_iter(),
        );
        // At level 16 `far` dominates (3 vs 2 each)…
        assert_eq!(tree.dominating_cell(0, 2, 16), Some(far));
        // …but at level 8 the two nearby cells merge (4 > 3).
        let dom = tree.dominating_cell(0, 2, 8).unwrap();
        assert_eq!(dom.level(), 8);
        assert!(dom.contains(fine1));
    }

    #[test]
    fn deterministic_tie_break() {
        let a = cell(0.0, 12);
        let b = cell(30.0, 12);
        let tree = TemporalTree::build(1, vec![(0, counts(&[(a, 2), (b, 2)]))].into_iter());
        let dom = tree.dominating_cell(0, 1, 12).unwrap();
        assert_eq!(dom, a.min(b), "ties break to the smaller id");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn leaf_outside_domain_panics() {
        let a = cell(0.0, 12);
        let _ = TemporalTree::build(2, vec![(5, counts(&[(a, 1)]))].into_iter());
    }

    #[test]
    fn subtract_counts_drops_zeros() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let mut dst = counts(&[(a, 3), (b, 2)]);
        subtract_counts(&mut dst, &counts(&[(a, 1), (b, 2)]));
        assert_eq!(dst, counts(&[(a, 2)]));
        subtract_counts(&mut dst, &[]);
        assert_eq!(dst, counts(&[(a, 2)]));
    }

    #[test]
    fn incremental_insert_matches_build() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let leaves = vec![
            (0u32, counts(&[(a, 2)])),
            (3, counts(&[(a, 1), (b, 4)])),
            (7, counts(&[(b, 1)])),
        ];
        let built = TemporalTree::build(8, leaves.clone().into_iter());
        let mut incr = TemporalTree::new(8);
        for (w, c) in &leaves {
            incr.insert(*w, c);
        }
        for lo in 0..8 {
            for hi in lo..=8 {
                assert_eq!(built.query(lo, hi), incr.query(lo, hi), "[{lo}, {hi})");
            }
        }
    }

    #[test]
    fn remove_window_inverts_insert() {
        let a = cell(0.0, 12);
        let b = cell(1.0, 12);
        let mut tree = TemporalTree::new(8);
        tree.insert(1, &counts(&[(a, 2)]));
        tree.insert(5, &counts(&[(b, 3)]));
        tree.remove_window(5);
        assert_eq!(tree.query(0, 8), counts(&[(a, 2)]));
        tree.remove_window(1);
        assert_eq!(tree.query(0, 8), CellCounts::new());
        assert_eq!(tree.node_count(), 0, "all nodes unwound");
        // Removing an absent window is a no-op.
        tree.remove_window(3);
    }

    #[test]
    fn insert_grows_domain() {
        let a = cell(0.0, 12);
        let mut tree = TemporalTree::new(2);
        tree.insert(0, &counts(&[(a, 1)]));
        tree.insert(100, &counts(&[(a, 5)]));
        assert_eq!(tree.query(0, 1), counts(&[(a, 1)]));
        assert_eq!(tree.query(100, 101), counts(&[(a, 5)]));
        assert_eq!(tree.query(0, 200), counts(&[(a, 6)]));
    }

    #[test]
    fn node_count_is_sparse() {
        let a = cell(0.0, 12);
        let tree = TemporalTree::build(1024, vec![(512, counts(&[(a, 1)]))].into_iter());
        // One leaf → one root-to-leaf path: log2(1024)+1 = 11 nodes.
        assert_eq!(tree.node_count(), 11);
    }
}
