//! Instrumentation counters for the linkage pipeline.
//!
//! Several of the paper's figures report hardware-independent work
//! measures — numbers of pairwise record comparisons (Figs. 4d, 5d, 11d)
//! and numbers of detected alibi pairs (Figs. 4c, 5c) — alongside wall
//! times. These counters are threaded explicitly through the scoring
//! code (no globals) and merged across worker threads.

use serde::{Deserialize, Serialize};

/// Work counters accumulated during a linkage run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkageStats {
    /// Entity pairs whose similarity was computed.
    pub scored_entity_pairs: u64,
    /// Time-location bin pairs considered (|bins_u| · |bins_v| summed over
    /// common windows of scored pairs).
    pub bin_pair_comparisons: u64,
    /// Record-level pairwise comparisons: Σ records_u(w) · records_v(w)
    /// over common windows — the measure plotted in Figs. 4d/5d/11d.
    pub record_pair_comparisons: u64,
    /// Bin pairs detected as alibis (distance beyond the runaway).
    pub alibi_pairs: u64,
}

impl LinkageStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &LinkageStats) {
        self.scored_entity_pairs += other.scored_entity_pairs;
        self.bin_pair_comparisons += other.bin_pair_comparisons;
        self.record_pair_comparisons += other.record_pair_comparisons;
        self.alibi_pairs += other.alibi_pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = LinkageStats {
            scored_entity_pairs: 1,
            bin_pair_comparisons: 2,
            record_pair_comparisons: 3,
            alibi_pairs: 4,
        };
        let b = LinkageStats {
            scored_entity_pairs: 10,
            bin_pair_comparisons: 20,
            record_pair_comparisons: 30,
            alibi_pairs: 40,
        };
        a.merge(&b);
        assert_eq!(a.scored_entity_pairs, 11);
        assert_eq!(a.bin_pair_comparisons, 22);
        assert_eq!(a.record_pair_comparisons, 33);
        assert_eq!(a.alibi_pairs, 44);
    }

    #[test]
    fn default_is_zero() {
        let s = LinkageStats::default();
        assert_eq!(s.scored_entity_pairs, 0);
        assert_eq!(s.record_pair_comparisons, 0);
    }
}
