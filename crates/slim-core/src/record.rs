//! Record and entity primitives.
//!
//! A location dataset is a collection of `{entity, location, time}`
//! triples (paper §2.1). Entity ids are opaque within a dataset and
//! *cannot* be compared across datasets — that is the whole point of the
//! linkage problem.

use std::fmt;

use geocell::LatLng;
use serde::{Deserialize, Serialize};

/// An anonymized entity identifier, unique within one dataset only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u64);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A timestamp in seconds since an arbitrary epoch shared by both
/// datasets being linked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Seconds since the epoch.
    #[inline]
    pub fn secs(self) -> i64 {
        self.0
    }
}

/// A single usage record: entity `u` was at location `l` at time `t`.
///
/// A record may describe a *region* rather than a point via
/// [`Record::accuracy_m`]: the paper (§2.1) extends histories "to
/// datasets that contain record locations as regions, by copying a
/// record into multiple cells within the mobility histories". History
/// construction copies a region record into every bin cell the disc of
/// radius `accuracy_m` touches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The (dataset-local) entity this record belongs to.
    pub entity: EntityId,
    /// Recorded position (the region center when `accuracy_m > 0`).
    pub location: LatLng,
    /// Recorded time.
    pub time: Timestamp,
    /// Radius of the location region in metres; 0 = exact point.
    pub accuracy_m: f64,
}

impl Record {
    /// A point record (accuracy 0).
    pub fn new(entity: EntityId, location: LatLng, time: Timestamp) -> Self {
        Self {
            entity,
            location,
            time,
            accuracy_m: 0.0,
        }
    }

    /// A region record: the entity was somewhere within `accuracy_m`
    /// metres of `location`.
    ///
    /// # Panics
    /// Panics if `accuracy_m` is negative or not finite.
    pub fn with_accuracy(
        entity: EntityId,
        location: LatLng,
        time: Timestamp,
        accuracy_m: f64,
    ) -> Self {
        assert!(
            accuracy_m.is_finite() && accuracy_m >= 0.0,
            "accuracy must be a non-negative length"
        );
        Self {
            entity,
            location,
            time,
            accuracy_m,
        }
    }

    /// Whether this record describes a region rather than a point.
    pub fn is_region(&self) -> bool {
        self.accuracy_m > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_display() {
        assert_eq!(EntityId(42).to_string(), "e42");
    }

    #[test]
    fn timestamps_order() {
        assert!(Timestamp(10) < Timestamp(20));
        assert_eq!(Timestamp(5).secs(), 5);
    }

    #[test]
    fn record_construction() {
        let r = Record::new(
            EntityId(1),
            LatLng::from_degrees(10.0, 20.0),
            Timestamp(100),
        );
        assert_eq!(r.entity, EntityId(1));
        assert_eq!(r.time.secs(), 100);
    }
}
