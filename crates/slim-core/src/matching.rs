//! Maximum-weight bipartite matching (paper §3.2).
//!
//! SLIM builds a weighted bipartite graph from positive similarity scores
//! and selects a matching so that no entity is linked twice. The paper
//! adapts "a simple greedy heuristic, which links the pair with the
//! highest similarity at each step" — implemented here; an exact
//! Hungarian solver lives in [`crate::hungarian`] for verification.
//!
//! For callers that maintain the edge set under updates (the streaming
//! engine), [`IncrementalMatcher`] keeps the greedy matching itself
//! incremental: a batch of edge deltas re-runs greedy selection only
//! over the affected conflict region — the connected components of the
//! delta endpoints — and is guaranteed edge-for-edge identical to
//! [`greedy_max_matching`] over the full edge set.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::record::EntityId;

/// A weighted edge of the bipartite linkage graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Entity from the first dataset (`U_E`).
    pub left: EntityId,
    /// Entity from the second dataset (`U_I`).
    pub right: EntityId,
    /// Similarity score.
    pub weight: f64,
}

impl Edge {
    /// The one-line wire rendering of an edge — `left,right,weight` —
    /// the row format of the streaming query protocol's `LINKS`
    /// replies. The weight prints with `f64`'s shortest round-trip
    /// formatting, so parsing the text back recovers the exact score.
    pub fn wire_line(&self) -> String {
        format!("{},{},{}", self.left.0, self.right.0, self.weight)
    }
}

/// The total order every matching path emits edges in: heaviest first,
/// ties broken on `(left, right)` ids. Greedy selection consumes edges
/// in this order, and `exact_max_matching` / the incremental matcher
/// sort their outputs with it — one shared comparator, because
/// identical output order across all three is a bit-identity contract.
pub fn heaviest_first(a: &Edge, b: &Edge) -> std::cmp::Ordering {
    b.weight
        .partial_cmp(&a.weight)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.left.cmp(&b.left))
        .then_with(|| a.right.cmp(&b.right))
}

/// Greedy maximum-weight matching: repeatedly select the heaviest edge
/// whose endpoints are both unmatched. Ties break deterministically on
/// `(left, right)` ids. Runs in `O(|E| log |E|)`.
pub fn greedy_max_matching(edges: &[Edge]) -> Vec<Edge> {
    let mut order: Vec<&Edge> = edges.iter().collect();
    order.sort_by(|a, b| heaviest_first(a, b));
    let mut left_used: HashSet<EntityId> = HashSet::new();
    let mut right_used: HashSet<EntityId> = HashSet::new();
    let mut out = Vec::new();
    for e in order {
        if left_used.contains(&e.left) || right_used.contains(&e.right) {
            continue;
        }
        left_used.insert(e.left);
        right_used.insert(e.right);
        out.push(*e);
    }
    out
}

/// Exact maximum-weight matching via the Hungarian solver in
/// [`crate::hungarian`]. Builds a dense matrix over the entities present
/// in `edges`, so memory is O(n·m) — use only at moderate scales.
pub fn exact_max_matching(edges: &[Edge]) -> Vec<Edge> {
    use std::collections::HashMap;
    let mut lefts: Vec<EntityId> = edges.iter().map(|e| e.left).collect();
    let mut rights: Vec<EntityId> = edges.iter().map(|e| e.right).collect();
    lefts.sort_unstable();
    lefts.dedup();
    rights.sort_unstable();
    rights.dedup();
    if lefts.is_empty() || rights.is_empty() {
        return Vec::new();
    }
    let lidx: HashMap<EntityId, usize> = lefts.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let ridx: HashMap<EntityId, usize> = rights.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut w = vec![vec![0.0f64; rights.len()]; lefts.len()];
    for e in edges {
        let (i, j) = (lidx[&e.left], ridx[&e.right]);
        w[i][j] = w[i][j].max(e.weight);
    }
    let (assignment, _) = crate::hungarian::max_weight_assignment(&w);
    let mut out: Vec<Edge> = assignment
        .into_iter()
        .enumerate()
        .filter_map(|(i, j)| {
            j.map(|j| Edge {
                left: lefts[i],
                right: rights[j],
                weight: w[i][j],
            })
        })
        .collect();
    // Heaviest first with the `(left, right)` tie-break greedy uses, so
    // equal-weight assignments come out in one deterministic order.
    out.sort_by(heaviest_first);
    out
}

/// One update to the bipartite edge set, keyed by pair: `Some(w)`
/// upserts the edge's weight, `None` removes the edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDelta {
    /// Left endpoint of the pair.
    pub left: EntityId,
    /// Right endpoint of the pair.
    pub right: EntityId,
    /// New weight (`None` = the edge is gone).
    pub weight: Option<f64>,
}

/// What one [`IncrementalMatcher::apply_deltas`] call changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaReport {
    /// Edges in the re-matched conflict region — the work bound: greedy
    /// selection ran over exactly these, never the full edge set.
    pub region_edges: usize,
    /// Matched edges that left the matching (including old versions of
    /// reweighted matches).
    pub unmatched: Vec<Edge>,
    /// Matched edges that entered the matching (including new versions
    /// of reweighted matches).
    pub matched: Vec<Edge>,
}

/// A greedy maximum-weight matching maintained under edge deltas.
///
/// The matcher owns a copy of the live edge set plus a per-endpoint
/// adjacency. Applying a delta batch re-runs [`greedy_max_matching`]
/// over the *conflict region only*: the union of connected components
/// (in the updated graph, plus the endpoints of removed edges) that
/// contain a changed edge's endpoint. Greedy decisions never cross
/// component boundaries — an edge is taken iff no heavier edge in its
/// own component claimed an endpoint first — so the maintained matching
/// is **edge-for-edge identical** to a from-scratch
/// [`greedy_max_matching`] over the full edge set, in the same order.
#[derive(Debug, Default)]
pub struct IncrementalMatcher {
    /// Live edge weights, keyed by pair.
    weights: HashMap<(EntityId, EntityId), f64>,
    /// Per side: endpoint entity → pairs containing it.
    adj: [HashMap<EntityId, HashSet<(EntityId, EntityId)>>; 2],
    /// The current matching, keyed by pair.
    matched: HashMap<(EntityId, EntityId), f64>,
}

impl IncrementalMatcher {
    /// An empty matcher (no edges, empty matching).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// The maintained matching, sorted heaviest-first with the
    /// `(left, right)` tie-break — exactly the order
    /// [`greedy_max_matching`] emits.
    pub fn matching(&self) -> Vec<Edge> {
        let mut out: Vec<Edge> = self
            .matched
            .iter()
            .map(|(&(left, right), &weight)| Edge {
                left,
                right,
                weight,
            })
            .collect();
        out.sort_by(heaviest_first);
        out
    }

    /// The live edge set sorted by `(left, right)` — the full-assembly
    /// form callers outside the greedy path (e.g. an exact Hungarian
    /// re-match) expect.
    pub fn edges_sorted(&self) -> Vec<Edge> {
        let mut out: Vec<Edge> = self
            .weights
            .iter()
            .map(|(&(left, right), &weight)| Edge {
                left,
                right,
                weight,
            })
            .collect();
        out.sort_by_key(|e| (e.left, e.right));
        out
    }

    /// Applies one coalesced delta batch (at most one delta per pair)
    /// and repairs the matching over the affected conflict region.
    pub fn apply_deltas(&mut self, deltas: &[EdgeDelta]) -> DeltaReport {
        let mut report = DeltaReport::default();
        // Seed the region with every endpoint a delta actually touched.
        let mut frontier: Vec<(usize, EntityId)> = Vec::new();
        for d in deltas {
            let pair = (d.left, d.right);
            let changed = match d.weight {
                Some(w) => match self.weights.insert(pair, w) {
                    Some(old) if old == w => false,
                    Some(_) => true,
                    None => {
                        self.adj[0].entry(d.left).or_default().insert(pair);
                        self.adj[1].entry(d.right).or_default().insert(pair);
                        true
                    }
                },
                None => {
                    let existed = self.weights.remove(&pair).is_some();
                    if existed {
                        for (side, e) in [(0, d.left), (1, d.right)] {
                            if let Some(set) = self.adj[side].get_mut(&e) {
                                set.remove(&pair);
                                if set.is_empty() {
                                    self.adj[side].remove(&e);
                                }
                            }
                        }
                    }
                    existed
                }
            };
            if changed {
                frontier.push((0, d.left));
                frontier.push((1, d.right));
            }
        }
        if frontier.is_empty() {
            return report;
        }

        // Flood the conflict region: connected components (in the
        // updated graph) of the touched endpoints. A removed edge's
        // endpoints are seeded even when now isolated, so their old
        // matches are still torn down.
        let mut region: [HashSet<EntityId>; 2] = [HashSet::new(), HashSet::new()];
        while let Some((side, e)) = frontier.pop() {
            if !region[side].insert(e) {
                continue;
            }
            if let Some(pairs) = self.adj[side].get(&e) {
                for &(l, r) in pairs {
                    frontier.push((0, l));
                    frontier.push((1, r));
                }
            }
        }

        // Collect the region's edges (every edge with an endpoint in
        // the region has both endpoints in it) and re-run greedy over
        // exactly that sub-multiset.
        let mut region_edges: Vec<Edge> = Vec::new();
        for &l in &region[0] {
            if let Some(pairs) = self.adj[0].get(&l) {
                for &(left, right) in pairs {
                    region_edges.push(Edge {
                        left,
                        right,
                        weight: self.weights[&(left, right)],
                    });
                }
            }
        }
        report.region_edges = region_edges.len();
        let local = greedy_max_matching(&region_edges);

        // Swap the region's slice of the matching, reporting the churn:
        // `unmatched` = old region matches not reproduced bit-identically,
        // `matched` = new region matches that are not carried over.
        let old_in_region: HashMap<(EntityId, EntityId), f64> = self
            .matched
            .iter()
            .filter(|&(&(l, _), _)| region[0].contains(&l))
            .map(|(&pair, &w)| (pair, w))
            .collect();
        let new_in_region: HashMap<(EntityId, EntityId), f64> = local
            .iter()
            .map(|e| ((e.left, e.right), e.weight))
            .collect();
        for (&pair, &old_w) in &old_in_region {
            self.matched.remove(&pair);
            if new_in_region.get(&pair) != Some(&old_w) {
                report.unmatched.push(Edge {
                    left: pair.0,
                    right: pair.1,
                    weight: old_w,
                });
            }
        }
        for (&pair, &w) in &new_in_region {
            self.matched.insert(pair, w);
            if old_in_region.get(&pair) != Some(&w) {
                report.matched.push(Edge {
                    left: pair.0,
                    right: pair.1,
                    weight: w,
                });
            }
        }
        report.unmatched.sort_by_key(|e| (e.left, e.right));
        report.matched.sort_by_key(|e| (e.left, e.right));
        report
    }
}

/// Checks the one-to-one constraint of a matching — used in tests and
/// property checks.
pub fn is_valid_matching(matching: &[Edge]) -> bool {
    let mut left = HashSet::new();
    let mut right = HashSet::new();
    matching
        .iter()
        .all(|e| left.insert(e.left) && right.insert(e.right))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn empty_graph() {
        assert!(greedy_max_matching(&[]).is_empty());
    }

    /// The wire rendering round-trips the weight exactly: Rust's `f64`
    /// Display is shortest-round-trip, so parsing the text back yields
    /// the original bits.
    #[test]
    fn wire_line_round_trips_the_weight() {
        let edge = e(42, 1042, 0.1 + 0.2); // a classic non-representable sum
        let line = edge.wire_line();
        let mut parts = line.split(',');
        assert_eq!(parts.next(), Some("42"));
        assert_eq!(parts.next(), Some("1042"));
        let w: f64 = parts.next().unwrap().parse().unwrap();
        assert_eq!(w.to_bits(), edge.weight.to_bits());
        assert_eq!(parts.next(), None);
    }

    #[test]
    fn picks_heaviest_first() {
        let edges = vec![e(1, 1, 1.0), e(1, 2, 5.0), e(2, 1, 3.0)];
        let m = greedy_max_matching(&edges);
        assert!(is_valid_matching(&m));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].weight, 5.0);
        assert_eq!(m[1].weight, 3.0);
    }

    #[test]
    fn one_to_one_enforced() {
        let edges = vec![e(1, 1, 9.0), e(1, 2, 8.0), e(1, 3, 7.0)];
        let m = greedy_max_matching(&edges);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].right, EntityId(1));
    }

    #[test]
    fn greedy_is_not_always_optimal_but_valid() {
        // Classic greedy pitfall: greedy takes 10, losing 9+9=18 total.
        let edges = vec![e(1, 1, 10.0), e(1, 2, 9.0), e(2, 1, 9.0)];
        let m = greedy_max_matching(&edges);
        assert!(is_valid_matching(&m));
        let total: f64 = m.iter().map(|x| x.weight).sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn deterministic_tie_break() {
        let edges = vec![e(2, 2, 1.0), e(1, 1, 1.0)];
        let m1 = greedy_max_matching(&edges);
        let rev: Vec<Edge> = edges.iter().rev().copied().collect();
        let m2 = greedy_max_matching(&rev);
        assert_eq!(m1.len(), 2);
        assert_eq!(m1[0].left, m2[0].left);
    }

    #[test]
    fn exact_matching_beats_greedy_counterexample() {
        let edges = vec![e(1, 1, 10.0), e(1, 2, 9.0), e(2, 1, 9.0)];
        let m = exact_max_matching(&edges);
        assert!(is_valid_matching(&m));
        let total: f64 = m.iter().map(|x| x.weight).sum();
        assert_eq!(total, 18.0);
    }

    #[test]
    fn exact_matching_empty() {
        assert!(exact_max_matching(&[]).is_empty());
    }

    #[test]
    fn validity_checker_rejects_duplicates() {
        assert!(!is_valid_matching(&[e(1, 1, 1.0), e(1, 2, 1.0)]));
        assert!(!is_valid_matching(&[e(1, 1, 1.0), e(2, 1, 1.0)]));
        assert!(is_valid_matching(&[e(1, 1, 1.0), e(2, 2, 1.0)]));
    }

    /// Regression: `exact_max_matching` used to sort its output by
    /// weight only, so equal-weight assignments came back in the
    /// Hungarian solver's internal order — input permutations of the
    /// same graph produced permuted outputs.
    #[test]
    fn exact_matching_output_order_is_deterministic_under_ties() {
        let edges = vec![e(1, 1, 2.0), e(2, 2, 2.0), e(3, 3, 2.0)];
        let rev: Vec<Edge> = edges.iter().rev().copied().collect();
        let m1 = exact_max_matching(&edges);
        let m2 = exact_max_matching(&rev);
        assert_eq!(m1, m2, "tie order must not depend on input order");
        let lefts: Vec<u64> = m1.iter().map(|x| x.left.0).collect();
        assert_eq!(lefts, vec![1, 2, 3], "(left, right) tie-break");
    }

    fn upsert(l: u64, r: u64, w: f64) -> EdgeDelta {
        EdgeDelta {
            left: EntityId(l),
            right: EntityId(r),
            weight: Some(w),
        }
    }

    fn drop_edge(l: u64, r: u64) -> EdgeDelta {
        EdgeDelta {
            left: EntityId(l),
            right: EntityId(r),
            weight: None,
        }
    }

    #[test]
    fn incremental_matches_full_greedy_from_scratch() {
        let mut m = IncrementalMatcher::new();
        let deltas = vec![
            upsert(1, 1, 1.0),
            upsert(1, 2, 5.0),
            upsert(2, 1, 3.0),
            upsert(3, 3, 2.0),
        ];
        let report = m.apply_deltas(&deltas);
        assert_eq!(report.region_edges, 4);
        let full: Vec<Edge> = deltas
            .iter()
            .map(|d| Edge {
                left: d.left,
                right: d.right,
                weight: d.weight.unwrap(),
            })
            .collect();
        assert_eq!(m.matching(), greedy_max_matching(&full));
        assert_eq!(m.num_edges(), 4);
    }

    #[test]
    fn incremental_region_stays_local() {
        let mut m = IncrementalMatcher::new();
        // Two disjoint components.
        m.apply_deltas(&[
            upsert(1, 1, 4.0),
            upsert(1, 2, 3.0),
            upsert(10, 10, 9.0),
            upsert(11, 10, 8.0),
        ]);
        // Touching only the small component re-matches only it.
        let report = m.apply_deltas(&[upsert(1, 2, 6.0)]);
        assert_eq!(report.region_edges, 2, "other component left alone");
        let expect =
            greedy_max_matching(&[e(1, 1, 4.0), e(1, 2, 6.0), e(10, 10, 9.0), e(11, 10, 8.0)]);
        assert_eq!(m.matching(), expect);
        // A no-op delta (same weight) re-matches nothing at all.
        let report = m.apply_deltas(&[upsert(1, 2, 6.0)]);
        assert_eq!(report.region_edges, 0);
        assert!(report.matched.is_empty() && report.unmatched.is_empty());
    }

    #[test]
    fn incremental_removal_tears_down_match() {
        let mut m = IncrementalMatcher::new();
        m.apply_deltas(&[upsert(1, 1, 10.0), upsert(1, 2, 9.0), upsert(2, 1, 9.0)]);
        assert_eq!(m.matching()[0].weight, 10.0);
        // Removing the matched edge lets the two 9.0 edges pair up.
        let report = m.apply_deltas(&[drop_edge(1, 1)]);
        assert_eq!(m.num_edges(), 2);
        let expect = greedy_max_matching(&[e(1, 2, 9.0), e(2, 1, 9.0)]);
        assert_eq!(m.matching(), expect);
        assert_eq!(report.unmatched, vec![e(1, 1, 10.0)]);
        assert_eq!(report.matched, vec![e(1, 2, 9.0), e(2, 1, 9.0)]);
        // Removing an absent edge is a no-op.
        let report = m.apply_deltas(&[drop_edge(7, 7)]);
        assert_eq!(report, DeltaReport::default());
    }

    #[test]
    fn incremental_churn_report_skips_carried_matches() {
        let mut m = IncrementalMatcher::new();
        m.apply_deltas(&[upsert(1, 1, 5.0), upsert(2, 2, 4.0)]);
        // 2↔2 joins the component of 1↔1 via a light bridge; both stay
        // matched at unchanged weights, so only the bridge's rejection
        // is silent and the report is empty.
        let report = m.apply_deltas(&[upsert(1, 2, 1.0)]);
        assert_eq!(report.region_edges, 3);
        assert!(report.matched.is_empty(), "{:?}", report.matched);
        assert!(report.unmatched.is_empty(), "{:?}", report.unmatched);
        assert_eq!(m.matching(), vec![e(1, 1, 5.0), e(2, 2, 4.0)]);
    }

    #[test]
    fn incremental_edges_sorted_by_pair() {
        let mut m = IncrementalMatcher::new();
        m.apply_deltas(&[upsert(2, 1, 1.0), upsert(1, 2, 2.0), upsert(1, 1, 3.0)]);
        let edges = m.edges_sorted();
        assert_eq!(edges, vec![e(1, 1, 3.0), e(1, 2, 2.0), e(2, 1, 1.0)]);
    }
}
