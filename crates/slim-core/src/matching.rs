//! Maximum-weight bipartite matching (paper §3.2).
//!
//! SLIM builds a weighted bipartite graph from positive similarity scores
//! and selects a matching so that no entity is linked twice. The paper
//! adapts "a simple greedy heuristic, which links the pair with the
//! highest similarity at each step" — implemented here; an exact
//! Hungarian solver lives in [`crate::hungarian`] for verification.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::record::EntityId;

/// A weighted edge of the bipartite linkage graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Entity from the first dataset (`U_E`).
    pub left: EntityId,
    /// Entity from the second dataset (`U_I`).
    pub right: EntityId,
    /// Similarity score.
    pub weight: f64,
}

/// Greedy maximum-weight matching: repeatedly select the heaviest edge
/// whose endpoints are both unmatched. Ties break deterministically on
/// `(left, right)` ids. Runs in `O(|E| log |E|)`.
pub fn greedy_max_matching(edges: &[Edge]) -> Vec<Edge> {
    let mut order: Vec<&Edge> = edges.iter().collect();
    order.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
    let mut left_used: HashSet<EntityId> = HashSet::new();
    let mut right_used: HashSet<EntityId> = HashSet::new();
    let mut out = Vec::new();
    for e in order {
        if left_used.contains(&e.left) || right_used.contains(&e.right) {
            continue;
        }
        left_used.insert(e.left);
        right_used.insert(e.right);
        out.push(*e);
    }
    out
}

/// Exact maximum-weight matching via the Hungarian solver in
/// [`crate::hungarian`]. Builds a dense matrix over the entities present
/// in `edges`, so memory is O(n·m) — use only at moderate scales.
pub fn exact_max_matching(edges: &[Edge]) -> Vec<Edge> {
    use std::collections::HashMap;
    let mut lefts: Vec<EntityId> = edges.iter().map(|e| e.left).collect();
    let mut rights: Vec<EntityId> = edges.iter().map(|e| e.right).collect();
    lefts.sort_unstable();
    lefts.dedup();
    rights.sort_unstable();
    rights.dedup();
    if lefts.is_empty() || rights.is_empty() {
        return Vec::new();
    }
    let lidx: HashMap<EntityId, usize> = lefts.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let ridx: HashMap<EntityId, usize> = rights.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut w = vec![vec![0.0f64; rights.len()]; lefts.len()];
    for e in edges {
        let (i, j) = (lidx[&e.left], ridx[&e.right]);
        w[i][j] = w[i][j].max(e.weight);
    }
    let (assignment, _) = crate::hungarian::max_weight_assignment(&w);
    let mut out: Vec<Edge> = assignment
        .into_iter()
        .enumerate()
        .filter_map(|(i, j)| {
            j.map(|j| Edge {
                left: lefts[i],
                right: rights[j],
                weight: w[i][j],
            })
        })
        .collect();
    // Heaviest first, like the greedy output.
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Checks the one-to-one constraint of a matching — used in tests and
/// property checks.
pub fn is_valid_matching(matching: &[Edge]) -> bool {
    let mut left = HashSet::new();
    let mut right = HashSet::new();
    matching
        .iter()
        .all(|e| left.insert(e.left) && right.insert(e.right))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn empty_graph() {
        assert!(greedy_max_matching(&[]).is_empty());
    }

    #[test]
    fn picks_heaviest_first() {
        let edges = vec![e(1, 1, 1.0), e(1, 2, 5.0), e(2, 1, 3.0)];
        let m = greedy_max_matching(&edges);
        assert!(is_valid_matching(&m));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].weight, 5.0);
        assert_eq!(m[1].weight, 3.0);
    }

    #[test]
    fn one_to_one_enforced() {
        let edges = vec![e(1, 1, 9.0), e(1, 2, 8.0), e(1, 3, 7.0)];
        let m = greedy_max_matching(&edges);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].right, EntityId(1));
    }

    #[test]
    fn greedy_is_not_always_optimal_but_valid() {
        // Classic greedy pitfall: greedy takes 10, losing 9+9=18 total.
        let edges = vec![e(1, 1, 10.0), e(1, 2, 9.0), e(2, 1, 9.0)];
        let m = greedy_max_matching(&edges);
        assert!(is_valid_matching(&m));
        let total: f64 = m.iter().map(|x| x.weight).sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn deterministic_tie_break() {
        let edges = vec![e(2, 2, 1.0), e(1, 1, 1.0)];
        let m1 = greedy_max_matching(&edges);
        let rev: Vec<Edge> = edges.iter().rev().copied().collect();
        let m2 = greedy_max_matching(&rev);
        assert_eq!(m1.len(), 2);
        assert_eq!(m1[0].left, m2[0].left);
    }

    #[test]
    fn exact_matching_beats_greedy_counterexample() {
        let edges = vec![e(1, 1, 10.0), e(1, 2, 9.0), e(2, 1, 9.0)];
        let m = exact_max_matching(&edges);
        assert!(is_valid_matching(&m));
        let total: f64 = m.iter().map(|x| x.weight).sum();
        assert_eq!(total, 18.0);
    }

    #[test]
    fn exact_matching_empty() {
        assert!(exact_max_matching(&[]).is_empty());
    }

    #[test]
    fn validity_checker_rejects_duplicates() {
        assert!(!is_valid_matching(&[e(1, 1, 1.0), e(1, 2, 1.0)]));
        assert!(!is_valid_matching(&[e(1, 1, 1.0), e(2, 1, 1.0)]));
        assert!(is_valid_matching(&[e(1, 1, 1.0), e(2, 2, 1.0)]));
    }
}
