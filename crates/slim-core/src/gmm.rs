//! 1-D two-component Gaussian Mixture Model fitted with EM (paper §3.2).
//!
//! SLIM fits this over the edge weights selected by the bipartite
//! matching: the component with the larger mean models true-positive
//! links, the other false positives. The fit drives the automated stop
//! threshold.

use serde::{Deserialize, Serialize};

use crate::erf::{normal_cdf, normal_pdf};

/// One Gaussian component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mixture weight `c` (components sum to 1).
    pub weight: f64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation (always > 0).
    pub std_dev: f64,
}

impl Component {
    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf(x, self.mean, self.std_dev)
    }

    /// Weighted density at `x`.
    pub fn weighted_pdf(&self, x: f64) -> f64 {
        self.weight * normal_pdf(x, self.mean, self.std_dev)
    }
}

/// A fitted two-component mixture. `low` has the smaller mean (false
/// positives), `high` the larger (true positives).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gmm2 {
    /// Component with the smaller mean.
    pub low: Component,
    /// Component with the larger mean.
    pub high: Component,
    /// Final average log-likelihood of the fit.
    pub avg_log_likelihood: f64,
    /// EM iterations executed.
    pub iterations: u32,
}

/// Convergence tolerance on average log-likelihood.
const TOL: f64 = 1e-8;

impl Gmm2 {
    /// Maximum EM iterations of any fit. A returned mixture whose
    /// [`Gmm2::iterations`] equals this cap ran out of budget and may
    /// not have reached the likelihood tolerance — warm-start callers
    /// use that to avoid seeding from an unconverged fit.
    pub const MAX_ITERS: u32 = 200;

    /// Fits the mixture to `data` with EM. Needs at least 2 distinct
    /// values; returns `None` otherwise (degenerate input — callers fall
    /// back to keeping all links).
    pub fn fit(data: &[f64]) -> Option<Gmm2> {
        let n = data.len();
        if n < 2 {
            return None;
        }
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.len() < 2 {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let range = sorted[sorted.len() - 1] - sorted[0];
        if range <= 0.0 {
            return None;
        }

        // Variance floor prevents a component collapsing onto one point.
        let var_floor = (range * 1e-3).powi(2).max(1e-12);
        let global_var = variance(&sorted).max(var_floor);

        // Initialize the means with 1-D 2-means centroids: far more
        // robust on small samples than quantile seeds, which tend to
        // land inside the majority cluster and let EM merge components.
        let (m1, m2) = two_means_centroids(&sorted);
        let mut c1 = Component {
            weight: 0.5,
            mean: m1,
            std_dev: global_var.sqrt(),
        };
        let mut c2 = Component {
            weight: 0.5,
            mean: m2,
            std_dev: global_var.sqrt(),
        };
        if (c2.mean - c1.mean).abs() < 1e-12 {
            c1.mean = sorted[0];
            c2.mean = sorted[sorted.len() - 1];
        }

        let points: Vec<(f64, f64)> = sorted.iter().map(|&x| (x, 1.0)).collect();
        let em = em_loop(&points, sorted.len() as f64, var_floor, c1, c2);
        Some(em.into_gmm())
    }

    /// Warm-started EM over a **sorted weighted sample** — the
    /// sufficient-statistics form an incremental caller maintains:
    /// `points` is ascending `(value, count)` with positive counts and
    /// finite values, the multiset equivalent of the `data` slice
    /// [`Gmm2::fit`] takes. The mixture is seeded from `prev` (the last
    /// converged fit) instead of the 2-means cold start, so a small
    /// change to the sample typically converges in a handful of
    /// iterations.
    ///
    /// Returns `None` when the sample is degenerate (fewer than 2
    /// distinct values) **or when EM fails to reach the likelihood
    /// tolerance within the iteration budget** — callers must fall back
    /// to the cold [`Gmm2::fit`] in that case, which keeps every
    /// warm-started pipeline convergent by construction.
    pub fn fit_warm(points: &[(f64, u64)], prev: &Gmm2) -> Option<Gmm2> {
        if points.len() < 2 {
            return None;
        }
        let range = points[points.len() - 1].0 - points[0].0;
        if !range.is_finite() || range <= 0.0 {
            return None;
        }
        let var_floor = (range * 1e-3).powi(2).max(1e-12);
        let weighted: Vec<(f64, f64)> = points.iter().map(|&(x, c)| (x, c as f64)).collect();
        let n_total: f64 = weighted.iter().map(|&(_, c)| c).sum();
        if n_total < 2.0 {
            return None;
        }
        let em = em_loop(&weighted, n_total, var_floor, prev.low, prev.high);
        em.converged.then(|| em.into_gmm())
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.low.weighted_pdf(x) + self.high.weighted_pdf(x)
    }
}

/// Raw result of one EM run, before low/high ordering.
struct EmOutcome {
    c1: Component,
    c2: Component,
    avg_log_likelihood: f64,
    iterations: u32,
    /// Whether the log-likelihood tolerance was reached (as opposed to
    /// exhausting the iteration budget or a component vanishing).
    converged: bool,
}

impl EmOutcome {
    fn into_gmm(self) -> Gmm2 {
        let (low, high) = if self.c1.mean <= self.c2.mean {
            (self.c1, self.c2)
        } else {
            (self.c2, self.c1)
        };
        Gmm2 {
            low,
            high,
            avg_log_likelihood: self.avg_log_likelihood,
            iterations: self.iterations,
        }
    }
}

/// The EM iteration shared by the cold and warm fits, over a weighted
/// sample (`points` = `(value, count)`). With unit counts the
/// arithmetic — every multiplication by `1.0` is exact — reproduces the
/// historical unweighted loop bit-for-bit, which is what keeps
/// [`Gmm2::fit`] stable across this refactor.
fn em_loop(
    points: &[(f64, f64)],
    n_total: f64,
    var_floor: f64,
    mut c1: Component,
    mut c2: Component,
) -> EmOutcome {
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    let mut resp = vec![0.0f64; points.len()];
    for it in 1..=Gmm2::MAX_ITERS {
        iterations = it;
        // E-step: responsibility of component 2 for each point.
        let mut ll = 0.0;
        for (i, &(x, cnt)) in points.iter().enumerate() {
            let p1 = c1.weighted_pdf(x);
            let p2 = c2.weighted_pdf(x);
            let total = (p1 + p2).max(f64::MIN_POSITIVE);
            resp[i] = p2 / total;
            ll += cnt * total.ln();
        }
        ll /= n_total;

        // M-step.
        let n2: f64 = points.iter().zip(&resp).map(|(&(_, c), &r)| c * r).sum();
        let n1 = n_total - n2;
        if n1 < 1e-9 || n2 < 1e-9 {
            break; // one component vanished; keep last params
        }
        let mean1 = points
            .iter()
            .zip(&resp)
            .map(|(&(x, c), &r)| ((1.0 - r) * c) * x)
            .sum::<f64>()
            / n1;
        let mean2 = points
            .iter()
            .zip(&resp)
            .map(|(&(x, c), &r)| (r * c) * x)
            .sum::<f64>()
            / n2;
        let var1 = (points
            .iter()
            .zip(&resp)
            .map(|(&(x, c), &r)| ((1.0 - r) * c) * (x - mean1).powi(2))
            .sum::<f64>()
            / n1)
            .max(var_floor);
        let var2 = (points
            .iter()
            .zip(&resp)
            .map(|(&(x, c), &r)| (r * c) * (x - mean2).powi(2))
            .sum::<f64>()
            / n2)
            .max(var_floor);
        c1 = Component {
            weight: n1 / n_total,
            mean: mean1,
            std_dev: var1.sqrt(),
        };
        c2 = Component {
            weight: n2 / n_total,
            mean: mean2,
            std_dev: var2.sqrt(),
        };

        if (ll - prev_ll).abs() < TOL {
            converged = true;
            break;
        }
        prev_ll = ll;
    }
    EmOutcome {
        c1,
        c2,
        avg_log_likelihood: prev_ll,
        iterations,
        converged,
    }
}

/// Lloyd's 1-D 2-means from extremal seeds; returns the two centroids.
fn two_means_centroids(sorted: &[f64]) -> (f64, f64) {
    let (mut c0, mut c1) = (sorted[0], sorted[sorted.len() - 1]);
    for _ in 0..100 {
        let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0u64, 0.0, 0u64);
        for &x in sorted {
            if (x - c0).abs() <= (x - c1).abs() {
                s0 += x;
                n0 += 1;
            } else {
                s1 += x;
                n1 += 1;
            }
        }
        if n0 == 0 || n1 == 0 {
            break;
        }
        let (new0, new1) = (s0 / n0 as f64, s1 / n1 as f64);
        let converged = (new0 - c0).abs() < 1e-12 && (new1 - c1).abs() < 1e-12;
        c0 = new0;
        c1 = new1;
        if converged {
            break;
        }
    }
    (c0, c1)
}

fn variance(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Box-Muller standard normal sampler (rand_distr is not sanctioned).
    fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn bimodal(seed: u64, n1: usize, m1: f64, s1: f64, n2: usize, m2: f64, s2: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n1).map(|_| normal(&mut rng, m1, s1)).collect();
        v.extend((0..n2).map(|_| normal(&mut rng, m2, s2)));
        v
    }

    #[test]
    fn recovers_well_separated_components() {
        let data = bimodal(1, 500, 10.0, 2.0, 500, 100.0, 5.0);
        let g = Gmm2::fit(&data).unwrap();
        assert!((g.low.mean - 10.0).abs() < 1.0, "low mean {}", g.low.mean);
        assert!(
            (g.high.mean - 100.0).abs() < 2.0,
            "high mean {}",
            g.high.mean
        );
        assert!((g.low.weight - 0.5).abs() < 0.05);
        assert!((g.low.std_dev - 2.0).abs() < 0.5);
        assert!((g.high.std_dev - 5.0).abs() < 1.0);
    }

    #[test]
    fn recovers_unbalanced_weights() {
        let data = bimodal(2, 900, 0.0, 1.0, 100, 20.0, 1.0);
        let g = Gmm2::fit(&data).unwrap();
        assert!((g.low.weight - 0.9).abs() < 0.03, "weight {}", g.low.weight);
        assert!((g.high.weight - 0.1).abs() < 0.03);
    }

    #[test]
    fn low_mean_is_never_above_high_mean() {
        for seed in 0..5 {
            let data = bimodal(seed, 200, 50.0, 10.0, 200, 30.0, 5.0);
            let g = Gmm2::fit(&data).unwrap();
            assert!(g.low.mean <= g.high.mean);
        }
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(Gmm2::fit(&[]).is_none());
        assert!(Gmm2::fit(&[1.0]).is_none());
        assert!(Gmm2::fit(&[3.0, 3.0, 3.0]).is_none());
        assert!(Gmm2::fit(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn two_points_fit() {
        let g = Gmm2::fit(&[0.0, 10.0]).unwrap();
        assert!(g.low.mean < g.high.mean);
        assert!(g.low.std_dev > 0.0 && g.high.std_dev > 0.0);
    }

    #[test]
    fn pdf_is_positive_and_bounded() {
        let data = bimodal(3, 300, 0.0, 1.0, 300, 10.0, 1.0);
        let g = Gmm2::fit(&data).unwrap();
        for i in -20..=40 {
            let p = g.pdf(i as f64 / 2.0);
            assert!(p >= 0.0 && p.is_finite());
        }
    }

    #[test]
    fn overlapping_components_still_converge() {
        let data = bimodal(4, 400, 0.0, 2.0, 400, 3.0, 2.0);
        let g = Gmm2::fit(&data).unwrap();
        assert!(g.iterations >= 1);
        assert!(g.low.mean < g.high.mean);
    }

    /// Weighted multiset form of a sample, sorted ascending.
    fn weighted(data: &[f64]) -> Vec<(f64, u64)> {
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut out: Vec<(f64, u64)> = Vec::new();
        for x in sorted {
            match out.last_mut() {
                Some((v, c)) if *v == x => *c += 1,
                _ => out.push((x, 1)),
            }
        }
        out
    }

    #[test]
    fn warm_fit_on_unchanged_data_converges_fast_to_same_mixture() {
        let data = bimodal(5, 400, 10.0, 2.0, 400, 100.0, 5.0);
        let cold = Gmm2::fit(&data).unwrap();
        let warm = Gmm2::fit_warm(&weighted(&data), &cold).unwrap();
        assert!(
            warm.iterations <= 2,
            "re-fit of a converged mixture took {} iterations",
            warm.iterations
        );
        assert!((warm.low.mean - cold.low.mean).abs() < 1e-6);
        assert!((warm.high.mean - cold.high.mean).abs() < 1e-6);
    }

    #[test]
    fn warm_fit_tracks_a_perturbed_sample_cheaply() {
        let data = bimodal(6, 300, 10.0, 2.0, 300, 80.0, 4.0);
        let cold = Gmm2::fit(&data).unwrap();
        let mut shifted = data.clone();
        shifted.truncate(shifted.len() - 5);
        shifted.extend([81.0, 82.5, 79.0, 9.5, 11.0]);
        let warm = Gmm2::fit_warm(&weighted(&shifted), &cold).unwrap();
        let cold_again = Gmm2::fit(&shifted).unwrap();
        assert!(
            warm.iterations < cold_again.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold_again.iterations
        );
        assert!((warm.low.mean - cold_again.low.mean).abs() < 0.5);
        assert!((warm.high.mean - cold_again.high.mean).abs() < 0.5);
    }

    #[test]
    fn warm_fit_degenerate_inputs_return_none() {
        let prev = Gmm2::fit(&[0.0, 1.0, 10.0, 11.0]).unwrap();
        assert!(Gmm2::fit_warm(&[], &prev).is_none());
        assert!(Gmm2::fit_warm(&[(3.0, 5)], &prev).is_none());
        // Counts summing below 2 are rejected like a 1-point sample.
        assert!(Gmm2::fit_warm(&[(1.0, 0), (2.0, 0)], &prev).is_none());
    }

    #[test]
    fn weighted_multiset_fit_equals_expanded_sample_fit() {
        // Ties collapsed to (value, count) must drive EM to the same
        // mixture as the expanded duplicates.
        let mut data = bimodal(7, 200, 5.0, 1.0, 200, 50.0, 3.0);
        data.extend_from_slice(&[5.5; 40]);
        data.extend_from_slice(&[49.5; 40]);
        let cold = Gmm2::fit(&data).unwrap();
        let warm = Gmm2::fit_warm(&weighted(&data), &cold).unwrap();
        assert!((warm.low.mean - cold.low.mean).abs() < 1e-6);
        assert!((warm.high.mean - cold.high.mean).abs() < 1e-6);
        assert!((warm.low.weight - cold.low.weight).abs() < 1e-6);
    }
}
