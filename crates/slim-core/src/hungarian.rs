//! Exact maximum-weight bipartite matching (Hungarian / Kuhn-Munkres).
//!
//! The paper notes the assignment problem has "many optimal and
//! approximate solutions" and adopts a greedy heuristic for SLIM. This
//! exact `O(n³)` solver exists to quantify the greedy heuristic's regret
//! in tests and the ablation benches — it is not on the hot path.

/// Solves max-weight assignment on an `n × m` weight matrix
/// (`weights[i][j]`, may be negative; unassigned pairs count as 0).
/// Returns, for each row `i`, `Some(j)` if assigning improves the total,
/// plus the achieved total weight.
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> (Vec<Option<usize>>, f64) {
    let n = weights.len();
    let m = weights.iter().map(Vec::len).max().unwrap_or(0);
    if n == 0 || m == 0 {
        return (vec![None; n], 0.0);
    }
    // Pad to a square cost matrix; convert max-weight to min-cost.
    // Only non-negative weights are worth assigning, so clamp at 0 and
    // strip zero-value assignments at the end.
    let size = n.max(m);
    let big = weights
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    let mut cost = vec![vec![big; size]; size];
    for (i, row) in weights.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            cost[i][j] = big - w.max(0.0);
        }
    }

    // Jonker-style O(n³) Hungarian with potentials (1-based helpers).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; size + 1];
    let mut v = vec![0.0; size + 1];
    let mut p = vec![0usize; size + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; size + 1];
    for i in 1..=size {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; size + 1];
        let mut used = vec![false; size + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=size {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=size {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    let mut total = 0.0;
    for (j, &i) in p.iter().enumerate().skip(1) {
        if i >= 1 && i <= n && j <= m {
            let w = weights[i - 1].get(j - 1).copied().unwrap_or(0.0);
            if w > 0.0 {
                assignment[i - 1] = Some(j - 1);
                total += w;
            }
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let (a, t) = max_weight_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn single_cell() {
        let (a, t) = max_weight_assignment(&[vec![3.5]]);
        assert_eq!(a, vec![Some(0)]);
        assert_eq!(t, 3.5);
    }

    #[test]
    fn beats_greedy_on_classic_counterexample() {
        // Greedy picks 10 (total 10); optimal is 9 + 9 = 18.
        let w = vec![vec![10.0, 9.0], vec![9.0, 0.0]];
        let (a, t) = max_weight_assignment(&w);
        assert_eq!(t, 18.0);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_matrices() {
        // 2 rows, 3 cols.
        let w = vec![vec![1.0, 5.0, 2.0], vec![7.0, 1.0, 1.0]];
        let (a, t) = max_weight_assignment(&w);
        assert_eq!(t, 12.0);
        assert_eq!(a, vec![Some(1), Some(0)]);
        // 3 rows, 2 cols.
        let w = vec![vec![1.0, 5.0], vec![7.0, 1.0], vec![6.0, 6.0]];
        let (a, t) = max_weight_assignment(&w);
        assert_eq!(t, 7.0 + 6.0); // rows 1 and 2 assigned; row 0 unmatched
        assert_eq!(a, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn negative_weights_left_unassigned() {
        let w = vec![vec![-5.0, -2.0], vec![-1.0, -9.0]];
        let (a, t) = max_weight_assignment(&w);
        assert_eq!(a, vec![None, None]);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn identity_is_optimal_when_diagonal_dominates() {
        let n = 6;
        let mut w = vec![vec![1.0; n]; n];
        for (i, row) in w.iter_mut().enumerate() {
            row[i] = 10.0;
        }
        let (a, t) = max_weight_assignment(&w);
        assert_eq!(t, 60.0);
        for (i, ai) in a.iter().enumerate() {
            assert_eq!(*ai, Some(i));
        }
    }

    #[test]
    fn exhaustive_check_small_random() {
        // Compare against brute force on 4×4 matrices.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let w: Vec<Vec<f64>> = (0..4)
                .map(|_| (0..4).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect();
            let (_, t) = max_weight_assignment(&w);
            // Brute force over all permutations.
            let mut best = 0.0f64;
            for p in &permutations(4) {
                let s: f64 = p.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
                best = best.max(s);
            }
            assert!((t - best).abs() < 1e-9, "hungarian {t} vs brute {best}");
        }
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        fn go(cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
            let n = used.len();
            if cur.len() == n {
                out.push(cur.clone());
                return;
            }
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    cur.push(j);
                    go(cur, used, out);
                    cur.pop();
                    used[j] = false;
                }
            }
        }
        let mut out = Vec::new();
        go(&mut Vec::new(), &mut vec![false; n], &mut out);
        out
    }
}
