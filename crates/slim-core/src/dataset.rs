//! Location datasets: collections of records grouped by entity.

use std::collections::HashMap;

use crate::record::{EntityId, Record, Timestamp};

/// An in-memory location dataset, with records grouped per entity and
/// sorted by time within each entity.
#[derive(Debug, Clone, Default)]
pub struct LocationDataset {
    /// Entity id → its records, time-sorted.
    per_entity: HashMap<EntityId, Vec<Record>>,
    total_records: usize,
}

impl LocationDataset {
    /// Builds a dataset from an unordered record stream.
    pub fn from_records(records: impl IntoIterator<Item = Record>) -> Self {
        let mut per_entity: HashMap<EntityId, Vec<Record>> = HashMap::new();
        let mut total = 0usize;
        for r in records {
            per_entity.entry(r.entity).or_default().push(r);
            total += 1;
        }
        for recs in per_entity.values_mut() {
            recs.sort_by_key(|r| r.time);
        }
        Self {
            per_entity,
            total_records: total,
        }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.per_entity.len()
    }

    /// Total number of records.
    pub fn num_records(&self) -> usize {
        self.total_records
    }

    /// Iterator over entity ids (arbitrary order).
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.per_entity.keys().copied()
    }

    /// Entity ids, sorted — useful for deterministic iteration.
    pub fn entities_sorted(&self) -> Vec<EntityId> {
        let mut v: Vec<_> = self.per_entity.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Records of one entity (time-sorted), or an empty slice.
    pub fn records_of(&self, e: EntityId) -> &[Record] {
        self.per_entity.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether an entity exists in the dataset.
    pub fn contains(&self, e: EntityId) -> bool {
        self.per_entity.contains_key(&e)
    }

    /// The min/max timestamps across all records, or `None` if empty.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let mut span: Option<(Timestamp, Timestamp)> = None;
        for recs in self.per_entity.values() {
            let (Some(first), Some(last)) = (recs.first(), recs.last()) else {
                continue;
            };
            span = Some(match span {
                None => (first.time, last.time),
                Some((lo, hi)) => (lo.min(first.time), hi.max(last.time)),
            });
        }
        span
    }

    /// Drops entities with `min_records` or fewer records. The paper
    /// ignores entities with ≤ 5 records after downsampling (§5.1).
    pub fn filter_min_records(&mut self, min_records: usize) {
        let mut removed = 0usize;
        self.per_entity.retain(|_, recs| {
            if recs.len() > min_records {
                true
            } else {
                removed += recs.len();
                false
            }
        });
        self.total_records -= removed;
    }

    /// Average number of records per entity (0 if empty).
    pub fn avg_records_per_entity(&self) -> f64 {
        if self.per_entity.is_empty() {
            0.0
        } else {
            self.total_records as f64 / self.per_entity.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn rec(e: u64, t: i64) -> Record {
        Record::new(EntityId(e), LatLng::from_degrees(0.0, 0.0), Timestamp(t))
    }

    #[test]
    fn groups_and_sorts() {
        let ds = LocationDataset::from_records(vec![rec(1, 30), rec(2, 10), rec(1, 10)]);
        assert_eq!(ds.num_entities(), 2);
        assert_eq!(ds.num_records(), 3);
        let times: Vec<i64> = ds
            .records_of(EntityId(1))
            .iter()
            .map(|r| r.time.secs())
            .collect();
        assert_eq!(times, vec![10, 30]);
    }

    #[test]
    fn time_span_across_entities() {
        let ds = LocationDataset::from_records(vec![rec(1, 30), rec(2, 5), rec(3, 99)]);
        assert_eq!(ds.time_span(), Some((Timestamp(5), Timestamp(99))));
    }

    #[test]
    fn empty_dataset() {
        let ds = LocationDataset::from_records(Vec::new());
        assert_eq!(ds.num_entities(), 0);
        assert!(ds.time_span().is_none());
        assert_eq!(ds.avg_records_per_entity(), 0.0);
    }

    #[test]
    fn filter_min_records_drops_small_entities() {
        let mut ds =
            LocationDataset::from_records(vec![rec(1, 1), rec(1, 2), rec(1, 3), rec(2, 1)]);
        ds.filter_min_records(2);
        assert!(ds.contains(EntityId(1)));
        assert!(!ds.contains(EntityId(2)));
        assert_eq!(ds.num_records(), 3);
    }

    #[test]
    fn records_of_missing_entity_is_empty() {
        let ds = LocationDataset::from_records(vec![rec(1, 1)]);
        assert!(ds.records_of(EntityId(9)).is_empty());
    }

    #[test]
    fn entities_sorted_is_sorted() {
        let ds = LocationDataset::from_records(vec![rec(5, 1), rec(2, 1), rec(9, 1)]);
        assert_eq!(
            ds.entities_sorted(),
            vec![EntityId(2), EntityId(5), EntityId(9)]
        );
    }
}
