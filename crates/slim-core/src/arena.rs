//! Columnar (struct-of-arrays) storage for mobility histories.
//!
//! [`crate::history::MobilityHistory`] is an array-of-structs: each
//! entity owns a `BTreeMap` of per-window bin vectors behind a hash
//! lookup, so a scan-heavy scoring pass chases pointers for every
//! window of every pair. A [`HistoryArena`] stores the same leaf bins
//! of *many* entities in three parallel columns —
//!
//! ```text
//! directory (per entity)        parallel column vecs
//! ┌─────────┬───────────────┐   wins:   [w0 w0 w1 w1 w1 | w0 w2 | …]
//! │ entity  │ off len cap   │   cells:  [c3 c9 c1 c4 c7 | c2 c5 | …]
//! │ 42      │ 0   5   8     │──► counts: [2  1  1  3  1 | 1  4  | …]
//! │ 17      │ 8   2   4     │   └── entity 42 ──┘ └─ 17 ─┘
//! └─────────┴───────────────┘
//! ```
//!
//! — with each entity a contiguous index range: `wins` ascending, and
//! cells sorted within each window run (the exact order
//! `MobilityHistory::bins_in` exposes, which is what keeps scoring over
//! arena slices bit-identical to scoring over per-entity structs).
//!
//! * **Append** grows an entity in place while its range has slack and
//!   relocates it to the column tail with a doubled chunk otherwise
//!   (tail-chunk growth — an O(1) amortized copy, no global shifting).
//! * **Window eviction** is a *range advance* when the evicted window
//!   is the range's leading run (the common case: sliding-window expiry
//!   walks windows in ascending order), and an in-range shift
//!   otherwise.
//! * Abandoned slots (relocations, advanced-over prefixes, tombstoned
//!   entities) are reclaimed by a periodic **compaction** pass once
//!   they outnumber the live bins; [`HistoryArena::compactions`] counts
//!   the passes for telemetry.
//! * A fully evicted entity leaves a tombstone in the directory whose
//!   **generation** counter is bumped if the entity returns — unit
//!   tests and (future) snapshot consumers can detect range reuse.

use std::collections::BTreeMap;
use std::collections::HashMap;

use geocell::CellId;

use crate::history::MobilityHistory;
use crate::record::EntityId;
use crate::tree::CellCounts;
use crate::window::WindowIdx;

/// Smallest tail chunk allocated for a fresh or relocated entity.
const MIN_CHUNK: usize = 4;

/// Compaction floor: dead slots must exceed both this and the live bin
/// count before a pass runs, so small arenas never churn.
const COMPACT_MIN_DEAD: usize = 64;

/// Directory entry: one entity's contiguous column range plus the
/// per-window record counts eviction needs to unwind `num_records`.
#[derive(Debug, Clone, Default)]
struct EntitySlot {
    off: usize,
    len: usize,
    /// Physical slots reserved at `off` (`len ≤ cap`); the slack is
    /// in-place append room.
    cap: usize,
    /// Bumped every time an emptied entity is re-created.
    generation: u32,
    /// Explicitly tombstoned via [`HistoryArena::remove_entity`].
    dead: bool,
    num_records: u32,
    /// Records per window, sorted by window.
    window_records: Vec<(WindowIdx, u32)>,
}

/// A struct-of-arrays arena holding the leaf bins of many mobility
/// histories. See the module docs for the layout.
#[derive(Debug, Default)]
pub struct HistoryArena {
    wins: Vec<WindowIdx>,
    cells: Vec<CellId>,
    counts: Vec<u32>,
    dir: HashMap<EntityId, EntitySlot>,
    /// Bins currently reachable through the directory.
    live_bins: usize,
    /// Physically abandoned slots (not reusable slack) awaiting
    /// compaction.
    dead_slots: usize,
    /// Directory entries that are not tombstones.
    live_entities: usize,
    compactions: u64,
}

/// A borrowed view of one entity's columns: `wins` ascending with one
/// entry per bin, `cells` sorted within each window run, `counts`
/// parallel to both.
#[derive(Debug, Clone, Copy)]
pub struct EntityView<'a> {
    /// Window index of each bin (ascending, one entry per bin).
    pub wins: &'a [WindowIdx],
    /// Cell id of each bin (sorted within a window run).
    pub cells: &'a [CellId],
    /// Record count of each bin.
    pub counts: &'a [u32],
    num_records: u32,
}

impl<'a> EntityView<'a> {
    /// Total bins, `|H_u|`.
    pub fn num_bins(&self) -> usize {
        self.wins.len()
    }

    /// Total records aggregated into this entity.
    pub fn num_records(&self) -> u32 {
        self.num_records
    }

    /// The `(cells, counts)` column slices of one window (both empty if
    /// the window has no bins) — the exact content and order of
    /// [`MobilityHistory::bins_in`].
    pub fn window_run(&self, w: WindowIdx) -> (&'a [CellId], &'a [u32]) {
        let r0 = self.wins.partition_point(|&x| x < w);
        let r1 = r0 + self.wins[r0..].partition_point(|&x| x == w);
        (&self.cells[r0..r1], &self.counts[r0..r1])
    }

    /// Non-empty windows, ascending (run starts of `wins`).
    pub fn windows(&self) -> impl Iterator<Item = WindowIdx> + 'a {
        let wins = self.wins;
        let mut i = 0;
        std::iter::from_fn(move || {
            let w = *wins.get(i)?;
            while i < wins.len() && wins[i] == w {
                i += 1;
            }
            Some(w)
        })
    }
}

impl HistoryArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record's bins to `e` (creating or resurrecting the
    /// entity as needed): `cells` must be sorted and deduplicated
    /// ([`crate::history::record_cells`] output), `w` the record's
    /// window. Returns the cells that created *new* bins (for document-
    /// frequency maintenance) and whether the entity was created by
    /// this call — the same contract as
    /// [`MobilityHistory::append`] plus entity creation.
    pub fn append(&mut self, e: EntityId, w: WindowIdx, cells: &[CellId]) -> (Vec<CellId>, bool) {
        let created = match self.dir.get_mut(&e) {
            Some(slot) if slot.len > 0 => false,
            Some(slot) => {
                // Emptied or tombstoned: resurrect under a new
                // generation, abandoning any leftover slack.
                slot.generation += 1;
                slot.off = self.wins.len();
                self.dead_slots += slot.cap;
                slot.cap = 0;
                slot.dead = false;
                true
            }
            None => {
                self.dir.insert(
                    e,
                    EntitySlot {
                        off: self.wins.len(),
                        ..EntitySlot::default()
                    },
                );
                true
            }
        };
        if created {
            self.live_entities += 1;
        }
        let mut new_bins = Vec::new();
        for &c in cells {
            if self.insert_bin(e, w, c) {
                new_bins.push(c);
            }
        }
        let slot = self.dir.get_mut(&e).expect("slot created above");
        slot.num_records += 1;
        match slot
            .window_records
            .binary_search_by_key(&w, |&(win, _)| win)
        {
            Ok(i) => slot.window_records[i].1 += 1,
            Err(i) => slot.window_records.insert(i, (w, 1)),
        }
        self.maybe_compact();
        (new_bins, created)
    }

    /// Bumps the bin `(e, w, c)` or inserts it; `true` if inserted.
    fn insert_bin(&mut self, e: EntityId, w: WindowIdx, c: CellId) -> bool {
        let slot = &self.dir[&e];
        let (off, len) = (slot.off, slot.len);
        let wins = &self.wins[off..off + len];
        let r0 = wins.partition_point(|&x| x < w);
        let r1 = r0 + wins[r0..].partition_point(|&x| x == w);
        match self.cells[off + r0..off + r1].binary_search(&c) {
            Ok(i) => {
                self.counts[off + r0 + i] += 1;
                false
            }
            Err(i) => {
                self.insert_slot(e, r0 + i, w, c);
                true
            }
        }
    }

    /// Inserts a new bin at range-relative position `pos`, shifting
    /// within the slack when there is room and relocating the entity to
    /// the column tail with a doubled chunk otherwise.
    fn insert_slot(&mut self, e: EntityId, pos: usize, w: WindowIdx, c: CellId) {
        let slot = self.dir.get_mut(&e).expect("slot exists");
        let (off, len, cap) = (slot.off, slot.len, slot.cap);
        if len < cap {
            let abs = off + pos;
            self.wins.copy_within(abs..off + len, abs + 1);
            self.cells.copy_within(abs..off + len, abs + 1);
            self.counts.copy_within(abs..off + len, abs + 1);
            self.wins[abs] = w;
            self.cells[abs] = c;
            self.counts[abs] = 1;
            slot.len += 1;
        } else {
            // Tail-chunk growth: copy the range to the tail with the
            // new bin spliced in and a doubled slack behind it. The
            // slack is filled with copies of the inserted bin — never
            // read until overwritten.
            let new_cap = (len + 1).next_power_of_two().max(MIN_CHUNK);
            let new_off = self.wins.len();
            self.wins.extend_from_within(off..off + pos);
            self.cells.extend_from_within(off..off + pos);
            self.counts.extend_from_within(off..off + pos);
            self.wins.push(w);
            self.cells.push(c);
            self.counts.push(1);
            self.wins.extend_from_within(off + pos..off + len);
            self.cells.extend_from_within(off + pos..off + len);
            self.counts.extend_from_within(off + pos..off + len);
            self.wins.resize(new_off + new_cap, w);
            self.cells.resize(new_off + new_cap, c);
            self.counts.resize(new_off + new_cap, 0);
            self.dead_slots += cap;
            let slot = self.dir.get_mut(&e).expect("slot exists");
            slot.off = new_off;
            slot.len = len + 1;
            slot.cap = new_cap;
        }
        self.live_bins += 1;
    }

    /// Drops every bin of window `w` from entity `e`, unwinding the
    /// record counters. Returns the removed bins in
    /// [`MobilityHistory::evict_window`]'s form. The caller decides
    /// what an emptied entity means (see
    /// [`HistoryArena::remove_entity`]).
    pub fn evict_window(&mut self, e: EntityId, w: WindowIdx) -> CellCounts {
        let Some(slot) = self.dir.get_mut(&e) else {
            return CellCounts::new();
        };
        let (off, len) = (slot.off, slot.len);
        let wins = &self.wins[off..off + len];
        let r0 = wins.partition_point(|&x| x < w);
        let r1 = r0 + wins[r0..].partition_point(|&x| x == w);
        if r0 == r1 {
            return CellCounts::new();
        }
        let run = r1 - r0;
        let out: CellCounts = (off + r0..off + r1)
            .map(|i| (self.cells[i], self.counts[i]))
            .collect();
        if r0 == 0 {
            // Range advance: expiry walks windows in ascending order,
            // so the evicted run is almost always the leading one.
            slot.off += run;
            slot.cap -= run;
            self.dead_slots += run;
        } else {
            // Mid-range eviction: shift the tail left; the freed slots
            // become slack at the end of the range.
            self.wins.copy_within(off + r1..off + len, off + r0);
            self.cells.copy_within(off + r1..off + len, off + r0);
            self.counts.copy_within(off + r1..off + len, off + r0);
        }
        slot.len -= run;
        if let Ok(i) = slot
            .window_records
            .binary_search_by_key(&w, |&(win, _)| win)
        {
            let (_, cnt) = slot.window_records.remove(i);
            slot.num_records -= cnt;
        }
        if slot.len == 0 {
            // Evicted to empty: the entity is gone observably (its
            // slack is reclaimed at tombstone or resurrection time).
            self.live_entities -= 1;
        }
        self.live_bins -= run;
        self.maybe_compact();
        out
    }

    /// Tombstones `e`: the directory entry stays (preserving the
    /// generation counter) but the entity no longer exists observably.
    /// Returns `false` if the entity was absent or already tombstoned.
    pub fn remove_entity(&mut self, e: EntityId) -> bool {
        let Some(slot) = self.dir.get_mut(&e) else {
            return false;
        };
        if slot.dead {
            return false;
        }
        if slot.len > 0 {
            self.live_entities -= 1;
        }
        self.live_bins -= slot.len;
        self.dead_slots += slot.cap;
        slot.len = 0;
        slot.cap = 0;
        slot.num_records = 0;
        slot.window_records.clear();
        slot.dead = true;
        self.maybe_compact();
        true
    }

    /// The live view of `e`'s columns, `None` for absent or tombstoned
    /// entities.
    pub fn view(&self, e: EntityId) -> Option<EntityView<'_>> {
        let slot = self.dir.get(&e)?;
        if slot.len == 0 {
            return None;
        }
        Some(EntityView {
            wins: &self.wins[slot.off..slot.off + slot.len],
            cells: &self.cells[slot.off..slot.off + slot.len],
            counts: &self.counts[slot.off..slot.off + slot.len],
            num_records: slot.num_records,
        })
    }

    /// Total records of `e` (0 for absent/tombstoned entities).
    pub fn num_records(&self, e: EntityId) -> u32 {
        self.dir.get(&e).map(|s| s.num_records).unwrap_or(0)
    }

    /// The generation of `e`'s directory entry (0 on first creation,
    /// bumped per tombstone resurrection); `None` if never seen.
    pub fn generation(&self, e: EntityId) -> Option<u32> {
        self.dir.get(&e).map(|s| s.generation)
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.live_entities
    }

    /// Whether the arena holds no live entities.
    pub fn is_empty(&self) -> bool {
        self.live_entities == 0
    }

    /// Live entity ids, unordered.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.dir.iter().filter(|(_, s)| s.len > 0).map(|(&e, _)| e)
    }

    /// Compaction passes run so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Rebuilds `e` as an owned [`MobilityHistory`] (the finalization
    /// path); `None` for absent/tombstoned entities.
    pub fn materialize(&self, e: EntityId) -> Option<MobilityHistory> {
        let slot = self.dir.get(&e)?;
        if slot.len == 0 {
            return None;
        }
        let (off, len) = (slot.off, slot.len);
        let mut leaves: BTreeMap<WindowIdx, CellCounts> = BTreeMap::new();
        let mut i = off;
        while i < off + len {
            let w = self.wins[i];
            let mut run = CellCounts::new();
            while i < off + len && self.wins[i] == w {
                run.push((self.cells[i], self.counts[i]));
                i += 1;
            }
            leaves.insert(w, run);
        }
        let window_records = slot.window_records.iter().copied().collect();
        Some(MobilityHistory::from_leaves(e, leaves, window_records))
    }

    /// One entity's live columns plus the per-window record counts —
    /// the checkpoint-serialization export. The columns come back in
    /// exactly the canonical order [`EntityView`] exposes, so
    /// [`HistoryArena::restore_entity`] round-trips bit-identically.
    /// `None` for absent/tombstoned entities.
    #[allow(clippy::type_complexity)]
    pub fn export_entity(
        &self,
        e: EntityId,
    ) -> Option<(Vec<WindowIdx>, Vec<CellId>, Vec<u32>, Vec<(WindowIdx, u32)>)> {
        let slot = self.dir.get(&e)?;
        if slot.len == 0 {
            return None;
        }
        let (off, len) = (slot.off, slot.len);
        Some((
            self.wins[off..off + len].to_vec(),
            self.cells[off..off + len].to_vec(),
            self.counts[off..off + len].to_vec(),
            slot.window_records.clone(),
        ))
    }

    /// Restores one entity from a [`HistoryArena::export_entity`] dump:
    /// the columns land contiguously at the tail (no slack, generation
    /// 0) and the counters are rebuilt, so a recovered arena answers
    /// every query exactly like the checkpointed one. The entity must
    /// not already exist (recovery fills a fresh arena).
    pub fn restore_entity(
        &mut self,
        e: EntityId,
        wins: Vec<WindowIdx>,
        cells: Vec<CellId>,
        counts: Vec<u32>,
        window_records: Vec<(WindowIdx, u32)>,
    ) {
        let n = wins.len();
        debug_assert!(n > 0, "restoring an empty entity");
        debug_assert!(cells.len() == n && counts.len() == n, "ragged columns");
        debug_assert!(!self.dir.contains_key(&e), "entity restored twice");
        let slot = EntitySlot {
            off: self.wins.len(),
            len: n,
            cap: n,
            generation: 0,
            dead: false,
            num_records: window_records.iter().map(|&(_, c)| c).sum(),
            window_records,
        };
        self.wins.extend_from_slice(&wins);
        self.cells.extend_from_slice(&cells);
        self.counts.extend_from_slice(&counts);
        self.dir.insert(e, slot);
        self.live_bins += n;
        self.live_entities += 1;
    }

    fn maybe_compact(&mut self) {
        if self.dead_slots >= COMPACT_MIN_DEAD && self.dead_slots > self.live_bins {
            self.compact();
        }
    }

    /// Rewrites the columns with every live range contiguous (in
    /// current-offset order) and no slack, dropping all dead slots.
    pub fn compact(&mut self) {
        let mut order: Vec<EntityId> = self
            .dir
            .iter()
            .filter(|(_, s)| s.len > 0)
            .map(|(&e, _)| e)
            .collect();
        order.sort_unstable_by_key(|e| self.dir[e].off);
        let mut wins = Vec::with_capacity(self.live_bins);
        let mut cells = Vec::with_capacity(self.live_bins);
        let mut counts = Vec::with_capacity(self.live_bins);
        for e in order {
            let slot = self.dir.get_mut(&e).expect("collected above");
            let (off, len) = (slot.off, slot.len);
            slot.off = wins.len();
            slot.cap = len;
            wins.extend_from_slice(&self.wins[off..off + len]);
            cells.extend_from_slice(&self.cells[off..off + len]);
            counts.extend_from_slice(&self.counts[off..off + len]);
        }
        self.wins = wins;
        self.cells = cells;
        self.counts = counts;
        self.dead_slots = 0;
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn cell(k: u64) -> CellId {
        CellId::from_latlng(
            LatLng::from_degrees(10.0 + 0.01 * k as f64, 20.0 + 0.01 * k as f64),
            16,
        )
    }

    fn sorted(mut v: Vec<CellId>) -> Vec<CellId> {
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Appends must mirror `MobilityHistory::append` bin for bin.
    #[test]
    fn append_matches_mobility_history() {
        let mut arena = HistoryArena::new();
        let mut h = MobilityHistory::empty(EntityId(1));
        let records: Vec<(WindowIdx, Vec<CellId>)> = vec![
            (3, sorted(vec![cell(1)])),
            (1, sorted(vec![cell(2), cell(3)])),
            (3, sorted(vec![cell(1), cell(4)])),
            (2, sorted(vec![cell(5)])),
            (1, sorted(vec![cell(2)])),
        ];
        for (w, cells) in &records {
            let (new_a, _) = arena.append(EntityId(1), *w, cells);
            let new_h = h.append(*w, cells);
            assert_eq!(new_a, new_h, "new-bin reports must agree");
        }
        let v = arena.view(EntityId(1)).unwrap();
        assert_eq!(v.num_bins(), h.num_bins());
        assert_eq!(v.num_records(), h.num_records());
        assert_eq!(
            v.windows().collect::<Vec<_>>(),
            h.windows().collect::<Vec<_>>()
        );
        for w in h.windows() {
            let (cells, counts) = v.window_run(w);
            let legacy = h.bins_in(w);
            assert_eq!(cells.len(), legacy.len());
            for (i, &(c, n)) in legacy.iter().enumerate() {
                assert_eq!((cells[i], counts[i]), (c, n), "window {w} bin {i}");
            }
        }
        // Absent windows yield empty runs, like `bins_in`.
        assert_eq!(v.window_run(99), (&[][..], &[][..]));
    }

    /// Evicting the leading window advances the range; evicting a
    /// middle window shifts — both must match the per-entity structs.
    #[test]
    fn evict_matches_mobility_history() {
        let mut arena = HistoryArena::new();
        let mut h = MobilityHistory::empty(EntityId(7));
        for w in 0..5u32 {
            let cs = sorted(vec![cell(w as u64), cell(w as u64 + 1)]);
            arena.append(EntityId(7), w, &cs);
            h.append(w, &cs);
        }
        // Leading run (range advance).
        assert_eq!(arena.evict_window(EntityId(7), 0), h.evict_window(0));
        // Mid-range run (shift).
        assert_eq!(arena.evict_window(EntityId(7), 3), h.evict_window(3));
        // Absent window is a no-op on both.
        assert_eq!(arena.evict_window(EntityId(7), 3), h.evict_window(3));
        let v = arena.view(EntityId(7)).unwrap();
        assert_eq!(v.num_records(), h.num_records());
        assert_eq!(v.num_bins(), h.num_bins());
        assert_eq!(v.windows().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn tombstone_and_generation_reuse() {
        let mut arena = HistoryArena::new();
        let cs = sorted(vec![cell(1)]);
        arena.append(EntityId(5), 0, &cs);
        assert_eq!(arena.generation(EntityId(5)), Some(0));
        assert_eq!(arena.len(), 1);
        arena.evict_window(EntityId(5), 0);
        assert!(arena.remove_entity(EntityId(5)));
        assert!(arena.view(EntityId(5)).is_none());
        assert_eq!(arena.num_records(EntityId(5)), 0);
        assert_eq!(arena.len(), 0);
        // A second removal is a no-op.
        assert!(!arena.remove_entity(EntityId(5)));
        // Resurrection bumps the generation and reports creation.
        let (_, created) = arena.append(EntityId(5), 9, &cs);
        assert!(created);
        assert_eq!(arena.generation(EntityId(5)), Some(1));
        assert_eq!(arena.len(), 1);
        assert_eq!(
            arena
                .view(EntityId(5))
                .unwrap()
                .windows()
                .collect::<Vec<_>>(),
            vec![9]
        );
    }

    /// Eviction churn beyond the floor triggers compaction, and a
    /// compacted arena answers every query unchanged.
    #[test]
    fn compaction_preserves_content() {
        let mut arena = HistoryArena::new();
        let mut reference: Vec<MobilityHistory> = Vec::new();
        for e in 0..8u64 {
            let mut h = MobilityHistory::empty(EntityId(e));
            for w in 0..40u32 {
                let cs = sorted(vec![cell(e * 100 + w as u64)]);
                arena.append(EntityId(e), w, &cs);
                h.append(w, &cs);
            }
            reference.push(h);
        }
        // Slide a window over everything: lots of leading-run advances.
        for w in 0..35u32 {
            for e in 0..8u64 {
                arena.evict_window(EntityId(e), w);
                reference[e as usize].evict_window(w);
            }
        }
        assert!(arena.compactions() > 0, "churn must have compacted");
        for e in 0..8u64 {
            let v = arena.view(EntityId(e)).unwrap();
            let h = &reference[e as usize];
            assert_eq!(v.num_bins(), h.num_bins());
            assert_eq!(v.num_records(), h.num_records());
            for w in h.windows() {
                let (cells, counts) = v.window_run(w);
                let legacy = h.bins_in(w);
                assert_eq!(cells.len(), legacy.len());
                for (i, &(c, n)) in legacy.iter().enumerate() {
                    assert_eq!((cells[i], counts[i]), (c, n));
                }
            }
        }
        // Appending after compaction still works (ranges relocated).
        let (new_bins, created) = arena.append(EntityId(3), 50, &sorted(vec![cell(999)]));
        assert!(!created);
        assert_eq!(new_bins.len(), 1);
    }

    /// Materialized histories must round-trip through the batch
    /// constructor: same bins, counters, and query behaviour.
    #[test]
    fn materialize_round_trips() {
        let mut arena = HistoryArena::new();
        let mut h = MobilityHistory::empty(EntityId(2));
        for (w, k) in [(0u32, 1u64), (0, 2), (4, 1), (7, 3)] {
            let cs = sorted(vec![cell(k), cell(k + 1)]);
            arena.append(EntityId(2), w, &cs);
            h.append(w, &cs);
        }
        let m = arena.materialize(EntityId(2)).unwrap();
        assert_eq!(m.entity(), EntityId(2));
        assert_eq!(m.num_bins(), h.num_bins());
        assert_eq!(m.num_records(), h.num_records());
        assert_eq!(m.num_windows(), h.num_windows());
        for w in h.windows() {
            assert_eq!(m.bins_in(w), h.bins_in(w), "window {w}");
        }
        assert_eq!(m.dominating_cell(0, 8, 12), h.dominating_cell(0, 8, 12));
        assert!(arena.materialize(EntityId(99)).is_none());
    }
}
