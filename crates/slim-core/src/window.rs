//! Temporal windowing.
//!
//! SLIM splits time into consecutive fixed-width windows (paper §2.3);
//! window indices are the temporal half of a *time-location bin*. Both
//! datasets being linked must use the same scheme, otherwise "same
//! temporal window" is meaningless — the constructor of the linkage
//! pipeline enforces that by sharing one `WindowScheme`.

use serde::{Deserialize, Serialize};

use crate::record::Timestamp;

/// Index of a temporal window within a [`WindowScheme`].
pub type WindowIdx = u32;

/// A partition of the time axis into consecutive windows of equal width,
/// starting at `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowScheme {
    origin: i64,
    width_secs: i64,
}

impl WindowScheme {
    /// Creates a scheme with the given origin timestamp and window width.
    ///
    /// # Panics
    /// Panics if `width_secs` is not positive.
    pub fn new(origin: Timestamp, width_secs: i64) -> Self {
        assert!(width_secs > 0, "window width must be positive");
        Self {
            origin: origin.secs(),
            width_secs,
        }
    }

    /// Window width in seconds.
    #[inline]
    pub fn width_secs(&self) -> i64 {
        self.width_secs
    }

    /// The window containing `t`. Timestamps before the origin map to
    /// window 0 (callers are expected to pick `origin <= min(t)`).
    #[inline]
    pub fn window_of(&self, t: Timestamp) -> WindowIdx {
        let delta = t.secs() - self.origin;
        if delta < 0 {
            0
        } else {
            (delta / self.width_secs) as WindowIdx
        }
    }

    /// Inclusive start time of window `w`.
    #[inline]
    pub fn window_start(&self, w: WindowIdx) -> Timestamp {
        Timestamp(self.origin + w as i64 * self.width_secs)
    }

    /// Number of windows needed to cover timestamps in `[origin, end]`.
    pub fn num_windows(&self, end: Timestamp) -> u32 {
        self.window_of(end) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_basics() {
        let s = WindowScheme::new(Timestamp(1000), 60);
        assert_eq!(s.window_of(Timestamp(1000)), 0);
        assert_eq!(s.window_of(Timestamp(1059)), 0);
        assert_eq!(s.window_of(Timestamp(1060)), 1);
        assert_eq!(s.window_of(Timestamp(1000 + 60 * 99)), 99);
    }

    #[test]
    fn before_origin_clamps_to_zero() {
        let s = WindowScheme::new(Timestamp(1000), 60);
        assert_eq!(s.window_of(Timestamp(0)), 0);
    }

    #[test]
    fn window_start_inverts_window_of() {
        let s = WindowScheme::new(Timestamp(500), 900);
        for w in [0u32, 1, 7, 1000] {
            let start = s.window_start(w);
            assert_eq!(s.window_of(start), w);
            assert_eq!(s.window_of(Timestamp(start.secs() + 899)), w);
        }
    }

    #[test]
    fn num_windows_covers_span() {
        let s = WindowScheme::new(Timestamp(0), 900);
        assert_eq!(s.num_windows(Timestamp(0)), 1);
        assert_eq!(s.num_windows(Timestamp(899)), 1);
        assert_eq!(s.num_windows(Timestamp(900)), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = WindowScheme::new(Timestamp(0), 0);
    }
}
