//! Mobility histories: the paper's hierarchical summary representation.
//!
//! A mobility history distributes an entity's records over *time-location
//! bins*: the leaf temporal windows each hold the set of spatial grid
//! cells (at a configured level) the entity visited in that window,
//! together with record counts; internal tree nodes aggregate those counts
//! (see [`crate::tree`]). A [`HistorySet`] owns all histories of one
//! dataset plus the dataset-level statistics the similarity score needs:
//! average history size (for BM25-style length normalization) and
//! per-bin document frequencies (for the IDF award).

use std::collections::{BTreeMap, HashMap};

use geocell::CellId;

use crate::dataset::LocationDataset;
use crate::df::DfStats;
use crate::record::EntityId;
use crate::tree::{CellCounts, TemporalTree};
use crate::window::{WindowIdx, WindowScheme};

/// The grid cells one record maps to at the given level.
///
/// Point records map to one cell. Region records (paper §2.1) are copied
/// into every cell their disc touches; the disc is approximated by its
/// center plus eight compass points on the boundary, which covers all
/// touched cells exactly while the region diameter is below ~3 cell
/// widths — GPS accuracy discs versus city-block cells in practice.
pub fn record_cells(r: &crate::record::Record, level: u8) -> Vec<CellId> {
    let center = CellId::from_latlng(r.location, level);
    if !r.is_region() {
        return vec![center];
    }
    let mut cells = Vec::with_capacity(9);
    cells.push(center);
    for k in 0..8 {
        let bearing = k as f64 * std::f64::consts::TAU / 8.0;
        cells.push(CellId::from_latlng(
            r.location.offset(r.accuracy_m, bearing),
            level,
        ));
    }
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// One entity's mobility history.
#[derive(Debug, Clone)]
pub struct MobilityHistory {
    entity: EntityId,
    /// Leaf bins: window index → sorted `(cell, record count)`.
    leaves: BTreeMap<WindowIdx, CellCounts>,
    /// Total number of time-location bins (`|H_u|` in the paper).
    num_bins: usize,
    /// Total number of records aggregated.
    num_records: u32,
    /// Records per window. Differs from the bin-count sum for region
    /// records (one record, several cells); incremental eviction needs
    /// the true per-window record count to unwind `num_records`.
    window_records: BTreeMap<WindowIdx, u32>,
    /// Hierarchical aggregate for dominating-cell range queries.
    tree: TemporalTree,
}

impl MobilityHistory {
    /// Builds a history from records, binning with `scheme` at the given
    /// spatial `level`. `domain` is the total number of windows covered by
    /// the linkage run (shared across both datasets).
    pub fn build(
        entity: EntityId,
        records: &[crate::record::Record],
        scheme: &WindowScheme,
        level: u8,
        domain: u32,
    ) -> Self {
        let mut leaves: BTreeMap<WindowIdx, HashMap<CellId, u32>> = BTreeMap::new();
        let mut window_records: BTreeMap<WindowIdx, u32> = BTreeMap::new();
        let mut num_records = 0u32;
        for r in records {
            let w = scheme.window_of(r.time).min(domain.saturating_sub(1));
            for cell in record_cells(r, level) {
                *leaves.entry(w).or_default().entry(cell).or_insert(0) += 1;
            }
            *window_records.entry(w).or_insert(0) += 1;
            num_records += 1;
        }
        let leaves: BTreeMap<WindowIdx, CellCounts> = leaves
            .into_iter()
            .map(|(w, cells)| {
                let mut v: CellCounts = cells.into_iter().collect();
                v.sort_by_key(|&(c, _)| c);
                (w, v)
            })
            .collect();
        let num_bins = leaves.values().map(Vec::len).sum();
        let tree = TemporalTree::build(domain, leaves.iter().map(|(&w, c)| (w, c.clone())));
        Self {
            entity,
            leaves,
            num_bins,
            num_records,
            window_records,
            tree,
        }
    }

    /// Rebuilds a history from externally maintained leaves — the
    /// materialization path of [`crate::arena::HistoryArena`]. `leaves`
    /// must hold sorted `(cell, count)` bins per window and
    /// `window_records` the true per-window record counts (they differ
    /// for region records). Counters are derived and the temporal tree
    /// rebuilt, so the result answers every query exactly like a
    /// history maintained by [`MobilityHistory::append`] /
    /// [`MobilityHistory::evict_window`] over the same content.
    pub fn from_leaves(
        entity: EntityId,
        leaves: BTreeMap<WindowIdx, CellCounts>,
        window_records: BTreeMap<WindowIdx, u32>,
    ) -> Self {
        let num_bins = leaves.values().map(Vec::len).sum();
        let num_records = window_records.values().sum();
        let domain = leaves.keys().next_back().map(|&w| w + 1).unwrap_or(1);
        let tree = TemporalTree::build(domain, leaves.iter().map(|(&w, c)| (w, c.clone())));
        Self {
            entity,
            leaves,
            num_bins,
            num_records,
            window_records,
            tree,
        }
    }

    /// An empty history ready for incremental [`MobilityHistory::append`]
    /// calls — the streaming entry point. The temporal tree grows with
    /// the appended windows.
    pub fn empty(entity: EntityId) -> Self {
        Self {
            entity,
            leaves: BTreeMap::new(),
            num_bins: 0,
            num_records: 0,
            window_records: BTreeMap::new(),
            tree: TemporalTree::new(1),
        }
    }

    /// Appends one record's bins: `cells` must be the (sorted,
    /// deduplicated) [`record_cells`] output for the record, `w` its
    /// window. Returns the cells that created *new* bins in this history
    /// — the caller ([`HistorySet::append_record`]) uses them to maintain
    /// document frequencies incrementally.
    pub fn append(&mut self, w: WindowIdx, cells: &[CellId]) -> Vec<CellId> {
        let bins = self.leaves.entry(w).or_default();
        let mut new_bins = Vec::new();
        for &c in cells {
            match bins.binary_search_by_key(&c, |&(cell, _)| cell) {
                Ok(i) => bins[i].1 += 1,
                Err(i) => {
                    bins.insert(i, (c, 1));
                    new_bins.push(c);
                }
            }
        }
        self.num_bins += new_bins.len();
        self.num_records += 1;
        *self.window_records.entry(w).or_insert(0) += 1;
        let counts: CellCounts = cells.iter().map(|&c| (c, 1)).collect();
        self.tree.insert(w, &counts);
        new_bins
    }

    /// Drops every bin of window `w` (sliding-window expiry), unwinding
    /// the bin/record counters and the temporal tree. Returns the
    /// removed bins so callers can unwind dataset-level statistics.
    pub fn evict_window(&mut self, w: WindowIdx) -> CellCounts {
        let Some(bins) = self.leaves.remove(&w) else {
            return CellCounts::new();
        };
        self.num_bins -= bins.len();
        self.num_records -= self.window_records.remove(&w).unwrap_or(0);
        self.tree.remove_window(w);
        bins
    }

    /// The entity this history belongs to.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// All non-empty windows, ascending.
    pub fn windows(&self) -> impl Iterator<Item = WindowIdx> + '_ {
        self.leaves.keys().copied()
    }

    /// The bins of one window (sorted by cell id); empty if the window has
    /// no records.
    pub fn bins_in(&self, w: WindowIdx) -> &[(CellId, u32)] {
        self.leaves.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of time-location bins, `|H_u|`.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Number of records aggregated into this history.
    pub fn num_records(&self) -> u32 {
        self.num_records
    }

    /// Number of records in one window.
    pub fn records_in(&self, w: WindowIdx) -> u32 {
        self.bins_in(w).iter().map(|&(_, c)| c).sum()
    }

    /// The true per-window record counts, ascending by window. Differs
    /// from [`MobilityHistory::records_in`] for region records (one
    /// record lands in several cells); checkpoint serialization needs
    /// the exact counts so [`MobilityHistory::from_leaves`] round-trips.
    pub fn window_record_counts(&self) -> impl Iterator<Item = (WindowIdx, u32)> + '_ {
        self.window_records.iter().map(|(&w, &c)| (w, c))
    }

    /// Dominating grid cell over the window range `[lo, hi)`, coarsened to
    /// `level` (must be ≤ the history's bin level). `None` if no records.
    pub fn dominating_cell(&self, lo: WindowIdx, hi: WindowIdx, level: u8) -> Option<CellId> {
        self.tree.dominating_cell(lo, hi, level)
    }

    /// Number of non-empty windows.
    pub fn num_windows(&self) -> usize {
        self.leaves.len()
    }
}

/// All mobility histories of one dataset, plus dataset-level statistics.
#[derive(Debug, Clone)]
pub struct HistorySet {
    histories: HashMap<EntityId, MobilityHistory>,
    scheme: WindowScheme,
    spatial_level: u8,
    domain: u32,
    /// Document frequencies, total bins, entity count — kept in the
    /// shard-mergeable [`DfStats`] form so a sharded engine can maintain
    /// the same statistics as per-shard deltas (see [`crate::df`]).
    stats: DfStats,
}

impl HistorySet {
    /// Builds histories for every entity of `dataset`.
    ///
    /// `domain` must cover the whole linkage time span (use
    /// [`WindowScheme::num_windows`] on the max timestamp of *both*
    /// datasets so the two history sets agree).
    pub fn build(
        dataset: &LocationDataset,
        scheme: WindowScheme,
        spatial_level: u8,
        domain: u32,
    ) -> Self {
        let mut histories = HashMap::with_capacity(dataset.num_entities());
        let mut stats = DfStats::new();
        for e in dataset.entities() {
            let h =
                MobilityHistory::build(e, dataset.records_of(e), &scheme, spatial_level, domain);
            for w in h.windows().collect::<Vec<_>>() {
                for &(cell, _) in h.bins_in(w) {
                    stats.add_bin(w, cell);
                }
            }
            stats.add_entity();
            histories.insert(e, h);
        }
        Self {
            histories,
            scheme,
            spatial_level,
            domain,
            stats,
        }
    }

    /// An empty history set over a fixed scheme/level, ready for
    /// incremental [`HistorySet::append_record`] calls. The window
    /// domain grows with the appended records.
    ///
    /// This is the *single-map* incremental entry point, for library
    /// consumers maintaining one coherent set under updates; its unit
    /// tests pin the append/evict ↔ batch-build equivalence that the
    /// shared [`MobilityHistory`]/[`DfStats`] maintenance relies on.
    /// The sharded streaming engine uses the same primitives but owns
    /// its histories partitioned by entity hash, folding statistics
    /// through [`crate::df::DfDelta`]s and reassembling a set via
    /// [`HistorySet::from_parts`] only at finalization.
    pub fn new_incremental(scheme: WindowScheme, spatial_level: u8) -> Self {
        Self {
            histories: HashMap::new(),
            scheme,
            spatial_level,
            domain: 0,
            stats: DfStats::new(),
        }
    }

    /// Assembles a set from externally maintained parts — the sharded
    /// streaming engine's finalization path: each shard owns a disjoint
    /// slice of the histories, and `stats` is the barrier-merged
    /// [`DfStats`] over all of them. The caller is responsible for
    /// `stats` being consistent with `histories` (the engine maintains
    /// both from the same append/evict events); `num_entities` is
    /// asserted as a cheap consistency check.
    pub fn from_parts(
        scheme: WindowScheme,
        spatial_level: u8,
        domain: u32,
        histories: HashMap<EntityId, MobilityHistory>,
        stats: DfStats,
    ) -> Self {
        assert_eq!(
            stats.num_entities(),
            histories.len(),
            "DfStats entity count must match the assembled histories"
        );
        Self {
            histories,
            scheme,
            spatial_level,
            domain,
            stats,
        }
    }

    /// Appends one record to its entity's history (created on first
    /// touch), keeping document frequencies, total bin count, and the
    /// window domain exact. Returns the record's window index.
    ///
    /// An unbounded sequence of `append_record` calls over the records of
    /// a dataset produces a set identical to [`HistorySet::build`] on
    /// that dataset (same bins, statistics, and therefore scores) as long
    /// as no record precedes the scheme origin.
    pub fn append_record(&mut self, r: &crate::record::Record) -> WindowIdx {
        let cells = record_cells(r, self.spatial_level);
        let w = self.scheme.window_of(r.time);
        self.append_record_binned(r.entity, w, &cells);
        w
    }

    /// [`HistorySet::append_record`] with the spatial binning already
    /// done — the sharded streaming ingest path computes `cells` (the
    /// [`record_cells`] output at this set's spatial level) on worker
    /// threads and applies the appends serially.
    pub fn append_record_binned(&mut self, entity: EntityId, w: WindowIdx, cells: &[CellId]) {
        self.domain = self.domain.max(w + 1);
        let mut created = false;
        let h = self.histories.entry(entity).or_insert_with(|| {
            created = true;
            MobilityHistory::empty(entity)
        });
        let new_bins = h.append(w, cells);
        if created {
            self.stats.add_entity();
        }
        for c in new_bins {
            self.stats.add_bin(w, c);
        }
    }

    /// Evicts window `w` from one entity's history (sliding-window
    /// expiry), unwinding document frequencies and the total bin count.
    /// A history left empty is removed entirely, so `|U|` (and with it
    /// the idf scale) tracks the live window content. Returns the
    /// evicted bins.
    pub fn evict_entity_window(&mut self, entity: EntityId, w: WindowIdx) -> CellCounts {
        let Some(h) = self.histories.get_mut(&entity) else {
            return CellCounts::new();
        };
        let bins = h.evict_window(w);
        let emptied = h.num_records() == 0;
        for &(c, _) in &bins {
            self.stats.remove_bin(w, c);
        }
        if emptied {
            self.histories.remove(&entity);
            self.stats.remove_entity();
        }
        bins
    }

    /// The history of one entity.
    pub fn history(&self, e: EntityId) -> Option<&MobilityHistory> {
        self.histories.get(&e)
    }

    /// Iterator over all histories (arbitrary order).
    pub fn histories(&self) -> impl Iterator<Item = &MobilityHistory> {
        self.histories.values()
    }

    /// Entity ids, sorted for deterministic iteration.
    pub fn entities_sorted(&self) -> Vec<EntityId> {
        let mut v: Vec<_> = self.histories.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of entities, `|U|`.
    pub fn num_entities(&self) -> usize {
        self.histories.len()
    }

    /// The dataset-level statistics (df/idf, total bins, entity count)
    /// in their shard-mergeable form.
    pub fn df_stats(&self) -> &DfStats {
        &self.stats
    }

    /// Shared window scheme.
    pub fn scheme(&self) -> &WindowScheme {
        &self.scheme
    }

    /// Bin spatial level.
    pub fn spatial_level(&self) -> u8 {
        self.spatial_level
    }

    /// Total window domain.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Average bins per history (`Σ|H_u'| / |U|`, paper Eq. 2 denominator).
    pub fn avg_bins(&self) -> f64 {
        self.stats.avg_bins()
    }

    /// Inverse document frequency of a time-location bin (paper Eq. 3):
    /// `ln(|U| / df)` where `df` is the number of entities whose history
    /// contains the bin. Bins never seen get the maximal idf `ln(|U|)`.
    pub fn idf(&self, w: WindowIdx, cell: CellId) -> f64 {
        self.stats.idf(w, cell)
    }

    /// BM25-inspired length normalization `L(u, E)` (paper Eq. 2):
    /// `(1 − b) + b · |H_u| / avg_bins`.
    pub fn length_norm(&self, e: EntityId, b: f64) -> f64 {
        let bins = self.histories.get(&e).map(|h| h.num_bins()).unwrap_or(0);
        self.stats.length_norm_for(bins, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, Timestamp};
    use geocell::LatLng;

    const LEVEL: u8 = 12;

    fn rec(e: u64, t: i64, lat: f64, lng: f64) -> Record {
        Record::new(EntityId(e), LatLng::from_degrees(lat, lng), Timestamp(t))
    }

    fn scheme() -> WindowScheme {
        WindowScheme::new(Timestamp(0), 900)
    }

    #[test]
    fn history_bins_by_window_and_cell() {
        let records = vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 100, 37.0, -122.0),  // same window, same cell
            rec(1, 1000, 37.0, -122.0), // next window
            rec(1, 1000, 37.5, -121.5), // next window, different cell
        ];
        let h = MobilityHistory::build(EntityId(1), &records, &scheme(), LEVEL, 10);
        assert_eq!(h.num_records(), 4);
        assert_eq!(h.num_windows(), 2);
        assert_eq!(h.num_bins(), 3);
        assert_eq!(h.bins_in(0).len(), 1);
        assert_eq!(h.bins_in(0)[0].1, 2); // two records in the bin
        assert_eq!(h.bins_in(1).len(), 2);
        assert_eq!(h.records_in(1), 2);
    }

    #[test]
    fn empty_history() {
        let h = MobilityHistory::build(EntityId(7), &[], &scheme(), LEVEL, 4);
        assert_eq!(h.num_bins(), 0);
        assert_eq!(h.num_windows(), 0);
        assert!(h.dominating_cell(0, 4, LEVEL).is_none());
    }

    #[test]
    fn dominating_cell_via_tree() {
        let records = vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 10, 37.0, -122.0),
            rec(1, 20, 10.0, 10.0),
            rec(1, 1000, 10.0, 10.0),
        ];
        let h = MobilityHistory::build(EntityId(1), &records, &scheme(), LEVEL, 10);
        let sf = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), LEVEL);
        let other = CellId::from_latlng(LatLng::from_degrees(10.0, 10.0), LEVEL);
        // Window 0 only: SF appears twice, other once.
        assert_eq!(h.dominating_cell(0, 1, LEVEL), Some(sf));
        // Full range: other has 2, sf has 2 → deterministic tie-break.
        let dom = h.dominating_cell(0, 10, LEVEL).unwrap();
        assert!(dom == sf.min(other));
    }

    #[test]
    fn history_set_idf() {
        // Three entities; two share a bin, one is alone in another.
        let ds = LocationDataset::from_records(vec![
            rec(1, 0, 37.0, -122.0),
            rec(2, 0, 37.0, -122.0),
            rec(3, 0, 10.0, 10.0),
        ]);
        let hs = HistorySet::build(&ds, scheme(), LEVEL, 4);
        let shared = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), LEVEL);
        let unique = CellId::from_latlng(LatLng::from_degrees(10.0, 10.0), LEVEL);
        let idf_shared = hs.idf(0, shared);
        let idf_unique = hs.idf(0, unique);
        assert!((idf_shared - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        assert!((idf_unique - 3.0f64.ln()).abs() < 1e-12);
        assert!(idf_unique > idf_shared, "rarer bins must score higher");
    }

    #[test]
    fn idf_of_unseen_bin_is_max() {
        let ds = LocationDataset::from_records(vec![rec(1, 0, 37.0, -122.0)]);
        let hs = HistorySet::build(&ds, scheme(), LEVEL, 4);
        let unseen = CellId::from_latlng(LatLng::from_degrees(-30.0, 60.0), LEVEL);
        assert!((hs.idf(0, unseen) - 1.0f64.ln()).abs() < 1e-12); // |U|=1 → ln 1 = 0
    }

    #[test]
    fn length_norm_limits() {
        let ds = LocationDataset::from_records(vec![
            rec(1, 0, 37.0, -122.0),
            rec(2, 0, 37.1, -122.1),
            rec(2, 1000, 37.2, -122.2),
            rec(2, 2000, 37.3, -122.3),
        ]);
        let hs = HistorySet::build(&ds, scheme(), LEVEL, 10);
        // b = 0 → normalization disabled (always 1).
        assert!((hs.length_norm(EntityId(1), 0.0) - 1.0).abs() < 1e-12);
        assert!((hs.length_norm(EntityId(2), 0.0) - 1.0).abs() < 1e-12);
        // b = 1 → exactly relative size. avg bins = (1 + 3)/2 = 2.
        assert!((hs.length_norm(EntityId(1), 1.0) - 0.5).abs() < 1e-12);
        assert!((hs.length_norm(EntityId(2), 1.0) - 1.5).abs() < 1e-12);
        // Longer history ⇒ larger norm ⇒ smaller per-pair contribution.
        assert!(hs.length_norm(EntityId(2), 0.5) > hs.length_norm(EntityId(1), 0.5));
    }

    #[test]
    fn avg_bins_counts_bins_not_records() {
        let ds = LocationDataset::from_records(vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 1, 37.0, -122.0), // same bin, extra record
        ]);
        let hs = HistorySet::build(&ds, scheme(), LEVEL, 4);
        assert!((hs.avg_bins() - 1.0).abs() < 1e-12);
    }

    /// Incremental appends over a record stream must reproduce the
    /// batch-built set bit for bit: same bins, same document
    /// frequencies, same averages — the invariant `slim-stream` relies
    /// on for stream/batch equivalence.
    #[test]
    fn incremental_appends_match_batch_build() {
        let mut records = Vec::new();
        for e in 0..5u64 {
            for k in 0..20i64 {
                records.push(rec(
                    e,
                    k * 400,
                    37.0 + 0.01 * ((k % 5) as f64) + 0.1 * e as f64,
                    -122.0 - 0.02 * ((k % 3) as f64),
                ));
            }
        }
        // A region record exercises the multi-cell path.
        records.push(Record::with_accuracy(
            EntityId(2),
            LatLng::from_degrees(37.05, -122.01),
            Timestamp(3000),
            400.0,
        ));
        let ds = LocationDataset::from_records(records.clone());
        let sch = scheme();
        let domain = sch.num_windows(Timestamp(20 * 400));
        let batch = HistorySet::build(&ds, sch, 16, domain);

        let mut incr = HistorySet::new_incremental(sch, 16);
        for r in &records {
            incr.append_record(r);
        }

        assert_eq!(incr.num_entities(), batch.num_entities());
        assert!((incr.avg_bins() - batch.avg_bins()).abs() < 1e-12);
        for e in batch.entities_sorted() {
            let (hb, hi) = (batch.history(e).unwrap(), incr.history(e).unwrap());
            assert_eq!(hb.num_bins(), hi.num_bins(), "{e}");
            assert_eq!(hb.num_records(), hi.num_records(), "{e}");
            for w in hb.windows() {
                assert_eq!(hb.bins_in(w), hi.bins_in(w), "{e} window {w}");
                // Document frequencies agree bin by bin.
                for &(c, _) in hb.bins_in(w) {
                    assert!((batch.idf(w, c) - incr.idf(w, c)).abs() < 1e-12);
                }
            }
            // Dominating-cell queries go through the incrementally grown
            // tree and must agree with the batch-built one.
            assert_eq!(
                hb.dominating_cell(0, domain, 12),
                hi.dominating_cell(0, domain, 12),
            );
        }
    }

    #[test]
    fn eviction_unwinds_statistics() {
        let sch = scheme();
        let mut hs = HistorySet::new_incremental(sch, LEVEL);
        hs.append_record(&rec(1, 0, 37.0, -122.0));
        hs.append_record(&rec(1, 0, 37.0, -122.0));
        hs.append_record(&rec(1, 1000, 37.5, -121.5));
        hs.append_record(&rec(2, 0, 37.0, -122.0));
        let shared = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), LEVEL);
        assert!((hs.idf(0, shared) - (2.0f64 / 2.0).ln()).abs() < 1e-12);

        // Evict window 0 from entity 1: df drops to 1, bins shrink.
        let evicted = hs.evict_entity_window(EntityId(1), 0);
        assert_eq!(evicted, vec![(shared, 2)]);
        assert!((hs.idf(0, shared) - (2.0f64 / 1.0).ln()).abs() < 1e-12);
        assert_eq!(hs.history(EntityId(1)).unwrap().num_records(), 1);
        assert_eq!(hs.history(EntityId(1)).unwrap().num_bins(), 1);

        // Evicting the last window removes the entity entirely.
        hs.evict_entity_window(EntityId(1), 1);
        assert!(hs.history(EntityId(1)).is_none());
        assert_eq!(hs.num_entities(), 1);
        hs.evict_entity_window(EntityId(2), 0);
        assert_eq!(hs.num_entities(), 0);
        assert_eq!(hs.avg_bins(), 0.0);
    }

    #[test]
    fn region_record_eviction_keeps_record_count_exact() {
        let center = LatLng::from_degrees(37.0, -122.0);
        let mut h = MobilityHistory::empty(EntityId(1));
        let region = Record::with_accuracy(EntityId(1), center, Timestamp(0), 500.0);
        let cells = record_cells(&region, 16);
        assert!(cells.len() >= 2);
        h.append(0, &cells);
        h.append(
            3,
            &record_cells(&Record::new(EntityId(1), center, Timestamp(2700)), 16),
        );
        assert_eq!(h.num_records(), 2);
        // One region record occupies several bins but is ONE record.
        h.evict_window(0);
        assert_eq!(h.num_records(), 1);
        assert_eq!(h.num_bins(), 1);
    }

    #[test]
    fn region_record_spreads_over_cells() {
        // A region record at a fine level with a radius wider than a
        // cell must land in several cells; a point record in exactly one.
        let center = LatLng::from_degrees(37.0, -122.0);
        let point = Record::new(EntityId(1), center, Timestamp(0));
        let region = Record::with_accuracy(EntityId(1), center, Timestamp(0), 500.0);
        assert_eq!(record_cells(&point, 16).len(), 1);
        let cells = record_cells(&region, 16);
        assert!(cells.len() >= 2, "region covered {} cells", cells.len());
        // All covered cells are within the disc (plus one cell of slack).
        for c in &cells {
            assert!(c.center().distance_m(&center) < 500.0 + 2.0 * 200.0);
        }
        // At a coarse level the whole disc fits one cell.
        assert_eq!(record_cells(&region, 8).len(), 1);
    }

    #[test]
    fn region_records_enter_history_bins() {
        let center = LatLng::from_degrees(37.0, -122.0);
        let region = Record::with_accuracy(EntityId(1), center, Timestamp(0), 500.0);
        let h = MobilityHistory::build(EntityId(1), &[region], &scheme(), 16, 4);
        assert_eq!(h.num_records(), 1);
        assert!(h.num_bins() >= 2, "region must occupy several bins");
    }

    #[test]
    fn domain_clamps_late_records() {
        // A record beyond the domain is clamped to the last window rather
        // than panicking in the tree build.
        let records = vec![rec(1, 900 * 50, 37.0, -122.0)];
        let h = MobilityHistory::build(EntityId(1), &records, &scheme(), LEVEL, 10);
        assert_eq!(h.windows().collect::<Vec<_>>(), vec![9]);
    }
}
