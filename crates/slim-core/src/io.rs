//! CSV import/export for location datasets and linkage results.
//!
//! The record format is one line per record:
//!
//! ```text
//! entity_id,latitude,longitude,timestamp[,accuracy_m]
//! ```
//!
//! * `entity_id` — unsigned integer (dataset-local anonymous id),
//! * `latitude`/`longitude` — degrees,
//! * `timestamp` — seconds since any epoch shared by both datasets,
//! * `accuracy_m` — optional region radius in metres (paper §2.1).
//!
//! A header line is skipped automatically when the first field is not
//! numeric. Parsing is strict otherwise: a malformed line aborts with a
//! line-numbered error rather than silently dropping data.

use std::fmt;
use std::io::{BufRead, Write};

use geocell::LatLng;

use crate::dataset::LocationDataset;
use crate::matching::Edge;
use crate::record::{EntityId, Record, Timestamp};

/// CSV import error with 1-based line information.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<Record, CsvError> {
    let mut fields = line.split(',').map(str::trim);
    let mut next = |name: &str| {
        fields
            .next()
            .filter(|f| !f.is_empty())
            .ok_or_else(|| CsvError::Parse {
                line: lineno,
                message: format!("missing field `{name}`"),
            })
    };
    let err = |name: &str, value: &str| CsvError::Parse {
        line: lineno,
        message: format!("field `{name}` is not a number: `{value}`"),
    };
    let entity_s = next("entity_id")?;
    let entity: u64 = entity_s.parse().map_err(|_| err("entity_id", entity_s))?;
    let lat_s = next("latitude")?;
    let lat: f64 = lat_s.parse().map_err(|_| err("latitude", lat_s))?;
    let lng_s = next("longitude")?;
    let lng: f64 = lng_s.parse().map_err(|_| err("longitude", lng_s))?;
    let ts_s = next("timestamp")?;
    let ts: i64 = ts_s.parse().map_err(|_| err("timestamp", ts_s))?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
        return Err(CsvError::Parse {
            line: lineno,
            message: format!("coordinates out of range: ({lat}, {lng})"),
        });
    }
    let accuracy = match fields.next().map(str::trim).filter(|f| !f.is_empty()) {
        Some(a) => {
            let v: f64 = a.parse().map_err(|_| err("accuracy_m", a))?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(CsvError::Parse {
                    line: lineno,
                    message: format!("accuracy must be non-negative, got {v}"),
                });
            }
            v
        }
        None => 0.0,
    };
    Ok(Record::with_accuracy(
        EntityId(entity),
        LatLng::from_degrees(lat, lng),
        Timestamp(ts),
        accuracy,
    ))
}

/// Reads records from CSV. Skips a header line (first field non-numeric)
/// and blank lines.
pub fn read_records_csv<R: BufRead>(reader: R) -> Result<Vec<Record>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if idx == 0 {
            // Header detection: a non-numeric first field.
            let first = trimmed.split(',').next().unwrap_or("").trim();
            if first.parse::<u64>().is_err() {
                continue;
            }
        }
        out.push(parse_line(trimmed, idx + 1)?);
    }
    Ok(out)
}

/// Loads a dataset from a CSV file path.
pub fn load_dataset_csv(path: &std::path::Path) -> Result<LocationDataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let records = read_records_csv(std::io::BufReader::new(file))?;
    Ok(LocationDataset::from_records(records))
}

/// Writes records as CSV (with header).
pub fn write_records_csv<W: Write>(mut w: W, records: &[Record]) -> std::io::Result<()> {
    writeln!(w, "entity_id,latitude,longitude,timestamp,accuracy_m")?;
    for r in records {
        writeln!(
            w,
            "{},{:.7},{:.7},{},{}",
            r.entity.0,
            r.location.lat_deg(),
            r.location.lng_deg(),
            r.time.secs(),
            r.accuracy_m
        )?;
    }
    Ok(())
}

/// Writes linkage results as CSV (with header).
pub fn write_links_csv<W: Write>(mut w: W, links: &[Edge]) -> std::io::Result<()> {
    writeln!(w, "left_entity,right_entity,score")?;
    for e in links {
        writeln!(w, "{},{},{:.6}", e.left.0, e.right.0, e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_records() {
        let records = vec![
            Record::new(
                EntityId(1),
                LatLng::from_degrees(37.5, -122.25),
                Timestamp(100),
            ),
            Record::with_accuracy(
                EntityId(2),
                LatLng::from_degrees(-33.9, 151.2),
                Timestamp(-50),
                120.0,
            ),
        ];
        let mut buf = Vec::new();
        write_records_csv(&mut buf, &records).unwrap();
        let back = read_records_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].entity, EntityId(1));
        assert!((back[0].location.lat_deg() - 37.5).abs() < 1e-6);
        assert_eq!(back[1].time.secs(), -50);
        assert!((back[1].accuracy_m - 120.0).abs() < 1e-9);
        assert!(back[1].is_region());
    }

    #[test]
    fn header_and_blank_lines_skipped() {
        let csv = "entity_id,latitude,longitude,timestamp\n\n7,10.0,20.0,42\n";
        let recs = read_records_csv(csv.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].entity, EntityId(7));
    }

    #[test]
    fn headerless_files_parse_first_line() {
        let csv = "7,10.0,20.0,42\n8,11.0,21.0,43\n";
        let recs = read_records_csv(csv.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn optional_accuracy_field() {
        let csv = "1,0.0,0.0,0\n2,0.0,0.0,0,55.5\n";
        let recs = read_records_csv(csv.as_bytes()).unwrap();
        assert_eq!(recs[0].accuracy_m, 0.0);
        assert!((recs[1].accuracy_m - 55.5).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let csv = "1,0.0,0.0,0\nnot_a_number,0.0,0.0,0\n";
        let err = read_records_csv(csv.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("entity_id"), "{msg}");
    }

    #[test]
    fn out_of_range_coordinates_rejected() {
        let csv = "1,95.0,0.0,0\n";
        let err = read_records_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn missing_fields_rejected() {
        let csv = "1,0.0\n";
        let err = read_records_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn links_csv_format() {
        let links = vec![Edge {
            left: EntityId(1),
            right: EntityId(1_000_002),
            weight: 123.456789,
        }];
        let mut buf = Vec::new();
        write_links_csv(&mut buf, &links).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("left_entity,right_entity,score\n"));
        assert!(text.contains("1,1000002,123.456789"));
    }
}
