//! The SLIM linkage pipeline (paper Alg. 1 + §3.2).
//!
//! ```text
//! datasets → mobility histories → (optional candidate filter)
//!          → pairwise similarity → bipartite matching
//!          → GMM stop threshold → links
//! ```
//!
//! The candidate filter is injected as a plain list of entity pairs so
//! the LSH crate (and any other blocking scheme) can plug in without a
//! dependency cycle; `None` means brute-force all pairs.

use std::time::{Duration, Instant};

use crate::config::MatchingMethod;
use crate::config::SlimConfig;
use crate::dataset::LocationDataset;
use crate::history::HistorySet;
use crate::matching::{exact_max_matching, greedy_max_matching, Edge};
use crate::record::EntityId;
use crate::similarity::SimilarityScorer;
use crate::stats::LinkageStats;
use crate::threshold::{select_threshold, StopThreshold};
use crate::window::WindowScheme;

/// Everything a linkage run produces.
#[derive(Debug, Clone)]
pub struct LinkageOutput {
    /// Final links: matched edges at or above the stop threshold.
    pub links: Vec<Edge>,
    /// The full matching before thresholding (paper: "full matching").
    pub matching: Vec<Edge>,
    /// Number of positive-score edges in the bipartite graph.
    pub num_edges: usize,
    /// The selected stop threshold, if one was identifiable.
    pub threshold: Option<StopThreshold>,
    /// Work counters.
    pub stats: LinkageStats,
    /// Wall time of scoring + matching + thresholding.
    pub elapsed: Duration,
}

/// Histories and configuration prepared for (possibly repeated) linkage.
pub struct PreparedLinkage {
    cfg: SlimConfig,
    left: HistorySet,
    right: HistorySet,
}

/// The SLIM algorithm, parameterized by a [`SlimConfig`].
#[derive(Debug, Clone)]
pub struct Slim {
    cfg: SlimConfig,
}

impl Slim {
    /// Creates the pipeline after validating the configuration.
    pub fn new(cfg: SlimConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The active configuration.
    pub fn config(&self) -> &SlimConfig {
        &self.cfg
    }

    /// Builds mobility histories for both datasets over a shared window
    /// scheme. Entities with too few records are dropped here (paper
    /// §5.1).
    pub fn prepare(&self, left: &LocationDataset, right: &LocationDataset) -> PreparedLinkage {
        let mut left = left.clone();
        let mut right = right.clone();
        left.filter_min_records(self.cfg.min_records);
        right.filter_min_records(self.cfg.min_records);

        let span = |d: &LocationDataset| d.time_span();
        let (lo, hi) = match (span(&left), span(&right)) {
            (Some((l0, l1)), Some((r0, r1))) => (l0.min(r0), l1.max(r1)),
            (Some(s), None) | (None, Some(s)) => s,
            (None, None) => (crate::record::Timestamp(0), crate::record::Timestamp(0)),
        };
        let scheme = WindowScheme::new(lo, self.cfg.window_width_secs);
        let domain = scheme.num_windows(hi);
        let left_hs = HistorySet::build(&left, scheme, self.cfg.spatial_level, domain);
        let right_hs = HistorySet::build(&right, scheme, self.cfg.spatial_level, domain);
        PreparedLinkage {
            cfg: self.cfg,
            left: left_hs,
            right: right_hs,
        }
    }

    /// End-to-end linkage with brute-force candidate generation.
    pub fn link(&self, left: &LocationDataset, right: &LocationDataset) -> LinkageOutput {
        self.prepare(left, right).link()
    }

    /// End-to-end linkage over an explicit candidate pair list (e.g. the
    /// output of the LSH filter).
    pub fn link_with_candidates(
        &self,
        left: &LocationDataset,
        right: &LocationDataset,
        candidates: &[(EntityId, EntityId)],
    ) -> LinkageOutput {
        self.prepare(left, right).link_with_candidates(candidates)
    }
}

impl PreparedLinkage {
    /// Wraps already-built history sets — the entry point for callers
    /// that maintain histories themselves (the `slim-stream` engine
    /// builds them incrementally and runs this exact batch pipeline over
    /// them at finalization). Validates the configuration and that the
    /// two sets are comparable.
    pub fn from_history_sets(
        cfg: SlimConfig,
        left: HistorySet,
        right: HistorySet,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if left.scheme() != right.scheme() {
            return Err("history sets must share a window scheme".into());
        }
        if left.spatial_level() != right.spatial_level() {
            return Err("history sets must share a spatial level".into());
        }
        Ok(Self { cfg, left, right })
    }

    /// The left (first dataset) history set.
    pub fn left(&self) -> &HistorySet {
        &self.left
    }

    /// The right (second dataset) history set.
    pub fn right(&self) -> &HistorySet {
        &self.right
    }

    /// All cross-dataset entity pairs (brute force).
    pub fn all_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let ls = self.left.entities_sorted();
        let rs = self.right.entities_sorted();
        let mut out = Vec::with_capacity(ls.len() * rs.len());
        for &u in &ls {
            for &v in &rs {
                out.push((u, v));
            }
        }
        out
    }

    /// Brute-force linkage.
    pub fn link(&self) -> LinkageOutput {
        let pairs = self.all_pairs();
        self.link_with_candidates(&pairs)
    }

    /// Scores the given candidate pairs (in parallel), builds the
    /// bipartite graph, matches greedily, and applies the stop threshold.
    pub fn link_with_candidates(&self, candidates: &[(EntityId, EntityId)]) -> LinkageOutput {
        let start = Instant::now();
        let (edges, stats) = self.score_pairs(candidates);
        let matching = match self.cfg.matching_method {
            MatchingMethod::Greedy => greedy_max_matching(&edges),
            MatchingMethod::HungarianExact => exact_max_matching(&edges),
        };
        let weights: Vec<f64> = matching.iter().map(|e| e.weight).collect();
        let threshold = select_threshold(&weights, self.cfg.threshold_method);
        let links = match &threshold {
            Some(t) => matching
                .iter()
                .filter(|e| e.weight >= t.threshold)
                .copied()
                .collect(),
            None => matching.clone(),
        };
        LinkageOutput {
            links,
            num_edges: edges.len(),
            matching,
            threshold,
            stats,
            elapsed: start.elapsed(),
        }
    }

    /// Computes similarity scores for candidate pairs, keeping only
    /// positive-score edges (paper: "If the score is negative, no edges
    /// are added to the graph"). Work is split over all available cores.
    pub fn score_pairs(&self, candidates: &[(EntityId, EntityId)]) -> (Vec<Edge>, LinkageStats) {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(candidates.len().max(1));
        let chunk = candidates.len().div_ceil(threads.max(1)).max(1);
        let scorer = SimilarityScorer::new(&self.cfg, &self.left, &self.right);

        let results: Vec<(Vec<Edge>, LinkageStats)> = std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| {
                    let scorer = &scorer;
                    s.spawn(move || {
                        let mut local_stats = LinkageStats::default();
                        let mut local_edges = Vec::new();
                        for &(u, v) in part {
                            if let Some(score) = scorer.score(u, v, &mut local_stats) {
                                if score > 0.0 {
                                    local_edges.push(Edge {
                                        left: u,
                                        right: v,
                                        weight: score,
                                    });
                                }
                            }
                        }
                        (local_edges, local_stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scoring threads must not panic"))
                .collect()
        });

        let mut edges = Vec::new();
        let mut stats = LinkageStats::default();
        for (mut e, s) in results {
            edges.append(&mut e);
            stats.merge(&s);
        }
        // Deterministic order regardless of thread interleaving.
        edges.sort_by_key(|a| (a.left, a.right));
        (edges, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThresholdMethod;
    use crate::record::{Record, Timestamp};
    use geocell::LatLng;

    /// Builds two views of `n` entities; entities 0..common exist in both
    /// (with jittered records), the rest are distinct.
    fn two_views(n: u64, common: u64) -> (LocationDataset, LocationDataset) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in 0..n {
            let anchor = LatLng::from_degrees(37.0 + 0.02 * e as f64, -122.0 - 0.015 * e as f64);
            for k in 0..30i64 {
                let pos = anchor.offset(300.0 * ((k % 4) as f64), k as f64);
                left.push(Record::new(EntityId(e), pos, Timestamp(k * 900 + 30)));
                if e < common {
                    // Same entity seen by the other service, asynchronously.
                    let pos2 = anchor.offset(300.0 * ((k % 4) as f64) + 40.0, k as f64 + 0.1);
                    right.push(Record::new(
                        EntityId(1000 + e),
                        pos2,
                        Timestamp(k * 900 + 400),
                    ));
                }
            }
            if e >= common {
                // Right-only entity in a different neighbourhood.
                let anchor2 =
                    LatLng::from_degrees(36.0 - 0.02 * e as f64, -121.0 + 0.01 * e as f64);
                for k in 0..30i64 {
                    let pos = anchor2.offset(250.0 * ((k % 3) as f64), k as f64 * 0.5);
                    right.push(Record::new(
                        EntityId(1000 + e),
                        pos,
                        Timestamp(k * 900 + 200),
                    ));
                }
            }
        }
        (
            LocationDataset::from_records(left),
            LocationDataset::from_records(right),
        )
    }

    #[test]
    fn links_common_entities() {
        let (l, r) = two_views(10, 6);
        let slim = Slim::new(SlimConfig::default()).unwrap();
        let out = slim.link(&l, &r);
        assert!(!out.links.is_empty());
        // Every surviving link must be a true pair (e ↔ 1000 + e).
        for link in &out.links {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {:?}", link);
        }
        assert!(crate::matching::is_valid_matching(&out.links));
        // The full matching must rank all six true pairs above any false
        // pair (the GMM threshold on such a tiny sample may prune
        // conservatively, which is why `links` is only checked for purity).
        let mut by_weight = out.matching.clone();
        by_weight.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
        for link in by_weight.iter().take(6) {
            assert_eq!(
                link.right.0,
                1000 + link.left.0,
                "true pairs must rank first"
            );
        }
    }

    #[test]
    fn threshold_prunes_matching() {
        let (l, r) = two_views(12, 6);
        let slim = Slim::new(SlimConfig::default()).unwrap();
        let out = slim.link(&l, &r);
        assert!(out.links.len() <= out.matching.len());
        if let Some(t) = &out.threshold {
            for link in &out.links {
                assert!(link.weight >= t.threshold);
            }
        }
    }

    #[test]
    fn candidate_filter_restricts_scoring() {
        let (l, r) = two_views(8, 8);
        let cfg = SlimConfig {
            threshold_method: ThresholdMethod::None,
            ..SlimConfig::default()
        };
        let slim = Slim::new(cfg).unwrap();
        let prepared = slim.prepare(&l, &r);
        let candidates: Vec<_> = (0..8u64)
            .map(|e| (EntityId(e), EntityId(1000 + e)))
            .collect();
        let out = prepared.link_with_candidates(&candidates);
        assert_eq!(out.stats.scored_entity_pairs, 8);
        assert_eq!(out.links.len(), 8);
    }

    #[test]
    fn no_threshold_method_keeps_matching() {
        let (l, r) = two_views(6, 3);
        let cfg = SlimConfig {
            threshold_method: ThresholdMethod::None,
            ..SlimConfig::default()
        };
        let out = Slim::new(cfg).unwrap().link(&l, &r);
        assert_eq!(out.links.len(), out.matching.len());
        assert!(out.threshold.is_none());
    }

    #[test]
    fn empty_datasets_produce_empty_output() {
        let empty = LocationDataset::from_records(Vec::new());
        let slim = Slim::new(SlimConfig::default()).unwrap();
        let out = slim.link(&empty, &empty);
        assert!(out.links.is_empty());
        assert_eq!(out.num_edges, 0);
    }

    #[test]
    fn min_records_filter_applies() {
        let (l, mut r_records) = {
            let (l, r) = two_views(4, 4);
            (l, r)
        };
        // Add a right entity with only 2 records: must be ignored.
        let sparse = vec![
            Record::new(
                EntityId(2000),
                LatLng::from_degrees(37.0, -122.0),
                Timestamp(0),
            ),
            Record::new(
                EntityId(2000),
                LatLng::from_degrees(37.0, -122.0),
                Timestamp(900),
            ),
        ];
        let mut recs: Vec<Record> = Vec::new();
        for e in r_records.entities_sorted() {
            recs.extend_from_slice(r_records.records_of(e));
        }
        recs.extend(sparse);
        r_records = LocationDataset::from_records(recs);
        let slim = Slim::new(SlimConfig::default()).unwrap();
        let prepared = slim.prepare(&l, &r_records);
        assert!(prepared.right().history(EntityId(2000)).is_none());
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = SlimConfig {
            b: 2.0,
            ..SlimConfig::default()
        };
        assert!(Slim::new(cfg).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let (l, r) = two_views(9, 5);
        let slim = Slim::new(SlimConfig::default()).unwrap();
        let a = slim.link(&l, &r);
        let b = slim.link(&l, &r);
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x.left, y.left);
            assert_eq!(x.right, y.right);
            assert!((x.weight - y.weight).abs() < 1e-12);
        }
    }
}
