//! Bin pairing within a common temporal window (paper §3.1.2).
//!
//! Given the bins of two entities in the same window, the pairing
//! function `N` repeatedly extracts the pair of bins with the smallest
//! geographical distance, removes both bins, and continues until the
//! smaller side is exhausted — so every bin participates in at most one
//! pair (no over-counting). The mutually-furthest variant `N'` does the
//! same with the *largest* distance and feeds the alibi check of Alg. 1.
//! The Cartesian-product variant exists for the Fig. 10 ablation.

use std::cell::RefCell;
use std::collections::HashMap;

use geocell::{bounded_distance_m, cell_center_and_radius, CellId, LatLng};

/// One selected pair: indices into the two bin slices plus the cell
/// distance in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinPair {
    /// Index into the first entity's bins.
    pub e_idx: usize,
    /// Index into the second entity's bins.
    pub i_idx: usize,
    /// Minimum geographical distance between the two cells, metres.
    pub dist_m: f64,
}

/// Entries kept in the per-thread geometry memo before it is reset. The
/// working set of real workloads is the distinct cells of one city-ish
/// region (tens of thousands); the cap only guards against unbounded
/// growth on planet-scale id churn.
const GEOMETRY_CACHE_CAP: usize = 1 << 18;

thread_local! {
    /// Cell geometry memo: `cell_center_and_radius` walks the cell's four
    /// vertices through trigonometry, and the same cells recur in every
    /// window of every pair that visits them. The function is pure, so
    /// memoized values are exact, and thread-locality keeps the scoring
    /// hot path lock-free. The memo lives as long as its thread: a batch
    /// scoring worker amortizes across its whole candidate chunk, a
    /// serial (single-shard) streaming engine across all its ticks, and
    /// short-lived multi-shard tick workers within one tick's job list —
    /// the dominant reuse in every case, since a pair's cells recur per
    /// window.
    static CELL_GEOMETRY: RefCell<HashMap<CellId, (LatLng, f64)>> =
        RefCell::new(HashMap::new());
}

/// Memoized [`cell_center_and_radius`].
pub fn cached_cell_geometry(cell: CellId) -> (LatLng, f64) {
    CELL_GEOMETRY.with(|memo| {
        let mut memo = memo.borrow_mut();
        if memo.len() >= GEOMETRY_CACHE_CAP {
            memo.clear();
        }
        *memo
            .entry(cell)
            .or_insert_with(|| cell_center_and_radius(cell))
    })
}

/// A read-only cell-id column over a window's bins. Pairing only ever
/// reads cell ids, so it is generic over the storage layout: the
/// classic array-of-structs `&[(CellId, u32)]` bins of
/// [`crate::history::MobilityHistory`] and the bare `&[CellId]` column
/// of [`crate::arena::HistoryArena`] monomorphize to the *identical*
/// arithmetic — bit-identical pair selections for identical cell
/// content.
pub trait BinColumn: Copy {
    /// Number of bins.
    fn len(&self) -> usize;
    /// Whether there are no bins.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Cell id of the `i`-th bin.
    fn cell(&self, i: usize) -> CellId;
}

impl BinColumn for &[(CellId, u32)] {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn cell(&self, i: usize) -> CellId {
        self[i].0
    }
}

impl BinColumn for &[CellId] {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn cell(&self, i: usize) -> CellId {
        self[i]
    }
}

fn distance_matrix<A: BinColumn, B: BinColumn>(a: A, b: B) -> Vec<f64> {
    // Look up each cell's center + radius once per side: the matrix is
    // O(n·m) but the (trigonometry-heavy) vertex geometry is O(n + m)
    // hash probes, hitting the thread-local memo for recurring cells.
    let ga: Vec<_> = (0..a.len())
        .map(|i| {
            let c = a.cell(i);
            (c, cached_cell_geometry(c))
        })
        .collect();
    let gb: Vec<_> = (0..b.len())
        .map(|i| {
            let c = b.cell(i);
            (c, cached_cell_geometry(c))
        })
        .collect();
    let mut d = Vec::with_capacity(a.len() * b.len());
    for (ca, pa) in &ga {
        for (cb, pb) in &gb {
            // Same level on both sides: equality is the only containment.
            d.push(if ca == cb {
                0.0
            } else {
                bounded_distance_m(pa, pb)
            });
        }
    }
    d
}

/// Greedy extremal matching shared by [`mutually_nearest`] and
/// [`mutually_furthest`]. `want_min` selects the objective.
fn extremal_pairs<A: BinColumn, B: BinColumn>(a: A, b: B, want_min: bool) -> Vec<BinPair> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let d = distance_matrix(a, b);
    let mut a_used = vec![false; n];
    let mut b_used = vec![false; m];
    let rounds = n.min(m);
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut best: Option<(usize, usize, f64)> = None;
        for (ai, au) in a_used.iter().enumerate() {
            if *au {
                continue;
            }
            for (bi, bu) in b_used.iter().enumerate() {
                if *bu {
                    continue;
                }
                let dist = d[ai * m + bi];
                let better = match best {
                    None => true,
                    Some((_, _, cur)) => {
                        if want_min {
                            dist < cur
                        } else {
                            dist > cur
                        }
                    }
                };
                if better {
                    best = Some((ai, bi, dist));
                }
            }
        }
        let (ai, bi, dist) = best.expect("rounds bounded by remaining bins");
        a_used[ai] = true;
        b_used[bi] = true;
        out.push(BinPair {
            e_idx: ai,
            i_idx: bi,
            dist_m: dist,
        });
    }
    out
}

/// The paper's pairing function `N_w`: greedy globally-closest pairs,
/// each bin used at most once, `min(|a|, |b|)` pairs total.
pub fn mutually_nearest(a: &[(CellId, u32)], b: &[(CellId, u32)]) -> Vec<BinPair> {
    extremal_pairs(a, b, true)
}

/// The paper's `N'_w`: greedy globally-furthest pairs, used for the
/// optional alibi-detection pass.
pub fn mutually_furthest(a: &[(CellId, u32)], b: &[(CellId, u32)]) -> Vec<BinPair> {
    extremal_pairs(a, b, false)
}

/// [`mutually_nearest`] over bare cell-id columns (the arena layout);
/// bit-identical output for identical cell content.
pub fn mutually_nearest_cells(a: &[CellId], b: &[CellId]) -> Vec<BinPair> {
    extremal_pairs(a, b, true)
}

/// [`mutually_furthest`] over bare cell-id columns.
pub fn mutually_furthest_cells(a: &[CellId], b: &[CellId]) -> Vec<BinPair> {
    extremal_pairs(a, b, false)
}

/// The Cartesian product of bins — the "All Pairs" ablation.
pub fn all_pairs(a: &[(CellId, u32)], b: &[(CellId, u32)]) -> Vec<BinPair> {
    all_pairs_generic(a, b)
}

/// [`all_pairs`] over bare cell-id columns.
pub fn all_pairs_cells(a: &[CellId], b: &[CellId]) -> Vec<BinPair> {
    all_pairs_generic(a, b)
}

fn all_pairs_generic<A: BinColumn, B: BinColumn>(a: A, b: B) -> Vec<BinPair> {
    let d = distance_matrix(a, b);
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ai in 0..a.len() {
        for bi in 0..b.len() {
            out.push(BinPair {
                e_idx: ai,
                i_idx: bi,
                dist_m: d[ai * b.len() + bi],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn bins(coords: &[(f64, f64)]) -> Vec<(CellId, u32)> {
        coords
            .iter()
            .map(|&(lat, lng)| (CellId::from_latlng(LatLng::from_degrees(lat, lng), 14), 1))
            .collect()
    }

    #[test]
    fn empty_sides_yield_no_pairs() {
        let a = bins(&[(37.0, -122.0)]);
        assert!(mutually_nearest(&a, &[]).is_empty());
        assert!(mutually_nearest(&[], &a).is_empty());
        assert!(mutually_furthest(&[], &[]).is_empty());
        assert!(all_pairs(&a, &[]).is_empty());
    }

    #[test]
    fn pair_count_is_min_of_sides() {
        let a = bins(&[(37.0, -122.0), (37.5, -122.5), (38.0, -121.0)]);
        let b = bins(&[(37.0, -122.0), (10.0, 10.0)]);
        assert_eq!(mutually_nearest(&a, &b).len(), 2);
        assert_eq!(mutually_furthest(&a, &b).len(), 2);
        assert_eq!(all_pairs(&a, &b).len(), 6);
    }

    #[test]
    fn nearest_prefers_identical_cells() {
        let a = bins(&[(37.0, -122.0), (40.0, -100.0)]);
        let b = bins(&[(40.0, -100.0), (37.0, -122.0)]);
        let pairs = mutually_nearest(&a, &b);
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert_eq!(p.dist_m, 0.0, "identical cells should pair at distance 0");
        }
        // a[0] must pair with b[1], a[1] with b[0].
        assert!(pairs.iter().any(|p| p.e_idx == 0 && p.i_idx == 1));
        assert!(pairs.iter().any(|p| p.e_idx == 1 && p.i_idx == 0));
    }

    #[test]
    fn each_bin_used_at_most_once() {
        let a = bins(&[(37.0, -122.0), (37.1, -122.1), (37.2, -122.2)]);
        let b = bins(&[(37.05, -122.05), (37.15, -122.15)]);
        for pairs in [mutually_nearest(&a, &b), mutually_furthest(&a, &b)] {
            let mut e_seen = std::collections::HashSet::new();
            let mut i_seen = std::collections::HashSet::new();
            for p in &pairs {
                assert!(e_seen.insert(p.e_idx), "e bin reused");
                assert!(i_seen.insert(p.i_idx), "i bin reused");
            }
        }
    }

    #[test]
    fn furthest_catches_the_paper_alibi_example() {
        // Paper §3.1 example: e1 has a single bin b1; e2 has b2 (close)
        // and b3 (beyond runaway). MNN returns (b1,b2); MFN returns
        // (b1,b3), exposing the alibi.
        let b1 = LatLng::from_degrees(37.0, -122.0);
        let b2 = b1.offset(5_000.0, 1.0);
        let b3 = b1.offset(80_000.0, 2.0);
        let e1 = bins(&[(b1.lat_deg(), b1.lng_deg())]);
        let e2 = bins(&[(b2.lat_deg(), b2.lng_deg()), (b3.lat_deg(), b3.lng_deg())]);
        let nearest = mutually_nearest(&e1, &e2);
        assert_eq!(nearest.len(), 1);
        assert!(nearest[0].dist_m < 10_000.0, "MNN picks the close bin");
        let furthest = mutually_furthest(&e1, &e2);
        assert_eq!(furthest.len(), 1);
        assert!(furthest[0].dist_m > 60_000.0, "MFN exposes the distant bin");
    }

    #[test]
    fn cached_geometry_matches_direct_computation() {
        for &(lat, lng) in &[(37.0, -122.0), (10.0, 10.0), (-33.0, 151.0)] {
            for level in [8u8, 12, 16] {
                let c = CellId::from_latlng(LatLng::from_degrees(lat, lng), level);
                let direct = cell_center_and_radius(c);
                // First call populates the memo, second hits it; both must
                // be bit-identical to the uncached computation.
                assert_eq!(cached_cell_geometry(c), direct);
                assert_eq!(cached_cell_geometry(c), direct);
            }
        }
    }

    #[test]
    fn nearest_total_distance_not_worse_than_reversed() {
        // Greedy-nearest is symmetric in argument order.
        let a = bins(&[(37.0, -122.0), (36.0, -121.0)]);
        let b = bins(&[(36.5, -121.5), (37.2, -122.2), (10.0, 10.0)]);
        let ab: f64 = mutually_nearest(&a, &b).iter().map(|p| p.dist_m).sum();
        let ba: f64 = mutually_nearest(&b, &a).iter().map(|p| p.dist_m).sum();
        assert!((ab - ba).abs() < 1e-6);
    }
}
