//! Spatial proximity of time-location bins (paper Eq. 1).
//!
//! For two bins in the *same* temporal window:
//!
//! ```text
//! P(e, i) = log2(2 − min(d(e.c, i.c) / R, 2))
//! ```
//!
//! where `d` is the minimum geographical distance between the cells and
//! `R` the runaway distance. The function is 1 for identical cells, falls
//! to 0 at distance `R`, and goes negative beyond — an *alibi*: the entity
//! could not have produced both records. The paper lets it reach −∞ at
//! `2R`; we clamp the logarithm argument so scores stay finite (a single
//! extreme alibi should not erase unboundedly much evidence, and IEEE
//! −∞ would poison sums). The clamp value −20 bits corresponds to the
//! distance `2R − R/2^20`, i.e. within 0.0001% of the paper's pole.

use geocell::{cell_min_distance_m, CellId};

/// Lower clamp on the log argument; `log2(ARG_FLOOR)` ≈ −19.93.
const ARG_FLOOR: f64 = 1e-6;

/// Proximity of two cells within the same temporal window, given the
/// runaway distance `runaway_m`. Callers guarantee temporal co-occurrence
/// (the `T(e,i)` factor of Eq. 1); cross-window pairs are never formed.
///
/// Returns a value in `[log2(ARG_FLOOR), 1]`.
pub fn proximity(a: CellId, b: CellId, runaway_m: f64) -> f64 {
    proximity_of_distance(cell_min_distance_m(a, b), runaway_m)
}

/// Proximity as a function of a precomputed distance (metres).
pub fn proximity_of_distance(dist_m: f64, runaway_m: f64) -> f64 {
    debug_assert!(runaway_m > 0.0);
    let ratio = (dist_m / runaway_m).min(2.0);
    (2.0 - ratio).max(ARG_FLOOR).log2()
}

/// Whether a bin pair at this distance is an alibi (negative evidence).
pub fn is_alibi(dist_m: f64, runaway_m: f64) -> bool {
    dist_m > runaway_m
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    const R: f64 = 30_000.0;

    #[test]
    fn same_cell_scores_one() {
        let c = CellId::from_latlng(LatLng::from_degrees(37.0, -122.0), 12);
        assert!((proximity(c, c, R) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_scores_one() {
        assert!((proximity_of_distance(0.0, R) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runaway_distance_scores_zero() {
        assert!(proximity_of_distance(R, R).abs() < 1e-12);
    }

    #[test]
    fn beyond_runaway_is_negative() {
        assert!(proximity_of_distance(1.5 * R, R) < 0.0);
        assert!(proximity_of_distance(1.99 * R, R) < -5.0);
    }

    #[test]
    fn far_beyond_clamps_finite() {
        let p = proximity_of_distance(1e9, R);
        assert!(p.is_finite());
        assert!((p - ARG_FLOOR.log2()).abs() < 1e-9);
    }

    #[test]
    fn monotonically_decreasing_in_distance() {
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let d = i as f64 / 100.0 * 2.2 * R;
            let p = proximity_of_distance(d, R);
            assert!(p <= prev + 1e-12, "not monotone at d={d}");
            prev = p;
        }
    }

    #[test]
    fn slope_steepens_towards_alibi() {
        // Increasing slope magnitude as distance approaches 2R (paper:
        // "the value goes down to 0 with an increasing slope").
        let d1 = proximity_of_distance(0.2 * R, R) - proximity_of_distance(0.3 * R, R);
        let d2 = proximity_of_distance(1.5 * R, R) - proximity_of_distance(1.6 * R, R);
        assert!(d2 > d1);
    }

    #[test]
    fn alibi_predicate() {
        assert!(!is_alibi(0.5 * R, R));
        assert!(!is_alibi(R, R));
        assert!(is_alibi(1.01 * R, R));
    }

    #[test]
    fn nearby_cells_score_close_to_one() {
        // Two adjacent level-12 cells (~3 km apart at most) with R = 30 km:
        // proximity should be well above 0.8.
        let a_ll = LatLng::from_degrees(37.0, -122.0);
        let a = CellId::from_latlng(a_ll, 12);
        let b = CellId::from_latlng(a_ll.offset(3_000.0, 1.0), 12);
        assert!(proximity(a, b, R) > 0.8);
    }
}
