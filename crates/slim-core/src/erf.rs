//! Error function and Gaussian CDF.
//!
//! The stop-threshold selection integrates Gaussian component tails
//! (paper §3.2); `std` has no `erf`, and no external math crate is
//! sanctioned, so we implement the classic Numerical-Recipes `erfc`
//! rational approximation (fractional error < 1.2e-7 everywhere), which
//! is far below the resolution of the threshold grid search.

/// Complementary error function, |relative error| < 1.2e-7.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// CDF of the normal distribution with the given mean and standard
/// deviation.
///
/// # Panics
/// Panics (debug) if `std_dev` is not positive.
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev > 0.0, "std_dev must be positive");
    0.5 * erfc(-(x - mean) / (std_dev * std::f64::consts::SQRT_2))
}

/// PDF of the normal distribution.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev > 0.0);
    let z = (x - mean) / std_dev;
    (-0.5 * z * z).exp() / (std_dev * (2.0 * std::f64::consts::PI).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
            assert!((erf(-x) + want).abs() < 2e-7, "odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_standard_values() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96, 0.0, 1.0) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_shift_and_scale() {
        // CDF at mean is 0.5 for any parameters.
        assert!((normal_cdf(100.0, 100.0, 15.0) - 0.5).abs() < 1e-7);
        // One sigma above the mean ≈ 0.8413.
        assert!((normal_cdf(115.0, 100.0, 15.0) - 0.8413).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -50..=50 {
            let c = normal_cdf(i as f64 / 5.0, 0.0, 1.0);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Riemann sum over ±8σ.
        let (mut sum, dx) = (0.0, 0.01);
        let mut x = -8.0;
        while x < 8.0 {
            sum += normal_pdf(x, 0.0, 1.0) * dx;
            x += dx;
        }
        assert!((sum - 1.0).abs() < 1e-4, "integral {sum}");
    }
}
