//! # slim-core — SLIM mobility-linkage core
//!
//! A from-scratch Rust implementation of *SLIM: Scalable Linkage of
//! Mobility Data* (Basık, Ferhatosmanoğlu, Gedik — SIGMOD 2020): linking
//! the entities of two location datasets using only their spatio-temporal
//! records.
//!
//! The pipeline (paper §2.4):
//!
//! 1. Records are aggregated into [`history::MobilityHistory`] summaries —
//!    hierarchical time-location bins over a shared
//!    [`window::WindowScheme`] and a spatial grid level (see `geocell`).
//! 2. Candidate entity pairs are scored with the
//!    [`similarity::SimilarityScorer`]: mutually-nearest-neighbour bin
//!    pairs are awarded by proximity ([`proximity`]), weighted by bin
//!    rarity (IDF) and BM25-style length normalization, and
//!    mutually-furthest *alibi* pairs are penalized.
//! 3. Scores become a weighted bipartite graph; a greedy maximum-weight
//!    [`matching`] selects one-to-one links.
//! 4. A two-component [`gmm`] fitted over the matched edge weights gives
//!    an automated stop [`threshold`] maximizing the expected F1 — no
//!    ground truth required.
//!
//! Entry point: [`slim::Slim`].
//!
//! ```
//! use slim_core::{LocationDataset, Record, EntityId, Timestamp, Slim, SlimConfig};
//! use geocell::LatLng;
//!
//! // Two tiny datasets: entities 1/2 are seen (with different anonymous
//! // ids 77/78) by the second service as well.
//! let trace = |id: u64, lat0: f64, offs: f64| -> Vec<Record> {
//!     (0..12)
//!         .map(|k| Record::new(
//!             EntityId(id),
//!             LatLng::from_degrees(lat0 + 0.001 * k as f64, -122.0 + offs),
//!             Timestamp(k * 900),
//!         ))
//!         .collect()
//! };
//! let left = LocationDataset::from_records(
//!     trace(1, 37.0, 0.0).into_iter().chain(trace(2, 38.5, 0.0)).collect::<Vec<_>>(),
//! );
//! let right = LocationDataset::from_records(
//!     trace(77, 37.0, 0.0002).into_iter().chain(trace(78, 38.5, 0.0002)).collect::<Vec<_>>(),
//! );
//! let out = Slim::new(SlimConfig::default()).unwrap().link(&left, &right);
//! assert_eq!(out.matching.len(), 2); // 1 ↔ 77 and 2 ↔ 78
//! assert!(out.matching.iter().all(|e| e.right.0 == e.left.0 + 76));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod dataset;
pub mod df;
pub mod erf;
pub mod gmm;
pub mod history;
pub mod hungarian;
pub mod io;
pub mod matching;
pub mod pairing;
pub mod proximity;
pub mod record;
pub mod similarity;
pub mod slim;
pub mod stats;
pub mod threshold;
pub mod time;
pub mod tree;
pub mod tuning;
pub mod window;

pub use arena::{EntityView, HistoryArena};
pub use config::{MatchingMethod, PairingMode, SlimConfig, ThresholdMethod};
pub use dataset::LocationDataset;
pub use df::{DfDelta, DfStats};
pub use history::{record_cells, HistorySet, MobilityHistory};
pub use matching::{DeltaReport, Edge, EdgeDelta, IncrementalMatcher};
pub use record::{EntityId, Record, Timestamp};
pub use slim::{LinkageOutput, PreparedLinkage, Slim};
pub use stats::LinkageStats;
pub use threshold::{StopThreshold, ThresholdState, WarmSelection};
pub use time::Watermark;
pub use window::{WindowIdx, WindowScheme};
