//! Linkage configuration.

use serde::{Deserialize, Serialize};

/// How time-location bin pairs are formed inside a common window
/// (paper §3.1.2 and the Fig. 10 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingMode {
    /// Mutually-nearest-neighbour pairing `N` — the paper's default.
    MutuallyNearest,
    /// Cartesian product of bins — the "All Pairs" ablation baseline.
    AllPairs,
}

/// How the stop threshold over matched-edge weights is chosen (§3.2;
/// the paper's default is the GMM, with Otsu and 2-means mentioned as
/// alternatives giving similar results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdMethod {
    /// Two-component Gaussian mixture + expected-F1 maximization.
    GmmExpectedF1,
    /// Otsu's between-class-variance threshold on a histogram.
    Otsu,
    /// 1-D 2-means; threshold at the midpoint of the two centroids.
    TwoMeans,
    /// No stop threshold: keep the full matching (ablation / recall bound).
    None,
}

/// How the bipartite matching over positive-score edges is solved
/// (§3.2: the assignment problem has "many optimal and approximate
/// solutions"; the paper adopts the greedy heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchingMethod {
    /// Greedy heaviest-edge-first (the paper's choice; a 1/2-
    /// approximation in theory, near-optimal on real score matrices).
    Greedy,
    /// Exact O(n³) Hungarian assignment. Useful to quantify the greedy
    /// regret; impractical beyond a few thousand entities.
    HungarianExact,
}

/// Full configuration of the SLIM pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlimConfig {
    /// Leaf temporal window width in seconds (paper default: 15 min).
    pub window_width_secs: i64,
    /// Spatial grid level for time-location bins (paper default: 12).
    pub spatial_level: u8,
    /// BM25-style length-normalization strength `b ∈ [0, 1]`
    /// (paper default: 0.5).
    pub b: f64,
    /// Maximum entity speed `α`, metres per second, used for the runaway
    /// distance `R = |w| · α` (paper: 2 km/minute).
    pub max_speed_m_per_s: f64,
    /// Bin pairing mode (ablation switch).
    pub pairing: PairingMode,
    /// Whether the optional mutually-furthest-neighbour alibi pass runs
    /// (Alg. 1 inner loop; ablation switch).
    pub use_mfn: bool,
    /// Whether the IDF multiplier is applied (ablation switch).
    pub use_idf: bool,
    /// Whether length normalization is applied (ablation switch).
    pub use_normalization: bool,
    /// Entities with this many records or fewer are ignored (paper: 5).
    pub min_records: usize,
    /// Stop-threshold selection method.
    pub threshold_method: ThresholdMethod,
    /// Bipartite matching solver.
    pub matching_method: MatchingMethod,
}

impl Default for SlimConfig {
    fn default() -> Self {
        Self {
            window_width_secs: 15 * 60,
            spatial_level: 12,
            b: 0.5,
            max_speed_m_per_s: 2_000.0 / 60.0,
            pairing: PairingMode::MutuallyNearest,
            use_mfn: true,
            use_idf: true,
            use_normalization: true,
            min_records: 5,
            threshold_method: ThresholdMethod::GmmExpectedF1,
            matching_method: MatchingMethod::Greedy,
        }
    }
}

impl SlimConfig {
    /// The runaway distance `R = |w| · α` in metres: the farthest an
    /// entity can travel within one temporal window.
    pub fn runaway_m(&self) -> f64 {
        self.window_width_secs as f64 * self.max_speed_m_per_s
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_width_secs <= 0 {
            return Err("window_width_secs must be positive".into());
        }
        if self.spatial_level > geocell::MAX_LEVEL {
            return Err(format!(
                "spatial_level {} exceeds max {}",
                self.spatial_level,
                geocell::MAX_LEVEL
            ));
        }
        if !(0.0..=1.0).contains(&self.b) {
            return Err(format!("b = {} outside [0, 1]", self.b));
        }
        if self.max_speed_m_per_s <= 0.0 {
            return Err("max_speed_m_per_s must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SlimConfig::default();
        assert_eq!(c.window_width_secs, 900);
        assert_eq!(c.spatial_level, 12);
        assert!((c.b - 0.5).abs() < 1e-12);
        // 2 km/min over a 15-minute window → 30 km runaway distance.
        assert!((c.runaway_m() - 30_000.0).abs() < 1e-6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let bad_b = SlimConfig {
            b: 1.5,
            ..SlimConfig::default()
        };
        assert!(bad_b.validate().is_err());
        let bad_window = SlimConfig {
            window_width_secs: 0,
            ..SlimConfig::default()
        };
        assert!(bad_window.validate().is_err());
        let bad_level = SlimConfig {
            spatial_level: 31,
            ..SlimConfig::default()
        };
        assert!(bad_level.validate().is_err());
        let bad_speed = SlimConfig {
            max_speed_m_per_s: -1.0,
            ..SlimConfig::default()
        };
        assert!(bad_speed.validate().is_err());
    }
}
