//! Mobility-history similarity score (paper Eq. 2 and Alg. 1 inner loop).
//!
//! For two entities `u ∈ U_E`, `v ∈ U_I`:
//!
//! ```text
//! S(u, v) = Σ_{(e,i) ∈ N(u,v)}  P(e,i) · min(idf(e,E), idf(i,I)) / (L(u,E) · L(v,I))
//! ```
//!
//! plus, per common window, the negative contributions of mutually-
//! furthest (alibi) pairs. The IDF and normalization factors are ablation
//! switches so the Fig. 10 variants are pure configuration.

use crate::config::{PairingMode, SlimConfig};
use crate::df::DfStats;
use crate::history::{HistorySet, MobilityHistory};
use crate::pairing::{
    all_pairs, all_pairs_cells, mutually_furthest, mutually_furthest_cells, mutually_nearest,
    mutually_nearest_cells, BinColumn, BinPair,
};
use crate::proximity::{is_alibi, proximity_of_distance};
use crate::record::EntityId;
use crate::stats::LinkageStats;

/// Scores entity pairs across two datasets under one configuration.
///
/// The scoring arithmetic reads only the dataset-level [`DfStats`] (df /
/// idf, average bins, entity count) plus the two endpoint histories, so
/// the scorer comes in two flavours: over whole [`HistorySet`]s (the
/// batch pipeline — entity-id lookups work) or over bare stats
/// ([`SimilarityScorer::from_df_stats`], the sharded streaming engine —
/// the caller resolves histories itself, e.g. across shard-partitioned
/// maps). Both produce bit-identical scores for the same inputs.
pub struct SimilarityScorer<'a> {
    cfg: &'a SlimConfig,
    left_df: &'a DfStats,
    right_df: &'a DfStats,
    left: Option<&'a HistorySet>,
    right: Option<&'a HistorySet>,
    runaway_m: f64,
}

impl<'a> SimilarityScorer<'a> {
    /// Creates a scorer over the two datasets' history sets.
    ///
    /// # Panics
    /// Panics if the two sets use different window schemes or levels —
    /// bins would not be comparable.
    pub fn new(cfg: &'a SlimConfig, left: &'a HistorySet, right: &'a HistorySet) -> Self {
        assert_eq!(
            left.scheme(),
            right.scheme(),
            "history sets must share a window scheme"
        );
        assert_eq!(
            left.spatial_level(),
            right.spatial_level(),
            "history sets must share a spatial level"
        );
        Self {
            cfg,
            left_df: left.df_stats(),
            right_df: right.df_stats(),
            left: Some(left),
            right: Some(right),
            runaway_m: cfg.runaway_m(),
        }
    }

    /// Creates a scorer from bare dataset-level statistics — for callers
    /// that own the histories in another layout (the sharded streaming
    /// engine partitions them by entity hash). Only the history-explicit
    /// methods ([`SimilarityScorer::score_histories`],
    /// [`SimilarityScorer::window_contribution`],
    /// [`SimilarityScorer::pair_norm_bins`]) are usable; the caller must
    /// guarantee both datasets share one window scheme and spatial level.
    pub fn from_df_stats(cfg: &'a SlimConfig, left_df: &'a DfStats, right_df: &'a DfStats) -> Self {
        Self {
            cfg,
            left_df,
            right_df,
            left: None,
            right: None,
            runaway_m: cfg.runaway_m(),
        }
    }

    /// The similarity score `S(u, v)`. Returns `None` when either entity
    /// has no history. Work counters are accumulated into `stats`.
    ///
    /// # Panics
    /// Panics on a scorer built with
    /// [`SimilarityScorer::from_df_stats`] — there are no history sets
    /// to look the entities up in.
    pub fn score(&self, u: EntityId, v: EntityId, stats: &mut LinkageStats) -> Option<f64> {
        let left = self.left.expect("score-by-id needs history sets");
        let right = self.right.expect("score-by-id needs history sets");
        let hu = left.history(u)?;
        let hv = right.history(v)?;
        Some(self.score_histories(hu, hv, stats))
    }

    /// Scores two explicit histories: the sum of per-window
    /// [`SimilarityScorer::window_contribution`]s over the common
    /// windows, divided by the pair's length normalization.
    pub fn score_histories(
        &self,
        hu: &MobilityHistory,
        hv: &MobilityHistory,
        stats: &mut LinkageStats,
    ) -> f64 {
        stats.scored_entity_pairs += 1;
        let norm = self.pair_norm_bins(hu.num_bins(), hv.num_bins());
        let mut total = 0.0;
        for w in common_windows(hu, hv) {
            total += self.window_contribution(hu, hv, w, stats);
        }
        total / norm
    }

    /// The joint length normalization `L(u, E) · L(v, I)` of a pair
    /// under this configuration (1 when normalization is disabled).
    ///
    /// # Panics
    /// Panics on a scorer built with
    /// [`SimilarityScorer::from_df_stats`]; use
    /// [`SimilarityScorer::pair_norm_bins`] with resolved bin counts.
    pub fn pair_norm(&self, u: EntityId, v: EntityId) -> f64 {
        let left = self.left.expect("norm-by-id needs history sets");
        let right = self.right.expect("norm-by-id needs history sets");
        if self.cfg.use_normalization {
            left.length_norm(u, self.cfg.b) * right.length_norm(v, self.cfg.b)
        } else {
            1.0
        }
    }

    /// [`SimilarityScorer::pair_norm`] from explicit history sizes (the
    /// entity-id-free form): pass each endpoint's `|H_u|`, with 0 for a
    /// missing history — exactly what the id lookup would resolve.
    pub fn pair_norm_bins(&self, left_bins: usize, right_bins: usize) -> f64 {
        if self.cfg.use_normalization {
            self.left_df.length_norm_for(left_bins, self.cfg.b)
                * self.right_df.length_norm_for(right_bins, self.cfg.b)
        } else {
            1.0
        }
    }

    /// The *unnormalized* contribution of one temporal window to a
    /// pair's score: mutually-nearest (or all-pairs) proximity·idf
    /// awards plus mutually-furthest alibi penalties. Returns 0 when the
    /// window is not common to both histories.
    ///
    /// This is the incremental-maintenance primitive: a streamed score
    /// is a per-window contribution cache, and an update to window `w`
    /// of either history only requires recomputing this term — the full
    /// score is the contribution sum over common windows divided by
    /// [`SimilarityScorer::pair_norm`], exactly as
    /// [`SimilarityScorer::score_histories`] computes it.
    pub fn window_contribution(
        &self,
        hu: &MobilityHistory,
        hv: &MobilityHistory,
        w: crate::window::WindowIdx,
        stats: &mut LinkageStats,
    ) -> f64 {
        let bu = hu.bins_in(w);
        let bv = hv.bins_in(w);
        if bu.is_empty() || bv.is_empty() {
            return 0.0;
        }
        stats.bin_pair_comparisons += (bu.len() * bv.len()) as u64;
        stats.record_pair_comparisons += hu.records_in(w) as u64 * hv.records_in(w) as u64;

        let mut total = 0.0;
        let pairs = match self.cfg.pairing {
            PairingMode::MutuallyNearest => mutually_nearest(bu, bv),
            PairingMode::AllPairs => all_pairs(bu, bv),
        };
        for p in &pairs {
            total += self.contribution(w, bu, bv, p, stats);
        }

        // Optional mutually-furthest alibi pass (Alg. 1): add only
        // negative deltas, and skip pairs already selected by N to
        // avoid double counting.
        if self.cfg.use_mfn && self.cfg.pairing == PairingMode::MutuallyNearest {
            for p in mutually_furthest(bu, bv) {
                if pairs
                    .iter()
                    .any(|q| q.e_idx == p.e_idx && q.i_idx == p.i_idx)
                {
                    continue;
                }
                let delta = self.contribution(w, bu, bv, &p, stats);
                if delta < 0.0 {
                    total += delta;
                }
            }
        }
        total
    }

    /// [`SimilarityScorer::window_contribution`] over struct-of-arrays
    /// window runs: `(cu, nu)` / `(cv, nv)` are each one window's
    /// parallel `(cells, counts)` column slices (the
    /// [`crate::arena::EntityView::window_run`] shape — cells sorted,
    /// counts positionally parallel). Every arithmetic operation, its
    /// order, and every stats counter bump mirror the per-entity path
    /// exactly, so the two layouts produce bit-identical contributions
    /// for identical bin content.
    pub fn window_contribution_cells(
        &self,
        w: crate::window::WindowIdx,
        (cu, nu): (&[geocell::CellId], &[u32]),
        (cv, nv): (&[geocell::CellId], &[u32]),
        stats: &mut LinkageStats,
    ) -> f64 {
        if cu.is_empty() || cv.is_empty() {
            return 0.0;
        }
        stats.bin_pair_comparisons += (cu.len() * cv.len()) as u64;
        let ru: u32 = nu.iter().sum();
        let rv: u32 = nv.iter().sum();
        stats.record_pair_comparisons += ru as u64 * rv as u64;

        let mut total = 0.0;
        let pairs = match self.cfg.pairing {
            PairingMode::MutuallyNearest => mutually_nearest_cells(cu, cv),
            PairingMode::AllPairs => all_pairs_cells(cu, cv),
        };
        for p in &pairs {
            total += self.contribution(w, cu, cv, p, stats);
        }

        if self.cfg.use_mfn && self.cfg.pairing == PairingMode::MutuallyNearest {
            for p in mutually_furthest_cells(cu, cv) {
                if pairs
                    .iter()
                    .any(|q| q.e_idx == p.e_idx && q.i_idx == p.i_idx)
                {
                    continue;
                }
                let delta = self.contribution(w, cu, cv, &p, stats);
                if delta < 0.0 {
                    total += delta;
                }
            }
        }
        total
    }

    /// One bin pair's weighted proximity contribution (unnormalized).
    /// Generic over the bin layout (see [`BinColumn`]) so both storage
    /// paths run the identical float sequence.
    fn contribution<A: BinColumn, B: BinColumn>(
        &self,
        w: crate::window::WindowIdx,
        bu: A,
        bv: B,
        p: &BinPair,
        stats: &mut LinkageStats,
    ) -> f64 {
        if is_alibi(p.dist_m, self.runaway_m) {
            stats.alibi_pairs += 1;
        }
        let prox = proximity_of_distance(p.dist_m, self.runaway_m);
        let idf = if self.cfg.use_idf {
            let idf_e = self.left_df.idf(w, bu.cell(p.e_idx));
            let idf_i = self.right_df.idf(w, bv.cell(p.i_idx));
            idf_e.min(idf_i)
        } else {
            1.0
        };
        prox * idf
    }
}

/// Iterates window indices present in both histories, ascending.
pub fn common_windows<'h>(
    a: &'h MobilityHistory,
    b: &'h MobilityHistory,
) -> impl Iterator<Item = crate::window::WindowIdx> + 'h {
    // Merge-intersect two sorted streams.
    let mut ita = a.windows().peekable();
    let mut itb = b.windows().peekable();
    std::iter::from_fn(move || loop {
        let (&wa, &wb) = (ita.peek()?, itb.peek()?);
        match wa.cmp(&wb) {
            std::cmp::Ordering::Less => {
                ita.next();
            }
            std::cmp::Ordering::Greater => {
                itb.next();
            }
            std::cmp::Ordering::Equal => {
                ita.next();
                itb.next();
                return Some(wa);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LocationDataset;
    use crate::record::{Record, Timestamp};
    use crate::window::WindowScheme;
    use geocell::LatLng;

    const LEVEL: u8 = 12;
    const DOMAIN: u32 = 32;

    fn rec(e: u64, t: i64, lat: f64, lng: f64) -> Record {
        Record::new(EntityId(e), LatLng::from_degrees(lat, lng), Timestamp(t))
    }

    fn sets(left: Vec<Record>, right: Vec<Record>) -> (HistorySet, HistorySet) {
        let scheme = WindowScheme::new(Timestamp(0), 900);
        let l = HistorySet::build(&LocationDataset::from_records(left), scheme, LEVEL, DOMAIN);
        let r = HistorySet::build(&LocationDataset::from_records(right), scheme, LEVEL, DOMAIN);
        (l, r)
    }

    fn cfg() -> SlimConfig {
        SlimConfig::default()
    }

    /// Background entities in remote, mutually distant cells. Without
    /// them, `|U| = df` for every bin and the idf term (Eq. 3) zeroes all
    /// contributions — correct behaviour, but it would make single-pair
    /// tests vacuous.
    fn fillers(base_id: u64) -> Vec<Record> {
        (0..4)
            .flat_map(|k| {
                let lat = -40.0 + 3.0 * k as f64;
                vec![
                    rec(base_id + k, 0, lat, 150.0),
                    rec(base_id + k, 5000, lat, 150.2),
                ]
            })
            .collect()
    }

    #[test]
    fn identical_traces_score_positive() {
        let mut trace = vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 1000, 37.1, -122.1),
            rec(1, 2000, 37.2, -122.2),
        ];
        let mut other: Vec<Record> = trace
            .iter()
            .map(|r| Record::new(EntityId(2), r.location, r.time))
            .collect();
        trace.extend(fillers(500));
        other.extend(fillers(600));
        let (l, r) = sets(trace, other);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        let s = scorer.score(EntityId(1), EntityId(2), &mut stats).unwrap();
        assert!(s > 0.0, "score {s}");
        assert_eq!(stats.scored_entity_pairs, 1);
        assert_eq!(stats.alibi_pairs, 0);
        assert!(stats.record_pair_comparisons >= 3);
    }

    #[test]
    fn disjoint_windows_score_zero() {
        // Activity in different windows: temporal asynchrony must NOT be
        // penalized (desired property 2) — the score is exactly 0.
        let left = vec![rec(1, 0, 37.0, -122.0)];
        let right = vec![rec(2, 10_000, 10.0, 10.0)];
        let (l, r) = sets(left, right);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        let s = scorer.score(EntityId(1), EntityId(2), &mut stats).unwrap();
        assert_eq!(s, 0.0);
        assert_eq!(stats.bin_pair_comparisons, 0);
    }

    #[test]
    fn alibi_pairs_score_negative() {
        // Same window, ~400 km apart with a 30 km runaway: strong alibi.
        let mut left = vec![rec(1, 0, 37.0, -122.0)];
        let mut right = vec![rec(2, 10, 37.0, -117.0)];
        left.extend(fillers(500));
        right.extend(fillers(600));
        let (l, r) = sets(left, right);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        let s = scorer.score(EntityId(1), EntityId(2), &mut stats).unwrap();
        assert!(s < 0.0, "score {s}");
        assert!(stats.alibi_pairs >= 1);
    }

    #[test]
    fn mfn_pass_catches_hidden_alibi() {
        // Paper's example: v has a close bin AND a far (alibi) bin in the
        // same window. With MFN the score must drop.
        let base = LatLng::from_degrees(37.0, -122.0);
        let near = base.offset(2_000.0, 1.0);
        let far = base.offset(120_000.0, 2.0);
        let mut left = vec![rec(1, 0, base.lat_deg(), base.lng_deg())];
        let mut right = vec![
            rec(2, 10, near.lat_deg(), near.lng_deg()),
            rec(2, 20, far.lat_deg(), far.lng_deg()),
        ];
        left.extend(fillers(500));
        right.extend(fillers(600));
        let (l, r) = sets(left.clone(), right.clone());

        let mut with_mfn = cfg();
        with_mfn.use_mfn = true;
        let mut without_mfn = cfg();
        without_mfn.use_mfn = false;

        let mut stats = LinkageStats::default();
        let s_with = SimilarityScorer::new(&with_mfn, &l, &r)
            .score(EntityId(1), EntityId(2), &mut stats)
            .unwrap();
        let s_without = SimilarityScorer::new(&without_mfn, &l, &r)
            .score(EntityId(1), EntityId(2), &mut stats)
            .unwrap();
        assert!(
            s_with < s_without,
            "MFN must lower the score: {s_with} vs {s_without}"
        );
    }

    #[test]
    fn idf_awards_rare_bins() {
        // Entity pair matching in a crowded bin scores lower than a pair
        // matching in a unique bin.
        // Both scenarios have 21 left entities; in the crowded one the
        // probe's bin is shared by all, in the unique one by nobody else.
        let crowded: Vec<Record> = (0..20)
            .map(|e| rec(e, 0, 37.0, -122.0))
            .chain([rec(100, 0, 37.0, -122.0)])
            .collect();
        let unique: Vec<Record> = (1..=20)
            .map(|e| rec(e, 0, -40.0 + e as f64, 150.0))
            .chain([rec(100, 0, 10.0, 10.0)])
            .collect();

        // Crowded scenario.
        let (l1, r1) = sets(
            crowded,
            vec![rec(200, 0, 37.0, -122.0), rec(201, 0, -10.0, 30.0)],
        );
        // Unique scenario (same structure, probe bin unshared).
        let (l2, r2) = sets(
            unique,
            vec![rec(200, 0, 10.0, 10.0), rec(201, 0, -10.0, 30.0)],
        );
        let c = cfg();
        let mut stats = LinkageStats::default();
        let s_crowded = SimilarityScorer::new(&c, &l1, &r1)
            .score(EntityId(100), EntityId(200), &mut stats)
            .unwrap();
        let s_unique = SimilarityScorer::new(&c, &l2, &r2)
            .score(EntityId(100), EntityId(200), &mut stats)
            .unwrap();
        assert!(
            s_unique > s_crowded,
            "unique bin {s_unique} must beat crowded bin {s_crowded}"
        );
    }

    #[test]
    fn normalization_penalizes_long_histories() {
        // Two candidate left entities match the right entity equally well
        // in one window, but one has a much longer history. With
        // normalization on, the long history scores lower.
        let mut records = vec![rec(1, 0, 37.0, -122.0), rec(2, 0, 37.0, -122.0)];
        for k in 0..20 {
            records.push(rec(2, 900 * (k + 2), 36.0 + k as f64 * 0.01, -121.0));
        }
        records.extend(fillers(500));
        let mut right = vec![rec(9, 0, 37.0, -122.0)];
        right.extend(fillers(600));
        let (l, r) = sets(records, right);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        let s_short = scorer.score(EntityId(1), EntityId(9), &mut stats).unwrap();
        let s_long = scorer.score(EntityId(2), EntityId(9), &mut stats).unwrap();
        assert!(
            s_short > s_long,
            "short history {s_short} must beat long {s_long}"
        );
    }

    #[test]
    fn all_pairs_mode_counts_every_combination() {
        let left = vec![rec(1, 0, 37.0, -122.0), rec(1, 10, 37.3, -122.3)];
        let right = vec![rec(2, 0, 37.0, -122.0), rec(2, 10, 37.6, -122.6)];
        let (l, r) = sets(left, right);
        let mut c = cfg();
        c.pairing = PairingMode::AllPairs;
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        let _ = scorer.score(EntityId(1), EntityId(2), &mut stats).unwrap();
        assert_eq!(stats.bin_pair_comparisons, 4);
    }

    #[test]
    fn missing_entity_returns_none() {
        let (l, r) = sets(vec![rec(1, 0, 37.0, -122.0)], vec![rec(2, 0, 37.0, -122.0)]);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let mut stats = LinkageStats::default();
        assert!(scorer
            .score(EntityId(99), EntityId(2), &mut stats)
            .is_none());
    }

    /// The incremental primitive must reassemble the full score exactly:
    /// Σ window_contribution / pair_norm == score_histories.
    #[test]
    fn window_contributions_reassemble_score() {
        let mut left = vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 1000, 37.1, -122.1),
            rec(1, 2000, 37.2, -122.2),
            rec(1, 2100, 40.0, -100.0), // alibi material
        ];
        let mut right = vec![
            rec(2, 10, 37.0, -122.0),
            rec(2, 1100, 37.1, -122.1),
            rec(2, 2050, 37.2, -122.2),
        ];
        left.extend(fillers(500));
        right.extend(fillers(600));
        let (l, r) = sets(left, right);
        let c = cfg();
        let scorer = SimilarityScorer::new(&c, &l, &r);
        let (hu, hv) = (
            l.history(EntityId(1)).unwrap(),
            r.history(EntityId(2)).unwrap(),
        );
        let mut stats = LinkageStats::default();
        let full = scorer.score_histories(hu, hv, &mut stats);
        let sum: f64 = common_windows(hu, hv)
            .map(|w| scorer.window_contribution(hu, hv, w, &mut stats))
            .sum();
        let reassembled = sum / scorer.pair_norm(EntityId(1), EntityId(2));
        assert_eq!(full, reassembled, "must be the identical arithmetic");
        // Non-common windows contribute exactly zero.
        assert_eq!(scorer.window_contribution(hu, hv, 9999, &mut stats), 0.0);
    }

    /// The struct-of-arrays contribution kernel must be bit-identical
    /// to the per-entity path — same float result, same stats bumps —
    /// in every pairing/ablation mode.
    #[test]
    fn cells_kernel_matches_window_contribution() {
        let mut left = vec![
            rec(1, 0, 37.0, -122.0),
            rec(1, 100, 37.01, -122.01),
            rec(1, 1000, 37.1, -122.1),
            rec(1, 2100, 40.0, -100.0), // alibi material
        ];
        let mut right = vec![
            rec(2, 10, 37.0, -122.0),
            rec(2, 20, 37.02, -122.0),
            rec(2, 1100, 37.1, -122.1),
            rec(2, 2050, 37.2, -122.2),
        ];
        left.extend(fillers(500));
        right.extend(fillers(600));
        let (l, r) = sets(left, right);
        let (hu, hv) = (
            l.history(EntityId(1)).unwrap(),
            r.history(EntityId(2)).unwrap(),
        );
        for (pairing, use_mfn) in [
            (PairingMode::MutuallyNearest, true),
            (PairingMode::MutuallyNearest, false),
            (PairingMode::AllPairs, false),
        ] {
            let mut c = cfg();
            c.pairing = pairing;
            c.use_mfn = use_mfn;
            let scorer = SimilarityScorer::new(&c, &l, &r);
            for w in common_windows(hu, hv).chain([9999]) {
                let (bu, bv) = (hu.bins_in(w), hv.bins_in(w));
                let split = |bins: &[(geocell::CellId, u32)]| {
                    let cells: Vec<_> = bins.iter().map(|&(c, _)| c).collect();
                    let counts: Vec<_> = bins.iter().map(|&(_, n)| n).collect();
                    (cells, counts)
                };
                let ((cu, nu), (cv, nv)) = (split(bu), split(bv));
                let mut s1 = LinkageStats::default();
                let mut s2 = LinkageStats::default();
                let legacy = scorer.window_contribution(hu, hv, w, &mut s1);
                let soa = scorer.window_contribution_cells(w, (&cu, &nu), (&cv, &nv), &mut s2);
                assert_eq!(legacy.to_bits(), soa.to_bits(), "window {w}");
                assert_eq!(s1, s2, "stats must bump identically, window {w}");
            }
        }
    }

    #[test]
    fn score_is_symmetric_for_mirrored_inputs() {
        let trace_a = vec![rec(1, 0, 37.0, -122.0), rec(1, 1000, 37.2, -122.2)];
        let trace_b = vec![rec(2, 0, 37.05, -122.05), rec(2, 1000, 37.25, -122.25)];
        let (l, r) = sets(trace_a.clone(), trace_b.clone());
        let (l2, r2) = sets(trace_b, trace_a);
        let c = cfg();
        let mut stats = LinkageStats::default();
        let s1 = SimilarityScorer::new(&c, &l, &r)
            .score(EntityId(1), EntityId(2), &mut stats)
            .unwrap();
        let s2 = SimilarityScorer::new(&c, &l2, &r2)
            .score(EntityId(2), EntityId(1), &mut stats)
            .unwrap();
        assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
    }
}
