//! Dataset-level document-frequency statistics, factored out of
//! [`crate::history::HistorySet`] so they can be maintained as
//! **shard-mergeable deltas**.
//!
//! The similarity score depends on three dataset-level quantities: the
//! per-bin document frequencies (idf, paper Eq. 3), the total bin count
//! (BM25 length normalization, Eq. 2), and the entity count (both). A
//! sharded engine partitions the *histories* by entity hash but the
//! score still needs these statistics over the whole dataset — so each
//! shard accumulates a [`DfDelta`] while it mutates its slice of the
//! histories, and the deltas are applied to one authoritative
//! [`DfStats`] at a merge barrier. All three quantities are integer
//! counters, so delta application is commutative and the merged state is
//! bit-identical to what a serial engine (or the batch
//! [`crate::history::HistorySet::build`]) would hold.

use std::collections::HashMap;

use geocell::CellId;

use crate::window::WindowIdx;

/// Dataset-level statistics the similarity score reads: per-bin document
/// frequencies, total bins, entity count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DfStats {
    /// `(window, cell)` → number of distinct entities with that bin.
    bin_df: HashMap<(WindowIdx, CellId), u32>,
    /// Total bins across all histories (`Σ |H_u|`).
    total_bins: usize,
    /// Number of entities with a (non-empty) history (`|U|`).
    num_entities: usize,
}

impl DfStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entities, `|U|`.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Total bins across all histories.
    pub fn total_bins(&self) -> usize {
        self.total_bins
    }

    /// Document frequency of one bin (0 if never seen).
    pub fn df(&self, w: WindowIdx, cell: CellId) -> u32 {
        self.bin_df.get(&(w, cell)).copied().unwrap_or(0)
    }

    /// Inverse document frequency of a time-location bin (paper Eq. 3):
    /// `ln(|U| / df)`. Bins never seen get the maximal idf `ln(|U|)`.
    pub fn idf(&self, w: WindowIdx, cell: CellId) -> f64 {
        let df = self.bin_df.get(&(w, cell)).copied().unwrap_or(1).max(1);
        (self.num_entities as f64 / df as f64).ln()
    }

    /// Average bins per history (`Σ|H_u'| / |U|`, paper Eq. 2
    /// denominator).
    pub fn avg_bins(&self) -> f64 {
        if self.num_entities == 0 {
            0.0
        } else {
            self.total_bins as f64 / self.num_entities as f64
        }
    }

    /// BM25-inspired length normalization `L(u, E)` (paper Eq. 2) for an
    /// entity with `num_bins` bins: `(1 − b) + b · |H_u| / avg_bins`.
    pub fn length_norm_for(&self, num_bins: usize, b: f64) -> f64 {
        let avg = self.avg_bins();
        if avg == 0.0 {
            return 1.0;
        }
        (1.0 - b) + b * num_bins as f64 / avg
    }

    /// Direct single-bin increment (a new `(window, cell)` bin appeared
    /// in some history) — the non-delta maintenance path.
    pub fn add_bin(&mut self, w: WindowIdx, cell: CellId) {
        *self.bin_df.entry((w, cell)).or_insert(0) += 1;
        self.total_bins += 1;
    }

    /// Direct single-bin decrement (a `(window, cell)` bin was evicted
    /// from some history).
    pub fn remove_bin(&mut self, w: WindowIdx, cell: CellId) {
        if let Some(df) = self.bin_df.get_mut(&(w, cell)) {
            *df -= 1;
            if *df == 0 {
                self.bin_df.remove(&(w, cell));
            }
        }
        self.total_bins -= 1;
    }

    /// Records an entity gaining its first bin (history created).
    pub fn add_entity(&mut self) {
        self.num_entities += 1;
    }

    /// Records an entity losing its last bin (history removed).
    pub fn remove_entity(&mut self) {
        self.num_entities -= 1;
    }

    /// The per-bin document frequencies in sorted `(window, cell)`
    /// order — a canonical dump for checkpoint serialization (the
    /// internal map iterates in hash order).
    pub fn sorted_entries(&self) -> Vec<(WindowIdx, CellId, u32)> {
        let mut out: Vec<(WindowIdx, CellId, u32)> = self
            .bin_df
            .iter()
            .map(|(&(w, cell), &df)| (w, cell, df))
            .collect();
        out.sort_unstable();
        out
    }

    /// Reconstructs statistics from a [`DfStats::sorted_entries`] dump
    /// plus the two scalar counters — the checkpoint-recovery inverse.
    pub fn from_parts(
        entries: Vec<(WindowIdx, CellId, u32)>,
        total_bins: usize,
        num_entities: usize,
    ) -> Self {
        Self {
            bin_df: entries
                .into_iter()
                .map(|(w, cell, df)| ((w, cell), df))
                .collect(),
            total_bins,
            num_entities,
        }
    }

    /// Applies one shard's accumulated delta. Deltas are integer
    /// adjustments, so application order across shards does not affect
    /// the merged state.
    pub fn apply(&mut self, delta: &DfDelta) {
        for (&key, &d) in &delta.bin_df {
            if d == 0 {
                continue;
            }
            let slot = self.bin_df.entry(key).or_insert(0);
            let next = *slot as i64 + d as i64;
            debug_assert!(next >= 0, "df underflow at {key:?}");
            if next <= 0 {
                self.bin_df.remove(&key);
            } else {
                *slot = next as u32;
            }
        }
        self.total_bins = (self.total_bins as i64 + delta.total_bins) as usize;
        self.num_entities = (self.num_entities as i64 + delta.num_entities) as usize;
    }
}

/// One shard's pending adjustments to a [`DfStats`], accumulated during
/// a parallel phase and applied (in any order) at the merge barrier.
#[derive(Debug, Clone, Default)]
pub struct DfDelta {
    bin_df: HashMap<(WindowIdx, CellId), i32>,
    total_bins: i64,
    num_entities: i64,
}

impl DfDelta {
    /// Empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the delta carries no adjustments.
    pub fn is_empty(&self) -> bool {
        self.bin_df.is_empty() && self.total_bins == 0 && self.num_entities == 0
    }

    /// A new `(window, cell)` bin appeared in some history.
    pub fn add_bin(&mut self, w: WindowIdx, cell: CellId) {
        *self.bin_df.entry((w, cell)).or_insert(0) += 1;
        self.total_bins += 1;
    }

    /// A `(window, cell)` bin was evicted from some history.
    pub fn remove_bin(&mut self, w: WindowIdx, cell: CellId) {
        *self.bin_df.entry((w, cell)).or_insert(0) -= 1;
        self.total_bins -= 1;
    }

    /// An entity gained its first bin (history created).
    pub fn add_entity(&mut self) {
        self.num_entities += 1;
    }

    /// An entity lost its last bin (history removed).
    pub fn remove_entity(&mut self) {
        self.num_entities -= 1;
    }

    /// Folds another delta into this one (shard-tree merges).
    pub fn merge(&mut self, other: &DfDelta) {
        for (&key, &d) in &other.bin_df {
            *self.bin_df.entry(key).or_insert(0) += d;
        }
        self.total_bins += other.total_bins;
        self.num_entities += other.num_entities;
    }

    /// Drains this delta, returning it and leaving an empty one behind.
    pub fn take(&mut self) -> DfDelta {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn cell(lng: f64) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(10.0, lng), 12)
    }

    #[test]
    fn direct_and_delta_maintenance_agree() {
        // Base state: entity 1 (shard A) holds bins (0, c0) and (0, c1).
        let mut base = DfStats::new();
        base.add_entity();
        base.add_bin(0, cell(0.0));
        base.add_bin(0, cell(1.0));

        // Direct (serial) continuation: entity 2 (shard B) gains (0, c0),
        // entity 1 evicts (0, c1). Each shard only ever removes bins its
        // own entities hold — the invariant the delta form relies on.
        let mut direct = base.clone();
        direct.add_entity();
        direct.add_bin(0, cell(0.0));
        direct.remove_bin(0, cell(1.0));

        let mut a = DfDelta::new();
        a.remove_bin(0, cell(1.0));
        let mut b = DfDelta::new();
        b.add_entity();
        b.add_bin(0, cell(0.0));

        // Application order across shards must not matter.
        for order in [[&a, &b], [&b, &a]] {
            let mut merged = base.clone();
            for d in order {
                merged.apply(d);
            }
            assert_eq!(direct, merged);
            assert_eq!(merged.df(0, cell(0.0)), 2);
            assert_eq!(merged.df(0, cell(1.0)), 0);
            assert_eq!(merged.total_bins(), 2);
            assert_eq!(merged.num_entities(), 2);
        }
    }

    #[test]
    fn idf_and_norm_match_reference_arithmetic() {
        let mut s = DfStats::new();
        for _ in 0..3 {
            s.add_entity();
        }
        s.add_bin(0, cell(0.0));
        s.add_bin(0, cell(0.0));
        s.add_bin(5, cell(2.0));
        assert!((s.idf(0, cell(0.0)) - (3.0f64 / 2.0).ln()).abs() < 1e-15);
        assert!((s.idf(5, cell(2.0)) - 3.0f64.ln()).abs() < 1e-15);
        // Unseen bins take df = 1 (maximal idf).
        assert!((s.idf(9, cell(9.0)) - 3.0f64.ln()).abs() < 1e-15);
        assert!((s.avg_bins() - 1.0).abs() < 1e-15);
        assert!((s.length_norm_for(2, 0.5) - 1.5).abs() < 1e-15);
        assert!((s.length_norm_for(0, 0.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn delta_merge_folds_adjustments() {
        let mut a = DfDelta::new();
        a.add_bin(0, cell(0.0));
        a.add_entity();
        let mut b = DfDelta::new();
        b.remove_bin(0, cell(0.0));
        b.add_bin(1, cell(1.0));
        a.merge(&b);
        let mut s = DfStats::new();
        s.apply(&a);
        assert_eq!(s.df(0, cell(0.0)), 0);
        assert_eq!(s.df(1, cell(1.0)), 1);
        assert_eq!(s.total_bins(), 1);
        assert_eq!(s.num_entities(), 1);
        assert!(!a.is_empty());
        assert!(DfDelta::new().is_empty());
    }

    #[test]
    fn empty_stats_norm_is_one() {
        let s = DfStats::new();
        assert_eq!(s.avg_bins(), 0.0);
        assert_eq!(s.length_norm_for(5, 0.5), 1.0);
    }
}
