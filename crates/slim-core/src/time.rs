//! Event-time primitives for out-of-order streams.
//!
//! A live feed does not arrive in timestamp order: independent producers
//! race, networks reorder, and buffers flush late. The standard tool is
//! a **low watermark** — a monotone lower bound on the event times still
//! to come, derived from the highest time seen so far minus a bounded
//! *lag* the stream is allowed to be disordered by. Events strictly
//! below the watermark can be released in timestamp order exactly once
//! (nothing earlier can still arrive, by the lag contract); events
//! arriving *below* an already-advanced watermark broke the contract
//! and are **late**.

use crate::record::Timestamp;

/// A low watermark over an event stream with bounded out-of-order lag.
///
/// `observe` feeds arrival timestamps; [`Watermark::frontier`] is the
/// monotone bound `max_seen - lag`: every event with `time < frontier`
/// is safe to emit in timestamp order, and an *arrival* with
/// `time < frontier` is late ([`Watermark::is_late`]). With `lag = 0`
/// the stream is asserted non-decreasing: any arrival strictly older
/// than the newest one seen is late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    max_seen: Option<i64>,
    lag_secs: i64,
}

impl Watermark {
    /// A watermark tolerating event-time disorder up to `lag_secs`.
    ///
    /// # Panics
    /// Panics if `lag_secs` is negative.
    pub fn new(lag_secs: i64) -> Self {
        assert!(lag_secs >= 0, "watermark lag must be non-negative");
        Self {
            max_seen: None,
            lag_secs,
        }
    }

    /// The configured out-of-order tolerance in seconds.
    #[inline]
    pub fn lag_secs(&self) -> i64 {
        self.lag_secs
    }

    /// The highest event time observed so far.
    #[inline]
    pub fn max_seen(&self) -> Option<Timestamp> {
        self.max_seen.map(Timestamp)
    }

    /// The current frontier `max_seen - lag` (`None` before the first
    /// observation). Monotone non-decreasing under `observe`.
    #[inline]
    pub fn frontier(&self) -> Option<Timestamp> {
        self.max_seen
            .map(|m| Timestamp(m.saturating_sub(self.lag_secs)))
    }

    /// Whether an arrival at `t` is late: strictly below the frontier,
    /// i.e. events at or after `t` may already have been released.
    #[inline]
    pub fn is_late(&self, t: Timestamp) -> bool {
        matches!(self.frontier(), Some(f) if t < f)
    }

    /// Feeds one arrival time and returns the (possibly advanced)
    /// frontier. Lateness of the arrival itself is judged against the
    /// frontier *before* this observation — call [`Watermark::is_late`]
    /// first.
    pub fn observe(&mut self, t: Timestamp) -> Option<Timestamp> {
        self.max_seen = Some(self.max_seen.map_or(t.secs(), |m| m.max(t.secs())));
        self.frontier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_trails_by_lag() {
        let mut wm = Watermark::new(100);
        assert_eq!(wm.frontier(), None);
        wm.observe(Timestamp(1000));
        assert_eq!(wm.frontier(), Some(Timestamp(900)));
        assert_eq!(wm.max_seen(), Some(Timestamp(1000)));
        // Older observations never move the frontier backwards.
        wm.observe(Timestamp(500));
        assert_eq!(wm.frontier(), Some(Timestamp(900)));
        wm.observe(Timestamp(2000));
        assert_eq!(wm.frontier(), Some(Timestamp(1900)));
    }

    #[test]
    fn lateness_is_strictly_below_frontier() {
        let mut wm = Watermark::new(50);
        wm.observe(Timestamp(1000));
        assert!(wm.is_late(Timestamp(949)));
        assert!(!wm.is_late(Timestamp(950)), "at the frontier is not late");
        assert!(!wm.is_late(Timestamp(1000)));
    }

    #[test]
    fn zero_lag_asserts_nondecreasing_arrival() {
        let mut wm = Watermark::new(0);
        assert!(!wm.is_late(Timestamp(10)));
        wm.observe(Timestamp(10));
        // Ties are fine; strictly older arrivals are late.
        assert!(!wm.is_late(Timestamp(10)));
        assert!(wm.is_late(Timestamp(9)));
    }

    #[test]
    fn saturates_near_i64_min() {
        let mut wm = Watermark::new(i64::MAX);
        wm.observe(Timestamp(0));
        assert_eq!(wm.frontier(), Some(Timestamp(-i64::MAX)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lag_panics() {
        let _ = Watermark::new(-1);
    }
}
