//! The persistent worker pool behind every parallel engine phase.
//!
//! Before this pool, each ingest / refresh phase spawned one scoped
//! thread per shard (`std::thread::scope`) and joined them at the
//! barrier: thread churn on every phase, and a *static* partition — one
//! hot entity's home shard became the straggler while every other core
//! idled at the join. The pool inverts both properties:
//!
//! * **Persistent.** `workers − 1` threads are spawned lazily on the
//!   first parallel phase of a [`crate::StreamEngine`] and reused for
//!   every subsequent ingest, refresh, and finalize phase; the engine
//!   thread itself participates as worker 0.
//! * **Work-stealing.** A phase is a list of [chunks](crate::steal) —
//!   deterministic slices of the per-shard work queues — distributed
//!   over per-worker deques. Idle workers steal from the back of busy
//!   workers' deques, so a hot shard's queue is consumed by every free
//!   core instead of serializing on its home worker.
//!
//! **Determinism.** Chunk construction is a pure function of the work
//! lists (never of the worker count), every chunk computes a pure
//! function of its input, and [`WorkerPool::run`] returns outputs in
//! chunk-id order — so links, update streams, stats, and finalized
//! output are bit-identical for every worker count, every
//! [`PoolMode`], and every steal schedule. Only the scheduling
//! telemetry ([`WorkerPool::steal_events`],
//! [`WorkerPool::busy_spread_ns`]) varies.
//!
//! **Safety.** Workers receive the phase task as a type-erased raw
//! reference. The invariant making that sound: `run` does not return
//! until every chunk has *finished executing* (`ChunkQueues::is_done`),
//! and a worker only dereferences the task pointer while executing a
//! chunk it claimed — a claimed-but-unfinished chunk keeps the phase
//! incomplete, so the borrow can never be outlived. Stale task pointers
//! held by late-waking workers are never dereferenced because their
//! queues are already empty.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use slim_telemetry::Histogram;

use crate::source::{Clock, WallClock};
use crate::steal::{ChunkQueues, PoolMode};
use crate::telemetry::PhaseId;

/// Splits `0..len` into contiguous ranges of at most `grain` — the
/// chunk shape every phase uses. Grain constants are fixed (never
/// derived from the worker count), which is what keeps chunk ids — and
/// with them the merged outputs — identical across worker counts.
pub(crate) fn chunk_ranges(len: usize, grain: usize) -> Vec<std::ops::Range<usize>> {
    let grain = grain.max(1);
    (0..len)
        .step_by(grain)
        .map(|s| s..(s + grain).min(len))
        .collect()
}

/// A type-erased borrow of the phase closure. Only dereferenced while a
/// claimed chunk is executing (see the module safety notes).
#[derive(Clone, Copy)]
struct TaskRef {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer is only dereferenced under the phase-lifetime
// invariant documented on the module; the pointee is `Sync`.
unsafe impl Send for TaskRef {}

fn task_ref<F: Fn(usize) + Sync>(f: &F) -> TaskRef {
    unsafe fn call<F: Fn(usize) + Sync>(data: *const (), id: usize) {
        (*(data as *const F))(id)
    }
    TaskRef {
        data: f as *const F as *const (),
        call: call::<F>,
    }
}

/// One published phase: the erased task, its chunk distribution, and
/// the span-histogram slot its chunk timings land in.
#[derive(Clone)]
struct PhaseRef {
    task: TaskRef,
    queues: Arc<ChunkQueues>,
    phase: PhaseId,
}

struct Ctl {
    /// Bumped once per published phase; workers run each epoch once.
    epoch: u64,
    phase: Option<PhaseRef>,
    shutdown: bool,
}

struct Shared {
    ctl: Mutex<Ctl>,
    /// Workers wait here for the next epoch.
    work: Condvar,
    /// The submitter waits here for phase completion.
    done: Condvar,
    /// Pool-lifetime chunk steals (cross-deque pops).
    steal_events: AtomicU64,
    /// Pool-lifetime busy nanoseconds per worker — the skew telemetry:
    /// under a static partition with a hot shard, max ≫ min; with
    /// stealing they converge.
    busy_ns: Vec<AtomicU64>,
    /// The span clock. Swappable (a `VirtualClock` makes recorded spans
    /// exactly reproducible); read once per drain, never per chunk.
    clock: Mutex<Arc<dyn Clock + Sync>>,
    /// Gates the per-phase span histograms below (busy totals are
    /// always kept — they predate the phase recorders and stay cheap).
    record_spans: bool,
    /// Per-worker phase-span recorders, indexed `[worker][PhaseId]`.
    /// Each worker only ever locks its own slot while executing, so
    /// recording never makes one worker wait on another; the merged
    /// view is assembled in worker-id order at read time.
    recorders: Vec<Mutex<Vec<Histogram>>>,
    panicked: AtomicBool,
}

/// A slot written by exactly one chunk (disjoint-index discipline).
struct Slot<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each slot index is accessed by exactly one executing chunk,
// and the submitter reads only after the phase completed.
unsafe impl<T: Send> Sync for Slot<T> {}

/// See the module docs. One pool per [`crate::StreamEngine`].
pub(crate) struct WorkerPool {
    workers: usize,
    mode: PoolMode,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes whole phases: `run` holds this from publish to
    /// completion, so concurrent `&self` callers cannot interleave two
    /// phases on one pool.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// A pool of `workers` total workers (the submitting thread counts
    /// as worker 0; `workers − 1` threads are spawned lazily on first
    /// use). `workers == 1` runs every phase inline. `record_spans`
    /// enables the per-phase span histograms.
    pub(crate) fn new(workers: usize, mode: PoolMode, record_spans: bool) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            mode,
            shared: Arc::new(Shared {
                ctl: Mutex::new(Ctl {
                    epoch: 0,
                    phase: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                steal_events: AtomicU64::new(0),
                busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                clock: Mutex::new(Arc::new(WallClock::new())),
                record_spans,
                recorders: (0..workers)
                    .map(|_| Mutex::new(vec![Histogram::new(); PhaseId::COUNT]))
                    .collect(),
                panicked: AtomicBool::new(false),
            }),
            threads: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        }
    }

    /// Swaps the span clock (testing: a `VirtualClock` makes every
    /// recorded span an exact function of the test's clock advances).
    pub(crate) fn set_clock(&self, clock: Arc<dyn Clock + Sync>) {
        *self.shared.clock.lock().expect("pool poisoned") = clock;
    }

    /// Chunks executed by a worker other than the one they were placed
    /// on, over the pool's lifetime.
    pub(crate) fn steal_events(&self) -> u64 {
        self.shared.steal_events.load(Ordering::Relaxed)
    }

    /// Histogram over the current per-worker lifetime busy totals (one
    /// sample per worker, idle workers contributing 0) — the full
    /// busy-time distribution the old bare max/min pair summarized.
    pub(crate) fn busy_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for b in &self.shared.busy_ns {
            h.record(b.load(Ordering::Relaxed));
        }
        h
    }

    /// `(max, min)` busy nanoseconds across workers over the pool's
    /// lifetime — the legacy pair, now *derived* from
    /// [`WorkerPool::busy_histogram`] (which tracks min/max exactly, so
    /// the values are bit-identical to the old direct scan). `min`
    /// stays 0 until every worker has executed at least one chunk.
    pub(crate) fn busy_spread_ns(&self) -> (u64, u64) {
        let h = self.busy_histogram();
        (h.max(), h.min())
    }

    /// The merged per-phase span histograms, indexed by
    /// [`PhaseId::idx`]. Per-worker recorders are folded in worker-id
    /// order (merging commutes regardless — the order is fixed so the
    /// read itself is reproducible).
    pub(crate) fn phase_histograms(&self) -> Vec<Histogram> {
        let mut merged = vec![Histogram::new(); PhaseId::COUNT];
        for rec in &self.shared.recorders {
            let rec = rec.lock().expect("pool poisoned");
            for (m, h) in merged.iter_mut().zip(rec.iter()) {
                m.merge(h);
            }
        }
        merged
    }

    /// The work-size-gated form of [`WorkerPool::run`] — the single
    /// dispatch switch every engine phase shares. `parallel = false`
    /// (the phase's work is below its threshold) runs a plain inline
    /// map: no pool involvement, no telemetry, which is what keeps the
    /// single-event ingest path dispatch-free.
    pub(crate) fn run_gated<I: Send, T: Send>(
        &self,
        phase: PhaseId,
        parallel: bool,
        items: Vec<I>,
        f: impl Fn(I) -> T + Sync,
    ) -> Vec<T> {
        if parallel && items.len() > 1 {
            self.run(phase, items, f)
        } else {
            items.into_iter().map(f).collect()
        }
    }

    /// Executes `f` once per item, returning outputs in item order.
    /// Items are the phase's chunks: item `i` is chunk id `i`. Inline
    /// when the pool has one worker or one item; otherwise distributed
    /// over the worker deques per the pool's [`PoolMode`]. Chunk spans
    /// are recorded under `phase` (one whole-phase span on the inline
    /// path).
    pub(crate) fn run<I: Send, T: Send>(
        &self,
        phase: PhaseId,
        items: Vec<I>,
        f: impl Fn(I) -> T + Sync,
    ) -> Vec<T> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            // Inline, but still on the books: busy time and the phase
            // span feed the same telemetry so 1-worker baselines are
            // comparable.
            let clock = Arc::clone(&self.shared.clock.lock().expect("pool poisoned"));
            let t0 = clock.now_ns();
            let out: Vec<T> = items.into_iter().map(f).collect();
            let span = clock.now_ns().saturating_sub(t0);
            self.shared.busy_ns[0].fetch_add(span, Ordering::Relaxed);
            if self.shared.record_spans {
                self.shared.recorders[0].lock().expect("pool poisoned")[phase.idx()].record(span);
            }
            return out;
        }
        self.ensure_spawned();

        let input: Vec<Slot<I>> = items
            .into_iter()
            .map(|i| Slot(std::cell::UnsafeCell::new(Some(i))))
            .collect();
        let output: Vec<Slot<T>> = (0..n)
            .map(|_| Slot(std::cell::UnsafeCell::new(None)))
            .collect();
        let runner = |id: usize| {
            // SAFETY: chunk ids are claimed exactly once, so slot `id`
            // has exactly one accessor.
            let item = unsafe { (*input[id].0.get()).take().expect("chunk claimed once") };
            let value = f(item);
            unsafe { *output[id].0.get() = Some(value) };
        };

        let _phase_guard = self.submit.lock().expect("pool poisoned");
        let queues = Arc::new(ChunkQueues::new(n, self.workers, self.mode));
        let phase = PhaseRef {
            task: task_ref(&runner),
            queues: Arc::clone(&queues),
            phase,
        };
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            ctl.epoch += 1;
            ctl.phase = Some(phase.clone());
            self.shared.work.notify_all();
        }
        // Participate as worker 0, then wait for the stragglers.
        Self::drain(&self.shared, &phase, 0);
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            while !queues.is_done() {
                ctl = self.shared.done.wait(ctl).expect("pool poisoned");
            }
            ctl.phase = None;
        }
        self.shared
            .steal_events
            .fetch_add(queues.steals(), Ordering::Relaxed);
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("pool worker panicked while executing a chunk");
        }
        output
            .into_iter()
            .map(|s| s.0.into_inner().expect("every chunk executed"))
            .collect()
    }

    /// The chunk-execution loop shared by workers and the submitter.
    fn drain(shared: &Shared, phase: &PhaseRef, worker: usize) {
        let clock = Arc::clone(&shared.clock.lock().expect("pool poisoned"));
        while let Some(id) = phase.queues.pop(worker) {
            let t0 = clock.now_ns();
            let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: see the module safety notes — the task borrow
                // is alive because this chunk is claimed but not yet
                // completed.
                unsafe { (phase.task.call)(phase.task.data, id) }
            }))
            .is_ok();
            let span = clock.now_ns().saturating_sub(t0);
            shared.busy_ns[worker].fetch_add(span, Ordering::Relaxed);
            if shared.record_spans {
                shared.recorders[worker].lock().expect("pool poisoned")[phase.phase.idx()]
                    .record(span);
            }
            if !ok {
                shared.panicked.store(true, Ordering::Relaxed);
            }
            if phase.queues.complete_one() {
                // Lock-then-notify so the submitter cannot miss the
                // final completion between its check and its wait.
                let _ctl = shared.ctl.lock().expect("pool poisoned");
                shared.done.notify_all();
            }
        }
    }

    fn worker_loop(shared: Arc<Shared>, worker: usize) {
        let mut seen = 0u64;
        loop {
            let phase = {
                let mut ctl = shared.ctl.lock().expect("pool poisoned");
                loop {
                    if ctl.shutdown {
                        return;
                    }
                    if ctl.epoch > seen {
                        seen = ctl.epoch;
                        break ctl.phase.clone();
                    }
                    ctl = shared.work.wait(ctl).expect("pool poisoned");
                }
            };
            if let Some(phase) = phase {
                Self::drain(&shared, &phase, worker);
            }
        }
    }

    fn ensure_spawned(&self) {
        let mut threads = self.threads.lock().expect("pool poisoned");
        if !threads.is_empty() {
            return;
        }
        for w in 1..self.workers {
            let shared = Arc::clone(&self.shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("slim-pool-{w}"))
                    .spawn(move || Self::worker_loop(shared, w))
                    .expect("spawn pool worker"),
            );
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            ctl.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.threads.lock().expect("pool poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_chunk_order() {
        let pool = WorkerPool::new(4, PoolMode::Stealing, true);
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for _ in 0..3 {
            // Repeated phases reuse the same workers.
            let got = pool.run(PhaseId::Bin, items.clone(), |x| x * x + 1);
            assert_eq!(got, expect);
        }
        let (max, min) = pool.busy_spread_ns();
        assert!(max > 0 && max >= min);
        // The legacy pair is derived from the busy histogram.
        let busy = pool.busy_histogram();
        assert_eq!((busy.max(), busy.min()), (max, min));
        assert_eq!(busy.count(), 4, "one sample per worker");
        // Every executed chunk left a span in the phase recorder.
        let spans = pool.phase_histograms();
        assert_eq!(spans[PhaseId::Bin.idx()].count(), 3 * 257);
        assert_eq!(spans[PhaseId::Rescore.idx()].count(), 0);
    }

    #[test]
    fn mutable_borrows_ride_through_chunks() {
        // The engine's phase shape: chunks carry &mut slices of engine
        // state plus owned work, mutated on whichever worker runs them.
        let pool = WorkerPool::new(3, PoolMode::Stealing, true);
        let mut cells: Vec<u64> = vec![0; 64];
        let work: Vec<(&mut u64, u64)> = cells.iter_mut().zip(0u64..).collect();
        let sums = pool.run(PhaseId::Apply, work, |(cell, add)| {
            *cell += add * 2;
            *cell
        });
        assert_eq!(sums, (0..64).map(|x| x * 2).collect::<Vec<u64>>());
        assert_eq!(cells[63], 126);
    }

    #[test]
    fn scripted_schedules_change_nothing_observable() {
        let items: Vec<u64> = (0..200).collect();
        let reference =
            WorkerPool::new(1, PoolMode::Stealing, true)
                .run(PhaseId::Bin, items.clone(), |x| x * 3);
        for seed in [0u64, 1, 42, u64::MAX] {
            let pool = WorkerPool::new(4, PoolMode::Scripted { seed }, true);
            assert_eq!(
                pool.run(PhaseId::Bin, items.clone(), |x| x * 3),
                reference,
                "seed {seed}"
            );
        }
        let pool = WorkerPool::new(4, PoolMode::Static, true);
        assert_eq!(
            pool.run(PhaseId::Bin, items, |x| x * 3),
            reference,
            "static mode"
        );
    }

    #[test]
    fn empty_and_singleton_phases_are_inline() {
        let pool = WorkerPool::new(4, PoolMode::Stealing, true);
        assert_eq!(
            pool.run(PhaseId::Bin, Vec::<u8>::new(), |x| x),
            Vec::<u8>::new()
        );
        assert_eq!(pool.run(PhaseId::Bin, vec![9u8], |x| x + 1), vec![10]);
        // Neither dispatched to the deques, so nothing could be stolen.
        assert_eq!(pool.steal_events(), 0);
        // The singleton still recorded one whole-phase span inline.
        assert_eq!(pool.phase_histograms()[PhaseId::Bin.idx()].count(), 1);
    }

    #[test]
    fn disabled_recording_keeps_busy_totals_only() {
        let pool = WorkerPool::new(2, PoolMode::Stealing, false);
        let got = pool.run(PhaseId::Rescore, (0..64u64).collect(), |x| x + 1);
        assert_eq!(got.len(), 64);
        assert!(pool.busy_spread_ns().0 > 0, "busy totals always accrue");
        assert!(pool.phase_histograms().iter().all(|h| h.count() == 0));
    }

    #[test]
    fn virtual_clock_makes_spans_exact() {
        use crate::testing::VirtualClock;
        let pool = WorkerPool::new(3, PoolMode::Stealing, true);
        pool.set_clock(Arc::new(VirtualClock::new()));
        pool.run(PhaseId::Apply, (0..100u64).collect(), |x| x);
        let spans = &pool.phase_histograms()[PhaseId::Apply.idx()];
        // A constant clock times every chunk at exactly zero — the
        // histogram is a pure function of the chunk count.
        assert_eq!((spans.count(), spans.sum(), spans.max()), (100, 0, 0));
        assert_eq!(pool.busy_spread_ns(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn chunk_panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(2, PoolMode::Stealing, true);
        pool.run(PhaseId::Bin, (0..16).collect::<Vec<u32>>(), |x| {
            assert!(x != 7, "injected failure");
            x
        });
    }
}
