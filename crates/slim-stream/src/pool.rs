//! The persistent worker pool behind every parallel engine phase.
//!
//! Before this pool, each ingest / refresh phase spawned one scoped
//! thread per shard (`std::thread::scope`) and joined them at the
//! barrier: thread churn on every phase, and a *static* partition — one
//! hot entity's home shard became the straggler while every other core
//! idled at the join. The pool inverts both properties:
//!
//! * **Persistent.** `workers − 1` threads are spawned lazily on the
//!   first parallel phase of a [`crate::StreamEngine`] and reused for
//!   every subsequent ingest, refresh, and finalize phase; the engine
//!   thread itself participates as worker 0.
//! * **Work-stealing.** A phase is a list of [chunks](crate::steal) —
//!   deterministic slices of the per-shard work queues — distributed
//!   over per-worker deques. Idle workers steal from the back of busy
//!   workers' deques, so a hot shard's queue is consumed by every free
//!   core instead of serializing on its home worker.
//!
//! **Determinism.** Chunk construction is a pure function of the work
//! lists (never of the worker count), every chunk computes a pure
//! function of its input, and [`WorkerPool::run`] returns outputs in
//! chunk-id order — so links, update streams, stats, and finalized
//! output are bit-identical for every worker count, every
//! [`PoolMode`], and every steal schedule. Only the scheduling
//! telemetry ([`WorkerPool::steal_events`],
//! [`WorkerPool::busy_spread_ns`]) varies.
//!
//! **Safety.** Workers receive the phase task as a type-erased raw
//! reference. The invariant making that sound: `run` does not return
//! until every chunk has *finished executing* (`ChunkQueues::is_done`),
//! and a worker only dereferences the task pointer while executing a
//! chunk it claimed — a claimed-but-unfinished chunk keeps the phase
//! incomplete, so the borrow can never be outlived. Stale task pointers
//! held by late-waking workers are never dereferenced because their
//! queues are already empty.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::steal::{ChunkQueues, PoolMode};

/// Splits `0..len` into contiguous ranges of at most `grain` — the
/// chunk shape every phase uses. Grain constants are fixed (never
/// derived from the worker count), which is what keeps chunk ids — and
/// with them the merged outputs — identical across worker counts.
pub(crate) fn chunk_ranges(len: usize, grain: usize) -> Vec<std::ops::Range<usize>> {
    let grain = grain.max(1);
    (0..len)
        .step_by(grain)
        .map(|s| s..(s + grain).min(len))
        .collect()
}

/// A type-erased borrow of the phase closure. Only dereferenced while a
/// claimed chunk is executing (see the module safety notes).
#[derive(Clone, Copy)]
struct TaskRef {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointer is only dereferenced under the phase-lifetime
// invariant documented on the module; the pointee is `Sync`.
unsafe impl Send for TaskRef {}

fn task_ref<F: Fn(usize) + Sync>(f: &F) -> TaskRef {
    unsafe fn call<F: Fn(usize) + Sync>(data: *const (), id: usize) {
        (*(data as *const F))(id)
    }
    TaskRef {
        data: f as *const F as *const (),
        call: call::<F>,
    }
}

/// One published phase: the erased task plus its chunk distribution.
#[derive(Clone)]
struct PhaseRef {
    task: TaskRef,
    queues: Arc<ChunkQueues>,
}

struct Ctl {
    /// Bumped once per published phase; workers run each epoch once.
    epoch: u64,
    phase: Option<PhaseRef>,
    shutdown: bool,
}

struct Shared {
    ctl: Mutex<Ctl>,
    /// Workers wait here for the next epoch.
    work: Condvar,
    /// The submitter waits here for phase completion.
    done: Condvar,
    /// Pool-lifetime chunk steals (cross-deque pops).
    steal_events: AtomicU64,
    /// Pool-lifetime busy nanoseconds per worker — the skew telemetry:
    /// under a static partition with a hot shard, max ≫ min; with
    /// stealing they converge.
    busy_ns: Vec<AtomicU64>,
    panicked: AtomicBool,
}

/// A slot written by exactly one chunk (disjoint-index discipline).
struct Slot<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each slot index is accessed by exactly one executing chunk,
// and the submitter reads only after the phase completed.
unsafe impl<T: Send> Sync for Slot<T> {}

/// See the module docs. One pool per [`crate::StreamEngine`].
pub(crate) struct WorkerPool {
    workers: usize,
    mode: PoolMode,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes whole phases: `run` holds this from publish to
    /// completion, so concurrent `&self` callers cannot interleave two
    /// phases on one pool.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// A pool of `workers` total workers (the submitting thread counts
    /// as worker 0; `workers − 1` threads are spawned lazily on first
    /// use). `workers == 1` runs every phase inline.
    pub(crate) fn new(workers: usize, mode: PoolMode) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            mode,
            shared: Arc::new(Shared {
                ctl: Mutex::new(Ctl {
                    epoch: 0,
                    phase: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                steal_events: AtomicU64::new(0),
                busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
                panicked: AtomicBool::new(false),
            }),
            threads: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        }
    }

    /// Chunks executed by a worker other than the one they were placed
    /// on, over the pool's lifetime.
    pub(crate) fn steal_events(&self) -> u64 {
        self.shared.steal_events.load(Ordering::Relaxed)
    }

    /// `(max, min)` busy nanoseconds across workers over the pool's
    /// lifetime. `min` stays 0 until every worker has executed at least
    /// one chunk.
    pub(crate) fn busy_spread_ns(&self) -> (u64, u64) {
        let mut max = 0u64;
        let mut min = u64::MAX;
        for b in &self.shared.busy_ns {
            let v = b.load(Ordering::Relaxed);
            max = max.max(v);
            min = min.min(v);
        }
        (max, if min == u64::MAX { 0 } else { min })
    }

    /// The work-size-gated form of [`WorkerPool::run`] — the single
    /// dispatch switch every engine phase shares. `parallel = false`
    /// (the phase's work is below its threshold) runs a plain inline
    /// map: no pool involvement, no telemetry, which is what keeps the
    /// single-event ingest path dispatch-free.
    pub(crate) fn run_gated<I: Send, T: Send>(
        &self,
        parallel: bool,
        items: Vec<I>,
        f: impl Fn(I) -> T + Sync,
    ) -> Vec<T> {
        if parallel && items.len() > 1 {
            self.run(items, f)
        } else {
            items.into_iter().map(f).collect()
        }
    }

    /// Executes `f` once per item, returning outputs in item order.
    /// Items are the phase's chunks: item `i` is chunk id `i`. Inline
    /// when the pool has one worker or one item; otherwise distributed
    /// over the worker deques per the pool's [`PoolMode`].
    pub(crate) fn run<I: Send, T: Send>(&self, items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            // Inline, but still on the books: busy time feeds the same
            // telemetry so 1-worker baselines are comparable.
            let t0 = Instant::now();
            let out: Vec<T> = items.into_iter().map(f).collect();
            self.shared.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return out;
        }
        self.ensure_spawned();

        let input: Vec<Slot<I>> = items
            .into_iter()
            .map(|i| Slot(std::cell::UnsafeCell::new(Some(i))))
            .collect();
        let output: Vec<Slot<T>> = (0..n)
            .map(|_| Slot(std::cell::UnsafeCell::new(None)))
            .collect();
        let runner = |id: usize| {
            // SAFETY: chunk ids are claimed exactly once, so slot `id`
            // has exactly one accessor.
            let item = unsafe { (*input[id].0.get()).take().expect("chunk claimed once") };
            let value = f(item);
            unsafe { *output[id].0.get() = Some(value) };
        };

        let _phase_guard = self.submit.lock().expect("pool poisoned");
        let queues = Arc::new(ChunkQueues::new(n, self.workers, self.mode));
        let phase = PhaseRef {
            task: task_ref(&runner),
            queues: Arc::clone(&queues),
        };
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            ctl.epoch += 1;
            ctl.phase = Some(phase.clone());
            self.shared.work.notify_all();
        }
        // Participate as worker 0, then wait for the stragglers.
        Self::drain(&self.shared, &phase, 0);
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            while !queues.is_done() {
                ctl = self.shared.done.wait(ctl).expect("pool poisoned");
            }
            ctl.phase = None;
        }
        self.shared
            .steal_events
            .fetch_add(queues.steals(), Ordering::Relaxed);
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("pool worker panicked while executing a chunk");
        }
        output
            .into_iter()
            .map(|s| s.0.into_inner().expect("every chunk executed"))
            .collect()
    }

    /// The chunk-execution loop shared by workers and the submitter.
    fn drain(shared: &Shared, phase: &PhaseRef, worker: usize) {
        while let Some(id) = phase.queues.pop(worker) {
            let t0 = Instant::now();
            let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: see the module safety notes — the task borrow
                // is alive because this chunk is claimed but not yet
                // completed.
                unsafe { (phase.task.call)(phase.task.data, id) }
            }))
            .is_ok();
            shared.busy_ns[worker].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if !ok {
                shared.panicked.store(true, Ordering::Relaxed);
            }
            if phase.queues.complete_one() {
                // Lock-then-notify so the submitter cannot miss the
                // final completion between its check and its wait.
                let _ctl = shared.ctl.lock().expect("pool poisoned");
                shared.done.notify_all();
            }
        }
    }

    fn worker_loop(shared: Arc<Shared>, worker: usize) {
        let mut seen = 0u64;
        loop {
            let phase = {
                let mut ctl = shared.ctl.lock().expect("pool poisoned");
                loop {
                    if ctl.shutdown {
                        return;
                    }
                    if ctl.epoch > seen {
                        seen = ctl.epoch;
                        break ctl.phase.clone();
                    }
                    ctl = shared.work.wait(ctl).expect("pool poisoned");
                }
            };
            if let Some(phase) = phase {
                Self::drain(&shared, &phase, worker);
            }
        }
    }

    fn ensure_spawned(&self) {
        let mut threads = self.threads.lock().expect("pool poisoned");
        if !threads.is_empty() {
            return;
        }
        for w in 1..self.workers {
            let shared = Arc::clone(&self.shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("slim-pool-{w}"))
                    .spawn(move || Self::worker_loop(shared, w))
                    .expect("spawn pool worker"),
            );
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctl = self.shared.ctl.lock().expect("pool poisoned");
            ctl.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.threads.lock().expect("pool poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_chunk_order() {
        let pool = WorkerPool::new(4, PoolMode::Stealing);
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for _ in 0..3 {
            // Repeated phases reuse the same workers.
            let got = pool.run(items.clone(), |x| x * x + 1);
            assert_eq!(got, expect);
        }
        let (max, min) = pool.busy_spread_ns();
        assert!(max > 0 && max >= min);
    }

    #[test]
    fn mutable_borrows_ride_through_chunks() {
        // The engine's phase shape: chunks carry &mut slices of engine
        // state plus owned work, mutated on whichever worker runs them.
        let pool = WorkerPool::new(3, PoolMode::Stealing);
        let mut cells: Vec<u64> = vec![0; 64];
        let work: Vec<(&mut u64, u64)> = cells.iter_mut().zip(0u64..).collect();
        let sums = pool.run(work, |(cell, add)| {
            *cell += add * 2;
            *cell
        });
        assert_eq!(sums, (0..64).map(|x| x * 2).collect::<Vec<u64>>());
        assert_eq!(cells[63], 126);
    }

    #[test]
    fn scripted_schedules_change_nothing_observable() {
        let items: Vec<u64> = (0..200).collect();
        let reference = WorkerPool::new(1, PoolMode::Stealing).run(items.clone(), |x| x * 3);
        for seed in [0u64, 1, 42, u64::MAX] {
            let pool = WorkerPool::new(4, PoolMode::Scripted { seed });
            assert_eq!(pool.run(items.clone(), |x| x * 3), reference, "seed {seed}");
        }
        let pool = WorkerPool::new(4, PoolMode::Static);
        assert_eq!(pool.run(items, |x| x * 3), reference, "static mode");
    }

    #[test]
    fn empty_and_singleton_phases_are_inline() {
        let pool = WorkerPool::new(4, PoolMode::Stealing);
        assert_eq!(pool.run(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(pool.run(vec![9u8], |x| x + 1), vec![10]);
        // Neither dispatched to the deques, so nothing could be stolen.
        assert_eq!(pool.steal_events(), 0);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn chunk_panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(2, PoolMode::Stealing);
        pool.run((0..16).collect::<Vec<u32>>(), |x| {
            assert!(x != 7, "injected failure");
            x
        });
    }
}
