//! Deterministic test doubles for the ingestion front-end, shared by
//! unit tests, the integration suites (`tests/ingest_equivalence.rs`),
//! and the bench smoke paths.
//!
//! The two flakiness sources a streaming harness usually drags into CI
//! are **sleeps** (to "let the producer catch up") and the **wall
//! clock** (rate pacing). Neither appears here: [`ScriptedSource`]
//! replays an exact script of batches, stalls, EOF, and errors, and
//! [`VirtualClock`] is an explicitly advanced clock that plugs into
//! [`crate::source::SyntheticSource`]'s rate control.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crate::event::StreamEvent;
use crate::source::channel::Sender;
use crate::source::{Clock, ConnMessage, FanIn, SourcePoll, StreamSource};

/// One step of a [`ScriptedSource`] script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStep {
    /// Deliver these events (in this delivery order) as one batch.
    Batch(Vec<StreamEvent>),
    /// Report [`SourcePoll::Pending`] for this many polls.
    Stall(u32),
    /// Fail the stream with this error.
    Error(String),
}

/// A source that replays a fixed script: batches are delivered exactly
/// as written (split only when a poll asks for fewer events), stalls
/// surface as `Pending` the scripted number of times, and the script's
/// end is EOF. Completely deterministic — the delivered sequence never
/// depends on thread timing.
#[derive(Debug)]
pub struct ScriptedSource {
    steps: std::collections::VecDeque<ScriptStep>,
    /// Remainder of a batch a smaller `max` split.
    carry: Vec<StreamEvent>,
}

impl ScriptedSource {
    /// A source replaying `steps` in order.
    pub fn new(steps: Vec<ScriptStep>) -> Self {
        Self {
            steps: steps.into(),
            carry: Vec::new(),
        }
    }
}

/// Shorthand: delivers `events` in batches of `batch` with no stalls.
pub fn script(events: Vec<StreamEvent>, batch: usize) -> ScriptedSource {
    ScriptedSource::new(
        events
            .chunks(batch.max(1))
            .map(|c| ScriptStep::Batch(c.to_vec()))
            .collect(),
    )
}

impl StreamSource for ScriptedSource {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        let max = max.max(1);
        loop {
            if !self.carry.is_empty() {
                let n = self.carry.len().min(max);
                let rest = self.carry.split_off(n);
                let batch = std::mem::replace(&mut self.carry, rest);
                return Ok(SourcePoll::Batch(batch));
            }
            match self.steps.front_mut() {
                None => return Ok(SourcePoll::End),
                Some(ScriptStep::Stall(n)) => {
                    if *n == 0 {
                        self.steps.pop_front();
                        continue;
                    }
                    *n -= 1;
                    return Ok(SourcePoll::Pending);
                }
                Some(ScriptStep::Error(_)) => {
                    let Some(ScriptStep::Error(e)) = self.steps.pop_front() else {
                        unreachable!("checked above");
                    };
                    return Err(e);
                }
                Some(ScriptStep::Batch(_)) => {
                    let Some(ScriptStep::Batch(events)) = self.steps.pop_front() else {
                        unreachable!("checked above");
                    };
                    if events.is_empty() {
                        continue;
                    }
                    self.carry = events;
                }
            }
        }
    }
}

/// A deterministic multi-connection fan-in tier: stages of scripted
/// connections, each playing its own [`ScriptStep`] schedule on its own
/// thread through the shared MPSC channel — the test double for
/// [`crate::source::TcpIngestTier`] behind the same
/// [`crate::source::FanIn`] seam.
///
/// Within a stage every connection `Join`s before any of them delivers
/// an event (an internal barrier), so the frontier merge knows all
/// participants up front; stages run strictly one after another (the
/// next spawns only when every thread of the current one has finished),
/// so a later stage's `Join`s are enqueued after *all* of an earlier
/// stage's messages — mid-stream joins and leaves exercise churn
/// without manufacturing nondeterministic lateness. Within a stage,
/// thread interleaving is deliberately free: that schedule freedom is
/// exactly what the equivalence property tests quantify over.
///
/// Step semantics per connection: `Batch` delivers its events in order,
/// `Stall` yields the thread that many times (schedule perturbation,
/// not wall-time), and `Error` kills the connection — it leaves
/// immediately, the remaining steps unplayed (death churn; never a
/// drive failure).
#[derive(Debug)]
pub struct ScriptedConnections {
    /// `stages[s][c]` = the script of stage `s`'s connection `c`.
    /// Connection ids are assigned globally in stage-then-index order.
    stages: Vec<Vec<Vec<ScriptStep>>>,
}

impl ScriptedConnections {
    /// A tier playing `stages` sequentially, each stage's connections
    /// concurrently.
    pub fn new(stages: Vec<Vec<Vec<ScriptStep>>>) -> Self {
        Self { stages }
    }

    /// A tier with every connection live at once.
    pub fn single_stage(conns: Vec<Vec<ScriptStep>>) -> Self {
        Self::new(vec![conns])
    }
}

impl FanIn for ScriptedConnections {
    fn run(self, tx: Sender<ConnMessage>) -> Result<(), String> {
        let mut next_conn = 0u64;
        for stage in self.stages {
            if stage.is_empty() {
                continue;
            }
            let base = next_conn;
            next_conn += stage.len() as u64;
            let all_joined = Barrier::new(stage.len());
            std::thread::scope(|scope| {
                for (i, steps) in stage.into_iter().enumerate() {
                    let tx = tx.clone();
                    let all_joined = &all_joined;
                    scope.spawn(move || play_connection(base + i as u64, steps, &tx, all_joined));
                }
            });
        }
        Ok(())
    }
}

/// One scripted connection's life: `Join`, barrier, the script, then
/// `Leave`. Send failures mean the receiver (the drive) is gone — the
/// barrier is still honored so sibling threads cannot deadlock.
fn play_connection(
    conn: u64,
    steps: Vec<ScriptStep>,
    tx: &Sender<ConnMessage>,
    all_joined: &Barrier,
) {
    let joined = tx.send(ConnMessage::Join { conn }).is_ok();
    all_joined.wait();
    if !joined {
        return;
    }
    for step in steps {
        match step {
            ScriptStep::Batch(events) => {
                let batch = events
                    .into_iter()
                    .map(|event| ConnMessage::Event { conn, event });
                if tx.send_all(batch).is_err() {
                    return;
                }
            }
            ScriptStep::Stall(n) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            }
            // The connection dies mid-script: everything after is lost,
            // but the Leave below still reports the departure (a real
            // reader thread does the same on an IO error).
            ScriptStep::Error(_) => break,
        }
    }
    let _ = tx.send(ConnMessage::Leave {
        conn,
        malformed_lines: 0,
    });
}

/// A deterministic fault-injection plan for the crash/recover harness:
/// instead of killing real processes (slow, racy, unportable), a drive
/// with a plan installed via
/// [`crate::StreamEngine::set_fault_plan`] simulates the failure at an
/// exact, repeatable point in the accepted-event sequence — so CI
/// exercises crash recovery sleep-free and bit-reproducibly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abort the drive (as a crash would) immediately after accepting
    /// this many events from the source. The drive returns an error;
    /// the engine is left mid-ingest like a killed process's heap —
    /// recovery must come from the checkpoint directory.
    pub kill_at_event: Option<u64>,
    /// Truncate the **last checkpoint written before the kill** to this
    /// many bytes (a torn write: the crash hit mid-`write`). Requires
    /// `kill_at_event`.
    pub torn_write_after: Option<u64>,
    /// Flip one bit at this byte offset in the last checkpoint written
    /// before the kill (media corruption under an intact length).
    /// Requires `kill_at_event`.
    pub bit_flip_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that kills the drive after `n` accepted events, with
    /// intact checkpoints.
    pub fn kill_at(n: u64) -> Self {
        Self {
            kill_at_event: Some(n),
            ..Self::default()
        }
    }
}

/// A manually advanced monotone clock for rate-control tests. Cloning
/// shares the underlying time, so a test can hold one handle while the
/// source owns another.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_ns(ms * 1_000_000);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Side;
    use geocell::LatLng;
    use slim_core::{EntityId, Timestamp};

    fn ev(t: i64) -> StreamEvent {
        StreamEvent::new(
            Side::Left,
            EntityId(1),
            LatLng::from_degrees(0.0, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn script_replays_batches_stalls_and_eof() {
        let mut src = ScriptedSource::new(vec![
            ScriptStep::Batch(vec![ev(1), ev(2), ev(3)]),
            ScriptStep::Stall(2),
            ScriptStep::Batch(vec![ev(4)]),
        ]);
        // A smaller `max` splits the batch; the remainder carries over.
        assert_eq!(
            src.next_batch(2).unwrap(),
            SourcePoll::Batch(vec![ev(1), ev(2)])
        );
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Batch(vec![ev(3)]));
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Pending);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Pending);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Batch(vec![ev(4)]));
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::End);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::End);
    }

    #[test]
    fn scripted_error_fails_the_stream() {
        let mut src = ScriptedSource::new(vec![ScriptStep::Error("boom".into())]);
        assert_eq!(src.next_batch(1).unwrap_err(), "boom");
    }

    /// The fan-in protocol invariants the equivalence tests lean on:
    /// per-connection Join→events→Leave bracketing in channel FIFO
    /// order, all of a stage's Joins before any of its events, stage
    /// barriers (later Joins after all earlier messages), and `Error`
    /// as death churn (early Leave, remaining steps lost).
    #[test]
    fn scripted_connections_honor_the_protocol_order() {
        use crate::source::channel;

        let stage0 = vec![
            vec![
                ScriptStep::Batch(vec![ev(10), ev(20)]),
                ScriptStep::Stall(3),
                ScriptStep::Batch(vec![ev(30)]),
            ],
            vec![
                ScriptStep::Batch(vec![ev(15)]),
                ScriptStep::Error("dies".into()),
                ScriptStep::Batch(vec![ev(99)]), // never delivered
            ],
        ];
        let stage1 = vec![vec![ScriptStep::Batch(vec![ev(40)])]];
        let tier = ScriptedConnections::new(vec![stage0, stage1]);
        let (tx, rx) = channel::bounded::<ConnMessage>(8);
        let producer = std::thread::spawn(move || tier.run(tx));
        let mut msgs = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 16) {
            msgs.append(&mut buf);
        }
        producer.join().unwrap().unwrap();

        let pos = |pred: &dyn Fn(&ConnMessage) -> bool| msgs.iter().position(pred);
        let join_of = |c: u64| pos(&move |m| matches!(m, ConnMessage::Join { conn } if *conn == c));
        let leave_of =
            |c: u64| pos(&move |m| matches!(m, ConnMessage::Leave { conn, .. } if *conn == c));
        let first_event =
            pos(&|m| matches!(m, ConnMessage::Event { .. })).expect("events delivered");
        // Stage 0: both joins precede any event.
        assert!(join_of(0).unwrap() < first_event);
        assert!(join_of(1).unwrap() < first_event);
        // Stage barrier: conn 2 joins only after both stage-0 leaves.
        assert!(join_of(2).unwrap() > leave_of(0).unwrap());
        assert!(join_of(2).unwrap() > leave_of(1).unwrap());
        // Death churn: conn 1 left early, its post-error event is lost.
        let times: Vec<i64> = msgs
            .iter()
            .filter_map(|m| match m {
                ConnMessage::Event { event, .. } => Some(event.time.secs()),
                _ => None,
            })
            .collect();
        assert!(!times.contains(&99), "post-death events must be lost");
        let mut sorted = times;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 15, 20, 30, 40]);
    }

    #[test]
    fn virtual_clock_advances_on_demand() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        handle.advance_ms(3);
        assert_eq!(clock.now_ns(), 3_000_000);
    }
}
