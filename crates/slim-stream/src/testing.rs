//! Deterministic test doubles for the ingestion front-end, shared by
//! unit tests, the integration suites (`tests/ingest_equivalence.rs`),
//! and the bench smoke paths.
//!
//! The two flakiness sources a streaming harness usually drags into CI
//! are **sleeps** (to "let the producer catch up") and the **wall
//! clock** (rate pacing). Neither appears here: [`ScriptedSource`]
//! replays an exact script of batches, stalls, EOF, and errors, and
//! [`VirtualClock`] is an explicitly advanced clock that plugs into
//! [`crate::source::SyntheticSource`]'s rate control.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::StreamEvent;
use crate::source::{Clock, SourcePoll, StreamSource};

/// One step of a [`ScriptedSource`] script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStep {
    /// Deliver these events (in this delivery order) as one batch.
    Batch(Vec<StreamEvent>),
    /// Report [`SourcePoll::Pending`] for this many polls.
    Stall(u32),
    /// Fail the stream with this error.
    Error(String),
}

/// A source that replays a fixed script: batches are delivered exactly
/// as written (split only when a poll asks for fewer events), stalls
/// surface as `Pending` the scripted number of times, and the script's
/// end is EOF. Completely deterministic — the delivered sequence never
/// depends on thread timing.
#[derive(Debug)]
pub struct ScriptedSource {
    steps: std::collections::VecDeque<ScriptStep>,
    /// Remainder of a batch a smaller `max` split.
    carry: Vec<StreamEvent>,
}

impl ScriptedSource {
    /// A source replaying `steps` in order.
    pub fn new(steps: Vec<ScriptStep>) -> Self {
        Self {
            steps: steps.into(),
            carry: Vec::new(),
        }
    }
}

/// Shorthand: delivers `events` in batches of `batch` with no stalls.
pub fn script(events: Vec<StreamEvent>, batch: usize) -> ScriptedSource {
    ScriptedSource::new(
        events
            .chunks(batch.max(1))
            .map(|c| ScriptStep::Batch(c.to_vec()))
            .collect(),
    )
}

impl StreamSource for ScriptedSource {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        let max = max.max(1);
        loop {
            if !self.carry.is_empty() {
                let n = self.carry.len().min(max);
                let rest = self.carry.split_off(n);
                let batch = std::mem::replace(&mut self.carry, rest);
                return Ok(SourcePoll::Batch(batch));
            }
            match self.steps.front_mut() {
                None => return Ok(SourcePoll::End),
                Some(ScriptStep::Stall(n)) => {
                    if *n == 0 {
                        self.steps.pop_front();
                        continue;
                    }
                    *n -= 1;
                    return Ok(SourcePoll::Pending);
                }
                Some(ScriptStep::Error(_)) => {
                    let Some(ScriptStep::Error(e)) = self.steps.pop_front() else {
                        unreachable!("checked above");
                    };
                    return Err(e);
                }
                Some(ScriptStep::Batch(_)) => {
                    let Some(ScriptStep::Batch(events)) = self.steps.pop_front() else {
                        unreachable!("checked above");
                    };
                    if events.is_empty() {
                        continue;
                    }
                    self.carry = events;
                }
            }
        }
    }
}

/// A manually advanced monotone clock for rate-control tests. Cloning
/// shares the underlying time, so a test can hold one handle while the
/// source owns another.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_ns(ms * 1_000_000);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Side;
    use geocell::LatLng;
    use slim_core::{EntityId, Timestamp};

    fn ev(t: i64) -> StreamEvent {
        StreamEvent::new(
            Side::Left,
            EntityId(1),
            LatLng::from_degrees(0.0, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn script_replays_batches_stalls_and_eof() {
        let mut src = ScriptedSource::new(vec![
            ScriptStep::Batch(vec![ev(1), ev(2), ev(3)]),
            ScriptStep::Stall(2),
            ScriptStep::Batch(vec![ev(4)]),
        ]);
        // A smaller `max` splits the batch; the remainder carries over.
        assert_eq!(
            src.next_batch(2).unwrap(),
            SourcePoll::Batch(vec![ev(1), ev(2)])
        );
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Batch(vec![ev(3)]));
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Pending);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Pending);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::Batch(vec![ev(4)]));
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::End);
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::End);
    }

    #[test]
    fn scripted_error_fails_the_stream() {
        let mut src = ScriptedSource::new(vec![ScriptStep::Error("boom".into())]);
        assert_eq!(src.next_batch(1).unwrap_err(), "boom");
    }

    #[test]
    fn virtual_clock_advances_on_demand() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        handle.advance_ms(3);
        assert_eq!(clock.now_ns(), 3_000_000);
    }
}
