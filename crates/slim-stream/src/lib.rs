//! # slim-stream — incremental sliding-window mobility linkage
//!
//! The batch SLIM pipeline (`slim-core`) links two finished datasets in
//! one pass. This crate turns the reproduction into a **continuously
//! serving linkage engine**: it ingests `(side, entity, lat, lng,
//! timestamp)` events one at a time (or in sharded batches), maintains
//! per-entity mobility histories *and* the dataset-level statistics the
//! similarity score depends on (document frequencies, length norms)
//! incrementally, keeps LSH ring signatures hot in an incremental bucket
//! index, and re-runs matching + GMM thresholding over the dirty part of
//! the pair graph at configurable refresh ticks — emitting link *deltas*
//! instead of recomputing from scratch.
//!
//! ## Architecture
//!
//! Upstream of the engine sits the **async ingestion front-end**
//! ([`source`]): a [`source::StreamSource`] (CSV replay, live TCP
//! feed, synthetic workload) runs on a producer thread behind a
//! bounded backpressured channel, a watermark reorder buffer restores
//! canonical event order under bounded out-of-order delivery, and a
//! [`source::TickPolicy`] schedules refresh ticks —
//! [`StreamEngine::drive`] drains a source to EOF. The engine proper:
//!
//! The engine state is **sharded end-to-end by entity hash**: each
//! `EngineShard` owns its entities' histories, min-records buffers,
//! LSH rings, and the contribution caches + entity→pair adjacency of
//! the pairs it owns (owner = shard of the Left entity). Execution is
//! decoupled from that partition: a **persistent work-stealing worker
//! pool** (spawned once per engine, `--workers`, independent of
//! `--shards`) runs every parallel phase over *chunks* of the per-shard
//! work queues, so a hot entity's home shard is consumed by every free
//! worker instead of stalling the barrier. Only the dataset-global
//! steps (df/idf statistics, bucket-partition handoff, edge assembly,
//! matching, GMM thresholding) meet at merge barriers — and every
//! barrier folds commutative deltas, sorted sets, or chunk-id-ordered
//! outputs, so links, stats, and finalized output are bit-identical
//! for every shard count, every worker count, and every steal
//! schedule.
//!
//! ```text
//!            ┌───────────── control scan (serial, cheap) ─────────────┐
//!            │ late-drop · watermark · expiry / tick boundaries       │
//! events ──► └───┬────────────────┬────────────────┬─────────────────┘
//!                ▼                ▼                ▼
//!            ┌─ shard 0 ─┐   ┌─ shard 1 ─┐ … ┌─ shard N ─┐   (∥ per shard)
//!            │ bin + buffer + histories + rings + dirty  │
//!            └───┬────────────────┬────────────────┬─────┘
//!                ▼                ▼                ▼
//!            ╞═ barrier: df/idf deltas · LSH partition upserts ═╡
//!            ╞═          candidate pairs → owning shard        ═╡
//! tick  ───► rescore adjacency-reachable dirty (pair, window) (∥)
//!            patch per-shard sorted edge caches in place
//!            retire collision-less empty pairs
//!            ╞═ barrier: k-way merge of edge-delta runs   ═╡
//!            ╞═ region-local delta matching · warm GMM fit ═╡
//!            ──► Vec<LinkUpdate>  (Added / Removed / Reweighted)
//! finalize ► exact batch pipeline over the merged live histories
//! ```
//!
//! Three properties anchor the design:
//!
//! 1. **Stream/batch equivalence.** With an unbounded window and the
//!    same window origin, [`StreamEngine::finalize`] returns output
//!    *bit-identical* to [`slim_core::Slim::link`] over the same
//!    records: the incremental history sets are maintained exactly
//!    (same bins, same document frequencies, same averages), and
//!    finalization runs the unmodified batch pipeline over them. The
//!    origin matches automatically when the stream's earliest record
//!    belongs to an entity the batch min-records filter keeps; pin it
//!    explicitly with [`StreamEngine::with_origin`] +
//!    [`batch_equivalent_origin`] for replays where a sparse entity
//!    arrives first (the CLI `--stream` mode does).
//! 2. **Bounded work per tick.** An event dirties one window of one
//!    entity; a tick walks the entity→pair adjacency index from the
//!    dirty entities and recomputes only the reachable `(pair, window)`
//!    contributions (shard-parallel), reusing the cached contributions
//!    of untouched windows — never a full cache sweep
//!    ([`StreamStats::dirty_pairs_visited`] vs
//!    [`StreamStats::cached_pairs_at_ticks`] is the proof). The
//!    barrier is bounded the same way: each shard keeps its owned
//!    pairs' assembled scores in a pair-sorted **edge cache** patched
//!    in place, the barrier k-way merges the per-shard sorted delta
//!    runs ([`StreamStats::edges_patched`]), the greedy matching is
//!    repaired over the delta-touched components only
//!    ([`StreamStats::matching_region_size`]), and the GMM stop
//!    threshold refits warm from the previous tick's mixture
//!    ([`StreamStats::em_warm_iters`]) with a cold fallback —
//!    `O(dirty + links)` per tick end to end. Cached contributions (and cached
//!    edge norms) may lag the globally drifting idf statistics between
//!    ticks; they are refreshed lazily when their window is touched,
//!    and exactly at finalization.
//! 3. **Sliding-window semantics.** With `window_capacity = Some(W)`,
//!    only the most recent `W` temporal windows of evidence are
//!    retained: expired windows are evicted from histories, statistics,
//!    and LSH rings, affected pairs are re-scored, and links fade when
//!    their supporting evidence does. Late events inside the window
//!    land in their true window; events older than the window are
//!    counted and dropped.
//!
//! ## Example
//!
//! ```
//! use slim_core::{EntityId, Timestamp};
//! use slim_stream::{Side, StreamConfig, StreamEngine, StreamEvent};
//! use geocell::LatLng;
//!
//! let mut cfg = StreamConfig::default();
//! cfg.slim.min_records = 0;
//! cfg.refresh_every = 0; // manual ticks
//! let mut engine = StreamEngine::new(cfg).unwrap();
//! for k in 0..12i64 {
//!     // Entity 1 ↔ 77 share a trace; 2 ↔ 88 live on another continent.
//!     let at = LatLng::from_degrees(37.0, -122.0 + 0.001 * (k % 3) as f64);
//!     let far = LatLng::from_degrees(-33.0, 151.0 + 0.001 * (k % 2) as f64);
//!     engine.ingest(&StreamEvent::new(Side::Left, EntityId(1), at, Timestamp(k * 900)));
//!     engine.ingest(&StreamEvent::new(Side::Right, EntityId(77), at, Timestamp(k * 900 + 400)));
//!     engine.ingest(&StreamEvent::new(Side::Left, EntityId(2), far, Timestamp(k * 900)));
//!     engine.ingest(&StreamEvent::new(Side::Right, EntityId(88), far, Timestamp(k * 900 + 400)));
//! }
//! let updates = engine.refresh();
//! assert!(!updates.is_empty());
//! assert!(engine.links().iter().any(|l| (l.left, l.right) == (EntityId(1), EntityId(77))));
//! ```

#![warn(missing_docs)]

mod adjacency;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod event;
mod lsh;
mod merge;
mod pool;
pub mod serve;
mod shard;
pub mod snapshot;
pub mod source;
mod steal;
mod store;
pub mod telemetry;
pub mod testing;

pub use checkpoint::CheckpointPolicy;
pub use config::{StorageMode, StreamConfig, StreamLshConfig};
pub use engine::{LinkUpdate, StreamEngine, StreamStats};
pub use event::{batch_equivalent_origin, merge_datasets, Side, StreamEvent};
pub use serve::{LinkQueryServer, ServeReport};
pub use snapshot::{EpochLog, EpochPointer, LinkSnapshot};
pub use source::{
    ConnMessage, ConnectionFrontier, CsvReplaySource, DriveOptions, FanIn, IngestReport,
    StreamSource, SyntheticSource, TcpIngestTier, TcpLineSource, TickPolicy, WireFormat,
};
pub use steal::PoolMode;
pub use telemetry::PhaseId;
