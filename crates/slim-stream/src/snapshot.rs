//! Epoch snapshots: the immutable read path published at each tick
//! barrier.
//!
//! The engine's link set only changes at refresh ticks, so the tick
//! barrier is the natural publication point: after the matching and
//! threshold selection settle, [`crate::StreamEngine::refresh`] freezes
//! the served state into one immutable [`LinkSnapshot`] and swaps it
//! behind the [`EpochPointer`]. Readers — the query server in
//! [`crate::serve`], stress-test threads, anything holding a pointer
//! clone — load the current epoch as an `Arc` clone and answer every
//! query from that frozen view. Nothing a reader does can block the
//! worker pool or delay the next barrier: the pointer swap is the only
//! shared state, the lock around it is held for a pointer copy (an
//! arc-swap emulated with `std` primitives — no new dependencies), and
//! the snapshot itself is never mutated after publication.
//!
//! Epoch ids are dense and monotone (epoch `k` is the state after the
//! `k`-th tick), so a reader observing epochs `3, 3, 5` knows exactly
//! which ticks it saw and that nothing torn was ever visible: a
//! snapshot is either the complete output of a barrier or not published
//! at all.

use std::sync::{Arc, Mutex};

use slim_core::{Edge, EntityId, Timestamp};

/// One published epoch: the complete served state of a tick barrier,
/// frozen. Built by [`crate::StreamEngine::refresh`]; immutable
/// afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSnapshot {
    /// Dense monotone epoch id: the number of refresh ticks that had
    /// run when this snapshot was published (`0` only for the
    /// pre-first-tick [`LinkSnapshot::empty`] placeholder).
    pub epoch: u64,
    /// Events the engine had accepted when this epoch was published —
    /// the exact stream prefix this snapshot is the linkage of.
    pub events: u64,
    /// The served link set, in the matcher's heaviest-first order
    /// (ties on `(left, right)`) — bit-identical across shard counts,
    /// worker counts, and steal schedules for the same prefix + tick
    /// schedule.
    pub links: Vec<Edge>,
    /// The matched-weight stop threshold selected at this tick
    /// (`None` when the threshold method selected nothing — too few
    /// matched weights, or `ThresholdMethod::None`).
    pub threshold: Option<f64>,
    /// Event-time frontier: the exclusive end of the highest temporal
    /// window the engine had seen — every record this epoch links was
    /// timestamped strictly below it. `None` only on the epoch-0
    /// placeholder (no window scheme yet).
    pub frontier: Option<Timestamp>,
}

impl LinkSnapshot {
    /// The pre-first-tick placeholder a fresh [`EpochPointer`] serves:
    /// epoch 0, no events, no links, no threshold, no frontier.
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            events: 0,
            links: Vec::new(),
            threshold: None,
            frontier: None,
        }
    }

    /// The links involving `entity` (on either side), in the snapshot's
    /// order. A linear scan: the snapshot is an immutable value, not an
    /// index — callers needing sub-linear lookups can build their own
    /// from `links`.
    pub fn links_of(&self, entity: EntityId) -> Vec<Edge> {
        self.links
            .iter()
            .filter(|e| e.left == entity || e.right == entity)
            .copied()
            .collect()
    }
}

/// The epoch pointer: one writer (the engine thread, at tick barriers)
/// publishes immutable [`LinkSnapshot`]s, any number of readers load
/// the current one. Clones share the pointer — the engine keeps one,
/// every server/reader holds another.
///
/// This is an arc-swap emulated with `std`: the `Mutex` guards only the
/// `Arc` pointer itself and is held exactly long enough to copy or
/// replace it (never while a snapshot is built or read), so a reader
/// can delay the barrier by at most one pointer copy — the
/// concurrent-reader stress test pins that the drive's output is
/// bit-identical with readers hammering this pointer or not.
#[derive(Debug, Clone)]
pub struct EpochPointer {
    current: Arc<Mutex<Arc<LinkSnapshot>>>,
}

impl Default for EpochPointer {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochPointer {
    /// A pointer serving [`LinkSnapshot::empty`] until the first
    /// publication.
    pub fn new() -> Self {
        Self {
            current: Arc::new(Mutex::new(Arc::new(LinkSnapshot::empty()))),
        }
    }

    /// Loads the current epoch — an `Arc` clone under the pointer lock,
    /// never a data copy. The returned snapshot stays valid (and
    /// unchanged) for as long as the caller holds it, no matter how
    /// many epochs are published meanwhile.
    pub fn load(&self) -> Arc<LinkSnapshot> {
        Arc::clone(&self.current.lock().expect("epoch pointer poisoned"))
    }

    /// Publishes `snapshot` as the current epoch (a pointer swap under
    /// the lock). Called by the engine at each tick barrier; tests may
    /// publish directly to drive a server without an engine.
    pub fn publish(&self, snapshot: Arc<LinkSnapshot>) {
        *self.current.lock().expect("epoch pointer poisoned") = snapshot;
    }
}

/// An observation hook recording **every** published epoch, in order —
/// the epoch-path sibling of [`slim_telemetry::VecSink`]. A concurrent
/// reader polling the [`EpochPointer`] can miss epochs between loads;
/// the equivalence tests instead install a log with
/// [`crate::StreamEngine::set_epoch_log`] and compare the complete
/// publication sequence. Strictly observational: the engine pushes the
/// same `Arc` it publishes, so the log never changes what readers see.
#[derive(Debug, Clone, Default)]
pub struct EpochLog {
    inner: Arc<Mutex<Vec<Arc<LinkSnapshot>>>>,
}

impl EpochLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one published epoch (engine side).
    pub(crate) fn push(&self, snapshot: &Arc<LinkSnapshot>) {
        self.inner
            .lock()
            .expect("epoch log poisoned")
            .push(Arc::clone(snapshot));
    }

    /// Every epoch published so far, in publication order.
    pub fn collected(&self) -> Vec<Arc<LinkSnapshot>> {
        self.inner.lock().expect("epoch log poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn fresh_pointer_serves_the_empty_epoch() {
        let p = EpochPointer::new();
        let snap = p.load();
        assert_eq!(*snap, LinkSnapshot::empty());
        assert_eq!(snap.epoch, 0);
        assert!(snap.links.is_empty() && snap.frontier.is_none());
    }

    #[test]
    fn publish_swaps_and_clones_share_the_pointer() {
        let p = EpochPointer::new();
        let reader = p.clone();
        let held = reader.load();
        p.publish(Arc::new(LinkSnapshot {
            epoch: 1,
            events: 10,
            links: vec![edge(1, 2, 0.9)],
            threshold: Some(0.5),
            frontier: Some(Timestamp(900)),
        }));
        // The clone observes the new epoch; the held Arc is unchanged.
        assert_eq!(reader.load().epoch, 1);
        assert_eq!(held.epoch, 0);
    }

    #[test]
    fn links_of_matches_either_side() {
        let snap = LinkSnapshot {
            epoch: 1,
            events: 3,
            links: vec![edge(1, 7, 0.9), edge(2, 1, 0.8), edge(3, 3, 0.7)],
            threshold: None,
            frontier: None,
        };
        assert_eq!(
            snap.links_of(EntityId(1)),
            vec![edge(1, 7, 0.9), edge(2, 1, 0.8)]
        );
        assert!(snap.links_of(EntityId(99)).is_empty());
    }

    #[test]
    fn epoch_log_records_publications_in_order() {
        let log = EpochLog::new();
        for k in 1..=3u64 {
            log.push(&Arc::new(LinkSnapshot {
                epoch: k,
                events: k * 5,
                links: Vec::new(),
                threshold: None,
                frontier: None,
            }));
        }
        let seen: Vec<u64> = log.collected().iter().map(|s| s.epoch).collect();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
