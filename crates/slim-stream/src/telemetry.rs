//! Engine-side telemetry: phase identities, the engine-thread span
//! recorder, and the snapshot plumbing.
//!
//! Two recording sites exist. Worker-side spans (binning, applying,
//! expiry, LSH upserts, rescoring, finalize clones — everything the
//! pool dispatches) are recorded *per worker* inside
//! [`crate::pool::WorkerPool`] and merged in worker-id order when read,
//! so recording never synchronizes workers with each other.
//! Engine-thread spans (edge merge, matching, thresholding, the whole
//! tick barrier) and the end-to-end event latency are recorded here, on
//! the coordinator thread that already owns them.
//!
//! Everything is driven through the [`Clock`] abstraction: production
//! engines time with the wall clock, tests substitute
//! [`crate::testing::VirtualClock`] and get *exactly* reproducible
//! histograms — the recorded values are pure functions of the clock
//! readings, and recording never feeds back into scheduling, so the
//! engine's observable output is bit-identical with telemetry on, off,
//! or at any snapshot cadence.

use std::sync::{Arc, Mutex};

use slim_telemetry::{Histogram, Snapshot, SnapshotSink};

use crate::source::{Clock, WallClock};

/// Identity of a pool-dispatched engine phase — the tag every
/// [`crate::pool::WorkerPool`] submission carries so per-chunk spans
/// land in the right histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseId {
    /// Spatial binning of ingested event chunks.
    Bin,
    /// Per-shard application of queued events (histories, rings,
    /// buffers, dirty marks).
    Apply,
    /// Sliding-window expiry sweeps.
    Expire,
    /// LSH bucket-partition upserts at the candidate handoff barrier.
    Lsh,
    /// Dirty-pair rescoring chunks of a refresh tick.
    Rescore,
    /// History deep-clones in the borrowing finalizer.
    FinalizeClone,
}

impl PhaseId {
    /// Number of pool phases (the recorder array size).
    pub(crate) const COUNT: usize = 6;

    /// All pool phases, in recorder-index order.
    pub(crate) const ALL: [PhaseId; Self::COUNT] = [
        PhaseId::Bin,
        PhaseId::Apply,
        PhaseId::Expire,
        PhaseId::Lsh,
        PhaseId::Rescore,
        PhaseId::FinalizeClone,
    ];

    /// The recorder slot of this phase.
    pub(crate) fn idx(self) -> usize {
        self as usize
    }

    /// The metric-series name of this phase's span histogram.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::Bin => "phase.bin",
            PhaseId::Apply => "phase.apply",
            PhaseId::Expire => "phase.expire",
            PhaseId::Lsh => "phase.lsh",
            PhaseId::Rescore => "phase.rescore",
            PhaseId::FinalizeClone => "phase.finalize_clone",
        }
    }
}

/// The engine-thread recorder: barrier-phase spans, tick spans, event
/// latency, plus the snapshot sequence and sink. Lives on
/// [`crate::StreamEngine`]; disabled engines skip every clock read and
/// record call.
pub(crate) struct EngineTelemetry {
    /// From [`crate::StreamConfig::telemetry`]; gates recording (but
    /// not snapshots — a disabled engine still snapshots its counters,
    /// with empty histograms).
    pub(crate) enabled: bool,
    clock: Arc<dyn Clock + Sync>,
    /// The Mutex exists only to make `StreamEngine: Sync` (rescore
    /// chunks borrow the whole engine); emission happens exclusively on
    /// the engine thread, so it is never contended.
    sink: Option<Mutex<Box<dyn SnapshotSink>>>,
    /// Snapshots emitted so far (the next snapshot's sequence number).
    seq: u64,
    /// Spans of the k-way edge-delta merge at each tick barrier.
    pub(crate) edge_merge: Histogram,
    /// Spans of matching repair (or exact re-match) at each barrier.
    pub(crate) matching: Histogram,
    /// Spans of the stop-threshold fit + link selection.
    pub(crate) threshold: Histogram,
    /// Whole-tick barrier spans ([`crate::StreamEngine::refresh`] end
    /// to end).
    pub(crate) tick: Histogram,
    /// End-to-end event latency: source admit (drained off the bounded
    /// channel) → served at a refresh tick. Recorded by the pump.
    pub(crate) event_latency: Histogram,
    /// Per-connection frontier lag: event-time seconds a connection's
    /// watermark trailed the frontier leader at each advance. Recorded
    /// by the fan-in pump; a pure function of the fed events (no clock
    /// reads), so reproducible run to run.
    pub(crate) frontier_lag: Histogram,
    /// Per-window spans of the rescore scoring kernel (one record per
    /// `(pair, window)` contribution recomputed). Recorded chunk-local
    /// on the workers and merged at the tick barrier in chunk-id
    /// order, so the aggregate is reproducible under a virtual clock.
    pub(crate) score_kernel: Histogram,
    /// Per-query handling spans of the epoch-snapshot query server
    /// ([`crate::serve::LinkQueryServer`]). Recorded server-side on the
    /// connection handlers and folded in after the run by
    /// [`crate::StreamEngine::absorb_serve_report`] — never touched on
    /// the engine's hot paths.
    pub(crate) query_latency: Histogram,
    /// Spans of each checkpoint write (serialize + temp file + fsync +
    /// rename), recorded on the pump thread at the checkpoint cadence.
    pub(crate) checkpoint_write: Histogram,
}

impl EngineTelemetry {
    pub(crate) fn new(enabled: bool) -> Self {
        Self {
            enabled,
            clock: Arc::new(WallClock::new()),
            sink: None,
            seq: 0,
            edge_merge: Histogram::new(),
            matching: Histogram::new(),
            threshold: Histogram::new(),
            tick: Histogram::new(),
            event_latency: Histogram::new(),
            frontier_lag: Histogram::new(),
            score_kernel: Histogram::new(),
            query_latency: Histogram::new(),
            checkpoint_write: Histogram::new(),
        }
    }

    /// The clock reading (shared with the pool and the pump).
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    pub(crate) fn set_clock(&mut self, clock: Arc<dyn Clock + Sync>) {
        self.clock = clock;
    }

    pub(crate) fn clock(&self) -> Arc<dyn Clock + Sync> {
        Arc::clone(&self.clock)
    }

    pub(crate) fn set_sink(&mut self, sink: Box<dyn SnapshotSink>) {
        self.sink = Some(Mutex::new(sink));
    }

    /// The next snapshot's sequence number.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// Consumes one sequence number and hands `snapshot` to the sink
    /// (a no-op without one — building the snapshot is the caller's
    /// cost either way).
    pub(crate) fn emit(&mut self, snapshot: &Snapshot) {
        self.seq += 1;
        if let Some(sink) = &self.sink {
            sink.lock().expect("sink poisoned").emit(snapshot);
        }
    }
}
