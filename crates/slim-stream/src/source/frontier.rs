//! The merged event-time frontier of a multi-connection ingest tier.
//!
//! Every live connection carries its own watermark (the newest event
//! time it has delivered, minus the lag bound); the **global frontier**
//! is the minimum watermark over the live connections — the engine may
//! only consume events strictly below it, because any live connection
//! could still deliver an event down to its own watermark. The merge is
//! maintained *incrementally* under small per-connection deltas
//! (advance / join / leave / idle-eviction) instead of recomputed over
//! the whole set — the same delta-localized shape as the FO+MOD
//! update machinery the design borrows from: an ordered multiset of
//! active watermarks makes every mutation `O(log n)` and the min a
//! first-element read.
//!
//! Three policy decisions keep a fleet of real clients from freezing
//! event time:
//!
//! - **The frontier is monotone.** A connection joining with an old
//!   watermark can never pull the emitted frontier backwards; its
//!   too-old events are counted late instead.
//! - **A joined connection holds the frontier until its first event.**
//!   Otherwise the gap between `accept()` and the first delivered line
//!   would let the other connections seal windows the newcomer is about
//!   to fill.
//! - **Idle connections are evicted from the merge.** A stalled client
//!   (no traffic for `idle_timeout_ns`) stops holding the minimum; if
//!   it revives, it re-enters the merge at its new watermark and any
//!   events now below the frontier are late — counted, never silently
//!   lost.
//!
//! The struct is single-threaded and clock-free: callers supply
//! `now_ns` readings, which is what makes every decision replayable
//! under [`crate::testing::VirtualClock`].

use std::collections::{BTreeSet, HashMap};

use slim_core::Timestamp;

/// Per-connection record of the merge.
#[derive(Debug)]
struct ConnState {
    /// Newest watermark this connection advanced to (`None` until its
    /// first event).
    watermark: Option<Timestamp>,
    /// `now_ns` of the last advance (or the join).
    last_seen_ns: u64,
    /// Evicted from the merge for idleness; revives on the next
    /// advance.
    idle: bool,
}

/// Incremental min-watermark merge over live connections. See the
/// module docs for the policy; see [`crate::StreamEngine::drive_fan_in`]
/// for the consumer loop that owns one.
#[derive(Debug)]
pub struct ConnectionFrontier {
    /// Idle-eviction bound in clock nanoseconds (`0` = never evict).
    idle_timeout_ns: u64,
    conns: HashMap<u64, ConnState>,
    /// Ordered multiset of the watermarks participating in the merge
    /// (live, non-idle, watermarked connections), keyed unique by
    /// connection id.
    active: BTreeSet<(Timestamp, u64)>,
    /// Live non-idle connections that have no watermark yet — each one
    /// holds the frontier in place.
    unwatermarked: usize,
    /// The monotone emitted frontier.
    emitted: Option<Timestamp>,
    /// The leader: the highest watermark any connection reached (for
    /// per-connection lag observation).
    max_watermark: Option<Timestamp>,
    /// Most connections ever live at once.
    peak_live: usize,
    /// Total connections that ever joined.
    joined: u64,
    /// Idle evictions performed.
    idle_evictions: u64,
}

impl ConnectionFrontier {
    /// A merge evicting connections idle for longer than
    /// `idle_timeout_ns` (`0` disables eviction).
    pub fn new(idle_timeout_ns: u64) -> Self {
        Self {
            idle_timeout_ns,
            conns: HashMap::new(),
            active: BTreeSet::new(),
            unwatermarked: 0,
            emitted: None,
            max_watermark: None,
            peak_live: 0,
            joined: 0,
            idle_evictions: 0,
        }
    }

    /// Recomputes the emitted frontier after a delta. `O(1)`: the
    /// candidate minimum is the first element of the ordered set, and
    /// any unwatermarked connection vetoes advancement entirely.
    fn refresh(&mut self) {
        if self.unwatermarked > 0 {
            return;
        }
        if let Some(&(min, _)) = self.active.first() {
            self.emitted = Some(self.emitted.map_or(min, |e| e.max(min)));
        }
    }

    /// Registers a connection. It holds the frontier until its first
    /// [`ConnectionFrontier::advance`] (or its idle eviction).
    pub fn join(&mut self, conn: u64, now_ns: u64) {
        let prev = self.conns.insert(
            conn,
            ConnState {
                watermark: None,
                last_seen_ns: now_ns,
                idle: false,
            },
        );
        debug_assert!(prev.is_none(), "connection {conn} joined twice");
        self.unwatermarked += 1;
        self.joined += 1;
        self.peak_live = self.peak_live.max(self.conns.len());
    }

    /// Advances a connection's watermark (monotone per connection; a
    /// lower candidate is ignored) and re-merges. An idle connection
    /// revives here. Returns the connection's lag behind the leader in
    /// event-time seconds — the per-connection frontier-lag telemetry
    /// observation — or `None` for an unknown connection.
    pub fn advance(&mut self, conn: u64, watermark: Timestamp, now_ns: u64) -> Option<u64> {
        let state = self.conns.get_mut(&conn)?;
        state.last_seen_ns = now_ns;
        let was_merged = !state.idle && state.watermark.is_some();
        if state.idle {
            state.idle = false;
        } else if state.watermark.is_none() {
            self.unwatermarked -= 1;
        }
        let new_wm = state.watermark.map_or(watermark, |w| w.max(watermark));
        if was_merged {
            let old = state.watermark.expect("merged implies watermarked");
            if new_wm > old {
                self.active.remove(&(old, conn));
                self.active.insert((new_wm, conn));
            }
        } else {
            self.active.insert((new_wm, conn));
        }
        state.watermark = Some(new_wm);
        self.max_watermark = Some(self.max_watermark.map_or(new_wm, |m| m.max(new_wm)));
        self.refresh();
        let lag = self
            .max_watermark
            .expect("set above")
            .secs()
            .saturating_sub(new_wm.secs());
        Some(lag.max(0) as u64)
    }

    /// Removes a connection (EOF, error, or death — churn is all the
    /// same to the merge); the minimum may rise.
    pub fn leave(&mut self, conn: u64) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        match state.watermark {
            Some(wm) if !state.idle => {
                self.active.remove(&(wm, conn));
            }
            None if !state.idle => self.unwatermarked -= 1,
            _ => {}
        }
        self.refresh();
    }

    /// Evicts every non-idle connection whose last activity is more
    /// than the idle timeout before `now_ns` from the merge (they stay
    /// live and revive on their next advance). Returns how many were
    /// evicted. No-op when the timeout is `0`.
    pub fn evict_idle(&mut self, now_ns: u64) -> usize {
        if self.idle_timeout_ns == 0 {
            return 0;
        }
        let mut evicted = 0;
        for (&conn, state) in &mut self.conns {
            if !state.idle && now_ns.saturating_sub(state.last_seen_ns) > self.idle_timeout_ns {
                state.idle = true;
                match state.watermark {
                    Some(wm) => {
                        self.active.remove(&(wm, conn));
                    }
                    None => self.unwatermarked -= 1,
                }
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.idle_evictions += evicted as u64;
            self.refresh();
        }
        evicted
    }

    /// The monotone merged frontier (`None` until every live connection
    /// has delivered its first event at least once).
    pub fn frontier(&self) -> Option<Timestamp> {
        self.emitted
    }

    /// Whether `time` is strictly below the emitted frontier — the
    /// fan-in lateness test.
    pub fn is_late(&self, time: Timestamp) -> bool {
        self.emitted.is_some_and(|f| time < f)
    }

    /// Live connections right now (idle ones included — they are
    /// connected, just not merged).
    pub fn live(&self) -> usize {
        self.conns.len()
    }

    /// Live connections currently evicted from the merge for idleness.
    pub fn idle(&self) -> usize {
        self.conns.values().filter(|s| s.idle).count()
    }

    /// Most connections ever live at once.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total connections that ever joined.
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Idle evictions performed over the merge's lifetime.
    pub fn idle_evictions(&self) -> u64 {
        self.idle_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: i64) -> Timestamp {
        Timestamp(t)
    }

    #[test]
    fn frontier_is_the_min_over_live_connections() {
        let mut f = ConnectionFrontier::new(0);
        assert_eq!(f.frontier(), None);
        f.join(1, 0);
        f.join(2, 0);
        f.advance(1, ts(100), 0);
        // Conn 2 has no watermark yet: the frontier is held.
        assert_eq!(f.frontier(), None);
        assert_eq!(f.advance(2, ts(40), 0), Some(60), "lag behind leader");
        assert_eq!(f.frontier(), Some(ts(40)));
        f.advance(2, ts(70), 0);
        assert_eq!(f.frontier(), Some(ts(70)));
        // The faster connection advancing does not move the min.
        f.advance(1, ts(500), 0);
        assert_eq!(f.frontier(), Some(ts(70)));
        assert_eq!(f.live(), 2);
        assert_eq!(f.joined(), 2);
    }

    #[test]
    fn leave_releases_the_hold_and_raises_the_min() {
        let mut f = ConnectionFrontier::new(0);
        f.join(1, 0);
        f.join(2, 0);
        f.advance(1, ts(100), 0);
        f.advance(2, ts(30), 0);
        assert_eq!(f.frontier(), Some(ts(30)));
        f.leave(2);
        assert_eq!(f.frontier(), Some(ts(100)), "min rises to the survivor");
        f.leave(1);
        // No live watermarks left: the emitted frontier stays put.
        assert_eq!(f.frontier(), Some(ts(100)));
        assert_eq!(f.live(), 0);
    }

    #[test]
    fn frontier_is_monotone_under_late_joins() {
        let mut f = ConnectionFrontier::new(0);
        f.join(1, 0);
        f.advance(1, ts(200), 0);
        assert_eq!(f.frontier(), Some(ts(200)));
        // A newcomer holds further advancement but cannot rewind.
        f.join(2, 0);
        f.advance(1, ts(300), 0);
        assert_eq!(f.frontier(), Some(ts(200)), "held by the newcomer");
        f.advance(2, ts(50), 0);
        assert_eq!(f.frontier(), Some(ts(200)), "never backwards");
        assert!(f.is_late(ts(199)));
        assert!(!f.is_late(ts(200)), "at the frontier is not late");
        f.advance(2, ts(250), 0);
        assert_eq!(f.frontier(), Some(ts(250)));
    }

    #[test]
    fn per_connection_watermarks_are_monotone() {
        let mut f = ConnectionFrontier::new(0);
        f.join(1, 0);
        f.advance(1, ts(100), 0);
        // A stale lower candidate (bounded disorder within one
        // connection) must not rewind its watermark.
        f.advance(1, ts(60), 0);
        assert_eq!(f.frontier(), Some(ts(100)));
    }

    /// The stalled-client policy end to end, on a virtual timeline: an
    /// idle connection is evicted from the merge (frontier resumes),
    /// and revives at its next advance.
    #[test]
    fn idle_eviction_unfreezes_and_revival_re_merges() {
        const TIMEOUT: u64 = 1_000;
        let mut f = ConnectionFrontier::new(TIMEOUT);
        f.join(1, 0);
        f.join(2, 0);
        f.advance(1, ts(100), 0);
        f.advance(2, ts(90), 0);
        assert_eq!(f.frontier(), Some(ts(90)));
        // Conn 2 goes quiet while conn 1 keeps advancing.
        f.advance(1, ts(400), 500);
        assert_eq!(f.frontier(), Some(ts(90)), "stalled conn holds the min");
        assert_eq!(f.evict_idle(900), 0, "not yet past the timeout");
        assert_eq!(f.evict_idle(1_200), 1, "conn 2 idle for 1_200 ns");
        assert_eq!(f.frontier(), Some(ts(400)), "frontier resumed");
        assert_eq!(f.idle(), 1);
        assert_eq!(f.live(), 2, "idle is still connected");
        assert_eq!(f.idle_evictions(), 1);
        // Revival: the connection re-enters the merge at its new
        // watermark; its pre-frontier events are late.
        assert!(f.is_late(ts(300)));
        f.advance(2, ts(350), 1_300);
        assert_eq!(f.idle(), 0);
        assert_eq!(f.frontier(), Some(ts(400)), "monotone through revival");
        f.advance(2, ts(600), 1_400);
        f.advance(1, ts(700), 1_400);
        assert_eq!(f.frontier(), Some(ts(600)), "revived conn merges again");
    }

    #[test]
    fn unwatermarked_idle_connection_stops_holding() {
        let mut f = ConnectionFrontier::new(100);
        f.join(1, 0);
        f.join(2, 0);
        // Conn 1 stays fresh (seen at 450); conn 2 never delivers.
        f.advance(1, ts(50), 450);
        assert_eq!(f.frontier(), None, "held by the silent joiner");
        assert_eq!(f.evict_idle(500), 1, "only the silent joiner is idle");
        assert_eq!(f.frontier(), Some(ts(50)), "hold released");
    }

    #[test]
    fn zero_timeout_never_evicts() {
        let mut f = ConnectionFrontier::new(0);
        f.join(1, 0);
        f.advance(1, ts(10), 0);
        assert_eq!(f.evict_idle(u64::MAX), 0);
        assert_eq!(f.idle(), 0);
    }

    #[test]
    fn peak_live_tracks_concurrency() {
        let mut f = ConnectionFrontier::new(0);
        f.join(1, 0);
        f.join(2, 0);
        f.leave(1);
        f.join(3, 0);
        assert_eq!(f.peak_live(), 2);
        assert_eq!(f.joined(), 3);
        assert_eq!(f.live(), 2);
    }
}
