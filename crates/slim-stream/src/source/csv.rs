//! CSV replay source: two batch datasets flattened into the canonical
//! time-ordered event stream, delivered in bounded batches.

use slim_core::LocationDataset;

use crate::event::{merge_datasets, StreamEvent};
use crate::source::{SourcePoll, StreamSource};

/// Replays two CSV datasets as the canonical merged event stream — the
/// `StreamSource` form of the direct replay path (`slim-link --stream
/// --source csv`). Delivery is already in canonical order, so any
/// reorder lag (including zero) passes it through untouched.
#[derive(Debug)]
pub struct CsvReplaySource {
    events: Vec<StreamEvent>,
    cursor: usize,
}

impl CsvReplaySource {
    /// Replays two already-loaded datasets.
    pub fn from_datasets(left: &LocationDataset, right: &LocationDataset) -> Self {
        Self::from_events(merge_datasets(left, right))
    }

    /// Replays two CSV files (format of [`slim_core::io`]).
    pub fn from_paths(left: &std::path::Path, right: &std::path::Path) -> Result<Self, String> {
        let load = |p: &std::path::Path| {
            slim_core::io::load_dataset_csv(p).map_err(|e| format!("{}: {e}", p.display()))
        };
        Ok(Self::from_datasets(&load(left)?, &load(right)?))
    }

    /// Replays a pre-built event sequence verbatim (delivery order =
    /// the given order).
    pub fn from_events(events: Vec<StreamEvent>) -> Self {
        Self { events, cursor: 0 }
    }

    /// The full event sequence this source will deliver.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }
}

impl StreamSource for CsvReplaySource {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        if self.cursor >= self.events.len() {
            return Ok(SourcePoll::End);
        }
        let end = (self.cursor + max.max(1)).min(self.events.len());
        let batch = self.events[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(SourcePoll::Batch(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;
    use slim_core::{EntityId, Record, Timestamp};

    #[test]
    fn replays_merged_events_in_batches() {
        let rec =
            |e: u64, t: i64| Record::new(EntityId(e), LatLng::from_degrees(0.0, 0.0), Timestamp(t));
        let l = LocationDataset::from_records(vec![rec(1, 10), rec(1, 30)]);
        let r = LocationDataset::from_records(vec![rec(2, 20)]);
        let mut src = CsvReplaySource::from_datasets(&l, &r);
        assert_eq!(src.events().len(), 3);
        let mut seen = Vec::new();
        loop {
            match src.next_batch(2).unwrap() {
                SourcePoll::Batch(b) => seen.extend(b),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!("replay never stalls"),
            }
        }
        let times: Vec<i64> = seen.iter().map(|e| e.time.secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        // EOF is terminal.
        assert_eq!(src.next_batch(2).unwrap(), SourcePoll::End);
    }
}
