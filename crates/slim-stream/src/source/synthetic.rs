//! Synthetic feed: slim-datagen workloads delivered as a live source,
//! optionally paced to a target event rate.
//!
//! Rate control is driven through the [`Clock`] abstraction so the
//! pacing logic itself is testable against a virtual clock
//! ([`crate::testing::VirtualClock`]) — CI never sleeps to observe it.

use std::time::Instant;

use crate::event::{merge_datasets, StreamEvent};
use crate::source::{SourcePoll, StreamSource};

/// A monotone nanosecond clock. [`WallClock`] for production pacing,
/// [`crate::testing::VirtualClock`] for deterministic tests.
pub trait Clock: Send {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock.
#[derive(Debug)]
pub struct WallClock(Instant);

impl WallClock {
    /// A wall clock anchored at construction time.
    pub fn new() -> Self {
        Self(Instant::now())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Delivers a slim-datagen workload (or any pre-built event sequence)
/// as a stream source. Unpaced it produces maximal batches — the
/// highest-pressure feed the engine can face; with
/// [`SyntheticSource::with_rate`] it releases events against the clock
/// so a drained feed polls [`SourcePoll::Pending`] until more are due.
pub struct SyntheticSource {
    events: Vec<StreamEvent>,
    cursor: usize,
    /// Target sustained rate in events/second (`None` = unpaced).
    rate: Option<f64>,
    clock: Box<dyn Clock>,
    /// Pacing origin: the clock reading at the first poll.
    started_ns: Option<u64>,
}

impl SyntheticSource {
    /// A paper-workload feed: the named scenario (`"cab"` or `"sm"`)
    /// at the given scale/seed, both views merged into the canonical
    /// event stream.
    pub fn scenario(name: &str, scale: f64, seed: u64) -> Result<Self, String> {
        let scenario = match name {
            "cab" => slim_datagen::Scenario::cab(scale, seed),
            "sm" => slim_datagen::Scenario::sm(scale, seed),
            other => return Err(format!("unknown scenario `{other}` (cab | sm)")),
        };
        let sample = scenario.sample(0.5, seed);
        Ok(Self::from_events(merge_datasets(
            &sample.left,
            &sample.right,
        )))
    }

    /// A feed over a pre-built event sequence (delivered verbatim).
    pub fn from_events(events: Vec<StreamEvent>) -> Self {
        Self {
            events,
            cursor: 0,
            rate: None,
            clock: Box::new(WallClock::new()),
            started_ns: None,
        }
    }

    /// Paces delivery to `events_per_sec` (must be positive): by clock
    /// time `t` after the first poll, exactly `⌊t · rate⌋` events have
    /// been released.
    pub fn with_rate(mut self, events_per_sec: f64) -> Self {
        assert!(
            events_per_sec > 0.0 && events_per_sec.is_finite(),
            "rate must be positive"
        );
        self.rate = Some(events_per_sec);
        self
    }

    /// Substitutes the pacing clock (testing).
    pub fn with_clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Box::new(clock);
        self
    }

    /// The full event sequence this source will deliver.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }
}

impl std::fmt::Debug for SyntheticSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticSource")
            .field("events", &self.events.len())
            .field("cursor", &self.cursor)
            .field("rate", &self.rate)
            .finish()
    }
}

impl StreamSource for SyntheticSource {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        if self.cursor >= self.events.len() {
            return Ok(SourcePoll::End);
        }
        let available = match self.rate {
            None => self.events.len() - self.cursor,
            Some(rate) => {
                let now = self.clock.now_ns();
                let started = *self.started_ns.get_or_insert(now);
                let due = ((now - started) as f64 * rate / 1e9) as usize;
                let due = due.min(self.events.len());
                if due <= self.cursor {
                    return Ok(SourcePoll::Pending);
                }
                due - self.cursor
            }
        };
        let end = self.cursor + available.min(max.max(1));
        let batch = self.events[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(SourcePoll::Batch(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::VirtualClock;

    #[test]
    fn scenario_feeds_the_whole_workload_unpaced() {
        let mut src = SyntheticSource::scenario("cab", 0.04, 5).unwrap();
        let total = src.events().len();
        assert!(total > 100, "workload too small: {total}");
        let mut got = 0;
        loop {
            match src.next_batch(1 << 14).unwrap() {
                SourcePoll::Batch(b) => got += b.len(),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!("unpaced feed never stalls"),
            }
        }
        assert_eq!(got, total);
        assert!(SyntheticSource::scenario("nope", 0.1, 1).is_err());
    }

    /// Pacing against a virtual clock: release counts follow
    /// `⌊elapsed · rate⌋` exactly, with `Pending` in between — no wall
    /// clock, no sleeps.
    #[test]
    fn rate_control_follows_the_clock() {
        let events = SyntheticSource::scenario("cab", 0.04, 5)
            .unwrap()
            .events()
            .to_vec();
        let n = events.len().min(500);
        let clock = VirtualClock::new();
        let handle = clock.clone();
        let mut src = SyntheticSource::from_events(events[..n].to_vec())
            .with_rate(1000.0) // 1 event per virtual millisecond
            .with_clock(clock);
        // First poll anchors the pacing origin; nothing is due yet.
        assert_eq!(src.next_batch(100).unwrap(), SourcePoll::Pending);
        handle.advance_ms(5);
        match src.next_batch(100).unwrap() {
            SourcePoll::Batch(b) => assert_eq!(b.len(), 5),
            other => panic!("expected 5 due events, got {other:?}"),
        }
        assert_eq!(src.next_batch(100).unwrap(), SourcePoll::Pending);
        // `max` caps a large backlog; the rest stays due.
        handle.advance_ms(20);
        match src.next_batch(8).unwrap() {
            SourcePoll::Batch(b) => assert_eq!(b.len(), 8),
            other => panic!("expected a capped batch, got {other:?}"),
        }
        match src.next_batch(100).unwrap() {
            SourcePoll::Batch(b) => assert_eq!(b.len(), 12),
            other => panic!("expected the backlog remainder, got {other:?}"),
        }
        // Jumping the clock far ahead releases everything, then EOF.
        handle.advance_ms(10_000_000);
        let mut rest = 0;
        loop {
            match src.next_batch(1 << 12).unwrap() {
                SourcePoll::Batch(b) => rest += b.len(),
                SourcePoll::End => break,
                SourcePoll::Pending => panic!("everything is due"),
            }
        }
        assert_eq!(rest, n - 25);
    }
}
