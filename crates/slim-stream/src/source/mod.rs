//! The async ingestion front-end: sources, the bounded channel, and the
//! pump that drains them into the engine.
//!
//! Everything upstream of [`crate::StreamEngine::ingest_batch`] lives
//! here. A [`StreamSource`] produces event batches (from a CSV replay, a
//! live TCP feed, or a synthetic generator); the pump
//! ([`crate::StreamEngine::drive`]) runs it on a producer thread behind
//! a **bounded channel** ([`channel`]) whose backpressure is explicit
//! (`blocked_producer_ns`, `queue_high_watermark`), restores canonical
//! event order through a **watermark reorder buffer** ([`reorder`]), and
//! fires refresh ticks according to a [`TickPolicy`]:
//!
//! ```text
//!  source ──► producer thread ──► bounded channel ──► reorder buffer
//!  (csv │ tcp │ synthetic │ scripted)      (backpressure)   (watermark)
//!                                                              │ canonical order
//!                                                              ▼
//!                                   tick policy ──► engine control scan
//! ```
//!
//! The reorder buffer is what preserves the engine's bit-identity
//! contracts under a live feed: any delivery schedule whose event-time
//! disorder stays within the configured lag reaches the engine in
//! exactly the canonical `(time, side, entity)` order a sorted replay
//! would use, so links, update streams, and finalized output match the
//! direct replay path bit for bit (`tests/ingest_equivalence.rs`).

pub mod channel;
mod csv;
pub(crate) mod pump;
mod reorder;
mod synthetic;
mod tcp;

pub use channel::{ChannelStats, SendError};
pub use csv::CsvReplaySource;
pub use pump::{DriveOptions, IngestReport};
pub use reorder::ReorderBuffer;
pub use synthetic::{Clock, SyntheticSource, WallClock};
pub use tcp::TcpLineSource;

use geocell::LatLng;
use slim_core::{EntityId, Timestamp};

use crate::event::{Side, StreamEvent};

/// One poll of a [`StreamSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// Events, in delivery order (not necessarily event-time order).
    Batch(Vec<StreamEvent>),
    /// No events available right now; the stream is not over. The pump
    /// yields and polls again.
    Pending,
    /// End of stream: no further events will ever be produced.
    End,
}

/// A pull-based producer of stream events. The pump owns the source on
/// a dedicated producer thread and polls it for batches, pushing every
/// event through the bounded channel — so an implementation may block
/// (e.g. on a socket read) without stalling the engine's consumer side.
pub trait StreamSource {
    /// Produces the next batch of at most `max` events.
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String>;
}

impl<S: StreamSource + ?Sized> StreamSource for Box<S> {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        (**self).next_batch(max)
    }
}

/// When the pump fires refresh ticks while draining a source. Replaces
/// the engine's hard-coded every-N-events counter as the CLI-facing
/// policy; `EveryN` reproduces it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPolicy {
    /// Refresh after every `n` accepted events (the legacy
    /// `--refresh-every` behaviour; `0` = no automatic ticks).
    EveryN(usize),
    /// Refresh when released event time crosses a boundary of the
    /// `interval_secs` grid (anchored at the engine's window origin):
    /// ticks track the *stream's* clock, not the arrival count.
    EventTime {
        /// Tick-grid width in event-time seconds (must be positive).
        interval_secs: i64,
    },
    /// Buffer out-of-order arrivals up to `max_lag_secs` of event-time
    /// disorder, and refresh whenever the watermark frontier seals a
    /// temporal window of the engine's scheme — every tick therefore
    /// serves links over fully-delivered windows only.
    Watermark {
        /// Out-of-order tolerance in event-time seconds.
        max_lag_secs: i64,
    },
}

impl Default for TickPolicy {
    /// The engine's own ingest-count default
    /// ([`crate::StreamConfig::default`]'s `refresh_every`).
    fn default() -> Self {
        TickPolicy::EveryN(crate::StreamConfig::default().refresh_every)
    }
}

/// The side-tagged event line format shared by CSV feeds and
/// [`TcpLineSource`]:
///
/// ```text
/// side,entity_id,latitude,longitude,timestamp[,accuracy_m]
/// ```
///
/// `side` is `L`/`R` (also accepted: `left`/`right`/`0`/`1`, any case).
/// Blank lines and a `side,...` header are skipped (`Ok(None)`).
pub fn parse_event_line(line: &str) -> Result<Option<StreamEvent>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let mut fields = trimmed.split(',').map(str::trim);
    let mut next = |name: &str| {
        fields
            .next()
            .filter(|f| !f.is_empty())
            .ok_or_else(|| format!("missing field `{name}` in `{trimmed}`"))
    };
    let side = match next("side")? {
        "L" | "l" | "left" | "LEFT" | "Left" | "0" => Side::Left,
        "R" | "r" | "right" | "RIGHT" | "Right" | "1" => Side::Right,
        "side" => return Ok(None), // header line
        other => return Err(format!("bad side `{other}` (expected L or R)")),
    };
    let num = |name: &str, v: &str| -> Result<f64, String> {
        v.parse()
            .map_err(|_| format!("field `{name}` is not a number: `{v}`"))
    };
    let entity_s = next("entity_id")?;
    let entity: u64 = entity_s
        .parse()
        .map_err(|_| format!("field `entity_id` is not an integer: `{entity_s}`"))?;
    let lat = num("latitude", next("latitude")?)?;
    let lng = num("longitude", next("longitude")?)?;
    let ts_s = next("timestamp")?;
    let ts: i64 = ts_s
        .parse()
        .map_err(|_| format!("field `timestamp` is not an integer: `{ts_s}`"))?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
        return Err(format!("coordinates out of range: ({lat}, {lng})"));
    }
    let accuracy = match fields.next().map(str::trim).filter(|f| !f.is_empty()) {
        Some(a) => {
            let v = num("accuracy_m", a)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("accuracy must be non-negative, got {v}"));
            }
            v
        }
        None => 0.0,
    };
    Ok(Some(StreamEvent {
        side,
        entity: EntityId(entity),
        location: LatLng::from_degrees(lat, lng),
        time: Timestamp(ts),
        accuracy_m: accuracy,
    }))
}

/// Renders an event in the [`parse_event_line`] wire format (no
/// trailing newline).
pub fn format_event_line(ev: &StreamEvent) -> String {
    format!(
        "{},{},{:.7},{:.7},{}{}",
        match ev.side {
            Side::Left => 'L',
            Side::Right => 'R',
        },
        ev.entity.0,
        ev.location.lat_deg(),
        ev.location.lng_deg(),
        ev.time.secs(),
        if ev.accuracy_m > 0.0 {
            format!(",{}", ev.accuracy_m)
        } else {
            String::new()
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_line_roundtrip() {
        let ev = StreamEvent {
            side: Side::Right,
            entity: EntityId(42),
            location: LatLng::from_degrees(37.5, -122.25),
            time: Timestamp(12345),
            accuracy_m: 80.0,
        };
        let back = parse_event_line(&format_event_line(&ev)).unwrap().unwrap();
        assert_eq!(back.side, ev.side);
        assert_eq!(back.entity, ev.entity);
        assert_eq!(back.time, ev.time);
        assert!((back.location.lat_deg() - 37.5).abs() < 1e-6);
        assert!((back.accuracy_m - 80.0).abs() < 1e-9);
    }

    #[test]
    fn header_and_blank_lines_skip() {
        assert_eq!(parse_event_line("").unwrap(), None);
        assert_eq!(parse_event_line("  \t ").unwrap(), None);
        assert_eq!(
            parse_event_line("side,entity_id,latitude,longitude,timestamp").unwrap(),
            None
        );
    }

    #[test]
    fn side_aliases_parse() {
        for (s, side) in [("L", Side::Left), ("right", Side::Right), ("0", Side::Left)] {
            let ev = parse_event_line(&format!("{s},1,0.0,0.0,5"))
                .unwrap()
                .unwrap();
            assert_eq!(ev.side, side, "alias {s}");
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_event_line("X,1,0.0,0.0,5").is_err());
        assert!(parse_event_line("L,abc,0.0,0.0,5").is_err());
        assert!(parse_event_line("L,1,95.0,0.0,5").is_err());
        assert!(parse_event_line("L,1,0.0").is_err());
        assert!(parse_event_line("L,1,0.0,0.0,5,-3").is_err());
    }

    #[test]
    fn default_tick_policy_matches_engine_default() {
        assert_eq!(
            TickPolicy::default(),
            TickPolicy::EveryN(crate::StreamConfig::default().refresh_every)
        );
    }
}
