//! The async ingestion front-end: sources, the bounded channel, and the
//! pump that drains them into the engine.
//!
//! Everything upstream of [`crate::StreamEngine::ingest_batch`] lives
//! here. A [`StreamSource`] produces event batches (from a CSV replay, a
//! live TCP feed, or a synthetic generator); the pump
//! ([`crate::StreamEngine::drive`]) runs it on a producer thread behind
//! a **bounded channel** ([`channel`]) whose backpressure is explicit
//! (`blocked_producer_ns`, `queue_high_watermark`), restores canonical
//! event order through a **watermark reorder buffer** ([`reorder`]), and
//! fires refresh ticks according to a [`TickPolicy`]:
//!
//! ```text
//!  source ──► producer thread ──► bounded channel ──► reorder buffer
//!  (csv │ tcp │ synthetic │ scripted)      (backpressure)   (watermark)
//!                                                              │ canonical order
//!                                                              ▼
//!                                   tick policy ──► engine control scan
//! ```
//!
//! The reorder buffer is what preserves the engine's bit-identity
//! contracts under a live feed: any delivery schedule whose event-time
//! disorder stays within the configured lag reaches the engine in
//! exactly the canonical `(time, side, entity)` order a sorted replay
//! would use, so links, update streams, and finalized output match the
//! direct replay path bit for bit (`tests/ingest_equivalence.rs`).
//!
//! The **multi-connection tier** generalizes the left edge of that
//! picture: a [`TcpIngestTier`] accept loop ([`listener`]) serves many
//! concurrent clients, each reader thread fanning `Join`/`Event`/
//! `Leave` messages into the same channel (now MPSC), and a
//! [`ConnectionFrontier`] ([`frontier`]) merges the per-connection
//! watermarks into the global minimum that governs reorder release:
//!
//! ```text
//!  conn 0 ──► reader ─┐
//!  conn 1 ──► reader ─┼──► MPSC channel ──► frontier merge ──► reorder
//!  conn N ──► reader ─┘    (backpressure)   (min watermark     buffer
//!                                            over live conns)    │
//!                                                                ▼
//!                                     tick policy ──► engine control scan
//! ```

pub mod channel;
mod csv;
mod frontier;
mod listener;
pub(crate) mod pump;
mod reorder;
mod synthetic;
mod tcp;

pub use channel::{ChannelStats, SendError};
pub use csv::CsvReplaySource;
pub use frontier::ConnectionFrontier;
pub use listener::{ConnMessage, FanIn, TcpIngestTier};
pub use pump::{DriveOptions, IngestReport};
pub use reorder::ReorderBuffer;
pub use synthetic::{Clock, SyntheticSource, WallClock};
pub use tcp::TcpLineSource;

use geocell::LatLng;
use slim_core::{EntityId, Timestamp};

use crate::event::{Side, StreamEvent};

/// One poll of a [`StreamSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// Events, in delivery order (not necessarily event-time order).
    Batch(Vec<StreamEvent>),
    /// No events available right now; the stream is not over. The pump
    /// yields and polls again.
    Pending,
    /// End of stream: no further events will ever be produced.
    End,
}

/// A pull-based producer of stream events. The pump owns the source on
/// a dedicated producer thread and polls it for batches, pushing every
/// event through the bounded channel — so an implementation may block
/// (e.g. on a socket read) without stalling the engine's consumer side.
pub trait StreamSource {
    /// Produces the next batch of at most `max` events.
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String>;
}

impl<S: StreamSource + ?Sized> StreamSource for Box<S> {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        (**self).next_batch(max)
    }
}

/// When the pump fires refresh ticks while draining a source. Replaces
/// the engine's hard-coded every-N-events counter as the CLI-facing
/// policy; `EveryN` reproduces it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPolicy {
    /// Refresh after every `n` accepted events (the legacy
    /// `--refresh-every` behaviour; `0` = no automatic ticks).
    EveryN(usize),
    /// Refresh when released event time crosses a boundary of the
    /// `interval_secs` grid (anchored at the engine's window origin):
    /// ticks track the *stream's* clock, not the arrival count.
    EventTime {
        /// Tick-grid width in event-time seconds (must be positive).
        interval_secs: i64,
    },
    /// Buffer out-of-order arrivals up to `max_lag_secs` of event-time
    /// disorder, and refresh whenever the watermark frontier seals a
    /// temporal window of the engine's scheme — every tick therefore
    /// serves links over fully-delivered windows only.
    Watermark {
        /// Out-of-order tolerance in event-time seconds.
        max_lag_secs: i64,
    },
}

impl Default for TickPolicy {
    /// The engine's own ingest-count default
    /// ([`crate::StreamConfig::default`]'s `refresh_every`).
    fn default() -> Self {
        TickPolicy::EveryN(crate::StreamConfig::default().refresh_every)
    }
}

/// Line formats a [`TcpLineSource`] feed can speak (`--wire`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Comma-separated values, one event per line — see
    /// [`parse_event_line`].
    #[default]
    Csv,
    /// JSON lines: one flat JSON object per line — see
    /// [`parse_event_jsonl`].
    Jsonl,
}

impl WireFormat {
    /// The `--wire` spelling.
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::Csv => "csv",
            WireFormat::Jsonl => "jsonl",
        }
    }
}

/// Parses one feed line in the given [`WireFormat`]. `Ok(None)` =
/// skippable line (blank, or a CSV header).
pub fn parse_wire_line(format: WireFormat, line: &str) -> Result<Option<StreamEvent>, String> {
    match format {
        WireFormat::Csv => parse_event_line(line),
        WireFormat::Jsonl => parse_event_jsonl(line),
    }
}

/// The side-tagged event line format shared by CSV feeds and
/// [`TcpLineSource`]:
///
/// ```text
/// side,entity_id,latitude,longitude,timestamp[,accuracy_m]
/// ```
///
/// `side` is `L`/`R` (also accepted: `left`/`right`/`0`/`1`, any case).
/// Blank lines and a `side,...` header are skipped (`Ok(None)`).
pub fn parse_event_line(line: &str) -> Result<Option<StreamEvent>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let mut fields = trimmed.split(',').map(str::trim);
    let mut next = |name: &str| {
        fields
            .next()
            .filter(|f| !f.is_empty())
            .ok_or_else(|| format!("missing field `{name}` in `{trimmed}`"))
    };
    let side = match next("side")? {
        "L" | "l" | "left" | "LEFT" | "Left" | "0" => Side::Left,
        "R" | "r" | "right" | "RIGHT" | "Right" | "1" => Side::Right,
        "side" => return Ok(None), // header line
        other => return Err(format!("bad side `{other}` (expected L or R)")),
    };
    let num = |name: &str, v: &str| -> Result<f64, String> {
        v.parse()
            .map_err(|_| format!("field `{name}` is not a number: `{v}`"))
    };
    let entity_s = next("entity_id")?;
    let entity: u64 = entity_s
        .parse()
        .map_err(|_| format!("field `entity_id` is not an integer: `{entity_s}`"))?;
    let lat = num("latitude", next("latitude")?)?;
    let lng = num("longitude", next("longitude")?)?;
    let ts_s = next("timestamp")?;
    let ts: i64 = ts_s
        .parse()
        .map_err(|_| format!("field `timestamp` is not an integer: `{ts_s}`"))?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
        return Err(format!("coordinates out of range: ({lat}, {lng})"));
    }
    let accuracy = match fields.next().map(str::trim).filter(|f| !f.is_empty()) {
        Some(a) => {
            let v = num("accuracy_m", a)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("accuracy must be non-negative, got {v}"));
            }
            v
        }
        None => 0.0,
    };
    Ok(Some(StreamEvent {
        side,
        entity: EntityId(entity),
        location: LatLng::from_degrees(lat, lng),
        time: Timestamp(ts),
        accuracy_m: accuracy,
    }))
}

/// One scanned JSON scalar (the only shapes the event wire needs).
#[derive(Debug, Clone, PartialEq)]
enum JsonScalar {
    Str(String),
    Num(f64),
}

/// Scans one flat JSON object (`{"key": scalar, ...}`) into key/value
/// pairs. No nesting, no arrays — deliberately minimal: the event wire
/// is flat, and the sanctioned dependency set has no JSON crate. String
/// values understand `\"`, `\\`, `\/`, `\n`, `\t`, `\r` escapes.
/// Allocates a char buffer per line plus a `String` per key — simpler
/// than zero-copy byte slicing, and affordable because it runs on the
/// decoupled producer thread, behind the bounded channel, never on the
/// engine's ingest path.
fn scan_flat_json(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err(format!("expected string at offset {i} in `{line}`"));
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = bytes.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    out.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        '/' => '/',
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => return Err(format!("unsupported escape `\\{other}`")),
                    });
                }
                other => out.push(other),
            }
        }
        Err(format!("unterminated string in `{line}`"))
    };
    let parse_number = |i: &mut usize| -> Result<f64, String> {
        let start = *i;
        while *i < bytes.len() && matches!(bytes[*i], '0'..='9' | '-' | '+' | '.' | 'e' | 'E') {
            *i += 1;
        }
        let text: String = bytes[start..*i].iter().collect();
        text.parse()
            .map_err(|_| format!("bad number `{text}` in `{line}`"))
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&'{') {
        return Err(format!("expected a JSON object, got `{line}`"));
    }
    i += 1;
    let mut fields = Vec::new();
    skip_ws(&mut i);
    if bytes.get(i) == Some(&'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(&mut i)?;
            skip_ws(&mut i);
            if bytes.get(i) != Some(&':') {
                return Err(format!("expected `:` after key `{key}` in `{line}`"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = match bytes.get(i) {
                Some('"') => JsonScalar::Str(parse_string(&mut i)?),
                Some('0'..='9' | '-' | '+' | '.') => JsonScalar::Num(parse_number(&mut i)?),
                other => return Err(format!("unsupported value {other:?} in `{line}`")),
            };
            fields.push((key, value));
            skip_ws(&mut i);
            match bytes.get(i) {
                Some(',') => i += 1,
                Some('}') => {
                    i += 1;
                    break;
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?} in `{line}`")),
            }
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err(format!("trailing garbage after JSON object in `{line}`"));
    }
    Ok(fields)
}

/// The JSON-lines event wire format, one flat object per line:
///
/// ```text
/// {"side":"L","entity":42,"lat":37.5,"lng":-122.25,"ts":12345,"acc":80.0}
/// ```
///
/// Accepted key aliases: `lat`/`latitude`, `lng`/`lon`/`longitude`,
/// `ts`/`time`/`timestamp`, `acc`/`accuracy`/`accuracy_m` (optional).
/// `side` takes the same spellings as the CSV format (`L`, `right`,
/// `0`, …) as a string, or the numbers `0`/`1`. Key order is free,
/// unknown keys are ignored (forward compatibility), and blank lines
/// are skipped (`Ok(None)`). Range validation matches
/// [`parse_event_line`].
pub fn parse_event_jsonl(line: &str) -> Result<Option<StreamEvent>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let fields = scan_flat_json(trimmed)?;
    let mut side: Option<Side> = None;
    let mut entity: Option<u64> = None;
    let mut lat: Option<f64> = None;
    let mut lng: Option<f64> = None;
    let mut ts: Option<i64> = None;
    let mut accuracy = 0.0f64;
    let as_int = |v: &JsonScalar, name: &str| -> Result<i64, String> {
        match v {
            // Bound to f64's exactly-representable integer range: a
            // saturating `as i64` of e.g. 1e300 would otherwise accept
            // a corrupt line as Timestamp(i64::MAX) and poison the
            // watermark frontier for the rest of the stream.
            JsonScalar::Num(n) if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 => {
                Ok(*n as i64)
            }
            JsonScalar::Str(s) => s
                .parse()
                .map_err(|_| format!("field `{name}` is not an integer: `{s}`")),
            _ => Err(format!("field `{name}` is not an integer: {v:?}")),
        }
    };
    let as_num = |v: &JsonScalar, name: &str| -> Result<f64, String> {
        match v {
            JsonScalar::Num(n) => Ok(*n),
            JsonScalar::Str(s) => s
                .parse()
                .map_err(|_| format!("field `{name}` is not a number: `{s}`")),
        }
    };
    for (key, value) in &fields {
        match key.as_str() {
            "side" => {
                let spelled = match value {
                    JsonScalar::Str(s) => s.clone(),
                    JsonScalar::Num(n) => format!("{n}"),
                };
                side = Some(match spelled.as_str() {
                    "L" | "l" | "left" | "LEFT" | "Left" | "0" => Side::Left,
                    "R" | "r" | "right" | "RIGHT" | "Right" | "1" => Side::Right,
                    other => return Err(format!("bad side `{other}` (expected L or R)")),
                });
            }
            "entity" | "entity_id" => {
                let v = as_int(value, "entity")?;
                if v < 0 {
                    return Err(format!("field `entity` must be non-negative, got {v}"));
                }
                entity = Some(v as u64);
            }
            "lat" | "latitude" => lat = Some(as_num(value, "lat")?),
            "lng" | "lon" | "longitude" => lng = Some(as_num(value, "lng")?),
            "ts" | "time" | "timestamp" => ts = Some(as_int(value, "ts")?),
            "acc" | "accuracy" | "accuracy_m" => {
                let v = as_num(value, "acc")?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("accuracy must be non-negative, got {v}"));
                }
                accuracy = v;
            }
            _ => {} // unknown keys tolerated
        }
    }
    let missing = |name: &str| format!("missing field `{name}` in `{trimmed}`");
    let side = side.ok_or_else(|| missing("side"))?;
    let entity = entity.ok_or_else(|| missing("entity"))?;
    let lat = lat.ok_or_else(|| missing("lat"))?;
    let lng = lng.ok_or_else(|| missing("lng"))?;
    let ts = ts.ok_or_else(|| missing("ts"))?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
        return Err(format!("coordinates out of range: ({lat}, {lng})"));
    }
    Ok(Some(StreamEvent {
        side,
        entity: EntityId(entity),
        location: LatLng::from_degrees(lat, lng),
        time: Timestamp(ts),
        accuracy_m: accuracy,
    }))
}

/// Renders an event in the [`parse_event_jsonl`] wire format (no
/// trailing newline).
pub fn format_event_jsonl(ev: &StreamEvent) -> String {
    format!(
        "{{\"side\":\"{}\",\"entity\":{},\"lat\":{:.7},\"lng\":{:.7},\"ts\":{}{}}}",
        match ev.side {
            Side::Left => 'L',
            Side::Right => 'R',
        },
        ev.entity.0,
        ev.location.lat_deg(),
        ev.location.lng_deg(),
        ev.time.secs(),
        if ev.accuracy_m > 0.0 {
            format!(",\"acc\":{}", ev.accuracy_m)
        } else {
            String::new()
        }
    )
}

/// Renders an event in the [`parse_event_line`] wire format (no
/// trailing newline).
pub fn format_event_line(ev: &StreamEvent) -> String {
    format!(
        "{},{},{:.7},{:.7},{}{}",
        match ev.side {
            Side::Left => 'L',
            Side::Right => 'R',
        },
        ev.entity.0,
        ev.location.lat_deg(),
        ev.location.lng_deg(),
        ev.time.secs(),
        if ev.accuracy_m > 0.0 {
            format!(",{}", ev.accuracy_m)
        } else {
            String::new()
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_line_roundtrip() {
        let ev = StreamEvent {
            side: Side::Right,
            entity: EntityId(42),
            location: LatLng::from_degrees(37.5, -122.25),
            time: Timestamp(12345),
            accuracy_m: 80.0,
        };
        let back = parse_event_line(&format_event_line(&ev)).unwrap().unwrap();
        assert_eq!(back.side, ev.side);
        assert_eq!(back.entity, ev.entity);
        assert_eq!(back.time, ev.time);
        assert!((back.location.lat_deg() - 37.5).abs() < 1e-6);
        assert!((back.accuracy_m - 80.0).abs() < 1e-9);
    }

    #[test]
    fn header_and_blank_lines_skip() {
        assert_eq!(parse_event_line("").unwrap(), None);
        assert_eq!(parse_event_line("  \t ").unwrap(), None);
        assert_eq!(
            parse_event_line("side,entity_id,latitude,longitude,timestamp").unwrap(),
            None
        );
    }

    #[test]
    fn side_aliases_parse() {
        for (s, side) in [("L", Side::Left), ("right", Side::Right), ("0", Side::Left)] {
            let ev = parse_event_line(&format!("{s},1,0.0,0.0,5"))
                .unwrap()
                .unwrap();
            assert_eq!(ev.side, side, "alias {s}");
        }
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_event_line("X,1,0.0,0.0,5").is_err());
        assert!(parse_event_line("L,abc,0.0,0.0,5").is_err());
        assert!(parse_event_line("L,1,95.0,0.0,5").is_err());
        assert!(parse_event_line("L,1,0.0").is_err());
        assert!(parse_event_line("L,1,0.0,0.0,5,-3").is_err());
    }

    #[test]
    fn jsonl_roundtrip() {
        let ev = StreamEvent {
            side: Side::Right,
            entity: EntityId(42),
            location: LatLng::from_degrees(37.5, -122.25),
            time: Timestamp(12345),
            accuracy_m: 80.0,
        };
        let line = format_event_jsonl(&ev);
        let back = parse_event_jsonl(&line).unwrap().unwrap();
        assert_eq!(back.side, ev.side);
        assert_eq!(back.entity, ev.entity);
        assert_eq!(back.time, ev.time);
        assert!((back.location.lat_deg() - 37.5).abs() < 1e-6);
        assert!((back.accuracy_m - 80.0).abs() < 1e-9);
        // Wire-format dispatch reaches the same parser.
        assert_eq!(
            parse_wire_line(WireFormat::Jsonl, &line).unwrap().unwrap(),
            back
        );
        assert_eq!(WireFormat::Jsonl.label(), "jsonl");
        assert_eq!(WireFormat::default(), WireFormat::Csv);
    }

    #[test]
    fn jsonl_accepts_aliases_reordering_and_unknown_keys() {
        let ev = parse_event_jsonl(
            r#" { "timestamp": 9, "longitude": -1.5, "latitude": 2.25,
                  "entity_id": "7", "side": "left", "source": "gps-v2" } "#,
        )
        .unwrap()
        .unwrap();
        assert_eq!(ev.side, Side::Left);
        assert_eq!(ev.entity, EntityId(7));
        assert_eq!(ev.time, Timestamp(9));
        assert!((ev.location.lng_deg() - -1.5).abs() < 1e-9);
        assert_eq!(ev.accuracy_m, 0.0);
        // Numeric side spelling, escaped string values tolerated.
        let ev = parse_event_jsonl(r#"{"side":1,"entity":3,"lat":0,"lng":0,"ts":-5}"#)
            .unwrap()
            .unwrap();
        assert_eq!(ev.side, Side::Right);
        assert_eq!(ev.time, Timestamp(-5));
        // Blank lines skip like the CSV wire.
        assert_eq!(parse_event_jsonl("   ").unwrap(), None);
    }

    #[test]
    fn jsonl_malformed_lines_error() {
        for bad in [
            "not json at all",
            r#"{"side":"L","entity":1,"lat":0,"lng":0}"#, // missing ts
            r#"{"side":"X","entity":1,"lat":0,"lng":0,"ts":1}"#, // bad side
            r#"{"side":"L","entity":1.5,"lat":0,"lng":0,"ts":1}"#, // fractional id
            r#"{"side":"L","entity":1,"lat":95,"lng":0,"ts":1}"#, // out of range
            r#"{"side":"L","entity":1,"lat":0,"lng":0,"ts":1} trailing"#,
            r#"{"side":"L","entity":1,"lat":0,"lng":0,"ts":1,"acc":-2}"#,
            r#"{"side":"L","entity":-3,"lat":0,"lng":0,"ts":1}"#,
            r#"{"side":"L" "entity":1}"#, // missing comma
            // Integers beyond f64's exact range must error, not
            // saturate into a frontier-poisoning timestamp.
            r#"{"side":"L","entity":1,"lat":0,"lng":0,"ts":1e300}"#,
            r#"{"side":"L","entity":1e300,"lat":0,"lng":0,"ts":1}"#,
        ] {
            assert!(parse_event_jsonl(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn default_tick_policy_matches_engine_default() {
        assert_eq!(
            TickPolicy::default(),
            TickPolicy::EveryN(crate::StreamConfig::default().refresh_every)
        );
    }
}
