//! A bounded MPSC channel with explicit backpressure accounting.
//!
//! The ingestion front-end needs exactly one property no `std` channel
//! offers out of the box: a **hard capacity** that blocks producers
//! (never drops, never grows unbounded) while *accounting* for the time
//! spent blocked — `blocked_producer_ns` is how a deployment sees that
//! the engine, not the feed, is the bottleneck. [`Sender`] is `Clone`:
//! every live connection of the multi-connection ingest tier holds one,
//! all fanning into a single [`Receiver`], and the channel closes only
//! when the *last* sender drops. Because the counters live in the
//! shared core, `blocked_producer_ns` is automatically the **aggregate**
//! pressure across all producers — exactly what [`QueueSizer`] should
//! react to. Built on `Mutex<VecDeque>` + two `Condvar`s; the
//! shims-only build environment rules out `crossbeam`, and the
//! blocking fan-in shape of the pump does not need lock-free
//! cleverness.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Backpressure counters of one channel, snapshotted via
/// [`Receiver::stats`] (or [`Sender::stats`]). With multiple cloned
/// senders the counters aggregate over *all* of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Total nanoseconds producers spent blocked on a full queue,
    /// summed across every sender.
    pub blocked_producer_ns: u64,
    /// Highest queue occupancy ever observed (≤ capacity).
    pub queue_high_watermark: u64,
}

struct Inner<T> {
    queue: VecDeque<T>,
    /// Current capacity — mutable so the consumer can grow the queue
    /// adaptively ([`Receiver::set_capacity`]) when backpressure bites.
    cap: usize,
    /// Live senders; the channel closes when the count reaches zero.
    senders: usize,
    /// Every producer dropped: no more items will arrive.
    closed: bool,
    /// Receiver dropped: sends can never be drained.
    rx_alive: bool,
    /// How many producers are currently parked on a full queue.
    producers_blocked: usize,
    stats: ChannelStats,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// The producing half. Cloning it adds a producer (MPSC fan-in);
/// dropping the *last* clone closes the channel, and the receiver
/// still drains whatever was queued.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Dropping it unblocks and fails the producer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `cap` in-flight items.
///
/// # Panics
/// Panics if `cap` is zero (a zero-capacity rendezvous channel would
/// deadlock the pump's drain-at-EOF path).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap.min(65_536)),
            cap,
            senders: 1,
            closed: false,
            rx_alive: true,
            producers_blocked: 0,
            stats: ChannelStats::default(),
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The receiver disappeared: the channel can never drain, and the item
/// (the first undeliverable one) is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of one [`Receiver::recv_many_timeout`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout {
    /// At least one item was moved into `out`.
    Items,
    /// The wait elapsed with the channel open but empty — a liveness
    /// tick for consumers that must act on wall time even when no
    /// producer is delivering (the fan-in pump's idle eviction).
    TimedOut,
    /// Closed and fully drained: EOF.
    Closed,
}

impl<T> Sender<T> {
    /// Enqueues one item, blocking while the queue is full. Time spent
    /// blocked is added to [`ChannelStats::blocked_producer_ns`].
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        while inner.queue.len() >= inner.cap {
            if !inner.rx_alive {
                return Err(SendError(item));
            }
            inner.producers_blocked += 1;
            let t0 = Instant::now();
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
            inner.producers_blocked -= 1;
            inner.stats.blocked_producer_ns += t0.elapsed().as_nanos() as u64;
        }
        if !inner.rx_alive {
            return Err(SendError(item));
        }
        inner.queue.push_back(item);
        let len = inner.queue.len() as u64;
        inner.stats.queue_high_watermark = inner.stats.queue_high_watermark.max(len);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a batch with one lock acquisition per capacity-sized
    /// run instead of one per item — the producer hot path. Blocks
    /// (with the same [`ChannelStats::blocked_producer_ns`] accounting)
    /// whenever the queue fills mid-batch; on a vanished receiver the
    /// first undeliverable item is handed back and the rest of the
    /// batch is dropped (the stream is dead either way).
    pub fn send_all<I: IntoIterator<Item = T>>(&self, items: I) -> Result<(), SendError<T>> {
        let mut items = items.into_iter();
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if !inner.rx_alive {
                return match items.next() {
                    Some(item) => Err(SendError(item)),
                    None => Ok(()),
                };
            }
            let mut pushed = false;
            while inner.queue.len() < inner.cap {
                match items.next() {
                    Some(item) => {
                        inner.queue.push_back(item);
                        pushed = true;
                    }
                    None => {
                        let len = inner.queue.len() as u64;
                        inner.stats.queue_high_watermark =
                            inner.stats.queue_high_watermark.max(len);
                        drop(inner);
                        self.shared.not_empty.notify_one();
                        return Ok(());
                    }
                }
            }
            let len = inner.queue.len() as u64;
            inner.stats.queue_high_watermark = inner.stats.queue_high_watermark.max(len);
            if pushed {
                // The consumer may be waiting while we block on the
                // full queue — hand over what is already queued.
                self.shared.not_empty.notify_one();
            }
            inner.producers_blocked += 1;
            let t0 = Instant::now();
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
            inner.producers_blocked -= 1;
            inner.stats.blocked_producer_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Backpressure counters so far (aggregated over every sender).
    pub fn stats(&self) -> ChannelStats {
        self.shared.inner.lock().expect("channel poisoned").stats
    }

    /// Current queue occupancy, observed from the producing side (`0`
    /// means the consumer has drained everything sent so far — how a
    /// test producer sequences phases against consumer progress).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    /// Adds a producer. The channel now closes only after this clone
    /// (and every other sender) has dropped.
    fn clone(&self) -> Self {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders += 1;
        drop(inner);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            inner.closed = true;
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues up to `max` items into `out`, blocking until at least
    /// one item is available or the channel is closed *and* drained.
    /// Returns `false` only in that final state — every queued item is
    /// delivered before EOF is reported, so nothing is ever dropped.
    pub fn recv_many(&self, out: &mut Vec<T>, max: usize) -> bool {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if !inner.queue.is_empty() {
                let n = inner.queue.len().min(max.max(1));
                out.extend(inner.queue.drain(..n));
                drop(inner);
                // Space freed: wake every parked producer — with MPSC
                // fan-in more than one may fit in the drained slots.
                self.shared.not_full.notify_all();
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// [`Receiver::recv_many`] with a bounded wait: where `recv_many`
    /// parks until items arrive or the channel closes, this also
    /// returns after `timeout` of open-but-empty quiet — which is what
    /// lets a consumer with wall-time duties (idle-connection eviction)
    /// stay live while every producer is stalled.
    pub fn recv_many_timeout(
        &self,
        out: &mut Vec<T>,
        max: usize,
        timeout: std::time::Duration,
    ) -> RecvTimeout {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if !inner.queue.is_empty() {
                let n = inner.queue.len().min(max.max(1));
                out.extend(inner.queue.drain(..n));
                drop(inner);
                self.shared.not_full.notify_all();
                return RecvTimeout::Items;
            }
            if inner.closed {
                return RecvTimeout::Closed;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return RecvTimeout::TimedOut;
            }
            (inner, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("channel poisoned");
        }
    }

    /// Current queue occupancy.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").cap
    }

    /// Changes the channel capacity (adaptive queue sizing). Growing
    /// wakes a producer parked on the old, smaller bound; shrinking
    /// below the current occupancy simply blocks new sends until the
    /// queue drains past the new bound — nothing queued is ever lost.
    ///
    /// # Panics
    /// Panics if `cap` is zero (the same rendezvous-deadlock guard as
    /// [`bounded`]).
    pub fn set_capacity(&self, cap: usize) {
        assert!(cap > 0, "channel capacity must be positive");
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.cap = cap;
        drop(inner);
        self.shared.not_full.notify_all();
    }

    /// Whether any producer is parked on a full queue right now.
    pub fn producer_blocked(&self) -> bool {
        self.producers_blocked() > 0
    }

    /// How many producers are parked on a full queue right now.
    pub fn producers_blocked(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .producers_blocked
    }

    /// How many senders are currently alive.
    pub fn sender_count(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").senders
    }

    /// Backpressure counters so far.
    pub fn stats(&self) -> ChannelStats {
        self.shared.inner.lock().expect("channel poisoned").stats
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.rx_alive = false;
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

/// The adaptive queue-sizing policy: grow the bounded queue (doubling,
/// up to a hard cap) whenever the producer's *newly accumulated*
/// blocked time since the last observation crosses a threshold. A pure
/// decision function over the channel's `blocked_producer_ns` counter,
/// kept separate from the channel so the policy is unit-testable
/// without threads; the pump applies its decisions via
/// [`Receiver::set_capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSizer {
    cap: usize,
    max_cap: usize,
    grow_threshold_ns: u64,
    last_blocked_ns: u64,
}

impl QueueSizer {
    /// Default growth trigger: ≥ 1 ms of fresh producer blocked time
    /// per drain interval.
    pub const DEFAULT_GROW_THRESHOLD_NS: u64 = 1_000_000;

    /// A policy starting at `cap`, never exceeding `max_cap`.
    ///
    /// # Panics
    /// Panics unless `0 < cap ≤ max_cap`.
    pub fn new(cap: usize, max_cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        assert!(max_cap >= cap, "max capacity {max_cap} below initial {cap}");
        Self {
            cap,
            max_cap,
            grow_threshold_ns: Self::DEFAULT_GROW_THRESHOLD_NS,
            last_blocked_ns: 0,
        }
    }

    /// Overrides the growth threshold (nanoseconds of fresh blocked
    /// time per observation interval).
    pub fn with_threshold(mut self, grow_threshold_ns: u64) -> Self {
        self.grow_threshold_ns = grow_threshold_ns.max(1);
        self
    }

    /// The capacity the policy currently prescribes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Feeds the channel's cumulative `blocked_producer_ns` counter at
    /// the end of one drain interval. Returns the new capacity when the
    /// interval's fresh blocked time crossed the threshold and there is
    /// headroom left, `None` otherwise.
    pub fn observe(&mut self, blocked_producer_ns: u64) -> Option<usize> {
        let fresh = blocked_producer_ns.saturating_sub(self.last_blocked_ns);
        self.last_blocked_ns = blocked_producer_ns;
        if fresh >= self.grow_threshold_ns && self.cap < self.max_cap {
            self.cap = self.cap.saturating_mul(2).min(self.max_cap);
            Some(self.cap)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backpressure contract: a slow consumer on a tiny queue blocks
    /// the producer (counted), never drops an item, and drains fully at
    /// EOF. The consumer waits on *observable state* (full queue +
    /// parked producer), not on sleeps, so the test cannot flake on a
    /// loaded CI host.
    #[test]
    fn slow_consumer_blocks_producer_without_losing_items() {
        const N: u64 = 100;
        const CAP: usize = 4;
        let (tx, rx) = bounded::<u64>(CAP);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).expect("receiver alive");
            }
        });
        // Deterministic block: with capacity 4 and 100 items, the
        // producer must eventually fill the queue and park.
        while !(rx.len() == CAP && rx.producer_blocked()) {
            std::thread::yield_now();
        }
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 3) {
            got.append(&mut buf);
        }
        producer.join().expect("producer panicked");
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "dropped or reordered");
        let stats = rx.stats();
        assert!(
            stats.blocked_producer_ns > 0,
            "producer never recorded blocked time"
        );
        assert_eq!(stats.queue_high_watermark, CAP as u64);
    }

    /// `send_all` with a batch far larger than the capacity: blocks at
    /// every fill (counted), hands items over mid-batch, and the full
    /// sequence arrives in order.
    #[test]
    fn send_all_streams_an_oversized_batch() {
        const N: u64 = 500;
        let (tx, rx) = bounded::<u64>(8);
        let producer = std::thread::spawn(move || {
            tx.send_all(0..N).expect("receiver alive");
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 64) {
            got.append(&mut buf);
        }
        producer.join().expect("producer panicked");
        assert_eq!(got, (0..N).collect::<Vec<_>>());
        let stats = rx.stats();
        assert_eq!(stats.queue_high_watermark, 8);
        assert!(stats.blocked_producer_ns > 0, "must have hit backpressure");
    }

    #[test]
    fn send_all_to_dropped_receiver_errors() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send_all(vec![1, 2, 3]), Err(SendError(1)));
        // An empty batch to a dead receiver is a no-op, not an error.
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send_all(Vec::new()), Ok(()));
    }

    #[test]
    fn eof_after_drain() {
        let (tx, rx) = bounded::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let mut buf = Vec::new();
        assert!(rx.recv_many(&mut buf, 10));
        assert_eq!(buf, vec![1, 2]);
        assert!(!rx.recv_many(&mut buf, 10), "closed and drained");
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(7).unwrap();
        drop(rx);
        assert_eq!(tx.send(8), Err(SendError(8)));
    }

    /// A producer parked on a full queue must wake (with an error, not a
    /// deadlock) when the receiver disappears.
    #[test]
    fn dropped_receiver_unblocks_parked_producer() {
        let (tx, rx) = bounded::<u32>(1);
        let producer = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2) // parks: queue is full
        });
        while !rx.producer_blocked() {
            std::thread::yield_now();
        }
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = bounded::<u32>(0);
    }

    /// The resize policy, exactly as the pump drives it: cumulative
    /// blocked-time observations per drain interval, growth only when
    /// the *fresh* blocked time crosses the threshold, doubling, and a
    /// hard clamp at the cap.
    #[test]
    fn queue_sizer_grows_on_threshold_and_clamps() {
        let mut sizer = QueueSizer::new(4, 11).with_threshold(1_000);
        assert_eq!(sizer.capacity(), 4);
        // Below threshold: no resize.
        assert_eq!(sizer.observe(999), None);
        // Crossing it (999 → 2_100 is 1_101 fresh ns): double.
        assert_eq!(sizer.observe(2_100), Some(8));
        // Quiet interval: the already-counted blocked time must not
        // re-trigger growth.
        assert_eq!(sizer.observe(2_100), None);
        // Next burst clamps at max_cap, then stays put forever.
        assert_eq!(sizer.observe(5_000), Some(11));
        assert_eq!(sizer.observe(50_000), None);
        assert_eq!(sizer.capacity(), 11);
    }

    #[test]
    #[should_panic(expected = "below initial")]
    fn queue_sizer_rejects_inverted_bounds() {
        let _ = QueueSizer::new(8, 4);
    }

    /// A producer parked on a full queue is released by a capacity
    /// grow — the mechanism adaptive sizing rides on.
    #[test]
    fn growing_capacity_unblocks_a_parked_producer() {
        let (tx, rx) = bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..6 {
                tx.send(i).expect("receiver alive");
            }
        });
        while !(rx.len() == 2 && rx.producer_blocked()) {
            std::thread::yield_now();
        }
        rx.set_capacity(6);
        assert_eq!(rx.capacity(), 6);
        producer.join().expect("producer");
        // All six landed without a single drain: the new bound held.
        let mut buf = Vec::new();
        assert!(rx.recv_many(&mut buf, 10));
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.stats().queue_high_watermark, 6);
    }

    /// MPSC fan-in: eight cloned senders interleave disjoint ranges and
    /// the channel reports EOF only after the *last* clone drops —
    /// every item arrives exactly once.
    #[test]
    fn many_senders_fan_in_and_close_on_last_drop() {
        const PRODUCERS: u64 = 8;
        const PER: u64 = 200;
        let (tx, rx) = bounded::<u64>(16);
        assert_eq!(rx.sender_count(), 1);
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    tx.send_all((p * PER)..((p + 1) * PER)).expect("rx alive");
                })
            })
            .collect();
        assert_eq!(rx.sender_count(), 1 + PRODUCERS as usize);
        drop(tx); // the original clone alone must not close the channel
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 32) {
            got.append(&mut buf);
        }
        for h in handles {
            h.join().expect("producer panicked");
        }
        got.sort_unstable();
        assert_eq!(got, (0..PRODUCERS * PER).collect::<Vec<_>>());
        assert_eq!(rx.sender_count(), 0);
    }

    /// The timed drain: items when there are items, `TimedOut` on an
    /// open-but-quiet channel, `Closed` only once closed *and* drained.
    #[test]
    fn recv_many_timeout_distinguishes_quiet_from_eof() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(4);
        let mut buf = Vec::new();
        assert_eq!(
            rx.recv_many_timeout(&mut buf, 4, Duration::from_millis(1)),
            RecvTimeout::TimedOut,
            "open and empty"
        );
        tx.send(9).unwrap();
        assert_eq!(
            rx.recv_many_timeout(&mut buf, 4, Duration::from_millis(1)),
            RecvTimeout::Items
        );
        assert_eq!(buf, vec![9]);
        tx.send(10).unwrap();
        drop(tx);
        // Closed but not yet drained: the queued item still arrives.
        assert_eq!(
            rx.recv_many_timeout(&mut buf, 4, Duration::from_millis(1)),
            RecvTimeout::Items
        );
        assert_eq!(
            rx.recv_many_timeout(&mut buf, 4, Duration::from_millis(1)),
            RecvTimeout::Closed
        );
    }

    /// Dropping one of several clones must *not* close the channel:
    /// items sent by the survivor still arrive, EOF only after it too
    /// is gone.
    #[test]
    fn one_dropped_clone_keeps_the_channel_open() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        let mut buf = Vec::new();
        assert!(rx.recv_many(&mut buf, 4), "survivor keeps channel open");
        assert_eq!(buf, vec![7]);
        drop(tx2);
        assert!(!rx.recv_many(&mut buf, 4), "last drop closes");
    }

    /// The satellite contract of adaptive sizing on the MPSC path: with
    /// several producers parked on one tiny queue, the shared
    /// `blocked_producer_ns` counter aggregates *all* of their blocked
    /// time, so a [`QueueSizer`] observing the receiver's stats reacts
    /// to total fan-in pressure, and growing the capacity releases all
    /// parked producers at once.
    #[test]
    fn aggregate_producer_pressure_drives_capacity_growth() {
        const PRODUCERS: usize = 3;
        let (tx, rx) = bounded::<u64>(2);
        let handles: Vec<_> = (0..PRODUCERS as u64)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..4 {
                        tx.send(p * 100 + i).expect("rx alive");
                    }
                })
            })
            .collect();
        drop(tx);
        // Deterministic multi-producer park: the queue is full and at
        // least two producers wait on it simultaneously.
        while !(rx.len() == 2 && rx.producers_blocked() >= 2) {
            std::thread::yield_now();
        }
        // Give the parked producers a moment to accumulate blocked ns
        // before snapshotting (the counter only advances on wake, so
        // release them by growing capacity first, then observe).
        let mut sizer = QueueSizer::new(2, 64).with_threshold(1);
        rx.set_capacity(PRODUCERS * 4 + 2);
        for h in handles {
            h.join().expect("producer panicked");
        }
        let stats = rx.stats();
        assert!(
            stats.blocked_producer_ns > 0,
            "aggregate blocked time must be visible on the receiver"
        );
        assert_eq!(
            sizer.observe(stats.blocked_producer_ns),
            Some(4),
            "aggregate pressure must trigger growth"
        );
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 64) {
            got.append(&mut buf);
        }
        assert_eq!(got.len(), PRODUCERS * 4, "nothing dropped under fan-in");
    }
}
