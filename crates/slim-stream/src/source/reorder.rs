//! Watermark-driven reordering of bounded out-of-order arrivals.
//!
//! The engine's bit-identity contracts (stream/batch equivalence,
//! shard-count invariance, deterministic update streams) are all stated
//! over the **canonical event order** `(time, side, entity)` that
//! [`crate::event::merge_datasets`] produces. A live feed does not
//! arrive in that order; this buffer restores it for any disorder within
//! a declared lag: events are held until the [`slim_core::Watermark`]
//! frontier passes them, then released in canonical order. Arrivals that
//! broke the lag contract (strictly below the frontier) can no longer be
//! ordered — they are counted as *late* and rejected instead of
//! corrupting the order or panicking.

use std::collections::BTreeMap;

use slim_core::{EntityId, Timestamp, Watermark};

use crate::event::{Side, StreamEvent};

/// Holds out-of-order events until the watermark passes them, releasing
/// in canonical `(time, side, entity)` order. With `max_lag_secs = 0`
/// the input is asserted time-nondecreasing: any arrival strictly older
/// than the newest one seen is late.
#[derive(Debug)]
pub struct ReorderBuffer {
    wm: Watermark,
    /// Pending events keyed by canonical order; events with identical
    /// keys keep arrival order (they are indistinguishable to the
    /// canonical sort anyway).
    pending: BTreeMap<(Timestamp, Side, EntityId), Vec<StreamEvent>>,
    buffered: usize,
    late_events: u64,
}

impl ReorderBuffer {
    /// A buffer tolerating event-time disorder up to `max_lag_secs`.
    pub fn new(max_lag_secs: i64) -> Self {
        Self {
            wm: Watermark::new(max_lag_secs),
            pending: BTreeMap::new(),
            buffered: 0,
            late_events: 0,
        }
    }

    /// Accepts one arrival and appends every event the advanced
    /// watermark now releases to `out`, in canonical order. A late
    /// arrival is counted and dropped (nothing is appended for it).
    pub fn push(&mut self, ev: StreamEvent, out: &mut Vec<StreamEvent>) {
        if self.wm.is_late(ev.time) {
            self.late_events += 1;
            return;
        }
        self.wm.observe(ev.time);
        self.pending
            .entry((ev.time, ev.side, ev.entity))
            .or_default()
            .push(ev);
        self.buffered += 1;
        self.release(out);
    }

    /// Moves every event strictly below the frontier to `out`.
    fn release(&mut self, out: &mut Vec<StreamEvent>) {
        let Some(frontier) = self.wm.frontier() else {
            return;
        };
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 >= frontier {
                break;
            }
            let events = entry.remove();
            self.buffered -= events.len();
            out.extend(events);
        }
    }

    /// Buffers one arrival **without** advancing the internal
    /// watermark — the multi-connection fan-in path, where release is
    /// governed by the merged
    /// [`crate::source::ConnectionFrontier`] instead of this buffer's
    /// own max-lag frontier. The caller decides lateness against that
    /// external frontier before holding; call
    /// [`ReorderBuffer::release_below`] to drain.
    pub fn hold(&mut self, ev: StreamEvent) {
        self.pending
            .entry((ev.time, ev.side, ev.entity))
            .or_default()
            .push(ev);
        self.buffered += 1;
    }

    /// Moves every held event strictly below `frontier` to `out`, in
    /// canonical order (the externally-driven twin of the internal
    /// release in [`ReorderBuffer::push`]).
    pub fn release_below(&mut self, frontier: Option<Timestamp>, out: &mut Vec<StreamEvent>) {
        let Some(frontier) = frontier else { return };
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 >= frontier {
                break;
            }
            let events = entry.remove();
            self.buffered -= events.len();
            out.extend(events);
        }
    }

    /// Counts one arrival rejected as late (the fan-in path decides
    /// lateness against the merged frontier, outside this buffer).
    pub fn count_late(&mut self) {
        self.late_events += 1;
    }

    /// End of stream: releases everything still buffered, in canonical
    /// order.
    pub fn flush(&mut self, out: &mut Vec<StreamEvent>) {
        for (_, events) in std::mem::take(&mut self.pending) {
            out.extend(events);
        }
        self.buffered = 0;
    }

    /// Arrivals rejected for breaking the lag contract.
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Events currently held back waiting for the watermark.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// The current watermark frontier (`None` before the first arrival).
    pub fn frontier(&self) -> Option<Timestamp> {
        self.wm.frontier()
    }

    /// The buffer's complete state — watermark high point, held events
    /// in canonical key order, late count — for checkpoint
    /// serialization; [`ReorderBuffer::restore`] is the inverse.
    pub(crate) fn export(&self) -> (Option<Timestamp>, Vec<StreamEvent>, u64) {
        let held = self
            .pending
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        (self.wm.max_seen(), held, self.late_events)
    }

    /// Rebuilds a buffer from a [`ReorderBuffer::export`] dump: the
    /// watermark resumes at the checkpointed high point and the held
    /// events are re-buffered without any release, so the recovered
    /// buffer answers every subsequent `push` exactly like the
    /// checkpointed one.
    pub(crate) fn restore(
        max_lag_secs: i64,
        max_seen: Option<Timestamp>,
        held: Vec<StreamEvent>,
        late_events: u64,
    ) -> Self {
        let mut buf = Self::new(max_lag_secs);
        if let Some(t) = max_seen {
            buf.wm.observe(t);
        }
        for ev in held {
            buf.hold(ev);
        }
        buf.late_events = late_events;
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    fn ev(side: Side, entity: u64, t: i64) -> StreamEvent {
        StreamEvent::new(
            side,
            EntityId(entity),
            LatLng::from_degrees(0.0, 0.0),
            Timestamp(t),
        )
    }

    fn times(events: &[StreamEvent]) -> Vec<i64> {
        events.iter().map(|e| e.time.secs()).collect()
    }

    #[test]
    fn bounded_disorder_is_restored_to_canonical_order() {
        let mut buf = ReorderBuffer::new(100);
        let mut out = Vec::new();
        for &t in &[50i64, 30, 80, 60, 200, 150, 300] {
            buf.push(ev(Side::Left, 1, t), &mut out);
        }
        buf.flush(&mut out);
        assert_eq!(times(&out), vec![30, 50, 60, 80, 150, 200, 300]);
        assert_eq!(buf.late_events(), 0);
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn ties_sort_by_side_then_entity() {
        let mut buf = ReorderBuffer::new(10);
        let mut out = Vec::new();
        buf.push(ev(Side::Right, 5, 100), &mut out);
        buf.push(ev(Side::Left, 9, 100), &mut out);
        buf.push(ev(Side::Left, 2, 100), &mut out);
        buf.flush(&mut out);
        let keys: Vec<(Side, u64)> = out.iter().map(|e| (e.side, e.entity.0)).collect();
        assert_eq!(
            keys,
            vec![(Side::Left, 2), (Side::Left, 9), (Side::Right, 5)]
        );
    }

    #[test]
    fn zero_lag_rejects_out_of_order_and_passes_in_order() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        for &t in &[10i64, 20, 20, 15, 30, 29] {
            buf.push(ev(Side::Left, 1, t), &mut out);
        }
        buf.flush(&mut out);
        // 15 and 29 arrived below the already-released frontier.
        assert_eq!(buf.late_events(), 2);
        assert_eq!(times(&out), vec![10, 20, 20, 30]);
    }

    #[test]
    fn releases_only_below_the_frontier() {
        let mut buf = ReorderBuffer::new(50);
        let mut out = Vec::new();
        buf.push(ev(Side::Left, 1, 100), &mut out);
        assert!(out.is_empty(), "frontier 50 releases nothing");
        buf.push(ev(Side::Left, 1, 200), &mut out);
        // Frontier 150: the event at 100 is safe, 200 still held.
        assert_eq!(times(&out), vec![100]);
        assert_eq!(buf.buffered(), 1);
    }

    /// The externally-frontiered path: `hold` never releases on its
    /// own, `release_below` drains exactly the prefix strictly below
    /// the supplied frontier, and `flush` empties the rest.
    #[test]
    fn external_frontier_governs_release() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        for &t in &[50i64, 30, 80, 60] {
            buf.hold(ev(Side::Left, 1, t));
        }
        assert_eq!(buf.buffered(), 4);
        assert!(out.is_empty());
        buf.release_below(None, &mut out);
        assert!(out.is_empty(), "no frontier, no release");
        buf.release_below(Some(Timestamp(60)), &mut out);
        assert_eq!(times(&out), vec![30, 50], "strictly below 60");
        assert_eq!(buf.buffered(), 2);
        buf.count_late();
        assert_eq!(buf.late_events(), 1);
        buf.flush(&mut out);
        assert_eq!(times(&out), vec![30, 50, 60, 80]);
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn exact_duplicates_survive_with_arrival_order() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = Vec::new();
        let a = ev(Side::Left, 1, 10);
        buf.push(a, &mut out);
        buf.push(a, &mut out);
        buf.flush(&mut out);
        assert_eq!(out.len(), 2, "duplicates are data, not errors");
    }
}
