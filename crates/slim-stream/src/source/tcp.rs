//! Live TCP feed: tail a loopback socket of side-tagged event lines.
//!
//! The feeder writes one record per `\n`-terminated line, in either the
//! CSV wire format ([`crate::source::parse_event_line`]) or JSON lines
//! ([`crate::source::parse_event_jsonl`]) — chosen per connection via
//! [`WireFormat`]. The source parses whatever the socket delivers
//! (chunk boundaries never have to align with lines) and reports EOF
//! when the peer closes. Reads block on the producer thread — the
//! pump's bounded channel keeps the engine side decoupled — so no
//! timeouts, polling, or async runtime are needed.

use std::io::Read;
use std::net::TcpStream;

use crate::event::StreamEvent;
use crate::source::{parse_wire_line, SourcePoll, StreamSource, WireFormat};

/// Read-buffer growth unit: large enough that a healthy feed needs few
/// syscalls, small enough not to matter per connection.
const READ_CHUNK: usize = 64 * 1024;

/// Tails a TCP connection of newline-delimited event lines.
#[derive(Debug)]
pub struct TcpLineSource {
    stream: TcpStream,
    format: WireFormat,
    /// Raw bytes received but not yet split into complete lines.
    buf: Vec<u8>,
    /// Parsed events not yet handed out (a single read can complete
    /// more lines than one `next_batch` asks for).
    parsed: std::collections::VecDeque<StreamEvent>,
    peer_closed: bool,
    /// Count-and-skip malformed lines instead of failing the stream
    /// (the multi-connection listener's hardening mode — one garbage
    /// client line must not kill the connection).
    lenient: bool,
    /// Malformed lines skipped so far (lenient mode only).
    malformed_lines: u64,
}

impl TcpLineSource {
    /// Connects to a CSV-wire feeder at `addr` (e.g. `127.0.0.1:9999`).
    pub fn connect(addr: &str) -> Result<Self, String> {
        Self::connect_with(addr, WireFormat::Csv)
    }

    /// Connects to a feeder speaking the given wire format.
    pub fn connect_with(addr: &str, format: WireFormat) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        Ok(Self::from_stream_with(stream, format))
    }

    /// Wraps an already-established CSV-wire connection (e.g. one
    /// accepted from a listener).
    pub fn from_stream(stream: TcpStream) -> Self {
        Self::from_stream_with(stream, WireFormat::Csv)
    }

    /// Wraps an established connection speaking the given wire format.
    pub fn from_stream_with(stream: TcpStream, format: WireFormat) -> Self {
        Self {
            stream,
            format,
            buf: Vec::new(),
            parsed: std::collections::VecDeque::new(),
            peer_closed: false,
            lenient: false,
            malformed_lines: 0,
        }
    }

    /// Switches to lenient parsing: malformed lines (bad wire syntax,
    /// out-of-range fields, non-UTF-8 bytes) are counted in
    /// [`TcpLineSource::malformed_lines`] and skipped instead of
    /// failing the stream. I/O errors still fail it — a dead socket is
    /// not a parse problem.
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Malformed lines skipped so far (only advances in
    /// [`TcpLineSource::lenient`] mode).
    pub fn malformed_lines(&self) -> u64 {
        self.malformed_lines
    }

    /// Parses one line, honouring the lenient mode.
    fn parse_line(
        format: WireFormat,
        lenient: bool,
        malformed_lines: &mut u64,
        line: &[u8],
    ) -> Result<Option<StreamEvent>, String> {
        let parsed = std::str::from_utf8(line)
            .map_err(|_| "feed sent non-UTF-8 line".to_string())
            .and_then(|l| parse_wire_line(format, l));
        match parsed {
            Ok(ev) => Ok(ev),
            Err(_) if lenient => {
                *malformed_lines += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Splits complete lines off `self.buf` into parsed events.
    fn drain_lines(&mut self, include_partial_tail: bool) -> Result<(), String> {
        let mut start = 0;
        while let Some(nl) = self.buf[start..].iter().position(|&b| b == b'\n') {
            let line = &self.buf[start..start + nl];
            let parsed =
                Self::parse_line(self.format, self.lenient, &mut self.malformed_lines, line)?;
            start += nl + 1;
            if let Some(ev) = parsed {
                self.parsed.push_back(ev);
            }
        }
        if include_partial_tail && start < self.buf.len() {
            // Peer closed mid-line: treat the unterminated tail as a
            // final line rather than silently dropping data.
            let line = &self.buf[start..];
            let parsed =
                Self::parse_line(self.format, self.lenient, &mut self.malformed_lines, line)?;
            if let Some(ev) = parsed {
                self.parsed.push_back(ev);
            }
            start = self.buf.len();
        }
        self.buf.drain(..start);
        Ok(())
    }
}

impl StreamSource for TcpLineSource {
    fn next_batch(&mut self, max: usize) -> Result<SourcePoll, String> {
        let max = max.max(1);
        loop {
            if !self.parsed.is_empty() {
                let n = self.parsed.len().min(max);
                return Ok(SourcePoll::Batch(self.parsed.drain(..n).collect()));
            }
            if self.peer_closed {
                return Ok(SourcePoll::End);
            }
            let old_len = self.buf.len();
            self.buf.resize(old_len + READ_CHUNK, 0);
            let got = self
                .stream
                .read(&mut self.buf[old_len..])
                .map_err(|e| format!("reading feed: {e}"))?;
            self.buf.truncate(old_len + got);
            if got == 0 {
                self.peer_closed = true;
            }
            self.drain_lines(self.peer_closed)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Side;
    use crate::source::format_event_line;
    use geocell::LatLng;
    use slim_core::{EntityId, Timestamp};
    use std::io::Write;
    use std::net::TcpListener;

    fn ev(side: Side, entity: u64, t: i64) -> StreamEvent {
        StreamEvent::new(
            side,
            EntityId(entity),
            LatLng::from_degrees(10.0, 20.0),
            Timestamp(t),
        )
    }

    /// Feed events over a real loopback socket in ragged write chunks
    /// (splitting lines mid-byte) and check the source reassembles the
    /// exact sequence and reports EOF once the feeder hangs up.
    #[test]
    fn tails_a_loopback_feed_to_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        let events: Vec<StreamEvent> = (0..25)
            .map(|k| {
                ev(
                    if k % 2 == 0 { Side::Left } else { Side::Right },
                    k % 5,
                    100 + k as i64,
                )
            })
            .collect();
        let lines: String = events.iter().map(|e| format_event_line(e) + "\n").collect();
        // A header plus a blank line must be skipped, not fatal.
        let payload = format!("side,entity_id,latitude,longitude,timestamp\n\n{lines}");
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // Ragged chunking: no write boundary aligns with a line.
            for chunk in payload.as_bytes().chunks(17) {
                conn.write_all(chunk).expect("write");
            }
            // Dropping the connection is the EOF signal.
        });

        let mut src = TcpLineSource::connect(&addr).expect("connect");
        let mut got = Vec::new();
        loop {
            match src.next_batch(7).expect("healthy feed") {
                SourcePoll::Batch(b) => got.extend(b),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!("blocking reads never return Pending"),
            }
        }
        feeder.join().expect("feeder");
        assert_eq!(got.len(), events.len());
        for (a, b) in got.iter().zip(&events) {
            assert_eq!((a.side, a.entity, a.time), (b.side, b.entity, b.time));
        }
    }

    /// The JSONL wire over a real loopback socket with ragged write
    /// chunks (lines split mid-object): exact reassembly, EOF on
    /// hangup, and the unterminated final object still delivered.
    #[test]
    fn tails_a_jsonl_feed_in_ragged_chunks() {
        use crate::source::format_event_jsonl;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        let events: Vec<StreamEvent> = (0..30)
            .map(|k| {
                ev(
                    if k % 3 == 0 { Side::Left } else { Side::Right },
                    k % 7,
                    500 + k as i64,
                )
            })
            .collect();
        let mut payload: String = events
            .iter()
            .map(|e| format_event_jsonl(e) + "\n")
            .collect();
        // Blank line mid-stream must be skipped; the final newline is
        // dropped so the last object arrives unterminated.
        payload.insert(payload.len() / 2, '\n');
        payload.pop();
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // 13-byte chunks: no write boundary aligns with an object.
            for chunk in payload.as_bytes().chunks(13) {
                conn.write_all(chunk).expect("write");
            }
        });

        let mut src = TcpLineSource::connect_with(&addr, WireFormat::Jsonl).expect("connect");
        let mut got = Vec::new();
        loop {
            match src.next_batch(4).expect("healthy feed") {
                SourcePoll::Batch(b) => got.extend(b),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!("blocking reads never return Pending"),
            }
        }
        feeder.join().expect("feeder");
        assert_eq!(got.len(), events.len());
        for (a, b) in got.iter().zip(&events) {
            assert_eq!((a.side, a.entity, a.time), (b.side, b.entity, b.time));
        }
    }

    #[test]
    fn malformed_jsonl_line_surfaces_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(
                b"{\"side\":\"L\",\"entity\":1,\"lat\":0,\"lng\":0,\"ts\":5}\n{broken\n",
            )
            .unwrap();
        });
        let mut src = TcpLineSource::connect_with(&addr, WireFormat::Jsonl).unwrap();
        let mut saw_err = false;
        for _ in 0..4 {
            match src.next_batch(10) {
                Ok(SourcePoll::End) => break,
                Ok(_) => {}
                Err(e) => {
                    assert!(e.contains("broken") || e.contains("expected"), "{e}");
                    saw_err = true;
                    break;
                }
            }
        }
        feeder.join().unwrap();
        assert!(saw_err, "malformed JSONL line must error");
    }

    #[test]
    fn unterminated_final_line_is_delivered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(b"L,1,0.0,0.0,5\nR,2,0.0,0.0,6").unwrap();
        });
        let mut src = TcpLineSource::connect(&addr).unwrap();
        let mut got = Vec::new();
        loop {
            match src.next_batch(10).unwrap() {
                SourcePoll::Batch(b) => got.extend(b),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!(),
            }
        }
        feeder.join().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].entity, EntityId(2));
    }

    #[test]
    fn malformed_line_surfaces_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(b"L,1,0.0,0.0,5\nnot,an,event,line,at_all\n")
                .unwrap();
        });
        let mut src = TcpLineSource::connect(&addr).unwrap();
        // First batch delivers the good line; the poll that reaches the
        // bad line errors instead of panicking or dropping it.
        let mut saw_err = false;
        for _ in 0..4 {
            match src.next_batch(10) {
                Ok(SourcePoll::End) => break,
                Ok(_) => {}
                Err(e) => {
                    assert!(e.contains("not"), "{e}");
                    saw_err = true;
                    break;
                }
            }
        }
        feeder.join().unwrap();
        assert!(saw_err, "malformed line must error");
    }

    /// Lenient mode (the listener's hardening): garbage lines — bad
    /// syntax, out-of-range fields, non-UTF-8 bytes, truncated JSON —
    /// are counted and skipped, and every valid line around them still
    /// arrives. The strict default above keeps erroring.
    #[test]
    fn lenient_mode_counts_and_skips_garbage() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let feeder = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(b"L,1,0.0,0.0,5\n").unwrap();
            conn.write_all(b"not,an,event,line,at_all\n").unwrap();
            conn.write_all(b"L,2,95.0,0.0,6\n").unwrap(); // lat out of range
            conn.write_all(&[0xFF, 0xFE, b'\n']).unwrap(); // non-UTF-8
            conn.write_all(b"R,3,0.0,0.0,7\n").unwrap();
        });
        let mut src = TcpLineSource::connect(&addr).unwrap().lenient();
        let mut got = Vec::new();
        loop {
            match src.next_batch(10).expect("lenient feed never parse-fails") {
                SourcePoll::Batch(b) => got.extend(b),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!(),
            }
        }
        feeder.join().unwrap();
        assert_eq!(got.len(), 2, "both valid lines around the garbage");
        assert_eq!(got[0].entity, EntityId(1));
        assert_eq!(got[1].entity, EntityId(3));
        assert_eq!(src.malformed_lines(), 3);
    }
}
