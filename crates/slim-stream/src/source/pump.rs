//! The pump: a producer thread drains a [`StreamSource`] into the
//! bounded channel; the calling thread drains the channel through the
//! watermark reorder buffer into the engine, firing refresh ticks per
//! [`TickPolicy`]. This inverts the PR-1 loop ("caller pushes events")
//! into "the engine drains its source", which is what lets `slim-link
//! --stream` tail a live feed instead of replaying a file it owns.
//!
//! Determinism: the events the engine sees — and for `EveryN` the exact
//! tick positions — depend only on the *canonical order* restored by
//! the reorder buffer, never on producer/consumer interleaving, so any
//! delivery schedule within the lag bound is bit-identical to a sorted
//! replay. `EventTime` ticks are a function of released event times,
//! equally schedule-independent. `Watermark` ticks follow the frontier,
//! whose *final* state (and therefore the post-drive link set, after
//! one refresh) is schedule-independent even though intermediate tick
//! count is not.

use slim_core::{Timestamp, WindowIdx, WindowScheme};

use crate::checkpoint::{ResumeState, TickerDump};
use crate::engine::{LinkUpdate, StreamEngine};
use crate::event::StreamEvent;
use crate::source::reorder::ReorderBuffer;
use crate::source::{channel, SourcePoll, StreamSource, TickPolicy};

/// Pump configuration: the bounded channel and the tick policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOptions {
    /// Bounded-channel capacity in events: the producer blocks (never
    /// drops) when this many events are in flight.
    pub queue_cap: usize,
    /// Adaptive queue sizing ceiling: when above `queue_cap`, the pump
    /// doubles the channel capacity (up to this cap) whenever a drain
    /// interval accumulates more than
    /// [`QueueSizer::DEFAULT_GROW_THRESHOLD_NS`] of fresh producer
    /// blocked time — backpressure still bounds the queue, it just
    /// stops throttling a feed the engine could actually absorb. `0`
    /// (or `== queue_cap`) keeps the classic fixed capacity.
    pub queue_cap_max: usize,
    /// Maximum events per source poll and per channel drain.
    pub source_batch: usize,
    /// When to fire refresh ticks while draining.
    pub tick_policy: TickPolicy,
    /// Out-of-order tolerance (event-time seconds) of the reorder
    /// buffer for the `EveryN`/`EventTime` policies; `Watermark` uses
    /// the larger of this and its own `max_lag_secs`. `0` asserts
    /// time-nondecreasing delivery — disordered arrivals are counted
    /// late and dropped.
    pub max_lag_secs: i64,
    /// Emit one metrics snapshot to the engine's installed sink per
    /// this many delivered events (`0` = never). Snapshot *timing* —
    /// and therefore a mid-drive snapshot's contents — follows the
    /// channel's delivery chunking, which is OS-schedule-dependent;
    /// that is fine because snapshots are pure observations: the
    /// engine's links, updates, stats, and finalized output are
    /// bit-identical at every cadence.
    pub metrics_every: u64,
    /// Fan-in only ([`StreamEngine::drive_fan_in`]): a connection with
    /// no traffic for this many clock seconds is evicted from the
    /// frontier merge so one stalled client cannot freeze event time
    /// (it revives on its next event; events now below the frontier
    /// are counted late). `0` disables eviction — the frontier waits
    /// for the slowest connection forever.
    pub idle_timeout_secs: u64,
}

impl Default for DriveOptions {
    fn default() -> Self {
        Self {
            queue_cap: 65_536,
            queue_cap_max: 0,
            source_batch: 4_096,
            tick_policy: TickPolicy::default(),
            max_lag_secs: 0,
            metrics_every: 0,
            idle_timeout_secs: 0,
        }
    }
}

/// What one [`StreamEngine::drive`] run did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Events released into the engine (the engine may still count some
    /// as `late_dropped` if their window expired — that is sliding-
    /// window lateness, distinct from delivery lateness below).
    pub events_delivered: u64,
    /// Arrivals rejected by the reorder buffer for exceeding the
    /// out-of-order lag bound.
    pub late_events: u64,
    /// Nanoseconds the producer spent blocked on a full channel.
    pub blocked_producer_ns: u64,
    /// Highest channel occupancy observed (≤ the final capacity).
    pub queue_high_watermark: u64,
    /// The channel capacity at EOF: `queue_cap` unless adaptive sizing
    /// (`queue_cap_max`) grew it mid-drive.
    pub queue_grown_to: u64,
    /// Source polls that returned a batch.
    pub source_batches: u64,
    /// Source polls that returned [`SourcePoll::Pending`].
    pub source_stalls: u64,
    /// Refresh ticks fired by the pump itself (`EventTime`/`Watermark`
    /// policies; `EveryN` ticks run inside the engine and are counted
    /// in [`crate::StreamStats::ticks`] only).
    pub policy_ticks: u64,
    /// Fan-in drives: connections that joined the frontier merge.
    pub connections: u64,
    /// Fan-in drives: malformed wire lines counted and skipped across
    /// all connections (lenient parsing).
    pub malformed_lines: u64,
    /// Fan-in drives: connections evicted from the frontier merge for
    /// exceeding the idle timeout (revivals can re-evict, so this may
    /// exceed the connection count).
    pub idle_evictions: u64,
    /// Every link update emitted while draining, in order.
    pub updates: Vec<LinkUpdate>,
}

/// Per-policy tick state over the released (canonically ordered)
/// stream.
enum Ticker {
    /// Engine-internal counter (configured via `refresh_every`).
    EveryN,
    /// Tick when released event time crosses an `interval`-grid
    /// boundary anchored at the origin.
    EventTime {
        interval: i64,
        scheme: Option<WindowScheme>,
        last_cell: Option<WindowIdx>,
    },
    /// Tick when the watermark frontier seals an engine window; events
    /// of unsealed windows wait in `pending`.
    Watermark {
        width: i64,
        scheme: Option<WindowScheme>,
        sealed_below: WindowIdx,
        pending: Vec<StreamEvent>,
    },
}

impl Ticker {
    fn new(policy: TickPolicy, window_width_secs: i64, origin: Option<Timestamp>) -> Ticker {
        let scheme_from = |width: i64| origin.map(|o| WindowScheme::new(o, width));
        match policy {
            TickPolicy::EveryN(_) => Ticker::EveryN,
            TickPolicy::EventTime { interval_secs } => Ticker::EventTime {
                interval: interval_secs,
                scheme: scheme_from(interval_secs),
                last_cell: None,
            },
            TickPolicy::Watermark { .. } => Ticker::Watermark {
                width: window_width_secs,
                scheme: scheme_from(window_width_secs),
                sealed_below: 0,
                pending: Vec::new(),
            },
        }
    }

    /// Ingests the newly released events, refreshing at policy
    /// boundaries. `frontier` is the reorder buffer's current frontier
    /// (for the `Watermark` policy's sealing check).
    fn feed(
        &mut self,
        engine: &mut StreamEngine,
        released: &mut Vec<StreamEvent>,
        frontier: Option<Timestamp>,
        report: &mut IngestReport,
    ) {
        match self {
            Ticker::EveryN => {
                if !released.is_empty() {
                    report.events_delivered += released.len() as u64;
                    report.updates.extend(engine.ingest_batch(released));
                    released.clear();
                }
            }
            Ticker::EventTime {
                interval,
                scheme,
                last_cell,
            } => {
                let mut start = 0usize;
                for i in 0..released.len() {
                    let ev = &released[i];
                    let s = *scheme.get_or_insert_with(|| WindowScheme::new(ev.time, *interval));
                    let cell = s.window_of(ev.time);
                    if let Some(last) = *last_cell {
                        if cell > last {
                            // The grid boundary between `last` and
                            // `cell` was crossed: serve everything
                            // strictly before it, then tick.
                            if i > start {
                                report.events_delivered += (i - start) as u64;
                                report
                                    .updates
                                    .extend(engine.ingest_batch(&released[start..i]));
                                start = i;
                            }
                            report.policy_ticks += 1;
                            report.updates.extend(engine.refresh());
                        }
                    }
                    *last_cell = Some(cell);
                }
                if released.len() > start {
                    report.events_delivered += (released.len() - start) as u64;
                    report
                        .updates
                        .extend(engine.ingest_batch(&released[start..]));
                }
                released.clear();
            }
            Ticker::Watermark {
                width,
                scheme,
                sealed_below,
                pending,
            } => {
                if let Some(first) = released.first() {
                    scheme.get_or_insert_with(|| WindowScheme::new(first.time, *width));
                }
                pending.append(released);
                let Some(s) = *scheme else { return };
                let newly_sealed = frontier.map_or(0, |f| s.window_of(f));
                if newly_sealed > *sealed_below {
                    // Serve exactly the sealed windows' events (a
                    // prefix: `pending` is canonically ordered).
                    let cut = pending.partition_point(|ev| s.window_of(ev.time) < newly_sealed);
                    if cut > 0 {
                        report.events_delivered += cut as u64;
                        report.updates.extend(engine.ingest_batch(&pending[..cut]));
                        pending.drain(..cut);
                    }
                    *sealed_below = newly_sealed;
                    report.policy_ticks += 1;
                    report.updates.extend(engine.refresh());
                }
            }
        }
    }

    /// The ticker's complete state — grid anchor included — for
    /// checkpoint serialization; [`Ticker::restore`] is the inverse.
    fn export(&self) -> TickerDump {
        match self {
            Ticker::EveryN => TickerDump::EveryN,
            Ticker::EventTime {
                interval,
                scheme,
                last_cell,
            } => TickerDump::EventTime {
                interval: *interval,
                origin: scheme.map(|s| s.window_start(0).secs()),
                last_cell: *last_cell,
            },
            Ticker::Watermark {
                width,
                scheme,
                sealed_below,
                pending,
            } => TickerDump::Watermark {
                width: *width,
                origin: scheme.map(|s| s.window_start(0).secs()),
                sealed_below: *sealed_below,
                pending: pending.clone(),
            },
        }
    }

    /// Rebuilds a ticker from a checkpoint dump. The dumped grid origin
    /// is authoritative — re-anchoring lazily at the first post-resume
    /// event would shift every subsequent tick boundary. The resumed
    /// drive must use the checkpointed drive's tick policy.
    fn restore(dump: TickerDump, policy: TickPolicy) -> Result<Ticker, String> {
        match (dump, policy) {
            (TickerDump::EveryN, TickPolicy::EveryN(_)) => Ok(Ticker::EveryN),
            (
                TickerDump::EventTime {
                    interval,
                    origin,
                    last_cell,
                },
                TickPolicy::EventTime { interval_secs },
            ) => {
                if interval != interval_secs {
                    return Err(format!(
                        "drive: resume tick interval {interval_secs} does not match \
                         the checkpointed interval {interval}"
                    ));
                }
                Ok(Ticker::EventTime {
                    interval,
                    scheme: origin.map(|o| WindowScheme::new(Timestamp(o), interval)),
                    last_cell,
                })
            }
            (
                TickerDump::Watermark {
                    width,
                    origin,
                    sealed_below,
                    pending,
                },
                TickPolicy::Watermark { .. },
            ) => Ok(Ticker::Watermark {
                width,
                scheme: origin.map(|o| WindowScheme::new(Timestamp(o), width)),
                sealed_below,
                pending,
            }),
            (dump, policy) => {
                let kind = match dump {
                    TickerDump::EveryN => "EveryN",
                    TickerDump::EventTime { .. } => "EventTime",
                    TickerDump::Watermark { .. } => "Watermark",
                };
                Err(format!(
                    "drive: resume tick policy {policy:?} does not match \
                     the checkpointed {kind} ticker"
                ))
            }
        }
    }

    /// End of stream: everything still pending is served (without a
    /// closing tick — callers decide whether to refresh or finalize).
    fn finish(&mut self, engine: &mut StreamEngine, report: &mut IngestReport) {
        if let Ticker::Watermark { pending, .. } = self {
            if !pending.is_empty() {
                report.events_delivered += pending.len() as u64;
                report.updates.extend(engine.ingest_batch(pending));
                pending.clear();
            }
        }
    }
}

/// Per-drive telemetry bookkeeping: event-latency accounting (source
/// admit → served-at-tick) and the snapshot cadence. Strictly
/// observational — it reads the engine's counters and clock, never
/// influences what is delivered or when ticks fire.
struct PumpTelemetry {
    clock: std::sync::Arc<dyn crate::source::Clock + Sync>,
    /// Latency recording on (the engine's telemetry flag).
    latency_on: bool,
    /// Snapshot cadence in delivered events (`0` = off).
    metrics_every: u64,
    /// Clock reading when the current channel chunk was drained — the
    /// admit timestamp its events inherit.
    admit_ns: u64,
    /// Delivered count already attributed to an admit group.
    delivered_seen: u64,
    /// Tick count already credited with serving its admits.
    served_ticks: u64,
    /// Delivered-but-unserved admit groups: `(admit_ns, events)`.
    admits: Vec<(u64, u64)>,
    /// Snapshot boundaries already emitted.
    snapshot_marks: u64,
}

impl PumpTelemetry {
    fn new(engine: &StreamEngine, metrics_every: u64) -> Self {
        Self {
            clock: engine.telemetry_clock(),
            latency_on: engine.telemetry_enabled(),
            metrics_every,
            admit_ns: 0,
            delivered_seen: 0,
            served_ticks: engine.stats().ticks,
            admits: Vec::new(),
            snapshot_marks: 0,
        }
    }

    /// Stamps the admit time for the arrivals about to be fed.
    fn stamp_admit(&mut self) {
        if self.latency_on {
            self.admit_ns = self.clock.now_ns();
        }
    }

    /// After a `Ticker::feed`: attribute newly delivered events to the
    /// current admit stamp, settle latencies if a tick served them, and
    /// emit snapshots at crossed cadence boundaries.
    fn observe(&mut self, engine: &mut StreamEngine, report: &IngestReport) {
        if self.latency_on {
            if report.events_delivered > self.delivered_seen {
                let n = report.events_delivered - self.delivered_seen;
                self.delivered_seen = report.events_delivered;
                self.admits.push((self.admit_ns, n));
            }
            let ticks = engine.stats().ticks;
            if ticks > self.served_ticks && !self.admits.is_empty() {
                self.served_ticks = ticks;
                let now = self.clock.now_ns();
                for (admit, n) in self.admits.drain(..) {
                    engine.record_event_latency(now.saturating_sub(admit), n);
                }
            }
        } else {
            self.delivered_seen = report.events_delivered;
        }
        if let Some(marks_due) = self.delivered_seen.checked_div(self.metrics_every) {
            while marks_due > self.snapshot_marks {
                self.snapshot_marks += 1;
                engine.emit_snapshot();
            }
        }
    }

    /// EOF: events delivered after the last tick are counted as served
    /// now — the stream is over, nothing later can serve them.
    fn finish(&mut self, engine: &mut StreamEngine, report: &IngestReport) {
        self.stamp_admit();
        self.observe(engine, report);
        if self.latency_on && !self.admits.is_empty() {
            let now = self.clock.now_ns();
            for (admit, n) in self.admits.drain(..) {
                engine.record_event_latency(now.saturating_sub(admit), n);
            }
        }
    }
}

/// Validates the drive options, installs the tick policy's refresh
/// interval on the engine, and resolves the effective reorder lag.
/// Shared by [`run`] and [`run_fan_in`].
fn validate(engine: &mut StreamEngine, opts: &DriveOptions) -> Result<i64, String> {
    if opts.queue_cap == 0 {
        return Err("drive: queue_cap must be positive".into());
    }
    if opts.queue_cap_max != 0 && opts.queue_cap_max < opts.queue_cap {
        return Err(format!(
            "drive: queue_cap_max {} is below queue_cap {}",
            opts.queue_cap_max, opts.queue_cap
        ));
    }
    if opts.source_batch == 0 {
        return Err("drive: source_batch must be positive".into());
    }
    if opts.max_lag_secs < 0 {
        return Err("drive: max_lag_secs must be non-negative".into());
    }
    match opts.tick_policy {
        TickPolicy::EveryN(n) => {
            engine.set_refresh_every(n);
            Ok(opts.max_lag_secs)
        }
        TickPolicy::EventTime { interval_secs } => {
            if interval_secs <= 0 {
                return Err("drive: EventTime interval must be positive".into());
            }
            engine.set_refresh_every(0);
            Ok(opts.max_lag_secs)
        }
        TickPolicy::Watermark { max_lag_secs } => {
            if max_lag_secs < 0 {
                return Err("drive: watermark lag must be non-negative".into());
            }
            engine.set_refresh_every(0);
            Ok(max_lag_secs.max(opts.max_lag_secs))
        }
    }
}

/// See [`StreamEngine::drive`].
pub(crate) fn run<S: StreamSource + Send>(
    engine: &mut StreamEngine,
    source: S,
    opts: &DriveOptions,
) -> Result<IngestReport, String> {
    let lag = validate(engine, opts)?;

    let mut report = IngestReport::default();
    // Tick grids anchor at the engine's pinned origin when there is
    // one, else at the first released event (which is also what the
    // engine will adopt as its window origin). A recovered engine
    // instead hands back the checkpointed pump state: the reorder
    // buffer and ticker resume exactly where the crashed drive stood,
    // and the `resume_base`-event accepted prefix (already inside the
    // engine) is skipped on replay.
    let origin = engine.scheme().map(|s| s.window_start(0));
    let width = engine.config().slim.window_width_secs;
    let (mut reorder, mut ticker, resume_base) = match engine.take_resume_state() {
        Some(rs) => (
            ReorderBuffer::restore(
                lag,
                rs.reorder_max_seen.map(Timestamp),
                rs.reorder_held,
                rs.reorder_late,
            ),
            Ticker::restore(rs.ticker, opts.tick_policy)?,
            rs.consumed,
        ),
        None => (
            ReorderBuffer::new(lag),
            Ticker::new(opts.tick_policy, width, origin),
            0,
        ),
    };
    let mut tel = PumpTelemetry::new(engine, opts.metrics_every);
    let ckpt = engine.checkpoint_policy().cloned();
    let kill_at = engine.fault_plan().kill_at_event;
    // Source events consumed so far, counting the skipped resume
    // prefix — the checkpoint cadence and the kill fault are both
    // stated in this coordinate.
    let mut consumed: u64 = 0;
    // Why the drive stopped before EOF (fault injection or a failed
    // checkpoint write); `Some` skips the EOF flush and fails the run.
    let mut fault: Option<String> = None;

    let (producer_result, channel_stats, queue_grown_to) = std::thread::scope(|scope| {
        let (tx, rx) = channel::bounded::<StreamEvent>(opts.queue_cap);
        let batch_max = opts.source_batch;
        let producer = scope.spawn(move || {
            let mut source = source;
            let (mut batches, mut stalls) = (0u64, 0u64);
            let result = loop {
                match source.next_batch(batch_max) {
                    Ok(SourcePoll::Batch(events)) => {
                        batches += 1;
                        // One lock per batch (not per event); blocks
                        // under backpressure with the same accounting.
                        if tx.send_all(events).is_err() {
                            break Ok(());
                        }
                    }
                    Ok(SourcePoll::Pending) => {
                        // A stalled source (e.g. rate pacing between
                        // due events) must not busy-spin a core; a
                        // short bounded sleep caps the poll rate
                        // without affecting delivered order.
                        stalls += 1;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Ok(SourcePoll::End) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            (result, batches, stalls)
        });

        let mut arrivals: Vec<StreamEvent> = Vec::new();
        let mut released: Vec<StreamEvent> = Vec::new();
        let watermark_ticks = matches!(ticker, Ticker::Watermark { .. });
        // Adaptive queue sizing: observed once per drain interval, so
        // a sustained backlog grows the queue while a one-off stall
        // does not.
        let mut sizer = (opts.queue_cap_max > opts.queue_cap)
            .then(|| channel::QueueSizer::new(opts.queue_cap, opts.queue_cap_max));
        while rx.recv_many(&mut arrivals, opts.source_batch) {
            if let Some(sizer) = &mut sizer {
                if let Some(cap) = sizer.observe(rx.stats().blocked_producer_ns) {
                    rx.set_capacity(cap);
                }
            }
            tel.stamp_admit();
            for ev in arrivals.drain(..) {
                consumed += 1;
                if consumed <= resume_base {
                    // Replaying the accepted prefix of a recovered
                    // drive: the engine already holds these events
                    // (and the restored reorder buffer their held
                    // tail), so they are counted and discarded.
                    continue;
                }
                reorder.push(ev, &mut released);
                // Watermark sealing must be checked as the frontier
                // advances — per arrival, which is what keeps its tick
                // positions a function of the delivery schedule rather
                // than of channel timing. The other policies are
                // chunking-independent and feed per drained chunk.
                if watermark_ticks {
                    ticker.feed(engine, &mut released, reorder.frontier(), &mut report);
                    tel.observe(engine, &report);
                }
                if let Some(p) = &ckpt {
                    if consumed.is_multiple_of(p.every) {
                        // Drain the release buffer into the engine
                        // first so the checkpoint captures every
                        // consumed event either fully applied or held
                        // in the serialized reorder/ticker state.
                        ticker.feed(engine, &mut released, reorder.frontier(), &mut report);
                        tel.observe(engine, &report);
                        let (max_seen, held, late) = reorder.export();
                        let pump = ResumeState {
                            consumed,
                            reorder_max_seen: max_seen.map(|t| t.secs()),
                            reorder_held: held,
                            reorder_late: late,
                            ticker: ticker.export(),
                        };
                        // Fault injection corrupts exactly the last
                        // checkpoint written before the kill point, so
                        // recovery exercises the fall-back path.
                        let corrupt = kill_at.is_some_and(|k| consumed + p.every > k);
                        if let Err(e) = engine.write_checkpoint(pump, corrupt) {
                            fault = Some(e);
                            break;
                        }
                    }
                }
                if kill_at == Some(consumed) {
                    fault = Some(format!("fault: killed at event {consumed}"));
                    break;
                }
            }
            if fault.is_some() {
                break;
            }
            ticker.feed(engine, &mut released, reorder.frontier(), &mut report);
            tel.observe(engine, &report);
        }
        if fault.is_none() {
            // EOF: the channel is closed *and* fully drained; release
            // the still-buffered tail in canonical order.
            reorder.flush(&mut released);
            ticker.feed(engine, &mut released, reorder.frontier(), &mut report);
            ticker.finish(engine, &mut report);
            tel.finish(engine, &report);
        }
        let stats = rx.stats();
        let final_cap = sizer.map_or(opts.queue_cap, |s| s.capacity()) as u64;
        // On an early stop the producer may still be blocked on a full
        // channel; dropping the receiver errors its next send, which it
        // treats as a clean exit.
        drop(rx);
        let (result, batches, stalls) = producer
            .join()
            .unwrap_or_else(|_| (Err("drive: source producer thread panicked".into()), 0, 0));
        report.source_batches = batches;
        report.source_stalls = stalls;
        (result, stats, final_cap)
    });
    producer_result?;
    if let Some(fault) = fault {
        // A simulated crash: the engine is left exactly as the fault
        // found it — no EOF flush, no report absorption — so tests can
        // model a process that died mid-drive.
        return Err(fault);
    }

    report.late_events = reorder.late_events();
    report.blocked_producer_ns = channel_stats.blocked_producer_ns;
    report.queue_high_watermark = channel_stats.queue_high_watermark;
    report.queue_grown_to = queue_grown_to;
    engine.absorb_ingest_report(
        report.blocked_producer_ns,
        report.queue_high_watermark,
        report.late_events,
    );
    Ok(report)
}

/// How long the fan-in consumer waits on an empty channel before
/// checking for idle connections (only when an idle timeout is set —
/// without one the consumer parks indefinitely like [`run`]'s).
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(10);

/// See [`StreamEngine::drive_fan_in`]. The multi-producer pump: the
/// fan-in tier runs on one producer thread (spawning its own
/// per-connection senders), and this consumer drains the shared MPSC
/// channel, maintaining the [`ConnectionFrontier`] merge from the
/// in-band `Join`/`Event`/`Leave` protocol. Each connection's
/// watermark is derived here as `event time − lag`, *after* the event
/// is buffered — so the frontier can never release past an event still
/// in flight, and any delivery schedule whose per-connection disorder
/// stays within the lag reaches the engine in canonical order, bit-
/// identical to a single merged replay.
pub(crate) fn run_fan_in<F: crate::source::FanIn + Send>(
    engine: &mut StreamEngine,
    fan_in: F,
    opts: &DriveOptions,
) -> Result<IngestReport, String> {
    use crate::source::channel::RecvTimeout;
    use crate::source::{ConnMessage, ConnectionFrontier};

    // Checkpointing and recovery are single-source concerns: a fan-in
    // drive has no replayable accepted prefix to resume from (each
    // connection's offset would have to be tracked separately).
    if engine.checkpoint_policy().is_some() {
        return Err("drive: checkpointing is not supported for fan-in drives".into());
    }
    if engine.take_resume_state().is_some() {
        return Err("drive: a recovered engine must resume with a single-source drive".into());
    }

    let lag = validate(engine, opts)?;
    let mut report = IngestReport::default();
    let mut reorder = ReorderBuffer::new(lag);
    let origin = engine.scheme().map(|s| s.window_start(0));
    let mut ticker = Ticker::new(
        opts.tick_policy,
        engine.config().slim.window_width_secs,
        origin,
    );
    let mut tel = PumpTelemetry::new(engine, opts.metrics_every);
    let clock = engine.telemetry_clock();
    let idle_ns = opts.idle_timeout_secs.saturating_mul(1_000_000_000);
    let mut frontier = ConnectionFrontier::new(idle_ns);

    let (producer_result, channel_stats, queue_grown_to) = std::thread::scope(|scope| {
        let (tx, rx) = channel::bounded::<ConnMessage>(opts.queue_cap);
        let producer = scope.spawn(move || fan_in.run(tx));

        let mut arrivals: Vec<ConnMessage> = Vec::new();
        let mut released: Vec<StreamEvent> = Vec::new();
        let watermark_ticks = matches!(ticker, Ticker::Watermark { .. });
        let mut sizer = (opts.queue_cap_max > opts.queue_cap)
            .then(|| channel::QueueSizer::new(opts.queue_cap, opts.queue_cap_max));
        loop {
            let drained = if idle_ns == 0 {
                rx.recv_many(&mut arrivals, opts.source_batch)
            } else {
                match rx.recv_many_timeout(&mut arrivals, opts.source_batch, IDLE_POLL) {
                    RecvTimeout::Items => true,
                    RecvTimeout::Closed => false,
                    RecvTimeout::TimedOut => {
                        // Total quiet: eviction is then the only way
                        // the frontier can move, so check it here too,
                        // not just per drained chunk.
                        if frontier.evict_idle(clock.now_ns()) > 0 {
                            tel.stamp_admit();
                            reorder.release_below(frontier.frontier(), &mut released);
                            ticker.feed(engine, &mut released, frontier.frontier(), &mut report);
                            tel.observe(engine, &report);
                        }
                        continue;
                    }
                }
            };
            if !drained {
                break;
            }
            if let Some(sizer) = &mut sizer {
                if let Some(cap) = sizer.observe(rx.stats().blocked_producer_ns) {
                    rx.set_capacity(cap);
                }
            }
            tel.stamp_admit();
            let now = clock.now_ns();
            for msg in arrivals.drain(..) {
                match msg {
                    ConnMessage::Join { conn } => {
                        frontier.join(conn, now);
                        report.connections += 1;
                        engine.set_live_connections(frontier.live() as u64);
                    }
                    ConnMessage::Event { conn, event } => {
                        // Lateness is decided against the frontier as
                        // it stood *before* this event's own advance —
                        // an in-lag event can therefore never be late.
                        if frontier.is_late(event.time) {
                            reorder.count_late();
                        } else {
                            reorder.hold(event);
                        }
                        let wm = Timestamp(event.time.secs().saturating_sub(lag));
                        if let Some(lag_secs) = frontier.advance(conn, wm, now) {
                            engine.record_frontier_lag(lag_secs);
                        }
                        // Watermark sealing tracks the frontier per
                        // arrival, exactly like the single-source pump.
                        if watermark_ticks {
                            reorder.release_below(frontier.frontier(), &mut released);
                            ticker.feed(engine, &mut released, frontier.frontier(), &mut report);
                            tel.observe(engine, &report);
                        }
                    }
                    ConnMessage::Leave {
                        conn,
                        malformed_lines,
                    } => {
                        report.malformed_lines += malformed_lines;
                        frontier.leave(conn);
                        engine.set_live_connections(frontier.live() as u64);
                    }
                }
            }
            frontier.evict_idle(now);
            reorder.release_below(frontier.frontier(), &mut released);
            ticker.feed(engine, &mut released, frontier.frontier(), &mut report);
            tel.observe(engine, &report);
        }
        // EOF: every sender (one per connection, plus the tier's own)
        // has dropped and the queue is drained — release the buffered
        // tail in canonical order.
        reorder.flush(&mut released);
        ticker.feed(engine, &mut released, frontier.frontier(), &mut report);
        ticker.finish(engine, &mut report);
        tel.finish(engine, &report);
        let stats = rx.stats();
        let final_cap = sizer.map_or(opts.queue_cap, |s| s.capacity()) as u64;
        let result = producer
            .join()
            .unwrap_or_else(|_| Err("drive: fan-in tier thread panicked".into()));
        (result, stats, final_cap)
    });
    producer_result?;

    report.late_events = reorder.late_events();
    report.blocked_producer_ns = channel_stats.blocked_producer_ns;
    report.queue_high_watermark = channel_stats.queue_high_watermark;
    report.queue_grown_to = queue_grown_to;
    report.idle_evictions = frontier.idle_evictions();
    engine.absorb_ingest_report(
        report.blocked_producer_ns,
        report.queue_high_watermark,
        report.late_events,
    );
    engine.absorb_fan_in_report(
        report.connections,
        report.malformed_lines,
        report.idle_evictions,
    );
    engine.set_live_connections(0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::event::Side;
    use crate::testing::{script, ScriptStep, ScriptedSource};
    use geocell::LatLng;
    use slim_core::{EntityId, Timestamp};

    fn ev(side: Side, entity: u64, t: i64) -> StreamEvent {
        // Left entity `e` and right entity `100 + e` share a distinct
        // anchor, so exactly the e ↔ 100+e pairs are linkable.
        let key = (entity % 100) as f64;
        StreamEvent::new(
            side,
            EntityId(entity),
            LatLng::from_degrees(5.0 + 7.0 * key, -100.0 + 9.0 * key),
            Timestamp(t),
        )
    }

    fn engine() -> StreamEngine {
        let cfg = StreamConfig {
            num_shards: 2,
            refresh_every: 0,
            ..StreamConfig::default()
        };
        StreamEngine::new(cfg).unwrap()
    }

    /// A linkable canonical-order workload: left/right co-located pairs.
    fn workload(windows: i64) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        for k in 0..windows {
            for e in 0..4u64 {
                events.push(ev(Side::Left, e, k * 900 + 10 * e as i64));
                events.push(ev(Side::Right, 100 + e, k * 900 + 10 * e as i64 + 400));
            }
        }
        events.sort_by_key(|e| (e.time, e.side, e.entity));
        events
    }

    /// Backpressure path: a queue far smaller than the workload still
    /// delivers every event — nothing dropped, fully drained at EOF —
    /// and the scripted stalls are surfaced in the report.
    #[test]
    fn tiny_queue_delivers_everything() {
        let events = workload(12);
        let total = events.len() as u64;
        let mut steps = Vec::new();
        for chunk in events.chunks(23) {
            steps.push(ScriptStep::Batch(chunk.to_vec()));
            steps.push(ScriptStep::Stall(2));
        }
        let mut engine = engine();
        let report = engine
            .drive(
                ScriptedSource::new(steps),
                &DriveOptions {
                    queue_cap: 4,
                    source_batch: 16,
                    tick_policy: TickPolicy::EveryN(0),
                    ..DriveOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.events_delivered, total);
        assert_eq!(engine.stats().events, total);
        assert_eq!(report.late_events, 0);
        assert!(report.source_stalls >= 2, "stalls not surfaced");
        assert!(report.queue_high_watermark >= 1);
        assert!(report.queue_high_watermark <= 4);
        // Channel counters land in the engine's stats too.
        assert_eq!(
            engine.stats().queue_high_watermark,
            report.queue_high_watermark
        );
        engine.refresh();
        assert!(!engine.links().is_empty(), "workload must link");
    }

    /// Zero-lag + out-of-order delivery: the disordered arrivals are
    /// counted late and dropped — no panic, no order corruption.
    #[test]
    fn zero_lag_counts_late_events() {
        let mut events = workload(6);
        let n = events.len();
        // Deliver two mid-stream events only after the newest one: with
        // zero lag they arrive below the watermark and must be rejected
        // (counted), never reordered into the past.
        let b = events.remove(10);
        let a = events.remove(5);
        events.push(a);
        events.push(b);
        let mut engine = engine();
        let report = engine
            .drive(script(events.clone(), 16), &DriveOptions::default())
            .unwrap();
        assert_eq!(report.late_events, 2, "both displaced arrivals are late");
        assert_eq!(report.events_delivered, n as u64 - 2);
        assert_eq!(engine.stats().late_events, 2);
    }

    /// The watermark policy buffers bounded disorder, serves only
    /// sealed windows at each tick, and loses nothing at EOF.
    #[test]
    fn watermark_policy_seals_windows() {
        let mut events = workload(8);
        // Bounded shuffle: displace some events by < 900 s of disorder.
        for i in (3..events.len() - 4).step_by(7) {
            events.swap(i, i + 3);
        }
        let mut engine = engine();
        let report = engine
            .drive(
                script(events.clone(), 32),
                &DriveOptions {
                    tick_policy: TickPolicy::Watermark { max_lag_secs: 900 },
                    ..DriveOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.late_events, 0, "disorder stayed within the lag");
        assert_eq!(report.events_delivered, events.len() as u64);
        assert!(report.policy_ticks > 0, "frontier must seal windows");
        assert_eq!(engine.stats().ticks, report.policy_ticks);
        engine.refresh();
        assert!(!engine.links().is_empty());
    }

    /// EventTime ticks follow released event time: one tick per crossed
    /// grid boundary, independent of delivery chunking.
    #[test]
    fn event_time_ticks_once_per_interval() {
        let events = workload(10); // spans 10 engine windows of 900 s
        let run = |chunk: usize| {
            let mut engine = engine();
            let report = engine
                .drive(
                    script(events.clone(), chunk),
                    &DriveOptions {
                        tick_policy: TickPolicy::EventTime {
                            interval_secs: 1800,
                        },
                        ..DriveOptions::default()
                    },
                )
                .unwrap();
            (report.policy_ticks, engine.stats().ticks)
        };
        let (ticks_a, engine_ticks_a) = run(7);
        let (ticks_b, engine_ticks_b) = run(111);
        assert_eq!(ticks_a, ticks_b, "chunking must not move ticks");
        assert_eq!(engine_ticks_a, engine_ticks_b);
        // 10 windows of 900 s = 5 grid cells of 1800 s = 4 crossings.
        assert_eq!(ticks_a, 4);
    }

    #[test]
    fn source_errors_propagate() {
        let mut engine = engine();
        let steps = vec![
            ScriptStep::Batch(workload(2)),
            ScriptStep::Error("feed fell over".into()),
        ];
        let err = engine
            .drive(ScriptedSource::new(steps), &DriveOptions::default())
            .unwrap_err();
        assert!(err.contains("fell over"), "{err}");
        // Events before the error were still delivered.
        assert!(engine.stats().events > 0);
    }

    /// Adaptive sizing end to end: the drive completes losslessly, the
    /// final capacity stays inside `[queue_cap, queue_cap_max]`, and a
    /// fixed-capacity drive reports its capacity untouched. (Whether
    /// growth actually triggers depends on scheduler timing — the
    /// deterministic policy decisions are pinned by the `QueueSizer`
    /// unit tests.)
    #[test]
    fn adaptive_queue_growth_stays_bounded_and_lossless() {
        let events = workload(12);
        let total = events.len() as u64;
        let mut adaptive = engine();
        let report = adaptive
            .drive(
                script(events.clone(), 16),
                &DriveOptions {
                    queue_cap: 4,
                    queue_cap_max: 64,
                    source_batch: 16,
                    tick_policy: TickPolicy::EveryN(0),
                    ..DriveOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.events_delivered, total, "adaptive drive lost events");
        assert!(
            (4..=64).contains(&(report.queue_grown_to as usize)),
            "final capacity {} outside [4, 64]",
            report.queue_grown_to
        );
        // Fixed capacity reports itself verbatim.
        let mut fixed = engine();
        let report = fixed
            .drive(script(events, 16), &DriveOptions::default())
            .unwrap();
        assert_eq!(report.queue_grown_to, 65_536);
    }

    /// Snapshot cadence: `metrics_every = N` emits one snapshot per N
    /// delivered events (boundary-crossing, robust to chunking), with
    /// monotonic sequence numbers and non-decreasing counters — and the
    /// end-to-end latency histogram under a constant [`VirtualClock`]
    /// holds exactly one zero-valued sample per delivered event.
    #[test]
    fn metrics_cadence_and_event_latency() {
        use crate::testing::VirtualClock;
        use slim_telemetry::VecSink;
        use std::sync::Arc;

        let events = workload(10);
        let total = events.len() as u64;
        let mut engine = engine();
        engine.set_telemetry_clock(Arc::new(VirtualClock::new()));
        let sink = VecSink::new();
        engine.set_metrics_sink(Box::new(sink.clone()));
        let report = engine
            .drive(
                script(events, 16),
                &DriveOptions {
                    tick_policy: TickPolicy::EveryN(10),
                    metrics_every: 25,
                    ..DriveOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.events_delivered, total);
        let snaps = sink.collected();
        assert_eq!(
            snaps.len() as u64,
            total / 25,
            "one snapshot per crossed 25-event boundary"
        );
        let mut prev_events = 0;
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.seq, i as u64, "sequence numbers are dense");
            let events = snap.counter("events").unwrap();
            assert!(events >= prev_events, "counters never decrease");
            prev_events = events;
        }
        // Constant virtual time: every delivered event was admitted and
        // served at the same instant.
        let lat = engine.event_latency_histogram();
        assert_eq!(lat.count(), total);
        assert_eq!((lat.sum(), lat.max()), (0, 0));
    }

    /// The fan-in pump vs the single-source pump on the same workload:
    /// identical update stream and links, with the connection counters
    /// landing in the report and the engine stats. Per-connection
    /// delivery is in-order here, so no arrival is ever late no matter
    /// how the three producer threads interleave.
    #[test]
    fn fan_in_matches_the_single_source_drive() {
        use crate::testing::ScriptedConnections;

        let events = workload(10);
        let total = events.len() as u64;
        // Round-robin partition: each connection plays its slice (still
        // time-sorted) in small batches with scheduling stalls.
        let conns: Vec<Vec<ScriptStep>> = (0..3usize)
            .map(|c| {
                events
                    .iter()
                    .skip(c)
                    .step_by(3)
                    .copied()
                    .collect::<Vec<_>>()
                    .chunks(5)
                    .flat_map(|ch| [ScriptStep::Batch(ch.to_vec()), ScriptStep::Stall(1)])
                    .collect()
            })
            .collect();
        let opts = DriveOptions {
            tick_policy: TickPolicy::EveryN(50),
            max_lag_secs: 2_000,
            ..DriveOptions::default()
        };
        let mut fan = engine();
        let fan_report = fan
            .drive_fan_in(ScriptedConnections::single_stage(conns), &opts)
            .unwrap();
        assert_eq!(fan_report.events_delivered, total);
        assert_eq!(fan_report.connections, 3);
        assert_eq!(fan_report.late_events, 0);
        assert_eq!(fan_report.malformed_lines, 0);
        assert_eq!(fan_report.idle_evictions, 0, "no timeout configured");
        assert_eq!(fan.stats().connections_served, 3);

        let mut direct = engine();
        let direct_report = direct.drive(script(events, 16), &opts).unwrap();
        assert_eq!(fan_report.updates, direct_report.updates);
        assert_eq!(fan.links(), direct.links());
        assert_eq!(fan.stats().events, direct.stats().events);
        assert_eq!(fan.stats().ticks, direct.stats().ticks);
    }

    /// A dying connection (scripted `Error`) is churn, not a drive
    /// failure: the survivors' events all arrive and the drive reports
    /// every connection that joined.
    #[test]
    fn fan_in_tolerates_a_dying_connection() {
        use crate::testing::ScriptedConnections;

        let events = workload(6);
        let survivor: Vec<StreamEvent> = events.iter().step_by(2).copied().collect();
        let victim_delivers: Vec<StreamEvent> =
            events.iter().skip(1).step_by(2).take(4).copied().collect();
        let delivered = (survivor.len() + victim_delivers.len()) as u64;
        let conns = vec![
            survivor
                .chunks(7)
                .map(|c| ScriptStep::Batch(c.to_vec()))
                .collect(),
            vec![
                ScriptStep::Batch(victim_delivers),
                ScriptStep::Error("connection reset".into()),
                ScriptStep::Batch(events.clone()), // lost with the connection
            ],
        ];
        let mut engine = engine();
        let report = engine
            .drive_fan_in(
                ScriptedConnections::single_stage(conns),
                &DriveOptions {
                    tick_policy: TickPolicy::EveryN(0),
                    max_lag_secs: 10_000,
                    ..DriveOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.connections, 2);
        assert_eq!(report.events_delivered + report.late_events, delivered);
        assert_eq!(engine.stats().connections_served, 2);
    }

    #[test]
    fn invalid_options_rejected() {
        let mut engine = engine();
        let opts = DriveOptions {
            queue_cap: 0,
            ..DriveOptions::default()
        };
        assert!(engine.drive(script(Vec::new(), 1), &opts).is_err());
        // An adaptive ceiling below the initial capacity is an error.
        let opts = DriveOptions {
            queue_cap: 512,
            queue_cap_max: 16,
            ..DriveOptions::default()
        };
        assert!(engine.drive(script(Vec::new(), 1), &opts).is_err());
        let opts = DriveOptions {
            tick_policy: TickPolicy::EventTime { interval_secs: 0 },
            ..DriveOptions::default()
        };
        assert!(engine.drive(script(Vec::new(), 1), &opts).is_err());
        let opts = DriveOptions {
            max_lag_secs: -1,
            ..DriveOptions::default()
        };
        assert!(engine.drive(script(Vec::new(), 1), &opts).is_err());
    }
}
