//! The multi-connection accept loop and the fan-in wire protocol.
//!
//! A [`TcpIngestTier`] binds one listening socket, accepts a declared
//! number of client connections, and serves each on its own reader
//! thread: lines are parsed leniently (malformed input is counted and
//! skipped, never fatal), and every parsed event is pushed into one
//! bounded MPSC channel as a [`ConnMessage`]. The channel's global FIFO
//! is what makes the protocol work without any out-of-band
//! synchronization — a connection's `Join` always reaches the consumer
//! before its first `Event`, and its `Leave` after its last, because
//! each sender enqueues its own messages in program order.
//!
//! Watermarks are deliberately *not* part of the wire protocol: the
//! consumer derives each connection's watermark from the event times it
//! delivers (`time − lag`), so the merged frontier can never race ahead
//! of events still queued behind it.
//!
//! [`FanIn`] is the seam between this real TCP tier and the scripted
//! deterministic tier ([`crate::testing::ScriptedConnections`]) the
//! equivalence tests drive — the pump consumes either through the same
//! trait.

use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::event::StreamEvent;
use crate::source::channel::Sender;
use crate::source::tcp::TcpLineSource;
use crate::source::{SourcePoll, StreamSource, WireFormat};

/// One message of the fan-in protocol, tagged with the tier-local
/// connection id it came from.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnMessage {
    /// A connection entered the tier. Always precedes the connection's
    /// first `Event` (per-sender FIFO), so the frontier merge learns of
    /// a participant before consuming anything from it.
    Join {
        /// Tier-local connection id.
        conn: u64,
    },
    /// One parsed event.
    Event {
        /// The delivering connection.
        conn: u64,
        /// The event, exactly as parsed off the wire.
        event: StreamEvent,
    },
    /// The connection is gone — clean EOF, IO error, or death are all
    /// the same churn to the consumer. Always the connection's last
    /// message.
    Leave {
        /// The departing connection.
        conn: u64,
        /// Malformed lines this connection counted and skipped.
        malformed_lines: u64,
    },
}

/// A producer tier the fan-in pump can drive: spawns however many
/// producers it represents, fans their [`ConnMessage`] streams into
/// `tx` (cloning the sender per producer), and returns when every
/// producer is done. Dropping the last sender clone is the tier's EOF.
///
/// Implemented by [`TcpIngestTier`] (real sockets) and
/// [`crate::testing::ScriptedConnections`] (deterministic replay).
pub trait FanIn {
    /// Runs the tier to completion. An `Err` aborts the drive (the
    /// pump surfaces it); per-connection failures should instead be
    /// reported as that connection's `Leave` — churn, not failure.
    fn run(self, tx: Sender<ConnMessage>) -> Result<(), String>;
}

/// Events per read batch on a connection reader thread.
const READ_BATCH: usize = 1_024;

/// The accept loop: binds an address, accepts exactly `connections`
/// clients (each served by a dedicated reader thread for its whole
/// life), and finishes when all of them have disconnected. The fixed
/// connection budget is what gives the tier a well-defined EOF — the
/// CLI and the bench both know how many feeds they attached.
pub struct TcpIngestTier {
    listener: TcpListener,
    wire: WireFormat,
    connections: usize,
}

impl TcpIngestTier {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port),
    /// expecting exactly `connections` clients.
    pub fn bind(addr: &str, wire: WireFormat, connections: usize) -> Result<Self, String> {
        if connections == 0 {
            return Err("tcp ingest: --connections must be positive".into());
        }
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("tcp ingest: bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            wire,
            connections,
        })
    }

    /// The bound address (the ephemeral port clients should dial).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("tcp ingest: local_addr: {e}"))
    }

    /// How many connections the tier will accept.
    pub fn connections(&self) -> usize {
        self.connections
    }
}

impl FanIn for TcpIngestTier {
    fn run(self, tx: Sender<ConnMessage>) -> Result<(), String> {
        std::thread::scope(|scope| {
            for conn in 0..self.connections as u64 {
                let (stream, _) = self
                    .listener
                    .accept()
                    .map_err(|e| format!("tcp ingest: accept: {e}"))?;
                let tx = tx.clone();
                let wire = self.wire;
                scope.spawn(move || serve_connection(conn, stream, wire, &tx));
            }
            Ok(())
        })
    }
}

/// One connection's reader loop: `Join`, then every parsed event, then
/// `Leave` — on clean EOF *and* on IO/protocol errors alike (a dying
/// client is churn the frontier merge must absorb, not a drive
/// failure). Only a vanished receiver aborts silently: the drive is
/// already over.
fn serve_connection(conn: u64, stream: TcpStream, wire: WireFormat, tx: &Sender<ConnMessage>) {
    if tx.send(ConnMessage::Join { conn }).is_err() {
        return;
    }
    let mut source = TcpLineSource::from_stream_with(stream, wire).lenient();
    loop {
        match source.next_batch(READ_BATCH) {
            Ok(SourcePoll::Batch(events)) => {
                let batch = events
                    .into_iter()
                    .map(|event| ConnMessage::Event { conn, event });
                if tx.send_all(batch).is_err() {
                    return;
                }
            }
            Ok(SourcePoll::Pending) => {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Ok(SourcePoll::End) | Err(_) => break,
        }
    }
    let _ = tx.send(ConnMessage::Leave {
        conn,
        malformed_lines: source.malformed_lines(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::channel;
    use std::io::Write;
    use std::net::TcpStream;

    /// Two loopback clients with interleaved lives: every connection
    /// brackets its events with `Join`/`Leave` in FIFO order, garbage
    /// lines are counted on the connection that sent them, and the
    /// channel closes once both clients (and the accept loop) are done.
    #[test]
    fn accept_loop_brackets_each_connection() {
        let tier = TcpIngestTier::bind("127.0.0.1:0", WireFormat::Csv, 2).unwrap();
        let addr = tier.local_addr().unwrap();
        let (tx, rx) = channel::bounded::<ConnMessage>(64);
        let tier_thread = std::thread::spawn(move || tier.run(tx));

        let feeder = |lines: Vec<String>| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                for line in lines {
                    s.write_all(line.as_bytes()).expect("write");
                }
            })
        };
        let a = feeder(vec![
            "side,entity,lat,lng,timestamp\n".into(), // header: skipped, not malformed
            "L,1,10.0,20.0,100\n".into(),
            "this is not an event\n".into(),
            "R,2,11.0,21.0,200\n".into(),
        ]);
        let b = feeder(vec!["L,3,12.0,22.0,300\n".into()]);

        let mut msgs = Vec::new();
        let mut buf = Vec::new();
        while rx.recv_many(&mut buf, 16) {
            msgs.append(&mut buf);
        }
        a.join().unwrap();
        b.join().unwrap();
        tier_thread.join().unwrap().unwrap();

        // Per-connection protocol order: Join, events, Leave.
        for conn in 0..2u64 {
            let of_conn: Vec<&ConnMessage> = msgs
                .iter()
                .filter(|m| match m {
                    ConnMessage::Join { conn: c }
                    | ConnMessage::Event { conn: c, .. }
                    | ConnMessage::Leave { conn: c, .. } => *c == conn,
                })
                .collect();
            assert!(
                matches!(of_conn.first(), Some(ConnMessage::Join { .. })),
                "conn {conn} must open with Join"
            );
            assert!(
                matches!(of_conn.last(), Some(ConnMessage::Leave { .. })),
                "conn {conn} must close with Leave"
            );
        }
        let events: Vec<i64> = msgs
            .iter()
            .filter_map(|m| match m {
                ConnMessage::Event { event, .. } => Some(event.time.secs()),
                _ => None,
            })
            .collect();
        let mut sorted = events.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![100, 200, 300], "all valid events delivered");
        let malformed: u64 = msgs
            .iter()
            .filter_map(|m| match m {
                ConnMessage::Leave {
                    malformed_lines, ..
                } => Some(*malformed_lines),
                _ => None,
            })
            .sum();
        assert_eq!(malformed, 1, "the garbage line was counted, not fatal");
    }

    #[test]
    fn zero_connections_rejected() {
        assert!(TcpIngestTier::bind("127.0.0.1:0", WireFormat::Csv, 0).is_err());
    }
}
