//! Work-stealing chunk queues for the persistent worker pool.
//!
//! A parallel phase hands the pool a list of **chunks** (slices of a
//! shard's ingest / dirty-pair / rescore queues) identified by dense
//! chunk ids. Each worker owns a deque of chunk ids; it pops its own
//! front, and when that runs dry it steals from the *back* of another
//! worker's deque — so a hot shard's long chunk run is eaten from both
//! ends instead of serializing on its home worker. Built on
//! `Mutex<VecDeque>` like `source/channel.rs`: the shims-only build
//! environment rules out lock-free deque crates, and chunk granularity
//! keeps the lock traffic far off the hot path.
//!
//! **Determinism contract.** The queues only decide *where* a chunk
//! runs, never *what* it computes: chunk construction is a pure
//! function of the phase's work lists (never of the worker count), and
//! the pool merges chunk outputs in chunk-id order. Any placement, any
//! victim order, and any interleaving therefore produce bit-identical
//! results — which is what lets `PoolMode::Scripted` randomize the
//! schedule under a property test.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the persistent worker pool places and schedules chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Block placement plus work stealing (the default): worker `w`
    /// starts with the `w`-th contiguous block of chunk ids and steals
    /// from other workers once its block is drained. Wall-clock tracks
    /// total work, not the hottest shard.
    #[default]
    Stealing,
    /// Block placement with stealing **disabled** — each chunk runs on
    /// the worker its block maps to, reproducing the old static
    /// per-shard partition (one straggler shard stalls its worker while
    /// the rest idle). Kept as the benchmark baseline the stealing mode
    /// is measured against.
    Static,
    /// Seeded pseudo-random chunk placement and per-worker victim
    /// order, with stealing enabled: a deterministic stand-in for an
    /// adversarial steal schedule. `tests/shard_equivalence.rs`
    /// property-tests that results are bit-identical across seeds.
    Scripted {
        /// Schedule seed: placement and victim order are pure functions
        /// of `(seed, chunk id / worker)`.
        seed: u64,
    },
}

/// A tiny splitmix-style mixer for scripted schedules (not hashing
/// quality critical — only schedule diversity).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One phase's chunk distribution: per-worker deques, the steal policy,
/// and the completion countdown.
pub(crate) struct ChunkQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Per worker: the order other queues are scanned when its own runs
    /// dry. Empty inner vectors disable stealing ([`PoolMode::Static`]).
    victims: Vec<Vec<usize>>,
    /// Chunks not yet *executed* (claimed-but-running chunks still
    /// count): the pool's phase-completion condition.
    remaining: AtomicUsize,
    /// Cross-queue pops in this phase.
    steals: AtomicU64,
}

impl ChunkQueues {
    /// Distributes `chunks` chunk ids over `workers` deques per `mode`.
    pub(crate) fn new(chunks: usize, workers: usize, mode: PoolMode) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        match mode {
            PoolMode::Stealing | PoolMode::Static => {
                // Contiguous blocks: worker w owns ids
                // [w·n/W, (w+1)·n/W). With one chunk per shard this is
                // exactly the old static shard partition.
                for id in 0..chunks {
                    queues[id * workers / chunks.max(1)].push_back(id);
                }
            }
            PoolMode::Scripted { seed } => {
                for id in 0..chunks {
                    queues[(mix(seed ^ id as u64) % workers as u64) as usize].push_back(id);
                }
            }
        }
        let victims: Vec<Vec<usize>> = (0..workers)
            .map(|w| {
                if matches!(mode, PoolMode::Static) || workers == 1 {
                    return Vec::new();
                }
                // Rotation starting after the worker itself, so victim
                // scans of different workers don't all pile onto queue 0.
                let mut order: Vec<usize> = (w + 1..workers).chain(0..w).collect();
                if let PoolMode::Scripted { seed } = mode {
                    // Seeded Fisher-Yates: each worker scans victims in
                    // its own pseudo-random order.
                    let mut state = mix(seed ^ (w as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
                    for i in (1..order.len()).rev() {
                        state = mix(state);
                        order.swap(i, (state % (i as u64 + 1)) as usize);
                    }
                }
                order
            })
            .collect();
        Self {
            queues: queues.into_iter().map(Mutex::new).collect(),
            victims,
            remaining: AtomicUsize::new(chunks),
            steals: AtomicU64::new(0),
        }
    }

    /// Claims the next chunk for `worker`: its own front, else a steal
    /// from the back of the first non-empty victim. `None` = every
    /// queue is empty (chunks may still be *executing* elsewhere — see
    /// [`ChunkQueues::complete_one`]).
    pub(crate) fn pop(&self, worker: usize) -> Option<usize> {
        if let Some(id) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(id);
        }
        for &v in &self.victims[worker] {
            if let Some(id) = self.queues[v].lock().expect("queue poisoned").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(id);
            }
        }
        None
    }

    /// Records one executed chunk; `true` when it was the last one.
    pub(crate) fn complete_one(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Whether every chunk has finished executing.
    pub(crate) fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Cross-queue pops so far.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains every queue as `worker`, recording the claim order.
    fn drain_as(q: &ChunkQueues, worker: usize) -> Vec<usize> {
        let mut got = Vec::new();
        while let Some(id) = q.pop(worker) {
            got.push(id);
            q.complete_one();
        }
        got
    }

    #[test]
    fn block_placement_covers_every_chunk_once() {
        let q = ChunkQueues::new(10, 3, PoolMode::Stealing);
        let mut got = drain_as(&q, 0);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.is_done());
        // Worker 0 owned the first block only; the rest were steals.
        assert_eq!(q.steals(), 10 - 10usize.div_ceil(3) as u64);
    }

    #[test]
    fn static_mode_never_steals() {
        let q = ChunkQueues::new(9, 3, PoolMode::Static);
        let own = drain_as(&q, 1);
        // Exactly worker 1's block, nothing stolen, phase unfinished.
        assert_eq!(own, vec![3, 4, 5]);
        assert_eq!(q.steals(), 0);
        assert!(!q.is_done());
        drain_as(&q, 0);
        drain_as(&q, 2);
        assert!(q.is_done());
    }

    #[test]
    fn scripted_placement_is_seed_deterministic() {
        let claims = |seed| {
            let q = ChunkQueues::new(64, 4, PoolMode::Scripted { seed });
            (0..4).map(|w| drain_as(&q, w)).collect::<Vec<_>>()
        };
        assert_eq!(claims(7), claims(7), "same seed, same schedule");
        assert_ne!(claims(7), claims(8), "different seeds should differ");
        // Every chunk still claimed exactly once.
        let mut all: Vec<usize> = claims(7).into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn steals_come_from_the_back() {
        let q = ChunkQueues::new(8, 2, PoolMode::Stealing);
        // Worker 1 steals from worker 0's back (id 3), not its front.
        assert_eq!(q.pop(1), Some(4));
        assert_eq!(q.pop(1), Some(5));
        assert_eq!(q.pop(1), Some(6));
        assert_eq!(q.pop(1), Some(7));
        assert_eq!(q.pop(1), Some(3), "steal takes the victim's back");
        assert_eq!(q.steals(), 1);
        assert_eq!(q.pop(0), Some(0), "owner still pops its front");
    }
}
