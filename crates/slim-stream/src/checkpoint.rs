//! Crash-safe checkpointing: the durable on-disk image of a running
//! engine, written at a configurable event cadence and read back by
//! [`crate::StreamEngine::recover`] into a state whose every subsequent
//! observable — published epochs, served links, stats, finalized
//! output — is **bit-identical to an unbroken run**.
//!
//! # File format
//!
//! A checkpoint file is a magic header followed by CRC-framed sections:
//!
//! ```text
//! "SLIMCKPT" | version u32
//! [tag u32 | len u64 | crc32 u32 | payload]   META   (cadence + config fingerprint)
//! [tag u32 | len u64 | crc32 u32 | payload]   ENGINE (links, matcher, df, threshold…)
//! [tag u32 | len u64 | crc32 u32 | payload]   SHARDS (histories, rings, caches…)
//! [tag u32 | len u64 | crc32 u32 | payload]   PUMP   (reorder buffer, ticker, offset)
//! [tag u32 | len u64 | crc32 u32 | (empty)]   END
//! ```
//!
//! All integers are little-endian; floats travel as IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so recovery reproduces them
//! exactly. Every frame's CRC-32 (IEEE polynomial) is verified *before*
//! its payload is parsed, so a torn or bit-flipped file is rejected
//! with an error — never a panic — and the loader falls back to the
//! next-older file.
//!
//! # Atomic writes
//!
//! A checkpoint is written to a `.slim.tmp` sibling, fsynced, then
//! renamed into place (`ckpt-<consumed-events, zero-padded>.slim` — the
//! padding makes lexical order equal numeric order), followed by a
//! best-effort directory fsync. A crash mid-write therefore leaves at
//! worst a stale temp file, never a half-renamed checkpoint; a crash
//! mid-*fsync* can leave a torn frame, which the CRC catches at load.
//!
//! # Sharding
//!
//! Checkpoints are **shard-agnostic**: per-shard state is merged into
//! globally sorted collections before serialization, and recovery
//! redistributes it by the deterministic entity hash
//! ([`crate::shard::entity_shard`]). A checkpoint written by a 4-shard
//! engine recovers bit-identically on a 1-shard one and vice versa.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use geocell::{CellId, LatLng};
use slim_core::gmm::{Component, Gmm2};
use slim_core::{Edge, EntityId, LinkageStats, Timestamp, WindowIdx};

use crate::adjacency::PairKey;
use crate::config::StreamConfig;
use crate::engine::StreamStats;
use crate::event::{Side, StreamEvent};
use crate::lsh::RingDump;
use crate::shard::BinnedEvent;
use crate::store::HistoryDump;
use crate::testing::FaultPlan;

/// File magic: the first 8 bytes of every checkpoint.
pub(crate) const MAGIC: &[u8; 8] = b"SLIMCKPT";
/// Format version; bumped on any wire-layout change.
pub(crate) const VERSION: u32 = 1;

const TAG_META: u32 = 1;
const TAG_ENGINE: u32 = 2;
const TAG_SHARDS: u32 = 3;
const TAG_PUMP: u32 = 4;
const TAG_END: u32 = 5;

/// When and where the engine checkpoints, set via
/// [`crate::StreamEngine::set_checkpoint_policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory checkpoint files are written into (created on first
    /// write if absent).
    pub dir: PathBuf,
    /// Write a checkpoint every `every` consumed events (> 0).
    pub every: u64,
    /// Retain the newest `keep` checkpoints; older ones are pruned
    /// after each successful write.
    pub keep: usize,
}

// ---------------------------------------------------------------------
// Checkpointed state
// ---------------------------------------------------------------------

/// Everything a checkpoint persists: the recovery image handed between
/// the engine ([`crate::StreamEngine`]) and this module's codec.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointState {
    pub(crate) meta: MetaDump,
    pub(crate) engine: EngineDump,
    pub(crate) shards: ShardsDump,
    pub(crate) pump: ResumeState,
}

/// Header section: the resume offset and the configuration fingerprint
/// recovery validates against.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetaDump {
    /// Source events consumed (accepted prefix) at checkpoint time —
    /// the pump skips exactly this many arrivals on resume.
    pub(crate) consumed: u64,
    pub(crate) fingerprint: ConfigFingerprint,
}

/// The configuration parameters that shape checkpointed state. A
/// recovery under a config with a different fingerprint is an error —
/// the serialized windows, bins, and rings would be meaningless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ConfigFingerprint {
    pub(crate) window_width_secs: i64,
    pub(crate) spatial_level: u8,
    pub(crate) min_records: u64,
    pub(crate) window_capacity: Option<u32>,
    pub(crate) lsh: Option<LshFingerprint>,
}

/// The LSH geometry half of the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LshFingerprint {
    pub(crate) spans: u64,
    pub(crate) step_windows: u32,
    pub(crate) spatial_level: u8,
    pub(crate) threshold_bits: u64,
    pub(crate) num_buckets: u64,
}

impl ConfigFingerprint {
    /// The fingerprint of `cfg`.
    pub(crate) fn of(cfg: &StreamConfig) -> Self {
        Self {
            window_width_secs: cfg.slim.window_width_secs,
            spatial_level: cfg.slim.spatial_level,
            min_records: cfg.slim.min_records as u64,
            window_capacity: cfg.window_capacity,
            lsh: cfg.lsh.map(|l| LshFingerprint {
                spans: l.spans as u64,
                step_windows: l.base.step_windows,
                spatial_level: l.base.spatial_level,
                threshold_bits: l.base.threshold.to_bits(),
                num_buckets: l.base.num_buckets,
            }),
        }
    }

    /// Errors unless `cfg` fingerprints identically to this checkpoint.
    pub(crate) fn check(&self, cfg: &StreamConfig) -> Result<(), String> {
        let now = Self::of(cfg);
        if *self == now {
            Ok(())
        } else {
            Err(format!(
                "checkpoint was written under a different configuration \
                 (checkpoint {self:?}, requested {now:?})"
            ))
        }
    }
}

/// Engine-global state: the barrier outputs and warm state that cannot
/// be rederived from the shard dumps.
#[derive(Debug, Clone)]
pub(crate) struct EngineDump {
    /// Window-scheme origin (`None` if no event was ever ingested).
    pub(crate) origin: Option<i64>,
    /// Highest appended window + 1.
    pub(crate) domain: u32,
    /// Expiry watermark (first retained window).
    pub(crate) watermark: WindowIdx,
    /// Windows already expired (strictly below).
    pub(crate) expired_below: WindowIdx,
    /// Events since the last automatic refresh tick.
    pub(crate) events_since_refresh: u64,
    pub(crate) stats: StreamStats,
    pub(crate) scoring: LinkageStats,
    /// The links of the last refresh (== the published snapshot's).
    pub(crate) links: Vec<Edge>,
    /// The published epoch's event count.
    pub(crate) epoch_events: u64,
    /// The published epoch's stop threshold.
    pub(crate) epoch_threshold: Option<f64>,
    /// The published epoch's watermark frontier.
    pub(crate) epoch_frontier: Option<i64>,
    /// The incremental matcher's full edge set (its caches lag the
    /// shard `edges` caches by the unconsumed deltas, so it must travel
    /// separately).
    pub(crate) matcher_edges: Vec<Edge>,
    /// The threshold fitter's warm-start seed.
    pub(crate) warm_seed: Option<Gmm2>,
    /// Per-side document-frequency statistics.
    pub(crate) df: [DfDump; 2],
}

/// One side's df-stats as sorted parallel entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct DfDump {
    pub(crate) entries: Vec<(WindowIdx, CellId, u32)>,
    pub(crate) total_bins: u64,
    pub(crate) num_entities: u64,
}

/// Per-shard state, merged across shards into globally sorted
/// collections (sorted by entity, pair, or `(side, entity)` key) so the
/// dump is identical for every shard count.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardsDump {
    /// Per-side mobility histories (columnar arena contents).
    pub(crate) histories: [Vec<(EntityId, HistoryDump)>; 2],
    /// Per-side min-records pending buffers.
    pub(crate) pending: [Vec<(EntityId, Vec<BinnedEvent>)>; 2],
    /// Per-side live-event retention buffers (sliding-window mode).
    pub(crate) live_events: [Vec<(EntityId, Vec<BinnedEvent>)>; 2],
    /// Per-side activated entities.
    pub(crate) active: [Vec<EntityId>; 2],
    /// Per-side dirty window marks.
    pub(crate) dirty: [Vec<(EntityId, Vec<WindowIdx>)>; 2],
    /// Per-side dead (fully expired) entities.
    pub(crate) dead: [Vec<EntityId>; 2],
    /// LSH ring signatures, sorted by `(side, entity)`.
    pub(crate) rings: Vec<RingDump>,
    /// Cached `(pair, window)` score contributions. These deliberately
    /// lag drifting idf, so they are restored verbatim — never
    /// recomputed.
    pub(crate) cache: Vec<(PairKey, Vec<(WindowIdx, f64)>)>,
    /// Pairs whose cache is not yet complete.
    pub(crate) fresh: Vec<PairKey>,
    /// Last emitted edge weight per pair.
    pub(crate) edges: Vec<(PairKey, f64)>,
    /// Edge deltas queued but not yet consumed by a tick.
    pub(crate) edge_deltas: Vec<(PairKey, Option<f64>)>,
}

/// The pump-side state a resumed drive needs: the reorder buffer, the
/// ticker, and the accepted-prefix offset. Also the handoff value
/// [`crate::StreamEngine::take_resume_state`] gives the pump.
#[derive(Debug, Clone)]
pub(crate) struct ResumeState {
    /// Source events consumed at checkpoint time.
    pub(crate) consumed: u64,
    /// Reorder-buffer watermark high point.
    pub(crate) reorder_max_seen: Option<i64>,
    /// Events held in the reorder buffer, in canonical key order.
    pub(crate) reorder_held: Vec<StreamEvent>,
    /// Arrivals already rejected as late.
    pub(crate) reorder_late: u64,
    /// The tick scheduler's state.
    pub(crate) ticker: TickerDump,
}

/// A [`crate::source::pump`] ticker's serialized state. The scheme
/// origin travels with the event-time variants: a recovered ticker
/// that re-anchored lazily at its first *post-resume* event would seal
/// windows at shifted boundaries and break bit-identity.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TickerDump {
    /// Count-based ticks (stateless — cadence lives on the engine).
    EveryN,
    /// Event-time interval ticks.
    EventTime {
        interval: i64,
        origin: Option<i64>,
        last_cell: Option<WindowIdx>,
    },
    /// Watermark window-sealing ticks.
    Watermark {
        width: i64,
        origin: Option<i64>,
        sealed_below: WindowIdx,
        pending: Vec<StreamEvent>,
    },
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE)
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, f: impl Fn(&mut Vec<u8>, &T)) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            f(out, x);
        }
    }
}

fn put_vec<T>(out: &mut Vec<u8>, items: &[T], f: impl Fn(&mut Vec<u8>, &T)) {
    put_u64(out, items.len() as u64);
    for it in items {
        f(out, it);
    }
}

/// Bounds-checked little-endian reader over a frame payload. Every
/// overrun is an `Err`, never a panic — the corruption-tolerance
/// contract of the loader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt<T>(&mut self, f: impl Fn(&mut Self) -> Result<T, String>) -> Result<Option<T>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }

    fn vec<T>(&mut self, f: impl Fn(&mut Self) -> Result<T, String>) -> Result<Vec<T>, String> {
        let n = self.u64()? as usize;
        // Every element costs at least one byte on the wire, so a
        // length beyond the remaining payload is corrupt — reject it
        // before attempting the allocation.
        if n > self.remaining() {
            return Err(format!("corrupt vec length {n} exceeds payload"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f(self)?);
        }
        Ok(v)
    }

    fn done(&self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in payload", self.remaining()))
        }
    }
}

// ---------------------------------------------------------------------
// Composite encodings
// ---------------------------------------------------------------------

fn put_side(out: &mut Vec<u8>, s: Side) {
    put_u8(
        out,
        match s {
            Side::Left => 0,
            Side::Right => 1,
        },
    );
}

fn dec_side(d: &mut Dec) -> Result<Side, String> {
    match d.u8()? {
        0 => Ok(Side::Left),
        1 => Ok(Side::Right),
        t => Err(format!("invalid side tag {t}")),
    }
}

fn put_event(out: &mut Vec<u8>, ev: &StreamEvent) {
    put_side(out, ev.side);
    put_u64(out, ev.entity.0);
    put_f64(out, ev.location.lat_rad());
    put_f64(out, ev.location.lng_rad());
    put_i64(out, ev.time.secs());
    put_f64(out, ev.accuracy_m);
}

fn dec_event(d: &mut Dec) -> Result<StreamEvent, String> {
    let side = dec_side(d)?;
    let entity = EntityId(d.u64()?);
    let lat = d.f64()?;
    let lng = d.f64()?;
    let time = Timestamp(d.i64()?);
    let accuracy_m = d.f64()?;
    Ok(StreamEvent {
        side,
        entity,
        location: LatLng::from_radians(lat, lng),
        time,
        accuracy_m,
    })
}

fn put_edge(out: &mut Vec<u8>, e: &Edge) {
    put_u64(out, e.left.0);
    put_u64(out, e.right.0);
    put_f64(out, e.weight);
}

fn dec_edge(d: &mut Dec) -> Result<Edge, String> {
    Ok(Edge {
        left: EntityId(d.u64()?),
        right: EntityId(d.u64()?),
        weight: d.f64()?,
    })
}

fn put_pair(out: &mut Vec<u8>, p: &PairKey) {
    put_u64(out, p.0 .0);
    put_u64(out, p.1 .0);
}

fn dec_pair(d: &mut Dec) -> Result<PairKey, String> {
    Ok((EntityId(d.u64()?), EntityId(d.u64()?)))
}

fn put_cell(out: &mut Vec<u8>, c: &CellId) {
    put_u64(out, c.to_u64());
}

/// Decodes a cell id. The CRC has already vouched for the bytes, so
/// invalid bits can only mean a writer bug — but return an error
/// rather than panicking all the same.
fn dec_cell(d: &mut Dec) -> Result<CellId, String> {
    let raw = d.u64()?;
    CellId::try_from_u64(raw).ok_or_else(|| format!("invalid cell id {raw:#x}"))
}

fn put_gmm(out: &mut Vec<u8>, g: &Gmm2) {
    for c in [&g.low, &g.high] {
        put_f64(out, c.weight);
        put_f64(out, c.mean);
        put_f64(out, c.std_dev);
    }
    put_f64(out, g.avg_log_likelihood);
    put_u32(out, g.iterations);
}

fn dec_gmm(d: &mut Dec) -> Result<Gmm2, String> {
    let comp = |d: &mut Dec| -> Result<Component, String> {
        Ok(Component {
            weight: d.f64()?,
            mean: d.f64()?,
            std_dev: d.f64()?,
        })
    };
    let low = comp(d)?;
    let high = comp(d)?;
    Ok(Gmm2 {
        low,
        high,
        avg_log_likelihood: d.f64()?,
        iterations: d.u32()?,
    })
}

fn put_binned(out: &mut Vec<u8>, b: &BinnedEvent) {
    put_side(out, b.side);
    put_u64(out, b.entity.0);
    put_u32(out, b.w);
    put_vec(out, &b.cells, put_cell);
    put_vec(out, &b.lsh_cells, put_cell);
}

fn dec_binned(d: &mut Dec) -> Result<BinnedEvent, String> {
    Ok(BinnedEvent {
        side: dec_side(d)?,
        entity: EntityId(d.u64()?),
        w: d.u32()?,
        cells: d.vec(dec_cell)?,
        lsh_cells: d.vec(dec_cell)?,
    })
}

fn put_history(out: &mut Vec<u8>, h: &HistoryDump) {
    put_vec(out, &h.wins, |o, w| put_u32(o, *w));
    put_vec(out, &h.cells, put_cell);
    put_vec(out, &h.counts, |o, c| put_u32(o, *c));
    put_vec(out, &h.window_records, |o, (w, n)| {
        put_u32(o, *w);
        put_u32(o, *n);
    });
}

fn dec_history(d: &mut Dec) -> Result<HistoryDump, String> {
    Ok(HistoryDump {
        wins: d.vec(|d| d.u32())?,
        cells: d.vec(dec_cell)?,
        counts: d.vec(|d| d.u32())?,
        window_records: d.vec(|d| Ok((d.u32()?, d.u32()?)))?,
    })
}

fn put_ring(out: &mut Vec<u8>, r: &RingDump) {
    put_side(out, r.side);
    put_u64(out, r.entity.0);
    put_vec(out, &r.slots, |o, slot| {
        put_vec(o, slot, |o, (w, c, n)| {
            put_u32(o, *w);
            put_cell(o, c);
            put_u32(o, *n);
        });
    });
    put_vec(out, &r.owners, |o, own| {
        put_opt(o, own, |o, w| put_u32(o, *w));
    });
    put_vec(out, &r.sig, |o, s| put_opt(o, s, put_cell));
}

fn dec_ring(d: &mut Dec) -> Result<RingDump, String> {
    Ok(RingDump {
        side: dec_side(d)?,
        entity: EntityId(d.u64()?),
        slots: d.vec(|d| d.vec(|d| Ok((d.u32()?, dec_cell(d)?, d.u32()?))))?,
        owners: d.vec(|d| d.opt(|d| d.u32()))?,
        sig: d.vec(|d| d.opt(dec_cell))?,
    })
}

fn put_ticker(out: &mut Vec<u8>, t: &TickerDump) {
    match t {
        TickerDump::EveryN => put_u8(out, 0),
        TickerDump::EventTime {
            interval,
            origin,
            last_cell,
        } => {
            put_u8(out, 1);
            put_i64(out, *interval);
            put_opt(out, origin, |o, v| put_i64(o, *v));
            put_opt(out, last_cell, |o, v| put_u32(o, *v));
        }
        TickerDump::Watermark {
            width,
            origin,
            sealed_below,
            pending,
        } => {
            put_u8(out, 2);
            put_i64(out, *width);
            put_opt(out, origin, |o, v| put_i64(o, *v));
            put_u32(out, *sealed_below);
            put_vec(out, pending, put_event);
        }
    }
}

fn dec_ticker(d: &mut Dec) -> Result<TickerDump, String> {
    match d.u8()? {
        0 => Ok(TickerDump::EveryN),
        1 => Ok(TickerDump::EventTime {
            interval: d.i64()?,
            origin: d.opt(|d| d.i64())?,
            last_cell: d.opt(|d| d.u32())?,
        }),
        2 => Ok(TickerDump::Watermark {
            width: d.i64()?,
            origin: d.opt(|d| d.i64())?,
            sealed_below: d.u32()?,
            pending: d.vec(dec_event)?,
        }),
        t => Err(format!("invalid ticker tag {t}")),
    }
}

/// Destructures so adding a [`StreamStats`] field is a compile error
/// here until the wire layout (and [`VERSION`]) is updated.
fn put_stats(out: &mut Vec<u8>, s: &StreamStats) {
    let StreamStats {
        events,
        late_dropped,
        ticks,
        rescored_windows,
        dirty_pairs_visited,
        cached_pairs_at_ticks,
        retired_pairs,
        evicted_windows,
        edges_patched,
        matching_region_size,
        em_warm_iters,
        blocked_producer_ns,
        queue_high_watermark,
        late_events,
        demoted_entities,
        demoted_records,
        arena_compactions,
        steal_events,
        max_worker_busy_ns,
        min_worker_busy_ns,
        malformed_lines,
        connections_served,
        idle_evictions,
        snapshots_published,
        queries_served,
        checkpoints_written,
        checkpoints_rejected,
        checkpoint_bytes,
    } = *s;
    for v in [
        events,
        late_dropped,
        ticks,
        rescored_windows,
        dirty_pairs_visited,
        cached_pairs_at_ticks,
        retired_pairs,
        evicted_windows,
        edges_patched,
        matching_region_size,
        em_warm_iters,
        blocked_producer_ns,
        queue_high_watermark,
        late_events,
        demoted_entities,
        demoted_records,
        arena_compactions,
        steal_events,
        max_worker_busy_ns,
        min_worker_busy_ns,
        malformed_lines,
        connections_served,
        idle_evictions,
        snapshots_published,
        queries_served,
        checkpoints_written,
        checkpoints_rejected,
        checkpoint_bytes,
    ] {
        put_u64(out, v);
    }
}

fn dec_stats(d: &mut Dec) -> Result<StreamStats, String> {
    Ok(StreamStats {
        events: d.u64()?,
        late_dropped: d.u64()?,
        ticks: d.u64()?,
        rescored_windows: d.u64()?,
        dirty_pairs_visited: d.u64()?,
        cached_pairs_at_ticks: d.u64()?,
        retired_pairs: d.u64()?,
        evicted_windows: d.u64()?,
        edges_patched: d.u64()?,
        matching_region_size: d.u64()?,
        em_warm_iters: d.u64()?,
        blocked_producer_ns: d.u64()?,
        queue_high_watermark: d.u64()?,
        late_events: d.u64()?,
        demoted_entities: d.u64()?,
        demoted_records: d.u64()?,
        arena_compactions: d.u64()?,
        steal_events: d.u64()?,
        max_worker_busy_ns: d.u64()?,
        min_worker_busy_ns: d.u64()?,
        malformed_lines: d.u64()?,
        connections_served: d.u64()?,
        idle_evictions: d.u64()?,
        snapshots_published: d.u64()?,
        queries_served: d.u64()?,
        checkpoints_written: d.u64()?,
        checkpoints_rejected: d.u64()?,
        checkpoint_bytes: d.u64()?,
    })
}

fn put_scoring(out: &mut Vec<u8>, s: &LinkageStats) {
    let LinkageStats {
        scored_entity_pairs,
        bin_pair_comparisons,
        record_pair_comparisons,
        alibi_pairs,
    } = *s;
    for v in [
        scored_entity_pairs,
        bin_pair_comparisons,
        record_pair_comparisons,
        alibi_pairs,
    ] {
        put_u64(out, v);
    }
}

fn dec_scoring(d: &mut Dec) -> Result<LinkageStats, String> {
    Ok(LinkageStats {
        scored_entity_pairs: d.u64()?,
        bin_pair_comparisons: d.u64()?,
        record_pair_comparisons: d.u64()?,
        alibi_pairs: d.u64()?,
    })
}

fn put_df(out: &mut Vec<u8>, df: &DfDump) {
    put_vec(out, &df.entries, |o, (w, c, n)| {
        put_u32(o, *w);
        put_cell(o, c);
        put_u32(o, *n);
    });
    put_u64(out, df.total_bins);
    put_u64(out, df.num_entities);
}

fn dec_df(d: &mut Dec) -> Result<DfDump, String> {
    Ok(DfDump {
        entries: d.vec(|d| Ok((d.u32()?, dec_cell(d)?, d.u32()?)))?,
        total_bins: d.u64()?,
        num_entities: d.u64()?,
    })
}

// ---------------------------------------------------------------------
// Section codecs
// ---------------------------------------------------------------------

fn encode_meta(m: &MetaDump) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, m.consumed);
    let f = &m.fingerprint;
    put_i64(&mut out, f.window_width_secs);
    put_u8(&mut out, f.spatial_level);
    put_u64(&mut out, f.min_records);
    put_opt(&mut out, &f.window_capacity, |o, v| put_u32(o, *v));
    put_opt(&mut out, &f.lsh, |o, l| {
        put_u64(o, l.spans);
        put_u32(o, l.step_windows);
        put_u8(o, l.spatial_level);
        put_u64(o, l.threshold_bits);
        put_u64(o, l.num_buckets);
    });
    out
}

fn decode_meta(payload: &[u8]) -> Result<MetaDump, String> {
    let mut d = Dec::new(payload);
    let consumed = d.u64()?;
    let fingerprint = ConfigFingerprint {
        window_width_secs: d.i64()?,
        spatial_level: d.u8()?,
        min_records: d.u64()?,
        window_capacity: d.opt(|d| d.u32())?,
        lsh: d.opt(|d| {
            Ok(LshFingerprint {
                spans: d.u64()?,
                step_windows: d.u32()?,
                spatial_level: d.u8()?,
                threshold_bits: d.u64()?,
                num_buckets: d.u64()?,
            })
        })?,
    };
    d.done()?;
    Ok(MetaDump {
        consumed,
        fingerprint,
    })
}

fn encode_engine(e: &EngineDump) -> Vec<u8> {
    let mut out = Vec::new();
    put_opt(&mut out, &e.origin, |o, v| put_i64(o, *v));
    put_u32(&mut out, e.domain);
    put_u32(&mut out, e.watermark);
    put_u32(&mut out, e.expired_below);
    put_u64(&mut out, e.events_since_refresh);
    put_stats(&mut out, &e.stats);
    put_scoring(&mut out, &e.scoring);
    put_vec(&mut out, &e.links, put_edge);
    put_u64(&mut out, e.epoch_events);
    put_opt(&mut out, &e.epoch_threshold, |o, v| put_f64(o, *v));
    put_opt(&mut out, &e.epoch_frontier, |o, v| put_i64(o, *v));
    put_vec(&mut out, &e.matcher_edges, put_edge);
    put_opt(&mut out, &e.warm_seed, put_gmm);
    put_df(&mut out, &e.df[0]);
    put_df(&mut out, &e.df[1]);
    out
}

fn decode_engine(payload: &[u8]) -> Result<EngineDump, String> {
    let mut d = Dec::new(payload);
    let e = EngineDump {
        origin: d.opt(|d| d.i64())?,
        domain: d.u32()?,
        watermark: d.u32()?,
        expired_below: d.u32()?,
        events_since_refresh: d.u64()?,
        stats: dec_stats(&mut d)?,
        scoring: dec_scoring(&mut d)?,
        links: d.vec(dec_edge)?,
        epoch_events: d.u64()?,
        epoch_threshold: d.opt(|d| d.f64())?,
        epoch_frontier: d.opt(|d| d.i64())?,
        matcher_edges: d.vec(dec_edge)?,
        warm_seed: d.opt(dec_gmm)?,
        df: [dec_df(&mut d)?, dec_df(&mut d)?],
    };
    d.done()?;
    Ok(e)
}

fn encode_shards(s: &ShardsDump) -> Vec<u8> {
    let mut out = Vec::new();
    for side in 0..2 {
        put_vec(&mut out, &s.histories[side], |o, (e, h)| {
            put_u64(o, e.0);
            put_history(o, h);
        });
        put_vec(&mut out, &s.pending[side], |o, (e, evs)| {
            put_u64(o, e.0);
            put_vec(o, evs, put_binned);
        });
        put_vec(&mut out, &s.live_events[side], |o, (e, evs)| {
            put_u64(o, e.0);
            put_vec(o, evs, put_binned);
        });
        put_vec(&mut out, &s.active[side], |o, e| put_u64(o, e.0));
        put_vec(&mut out, &s.dirty[side], |o, (e, ws)| {
            put_u64(o, e.0);
            put_vec(o, ws, |o, w| put_u32(o, *w));
        });
        put_vec(&mut out, &s.dead[side], |o, e| put_u64(o, e.0));
    }
    put_vec(&mut out, &s.rings, put_ring);
    put_vec(&mut out, &s.cache, |o, (p, wins)| {
        put_pair(o, p);
        put_vec(o, wins, |o, (w, v)| {
            put_u32(o, *w);
            put_f64(o, *v);
        });
    });
    put_vec(&mut out, &s.fresh, put_pair);
    put_vec(&mut out, &s.edges, |o, (p, w)| {
        put_pair(o, p);
        put_f64(o, *w);
    });
    put_vec(&mut out, &s.edge_deltas, |o, (p, w)| {
        put_pair(o, p);
        put_opt(o, w, |o, v| put_f64(o, *v));
    });
    out
}

fn decode_shards(payload: &[u8]) -> Result<ShardsDump, String> {
    let mut d = Dec::new(payload);
    let mut s = ShardsDump::default();
    for side in 0..2 {
        s.histories[side] = d.vec(|d| Ok((EntityId(d.u64()?), dec_history(d)?)))?;
        s.pending[side] = d.vec(|d| Ok((EntityId(d.u64()?), d.vec(dec_binned)?)))?;
        s.live_events[side] = d.vec(|d| Ok((EntityId(d.u64()?), d.vec(dec_binned)?)))?;
        s.active[side] = d.vec(|d| Ok(EntityId(d.u64()?)))?;
        s.dirty[side] = d.vec(|d| Ok((EntityId(d.u64()?), d.vec(|d| d.u32())?)))?;
        s.dead[side] = d.vec(|d| Ok(EntityId(d.u64()?)))?;
    }
    s.rings = d.vec(dec_ring)?;
    s.cache = d.vec(|d| Ok((dec_pair(d)?, d.vec(|d| Ok((d.u32()?, d.f64()?)))?)))?;
    s.fresh = d.vec(dec_pair)?;
    s.edges = d.vec(|d| Ok((dec_pair(d)?, d.f64()?)))?;
    s.edge_deltas = d.vec(|d| Ok((dec_pair(d)?, d.opt(|d| d.f64())?)))?;
    d.done()?;
    Ok(s)
}

fn encode_pump(p: &ResumeState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.consumed);
    put_opt(&mut out, &p.reorder_max_seen, |o, v| put_i64(o, *v));
    put_vec(&mut out, &p.reorder_held, put_event);
    put_u64(&mut out, p.reorder_late);
    put_ticker(&mut out, &p.ticker);
    out
}

fn decode_pump(payload: &[u8]) -> Result<ResumeState, String> {
    let mut d = Dec::new(payload);
    let p = ResumeState {
        consumed: d.u64()?,
        reorder_max_seen: d.opt(|d| d.i64())?,
        reorder_held: d.vec(dec_event)?,
        reorder_late: d.u64()?,
        ticker: dec_ticker(&mut d)?,
    };
    d.done()?;
    Ok(p)
}

// ---------------------------------------------------------------------
// Whole-file codec
// ---------------------------------------------------------------------

fn frame(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Serializes a complete checkpoint image to its wire form.
pub(crate) fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    frame(&mut out, TAG_META, &encode_meta(&state.meta));
    frame(&mut out, TAG_ENGINE, &encode_engine(&state.engine));
    frame(&mut out, TAG_SHARDS, &encode_shards(&state.shards));
    frame(&mut out, TAG_PUMP, &encode_pump(&state.pump));
    frame(&mut out, TAG_END, &[]);
    out
}

/// Parses and validates a checkpoint file image. Strict: bad magic or
/// version, any frame CRC mismatch, a missing or duplicated section, a
/// missing END frame, or trailing bytes are all errors — and *never*
/// panics, whatever the input.
pub(crate) fn decode(bytes: &[u8]) -> Result<CheckpointState, String> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len())? != MAGIC {
        return Err("bad magic: not a checkpoint file".into());
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (expected {VERSION})"
        ));
    }
    let mut meta = None;
    let mut engine = None;
    let mut shards = None;
    let mut pump = None;
    loop {
        let tag = d.u32()?;
        let len = d.u64()? as usize;
        let crc = d.u32()?;
        let payload = d.take(len)?;
        if crc32(payload) != crc {
            return Err(format!("CRC mismatch in frame tag {tag}"));
        }
        match tag {
            TAG_END => {
                if len != 0 {
                    return Err("non-empty END frame".into());
                }
                break;
            }
            TAG_META if meta.is_none() => meta = Some(decode_meta(payload)?),
            TAG_ENGINE if engine.is_none() => engine = Some(decode_engine(payload)?),
            TAG_SHARDS if shards.is_none() => shards = Some(decode_shards(payload)?),
            TAG_PUMP if pump.is_none() => pump = Some(decode_pump(payload)?),
            TAG_META | TAG_ENGINE | TAG_SHARDS | TAG_PUMP => {
                return Err(format!("duplicate frame tag {tag}"));
            }
            _ => return Err(format!("unknown frame tag {tag}")),
        }
    }
    d.done()?;
    Ok(CheckpointState {
        meta: meta.ok_or("missing META frame")?,
        engine: engine.ok_or("missing ENGINE frame")?,
        shards: shards.ok_or("missing SHARDS frame")?,
        pump: pump.ok_or("missing PUMP frame")?,
    })
}

// ---------------------------------------------------------------------
// File management
// ---------------------------------------------------------------------

/// The file name of the checkpoint taken after `consumed` events.
/// Zero-padded so lexical order is numeric order.
pub(crate) fn checkpoint_file_name(consumed: u64) -> String {
    format!("ckpt-{consumed:020}.slim")
}

/// Checkpoint files in `dir`, sorted oldest → newest. Non-checkpoint
/// names (including temp files) are ignored; a missing directory is an
/// empty list.
pub(crate) fn list_checkpoints(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".slim"))
        })
        .collect();
    files.sort();
    files
}

/// Applies a deterministic corruption from `plan` to an encoded image:
/// a torn write truncates, a bit flip XORs one bit (clamped into
/// range). The fault-injection half of the crash/recover harness.
pub(crate) fn apply_fault(bytes: &mut Vec<u8>, plan: &FaultPlan) {
    if let Some(n) = plan.torn_write_after {
        bytes.truncate(n as usize);
    }
    if let Some(off) = plan.bit_flip_at {
        if !bytes.is_empty() {
            let i = (off as usize).min(bytes.len() - 1);
            bytes[i] ^= 0x01;
        }
    }
}

/// Atomically installs `bytes` as the checkpoint for `consumed` events:
/// temp file in the same directory, fsync, rename, best-effort
/// directory fsync. Returns the installed size in bytes.
pub(crate) fn write_atomic(dir: &Path, consumed: u64, bytes: &[u8]) -> Result<u64, String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let final_path = dir.join(checkpoint_file_name(consumed));
    let tmp_path = dir.join(format!("ckpt-{consumed:020}.slim.tmp"));
    let mut f =
        fs::File::create(&tmp_path).map_err(|e| format!("creating {}: {e}", tmp_path.display()))?;
    f.write_all(bytes)
        .and_then(|()| f.sync_all())
        .map_err(|e| format!("writing {}: {e}", tmp_path.display()))?;
    drop(f);
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| format!("installing {}: {e}", final_path.display()))?;
    // Persist the rename itself; failure here only risks losing the
    // *newest* checkpoint to a power cut, which recovery tolerates.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// Prunes all but the newest `keep` checkpoints in `dir` (oldest
/// first). Returns how many files were removed.
pub(crate) fn prune_old(dir: &Path, keep: usize) -> u64 {
    let files = list_checkpoints(dir);
    let excess = files.len().saturating_sub(keep.max(1));
    let mut removed = 0;
    for path in &files[..excess] {
        if fs::remove_file(path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Loads the newest checkpoint in `dir` that passes validation,
/// falling back file by file toward older ones. Returns the state and
/// the number of rejected (torn / corrupt / unreadable) newer files.
/// Errors only when no file validates.
pub(crate) fn load_latest(dir: &Path) -> Result<(CheckpointState, u64), String> {
    let files = list_checkpoints(dir);
    if files.is_empty() {
        return Err(format!("no checkpoints in {}", dir.display()));
    }
    let mut rejected = 0u64;
    for path in files.iter().rev() {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        match decode(&bytes) {
            Ok(state) => return Ok((state, rejected)),
            Err(_) => rejected += 1,
        }
    }
    Err(format!(
        "all {} checkpoint files in {} failed validation",
        files.len(),
        dir.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        let ev = StreamEvent::new(
            Side::Left,
            EntityId(7),
            LatLng::from_degrees(41.0, 29.0),
            Timestamp(1234),
        );
        let cell = CellId::from_latlng(LatLng::from_degrees(41.0, 29.0), 12);
        CheckpointState {
            meta: MetaDump {
                consumed: 42,
                fingerprint: ConfigFingerprint::of(&StreamConfig::default()),
            },
            engine: EngineDump {
                origin: Some(1000),
                domain: 5,
                watermark: 2,
                expired_below: 1,
                events_since_refresh: 3,
                stats: StreamStats {
                    events: 42,
                    ticks: 2,
                    ..StreamStats::default()
                },
                scoring: LinkageStats {
                    scored_entity_pairs: 9,
                    ..LinkageStats::default()
                },
                links: vec![Edge {
                    left: EntityId(1),
                    right: EntityId(2),
                    weight: 0.75,
                }],
                epoch_events: 40,
                epoch_threshold: Some(0.5),
                epoch_frontier: Some(999),
                matcher_edges: vec![Edge {
                    left: EntityId(1),
                    right: EntityId(2),
                    weight: 0.75,
                }],
                warm_seed: Some(Gmm2 {
                    low: Component {
                        weight: 0.4,
                        mean: 0.1,
                        std_dev: 0.05,
                    },
                    high: Component {
                        weight: 0.6,
                        mean: 0.8,
                        std_dev: 0.1,
                    },
                    avg_log_likelihood: -1.25,
                    iterations: 17,
                }),
                df: [
                    DfDump {
                        entries: vec![(0, cell, 3)],
                        total_bins: 3,
                        num_entities: 1,
                    },
                    DfDump::default(),
                ],
            },
            shards: ShardsDump {
                histories: [
                    vec![(
                        EntityId(7),
                        HistoryDump {
                            wins: vec![0, 1],
                            cells: vec![cell, cell],
                            counts: vec![2, 1],
                            window_records: vec![(0, 2), (1, 1)],
                        },
                    )],
                    Vec::new(),
                ],
                pending: [
                    vec![(
                        EntityId(9),
                        vec![BinnedEvent {
                            side: Side::Left,
                            entity: EntityId(9),
                            w: 1,
                            cells: vec![cell],
                            lsh_cells: Vec::new(),
                        }],
                    )],
                    Vec::new(),
                ],
                live_events: [Vec::new(), Vec::new()],
                active: [vec![EntityId(7)], vec![EntityId(3)]],
                dirty: [vec![(EntityId(7), vec![0, 1])], Vec::new()],
                dead: [Vec::new(), vec![EntityId(5)]],
                rings: vec![RingDump {
                    side: Side::Left,
                    entity: EntityId(7),
                    slots: vec![vec![(0, cell, 2)], Vec::new()],
                    owners: vec![Some(0), None],
                    sig: vec![Some(cell), None],
                }],
                cache: vec![((EntityId(7), EntityId(3)), vec![(0, 0.5), (1, 0.25)])],
                fresh: vec![(EntityId(7), EntityId(3))],
                edges: vec![((EntityId(7), EntityId(3)), 0.75)],
                edge_deltas: vec![((EntityId(7), EntityId(3)), Some(0.8))],
            },
            pump: ResumeState {
                consumed: 42,
                reorder_max_seen: Some(1234),
                reorder_held: vec![ev],
                reorder_late: 1,
                ticker: TickerDump::Watermark {
                    width: 3600,
                    origin: Some(1000),
                    sealed_below: 2,
                    pending: vec![ev],
                },
            },
        }
    }

    /// Field-by-field equality of two checkpoint states, via the
    /// canonical wire form (the structs hold floats, so the bit-exact
    /// comparison the format guarantees *is* encoded equality).
    fn assert_same(a: &CheckpointState, b: &CheckpointState) {
        assert_eq!(encode(a), encode(b));
    }

    #[test]
    fn encode_decode_round_trips() {
        let state = sample_state();
        let bytes = encode(&state);
        let back = decode(&bytes).expect("round trip");
        assert_same(&state, &back);
        assert_eq!(back.meta.consumed, 42);
        assert_eq!(back.pump.reorder_held.len(), 1);
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless() {
        let state = sample_state();
        let bytes = encode(&state);
        // Flip one bit at a sample of offsets across the file: decode
        // must either reject (Err) or — never — silently change state.
        for off in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[off] ^= 0x10;
            match decode(&corrupt) {
                Err(_) => {}
                Ok(back) => panic!(
                    "bit flip at offset {off} decoded successfully ({})",
                    if encode(&back) == bytes {
                        "same state?!"
                    } else {
                        "DIFFERENT state"
                    }
                ),
            }
        }
    }

    #[test]
    fn truncation_at_any_length_is_an_error_not_a_panic() {
        let state = sample_state();
        let bytes = encode(&state);
        for len in (0..bytes.len()).step_by(11) {
            assert!(decode(&bytes[..len]).is_err(), "truncated to {len}");
        }
        assert!(decode(&[]).is_err(), "zero-length");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample_state());
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn fingerprint_detects_config_drift() {
        let base = StreamConfig::default();
        let fp = ConfigFingerprint::of(&base);
        assert!(fp.check(&base).is_ok());
        let mut other = base;
        other.slim.window_width_secs += 1;
        assert!(fp.check(&other).is_err());
        // Shard/worker counts are *not* fingerprinted: checkpoints are
        // shard-agnostic.
        let mut sharded = base;
        sharded.num_shards = 7;
        sharded.num_workers = 3;
        assert!(fp.check(&sharded).is_ok());
    }

    #[test]
    fn atomic_write_lists_and_prunes_in_order() {
        let dir = std::env::temp_dir().join(format!("slim-ckpt-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let bytes = encode(&sample_state());
        for consumed in [100u64, 300, 200, 400] {
            write_atomic(&dir, consumed, &bytes).unwrap();
        }
        let names: Vec<String> = list_checkpoints(&dir)
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                checkpoint_file_name(100),
                checkpoint_file_name(200),
                checkpoint_file_name(300),
                checkpoint_file_name(400),
            ],
            "lexical order is numeric order"
        );
        assert_eq!(prune_old(&dir, 2), 2, "two oldest pruned");
        let names: Vec<String> = list_checkpoints(&dir)
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec![checkpoint_file_name(300), checkpoint_file_name(400)],
            "newest K survive"
        );
        // No temp files left behind.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_str()
            .unwrap()
            .ends_with(".tmp")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_falls_back_past_corruption() {
        let dir = std::env::temp_dir().join(format!("slim-ckpt-fb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut good = sample_state();
        good.meta.consumed = 100;
        write_atomic(&dir, 100, &encode(&good)).unwrap();
        // Newest checkpoint: torn mid-frame.
        let mut torn = encode(&sample_state());
        let plan = FaultPlan {
            torn_write_after: Some(torn.len() as u64 / 2),
            ..FaultPlan::default()
        };
        apply_fault(&mut torn, &plan);
        write_atomic(&dir, 200, &torn).unwrap();
        // Even newer: bit-flipped.
        let mut flipped = encode(&sample_state());
        let flip_plan = FaultPlan {
            bit_flip_at: Some(flipped.len() as u64 - 30),
            ..FaultPlan::default()
        };
        apply_fault(&mut flipped, &flip_plan);
        write_atomic(&dir, 300, &flipped).unwrap();
        // And a zero-length file.
        write_atomic(&dir, 400, &[]).unwrap();

        let (state, rejected) = load_latest(&dir).expect("fallback finds the good one");
        assert_eq!(state.meta.consumed, 100);
        assert_eq!(rejected, 3, "three newer files rejected");

        // All-corrupt directory: an error, not a panic.
        fs::remove_file(dir.join(checkpoint_file_name(100))).unwrap();
        assert!(load_latest(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error() {
        let dir = std::env::temp_dir().join("slim-ckpt-definitely-absent");
        assert!(load_latest(&dir).is_err());
        assert!(list_checkpoints(&dir).is_empty());
    }
}
