//! Stream events: one timestamped location observation from one side.

use slim_core::{EntityId, LocationDataset, Record, Timestamp};

/// Which of the two datasets being linked an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The first dataset (`U_E`).
    Left,
    /// The second dataset (`U_I`).
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Array index (`Left = 0`, `Right = 1`) for per-side state.
    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

/// One streamed observation: entity `entity` of dataset `side` was at
/// `location` at `time` (within `accuracy_m` metres for region records).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEvent {
    /// The dataset this observation comes from.
    pub side: Side,
    /// The dataset-local entity.
    pub entity: EntityId,
    /// Observed position.
    pub location: geocell::LatLng,
    /// Observation time.
    pub time: Timestamp,
    /// Region radius in metres (0 = exact point).
    pub accuracy_m: f64,
}

impl StreamEvent {
    /// A point observation.
    pub fn new(side: Side, entity: EntityId, location: geocell::LatLng, time: Timestamp) -> Self {
        Self {
            side,
            entity,
            location,
            time,
            accuracy_m: 0.0,
        }
    }

    /// Wraps one dataset record.
    pub fn from_record(side: Side, r: &Record) -> Self {
        Self {
            side,
            entity: r.entity,
            location: r.location,
            time: r.time,
            accuracy_m: r.accuracy_m,
        }
    }

    /// The event as a `slim-core` record (losing the side tag).
    pub fn to_record(&self) -> Record {
        if self.accuracy_m > 0.0 {
            Record::with_accuracy(self.entity, self.location, self.time, self.accuracy_m)
        } else {
            Record::new(self.entity, self.location, self.time)
        }
    }
}

/// The window-scheme origin the *batch* pipeline would use for these
/// datasets: the minimum timestamp after the min-records filter,
/// mirroring `Slim::prepare`.
///
/// An engine left to infer its origin uses the first ingested event —
/// which may be an earlier record of a sparse entity the batch filter
/// drops, shifting every window boundary and breaking bit-identical
/// finalization. Replay paths that compare against batch output should
/// pin the engine with [`crate::StreamEngine::with_origin`] to this
/// value (the CLI `--stream` mode does).
pub fn batch_equivalent_origin(
    left: &LocationDataset,
    right: &LocationDataset,
    min_records: usize,
) -> Option<Timestamp> {
    // Records are time-sorted per entity, so the filtered minimum is the
    // min over each surviving entity's first record — no copies needed.
    let mut origin: Option<Timestamp> = None;
    for ds in [left, right] {
        for e in ds.entities() {
            let records = ds.records_of(e);
            if records.len() <= min_records {
                continue;
            }
            let first = records[0].time;
            origin = Some(origin.map_or(first, |t| t.min(first)));
        }
    }
    origin
}

/// Flattens two batch datasets into one time-ordered event stream — the
/// replay path used by `slim-link --stream`, the benchmarks, and the
/// stream/batch equivalence tests. Ties break on `(time, side, entity)`
/// for determinism.
pub fn merge_datasets(left: &LocationDataset, right: &LocationDataset) -> Vec<StreamEvent> {
    let mut events = Vec::with_capacity(left.num_records() + right.num_records());
    for (side, ds) in [(Side::Left, left), (Side::Right, right)] {
        for e in ds.entities_sorted() {
            for r in ds.records_of(e) {
                events.push(StreamEvent::from_record(side, r));
            }
        }
    }
    events.sort_by_key(|ev| (ev.time, ev.side, ev.entity));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;

    #[test]
    fn merge_orders_by_time() {
        let l = LocationDataset::from_records(vec![
            Record::new(EntityId(1), LatLng::from_degrees(0.0, 0.0), Timestamp(50)),
            Record::new(EntityId(1), LatLng::from_degrees(0.0, 0.0), Timestamp(10)),
        ]);
        let r = LocationDataset::from_records(vec![Record::new(
            EntityId(2),
            LatLng::from_degrees(0.0, 0.0),
            Timestamp(30),
        )]);
        let events = merge_datasets(&l, &r);
        let times: Vec<i64> = events.iter().map(|e| e.time.secs()).collect();
        assert_eq!(times, vec![10, 30, 50]);
        assert_eq!(events[1].side, Side::Right);
    }

    #[test]
    fn record_roundtrip_preserves_accuracy() {
        let rec = Record::with_accuracy(
            EntityId(7),
            LatLng::from_degrees(1.0, 2.0),
            Timestamp(5),
            120.0,
        );
        let ev = StreamEvent::from_record(Side::Left, &rec);
        assert_eq!(ev.to_record(), rec);
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }
}
