//! The shard-level history store: one representation switch between
//! the classic per-entity structs and the columnar arena.
//!
//! Every [`crate::shard::EngineShard`] owns two of these (one per
//! side). The engine code talks exclusively to this façade, so the
//! storage representation ([`StorageMode`]) is invisible above it: both
//! modes maintain the identical observable history content, and the
//! scoring helpers at the bottom of this module run the identical
//! floating-point sequences over either layout (see
//! `tests/arena_equivalence.rs` for the property pinning this).

use std::collections::HashMap;

use geocell::CellId;
use slim_core::arena::{EntityView, HistoryArena};
use slim_core::similarity::{common_windows, SimilarityScorer};
use slim_core::tree::CellCounts;
use slim_core::{EntityId, LinkageStats, MobilityHistory, WindowIdx};

use crate::config::StorageMode;

/// One side's history storage on one shard.
#[derive(Debug)]
pub(crate) enum HistoryStore {
    /// `HashMap<EntityId, MobilityHistory>` — the equivalence baseline.
    Legacy(HashMap<EntityId, MobilityHistory>),
    /// Struct-of-arrays columnar arena.
    Arena(HistoryArena),
}

impl HistoryStore {
    pub(crate) fn new(mode: StorageMode) -> Self {
        match mode {
            StorageMode::Legacy => Self::Legacy(HashMap::new()),
            StorageMode::Arena => Self::Arena(HistoryArena::new()),
        }
    }

    /// Appends one record's bins (creating the entity on first touch).
    /// Returns the cells that created new bins plus whether the entity
    /// was created — exactly the df-maintenance contract of
    /// [`MobilityHistory::append`] behind an entry-or-insert.
    pub(crate) fn append(
        &mut self,
        e: EntityId,
        w: WindowIdx,
        cells: &[CellId],
    ) -> (Vec<CellId>, bool) {
        match self {
            Self::Legacy(map) => {
                let mut created = false;
                let h = map.entry(e).or_insert_with(|| {
                    created = true;
                    MobilityHistory::empty(e)
                });
                (h.append(w, cells), created)
            }
            Self::Arena(arena) => arena.append(e, w, cells),
        }
    }

    /// Evicts one window of one entity, removing the entity entirely
    /// when its history empties. Returns the evicted bins and whether
    /// the entity was removed.
    pub(crate) fn evict_window(&mut self, e: EntityId, w: WindowIdx) -> (CellCounts, bool) {
        match self {
            Self::Legacy(map) => {
                let Some(h) = map.get_mut(&e) else {
                    return (CellCounts::new(), false);
                };
                let bins = h.evict_window(w);
                let emptied = h.num_records() == 0;
                if emptied {
                    map.remove(&e);
                }
                (bins, emptied)
            }
            Self::Arena(arena) => {
                if arena.view(e).is_none() {
                    return (CellCounts::new(), false);
                }
                let bins = arena.evict_window(e, w);
                let emptied = arena.num_records(e) == 0;
                if emptied {
                    arena.remove_entity(e);
                }
                (bins, emptied)
            }
        }
    }

    /// Whether the entity has live history content.
    pub(crate) fn contains(&self, e: EntityId) -> bool {
        match self {
            Self::Legacy(map) => map.contains_key(&e),
            Self::Arena(arena) => arena.view(e).is_some(),
        }
    }

    /// Total records of the entity (0 when absent).
    pub(crate) fn num_records(&self, e: EntityId) -> u32 {
        match self {
            Self::Legacy(map) => map.get(&e).map(|h| h.num_records()).unwrap_or(0),
            Self::Arena(arena) => arena.num_records(e),
        }
    }

    /// The entity's non-empty windows, ascending (empty when absent).
    pub(crate) fn windows_of(&self, e: EntityId) -> Vec<WindowIdx> {
        match self {
            Self::Legacy(map) => map
                .get(&e)
                .map(|h| h.windows().collect())
                .unwrap_or_default(),
            Self::Arena(arena) => arena
                .view(e)
                .map(|v| v.windows().collect())
                .unwrap_or_default(),
        }
    }

    /// A borrowed scoring view of the entity's history.
    pub(crate) fn view(&self, e: EntityId) -> Option<HistoryView<'_>> {
        match self {
            Self::Legacy(map) => map.get(&e).map(HistoryView::Legacy),
            Self::Arena(arena) => arena.view(e).map(HistoryView::Arena),
        }
    }

    /// Number of live entities.
    pub(crate) fn len(&self) -> usize {
        match self {
            Self::Legacy(map) => map.len(),
            Self::Arena(arena) => arena.len(),
        }
    }

    /// Live entity ids, unordered.
    pub(crate) fn entity_ids(&self) -> Vec<EntityId> {
        match self {
            Self::Legacy(map) => map.keys().copied().collect(),
            Self::Arena(arena) => arena.entities().collect(),
        }
    }

    /// An owned [`MobilityHistory`] of the entity (a clone for the
    /// legacy layout, a materialization for the arena).
    pub(crate) fn materialize(&self, e: EntityId) -> Option<MobilityHistory> {
        match self {
            Self::Legacy(map) => map.get(&e).cloned(),
            Self::Arena(arena) => arena.materialize(e),
        }
    }

    /// Owned histories of every live entity — the finalize-clone path.
    pub(crate) fn materialize_all(&self) -> HashMap<EntityId, MobilityHistory> {
        match self {
            Self::Legacy(map) => map.clone(),
            Self::Arena(arena) => arena
                .entities()
                .map(|e| (e, arena.materialize(e).expect("entity is live")))
                .collect(),
        }
    }

    /// Drains the store into owned histories (the consuming finalize).
    pub(crate) fn drain_map(&mut self) -> HashMap<EntityId, MobilityHistory> {
        match self {
            Self::Legacy(map) => std::mem::take(map),
            Self::Arena(arena) => {
                let out = arena
                    .entities()
                    .map(|e| (e, arena.materialize(e).expect("entity is live")))
                    .collect();
                *arena = HistoryArena::new();
                out
            }
        }
    }

    /// Arena compaction passes (0 for the legacy layout).
    pub(crate) fn compactions(&self) -> u64 {
        match self {
            Self::Legacy(_) => 0,
            Self::Arena(arena) => arena.compactions(),
        }
    }

    /// One entity's history as canonical columns — the checkpoint
    /// export, representation-independent: both layouts emit the same
    /// `wins` ascending / cells-sorted-per-run columns plus the true
    /// per-window record counts. `None` when absent.
    pub(crate) fn export_entity(&self, e: EntityId) -> Option<HistoryDump> {
        match self {
            Self::Legacy(map) => {
                let h = map.get(&e)?;
                let mut dump = HistoryDump::default();
                for w in h.windows() {
                    for &(c, n) in h.bins_in(w) {
                        dump.wins.push(w);
                        dump.cells.push(c);
                        dump.counts.push(n);
                    }
                }
                dump.window_records = h.window_record_counts().collect();
                Some(dump)
            }
            Self::Arena(arena) => {
                let (wins, cells, counts, window_records) = arena.export_entity(e)?;
                Some(HistoryDump {
                    wins,
                    cells,
                    counts,
                    window_records,
                })
            }
        }
    }

    /// Restores one entity from a [`HistoryStore::export_entity`] dump
    /// into a fresh store — the recovery inverse; round-trips
    /// bit-identically for either layout.
    pub(crate) fn restore_entity(&mut self, e: EntityId, dump: HistoryDump) {
        match self {
            Self::Legacy(map) => {
                let mut leaves: std::collections::BTreeMap<WindowIdx, CellCounts> =
                    std::collections::BTreeMap::new();
                for i in 0..dump.wins.len() {
                    leaves
                        .entry(dump.wins[i])
                        .or_default()
                        .push((dump.cells[i], dump.counts[i]));
                }
                let window_records = dump.window_records.into_iter().collect();
                map.insert(e, MobilityHistory::from_leaves(e, leaves, window_records));
            }
            Self::Arena(arena) => {
                arena.restore_entity(e, dump.wins, dump.cells, dump.counts, dump.window_records);
            }
        }
    }
}

/// One entity's history in canonical column form: `wins` ascending with
/// one entry per bin, `cells` sorted within each window run, `counts`
/// parallel, plus the true per-window record counts (they differ from
/// the bin-count sum for region records). The layout-independent unit a
/// checkpoint serializes.
#[derive(Debug, Clone, Default)]
pub(crate) struct HistoryDump {
    pub(crate) wins: Vec<WindowIdx>,
    pub(crate) cells: Vec<CellId>,
    pub(crate) counts: Vec<u32>,
    pub(crate) window_records: Vec<(WindowIdx, u32)>,
}

/// A borrowed history usable by the rescore kernel: either a per-entity
/// struct or an arena column range.
#[derive(Debug, Clone, Copy)]
pub(crate) enum HistoryView<'a> {
    Legacy(&'a MobilityHistory),
    Arena(EntityView<'a>),
}

impl HistoryView<'_> {
    /// Total bins `|H_u|` (feeds the pair length normalization).
    pub(crate) fn num_bins(&self) -> usize {
        match self {
            Self::Legacy(h) => h.num_bins(),
            Self::Arena(v) => v.num_bins(),
        }
    }
}

/// Window indices present in both views, ascending — dispatches to the
/// layout-native merge (the two layouts store the same sorted window
/// sequences, so the result is identical).
pub(crate) fn common_windows_of(u: &HistoryView<'_>, v: &HistoryView<'_>) -> Vec<WindowIdx> {
    match (u, v) {
        (HistoryView::Legacy(hu), HistoryView::Legacy(hv)) => common_windows(hu, hv).collect(),
        (HistoryView::Arena(vu), HistoryView::Arena(vv)) => {
            let mut out = Vec::new();
            for_common_runs(vu, vv, |w, _, _| out.push(w));
            out
        }
        _ => unreachable!("both sides of an engine share one storage mode"),
    }
}

/// One window's unnormalized contribution, computed through the
/// layout's native access path — bit-identical between layouts (the
/// arena path hands the scorer the same sorted cell/count content
/// `bins_in` would, through
/// [`SimilarityScorer::window_contribution_cells`]).
pub(crate) fn window_contribution_view(
    scorer: &SimilarityScorer<'_>,
    u: &HistoryView<'_>,
    v: &HistoryView<'_>,
    w: WindowIdx,
    stats: &mut LinkageStats,
) -> f64 {
    match (u, v) {
        (HistoryView::Legacy(hu), HistoryView::Legacy(hv)) => {
            scorer.window_contribution(hu, hv, w, stats)
        }
        (HistoryView::Arena(vu), HistoryView::Arena(vv)) => {
            scorer.window_contribution_cells(w, vu.window_run(w), vv.window_run(w), stats)
        }
        _ => unreachable!("both sides of an engine share one storage mode"),
    }
}

/// Calls `f(w, (cells_u, counts_u), (cells_v, counts_v))` for every
/// window common to both arena views, ascending — one linear merge over
/// the two window columns, handing out contiguous column slices (the
/// batch-kernel gather: no hashing, no per-window binary search).
pub(crate) fn for_common_runs<'a>(
    u: &EntityView<'a>,
    v: &EntityView<'a>,
    mut f: impl FnMut(WindowIdx, (&'a [CellId], &'a [u32]), (&'a [CellId], &'a [u32])),
) {
    let (uw, vw) = (u.wins, v.wins);
    let (mut i, mut j) = (0, 0);
    while i < uw.len() && j < vw.len() {
        let (wi, wj) = (uw[i], vw[j]);
        if wi < wj {
            i += uw[i..].partition_point(|&x| x == wi);
        } else if wj < wi {
            j += vw[j..].partition_point(|&x| x == wj);
        } else {
            let ie = i + uw[i..].partition_point(|&x| x == wi);
            let je = j + vw[j..].partition_point(|&x| x == wi);
            f(
                wi,
                (&u.cells[i..ie], &u.counts[i..ie]),
                (&v.cells[j..je], &v.counts[j..je]),
            );
            i = ie;
            j = je;
        }
    }
}
