//! Entity→pair adjacency: the index that makes a refresh tick's work
//! proportional to the *update footprint* instead of the cache size.
//!
//! The engine's pair cache maps `(left, right)` candidate pairs to their
//! per-window score contributions. A refresh tick must rescore exactly
//! the pairs adjacent to entities dirtied since the last tick; before
//! this index existed, it discovered them by probing every cached pair
//! against the dirty sets — two hash probes per pair per tick, O(cache)
//! even for a single-entity update. The adjacency index inverts the
//! cache: for each endpoint entity it records the owned pairs containing
//! it, so a tick walks `Σ degree(dirty entity)` entries instead.
//!
//! Each [`crate::shard::EngineShard`] keeps one `AdjacencyIndex` over
//! the pairs *it owns* (owner = home shard of the Left entity). Both
//! endpoints are indexed: a Right entity's pairs may be owned by any
//! shard, so every shard resolves the globally gathered dirty-entity
//! list against its local adjacency — the lookups that miss cost one
//! hash probe per (shard, dirty entity), not one per pair.

use std::collections::{HashMap, HashSet};

use slim_core::EntityId;

use crate::event::Side;

/// A candidate pair as keyed in the engine's cache: `(left, right)`.
pub(crate) type PairKey = (EntityId, EntityId);

/// Maps each endpoint entity of one shard's owned pairs to those pairs.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdjacencyIndex {
    /// Per side: entity → owned pairs containing it.
    by_entity: [HashMap<EntityId, HashSet<PairKey>>; 2],
}

impl AdjacencyIndex {
    /// Registers a pair under both of its endpoints.
    pub(crate) fn insert(&mut self, pair: PairKey) {
        self.by_entity[Side::Left.idx()]
            .entry(pair.0)
            .or_default()
            .insert(pair);
        self.by_entity[Side::Right.idx()]
            .entry(pair.1)
            .or_default()
            .insert(pair);
    }

    /// Unregisters a pair from both endpoints, dropping emptied entity
    /// entries so the index never outgrows the live cache.
    pub(crate) fn remove(&mut self, pair: PairKey) {
        for (side, e) in [(Side::Left, pair.0), (Side::Right, pair.1)] {
            if let Some(set) = self.by_entity[side.idx()].get_mut(&e) {
                set.remove(&pair);
                if set.is_empty() {
                    self.by_entity[side.idx()].remove(&e);
                }
            }
        }
    }

    /// The owned pairs containing `entity` on `side` (`None` = no owned
    /// pair touches it).
    pub(crate) fn pairs_of(&self, side: Side, entity: EntityId) -> Option<&HashSet<PairKey>> {
        self.by_entity[side.idx()].get(&entity)
    }

    /// The owned pairs containing `entity`, collected and sorted — the
    /// deterministic-order variant for barrier-time removals.
    pub(crate) fn pairs_of_sorted(&self, side: Side, entity: EntityId) -> Vec<PairKey> {
        let mut pairs: Vec<PairKey> = self
            .pairs_of(side, entity)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        pairs.sort_unstable();
        pairs
    }

    /// Number of pairs adjacent to `entity` on `side`.
    #[cfg(test)]
    pub(crate) fn degree(&self, side: Side, entity: EntityId) -> usize {
        self.pairs_of(side, entity).map(HashSet::len).unwrap_or(0)
    }

    /// Number of indexed endpoint entities on `side`.
    #[cfg(test)]
    pub(crate) fn num_entities(&self, side: Side) -> usize {
        self.by_entity[side.idx()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: u64, r: u64) -> PairKey {
        (EntityId(l), EntityId(r))
    }

    #[test]
    fn indexes_both_endpoints() {
        let mut adj = AdjacencyIndex::default();
        adj.insert(pair(1, 100));
        adj.insert(pair(1, 101));
        adj.insert(pair(2, 100));
        assert_eq!(adj.degree(Side::Left, EntityId(1)), 2);
        assert_eq!(adj.degree(Side::Left, EntityId(2)), 1);
        assert_eq!(adj.degree(Side::Right, EntityId(100)), 2);
        assert_eq!(adj.degree(Side::Right, EntityId(101)), 1);
        assert_eq!(
            adj.pairs_of_sorted(Side::Right, EntityId(100)),
            vec![pair(1, 100), pair(2, 100)]
        );
        assert!(adj.pairs_of(Side::Left, EntityId(99)).is_none());
    }

    #[test]
    fn remove_drops_emptied_entities() {
        let mut adj = AdjacencyIndex::default();
        adj.insert(pair(1, 100));
        adj.insert(pair(1, 101));
        adj.remove(pair(1, 100));
        assert_eq!(adj.degree(Side::Left, EntityId(1)), 1);
        assert_eq!(adj.num_entities(Side::Right), 1, "100 must be dropped");
        adj.remove(pair(1, 101));
        assert_eq!(adj.num_entities(Side::Left), 0);
        assert_eq!(adj.num_entities(Side::Right), 0);
        // Removing an absent pair is a no-op.
        adj.remove(pair(7, 7));
    }

    #[test]
    fn reinsert_after_remove() {
        let mut adj = AdjacencyIndex::default();
        adj.insert(pair(3, 300));
        adj.remove(pair(3, 300));
        adj.insert(pair(3, 300));
        assert_eq!(adj.degree(Side::Left, EntityId(3)), 1);
        // Duplicate insert is idempotent (set semantics).
        adj.insert(pair(3, 300));
        assert_eq!(adj.degree(Side::Right, EntityId(300)), 1);
    }
}
