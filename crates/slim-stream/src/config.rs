//! Streaming-engine configuration.

use slim_core::SlimConfig;
use slim_lsh::LshConfig;

use crate::steal::PoolMode;

/// Configuration of the incremental LSH candidate filter in streaming
/// mode.
///
/// Unlike the batch filter — whose signature length follows from the
/// total time span — a stream has no known span, so the signature is a
/// **ring of `spans` query spans** of `base.step_windows` leaf windows
/// each, covering the most recent `spans · step_windows` windows.
/// Banding is derived once from that fixed signature size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamLshConfig {
    /// Threshold / step / level / bucket parameters shared with the
    /// batch filter.
    pub base: LshConfig,
    /// Number of query spans in the ring signature.
    pub spans: usize,
}

impl Default for StreamLshConfig {
    fn default() -> Self {
        Self {
            base: LshConfig::default(),
            spans: 16,
        }
    }
}

/// How the engine stores per-shard mobility histories.
///
/// The observable contract — links, update streams, stats, and
/// finalized output — is bit-identical between the two modes for any
/// shard count, worker count, and steal schedule; the property tests
/// in `tests/arena_equivalence.rs` pin this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Struct-of-arrays columnar arenas
    /// ([`slim_core::arena::HistoryArena`]): one contiguous index range
    /// per entity, scored by a linear-sweep batch kernel. The
    /// production mode.
    #[default]
    Arena,
    /// The classic per-entity `HashMap<EntityId, MobilityHistory>`
    /// structs — kept as the equivalence baseline.
    Legacy,
}

/// Configuration of a [`crate::StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The linkage parameters (shared with the batch pipeline).
    pub slim: SlimConfig,
    /// Sliding-window capacity in temporal windows: only the most recent
    /// `W` windows of history are retained; older windows expire and
    /// their evidence is unwound. `None` = unbounded (full history) —
    /// the mode whose final output is identical to batch linkage.
    pub window_capacity: Option<u32>,
    /// Re-run matching + thresholding automatically after this many
    /// ingested events (a *refresh tick*). `0` disables automatic ticks;
    /// call [`crate::StreamEngine::refresh`] manually.
    pub refresh_every: usize,
    /// Engine state shards: per-entity state (histories, buffers, LSH
    /// rings) and per-pair state (contribution caches, adjacency) are
    /// partitioned by entity hash across this many
    /// [`crate::shard::EngineShard`]s, and ingest/refresh phases run
    /// one worker thread per shard. `0` = one shard per available
    /// core. The engine's observable behaviour (links, stats,
    /// finalized output) is bit-identical for every value.
    pub num_shards: usize,
    /// Workers in the persistent execution pool — **decoupled from
    /// [`StreamConfig::num_shards`]**: shards partition *state*, workers
    /// execute *chunks* of shard work distributed over work-stealing
    /// deques, so a hot shard's queue is consumed by every free worker
    /// instead of stalling its home thread. `0` = one worker per
    /// available core. Output is bit-identical for every value.
    pub num_workers: usize,
    /// How the pool places and schedules chunks. The default
    /// ([`PoolMode::Stealing`]) is the production mode;
    /// [`PoolMode::Static`] reproduces the old static per-shard
    /// partition (benchmark baseline), [`PoolMode::Scripted`] runs a
    /// seeded pseudo-random schedule (property tests). Results are
    /// bit-identical across all modes.
    pub pool_mode: PoolMode,
    /// Optional incremental LSH candidate filter. `None` = brute-force
    /// candidates (every active cross-dataset pair).
    pub lsh: Option<StreamLshConfig>,
    /// Record phase-span, worker-busy, and event-latency histograms
    /// (`true` by default). Telemetry is strictly observational: links,
    /// update streams, stats, and finalized output are bit-identical
    /// whether this is on or off — disabling it only skips the clock
    /// reads and histogram updates on the hot paths.
    pub telemetry: bool,
    /// History storage representation (columnar arena by default).
    pub storage: StorageMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            slim: SlimConfig::default(),
            window_capacity: None,
            refresh_every: 10_000,
            num_shards: 0,
            num_workers: 0,
            pool_mode: PoolMode::default(),
            lsh: None,
            telemetry: true,
            storage: StorageMode::default(),
        }
    }
}

impl StreamConfig {
    /// Validates parameter ranges and cross-parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.slim.validate()?;
        if let Some(w) = self.window_capacity {
            if w == 0 {
                return Err("window_capacity must be at least 1 window".into());
            }
        }
        if let Some(lsh) = &self.lsh {
            if lsh.spans == 0 {
                return Err("lsh.spans must be positive".into());
            }
            if lsh.base.step_windows == 0 {
                return Err("lsh.base.step_windows must be positive".into());
            }
            if !(lsh.base.threshold > 0.0 && lsh.base.threshold < 1.0) {
                return Err(format!(
                    "lsh.base.threshold {} outside (0, 1)",
                    lsh.base.threshold
                ));
            }
            if let Some(w) = self.window_capacity {
                let coverage = lsh.spans as u64 * lsh.base.step_windows as u64;
                if coverage < w as u64 {
                    return Err(format!(
                        "lsh ring covers {coverage} windows but window_capacity is {w}; \
                         raise lsh.spans or lsh.base.step_windows"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The effective shard count (resolving `0` to the core count).
    pub fn effective_shards(&self) -> usize {
        if self.num_shards > 0 {
            self.num_shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The effective pool worker count (resolving `0` to the core
    /// count).
    pub fn effective_workers(&self) -> usize {
        if self.num_workers > 0 {
            self.num_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(StreamConfig::default().validate().is_ok());
        assert!(StreamConfig::default().effective_shards() >= 1);
        assert!(StreamConfig::default().effective_workers() >= 1);
        assert_eq!(StreamConfig::default().pool_mode, PoolMode::Stealing);
    }

    #[test]
    fn explicit_worker_count_wins_over_core_count() {
        let cfg = StreamConfig {
            num_workers: 3,
            ..StreamConfig::default()
        };
        assert_eq!(cfg.effective_workers(), 3);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rejects_zero_window_capacity() {
        let cfg = StreamConfig {
            window_capacity: Some(0),
            ..StreamConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_lsh_ring_smaller_than_window() {
        let cfg = StreamConfig {
            window_capacity: Some(10_000),
            lsh: Some(StreamLshConfig {
                spans: 2,
                base: LshConfig {
                    step_windows: 4,
                    ..LshConfig::default()
                },
            }),
            ..StreamConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("ring covers"), "{err}");
    }

    #[test]
    fn rejects_invalid_slim_config() {
        let cfg = StreamConfig {
            slim: SlimConfig {
                b: 7.0,
                ..SlimConfig::default()
            },
            ..StreamConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
