//! The single merge barrier of a refresh tick.
//!
//! Everything the sharded engine computes in parallel is per-entity or
//! per-pair; only the dataset-global steps meet here. Since the
//! per-shard **edge caches** landed, the barrier no longer sweeps the
//! contribution caches: every shard maintains its owned pairs'
//! assembled scores sorted by pair and describes each tick's changes as
//! a sorted delta run, and the barrier k-way-merges those runs —
//! `O(dirty)` — into the batch the incremental matcher and the
//! warm-started threshold state consume. The full-assembly form
//! ([`kway_merge_edge_runs`]) remains for the exact Hungarian path.
//! Each helper is deterministic in the face of arbitrary shard counts
//! and thread interleavings: runs are keyed by pair (each pair owned by
//! exactly one shard), link diffs are sorted by pair, and every
//! statistic folded across shards is a commutative sum.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use slim_core::matching::exact_max_matching;
use slim_core::threshold::select_threshold;
use slim_core::{Edge, EdgeDelta, EntityId, SlimConfig};

use crate::adjacency::PairKey;
use crate::engine::LinkUpdate;

/// K-way merges per-shard runs sorted by pair key into one globally
/// sorted sequence. Pair ownership is exclusive, so no key appears in
/// two runs; ties (impossible by construction) would break by run
/// index to stay deterministic anyway.
pub(crate) fn kway_merge<T>(runs: Vec<Vec<(PairKey, T)>>) -> Vec<(PairKey, T)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<(PairKey, T)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(PairKey, usize)>> = BinaryHeap::with_capacity(iters.len());
    let mut heads: Vec<Option<(PairKey, T)>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        let head = it.next();
        if let Some((key, _)) = &head {
            heap.push(Reverse((*key, i)));
        }
        heads.push(head);
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        let (key, value) = heads[i].take().expect("heap entry implies a head");
        out.push((key, value));
        heads[i] = iters[i].next();
        if let Some((next_key, _)) = &heads[i] {
            heap.push(Reverse((*next_key, i)));
        }
    }
    out
}

/// The barrier's delta assembly: drains every shard's edge-cache patch
/// run and k-way-merges them into one pair-sorted [`EdgeDelta`] batch —
/// `O(dirty · log shards)` work, independent of the cache size.
pub(crate) fn merge_delta_runs(runs: Vec<Vec<(PairKey, Option<f64>)>>) -> Vec<EdgeDelta> {
    kway_merge(runs)
        .into_iter()
        .map(|((left, right), weight)| EdgeDelta {
            left,
            right,
            weight,
        })
        .collect()
}

/// Full edge assembly from the per-shard sorted edge caches — the
/// cold-path form (exact Hungarian re-match), `O(edges · log shards)`
/// with no re-sorting and no rescoring.
pub(crate) fn kway_merge_edge_runs(runs: Vec<Vec<(PairKey, f64)>>) -> Vec<Edge> {
    kway_merge(runs)
        .into_iter()
        .map(|((left, right), weight)| Edge {
            left,
            right,
            weight,
        })
        .collect()
}

/// Exact matching + stateless stop thresholding over fully assembled
/// edges — the barrier path for [`slim_core::MatchingMethod::HungarianExact`],
/// which has no incremental form. Returns the links plus the selected
/// matched-weight threshold (`None` when no threshold was selected) so
/// the tick barrier can publish both into its epoch snapshot.
pub(crate) fn exact_match_and_threshold(
    cfg: &SlimConfig,
    edges: &[Edge],
) -> (Vec<Edge>, Option<f64>) {
    let matching = exact_max_matching(edges);
    let weights: Vec<f64> = matching.iter().map(|e| e.weight).collect();
    let threshold = select_threshold(&weights, cfg.threshold_method);
    let links = match &threshold {
        Some(t) => matching
            .into_iter()
            .filter(|e| e.weight >= t.threshold)
            .collect(),
        None => matching,
    };
    (links, threshold.map(|t| t.threshold))
}

/// Difference between two served link sets, ordered by `(left, right)`.
pub(crate) fn diff_links(old: &[Edge], new: &[Edge]) -> Vec<LinkUpdate> {
    let old_by_pair: HashMap<(EntityId, EntityId), Edge> =
        old.iter().map(|e| ((e.left, e.right), *e)).collect();
    let new_by_pair: HashMap<(EntityId, EntityId), Edge> =
        new.iter().map(|e| ((e.left, e.right), *e)).collect();
    let mut updates: Vec<((EntityId, EntityId), LinkUpdate)> = Vec::new();
    for (&pair, &edge) in &new_by_pair {
        match old_by_pair.get(&pair) {
            None => updates.push((pair, LinkUpdate::Added(edge))),
            Some(&prev) if prev.weight != edge.weight => updates.push((
                pair,
                LinkUpdate::Reweighted {
                    previous: prev,
                    current: edge,
                },
            )),
            Some(_) => {}
        }
    }
    for (&pair, &edge) in &old_by_pair {
        if !new_by_pair.contains_key(&pair) {
            updates.push((pair, LinkUpdate::Removed(edge)));
        }
    }
    updates.sort_by_key(|&(pair, _)| pair);
    updates.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn diff_links_reports_all_transitions() {
        let old = vec![e(1, 1, 1.0), e(2, 2, 2.0), e(3, 3, 3.0)];
        let new = vec![e(2, 2, 2.5), e(3, 3, 3.0), e(4, 4, 4.0)];
        let updates = diff_links(&old, &new);
        assert_eq!(
            updates,
            vec![
                LinkUpdate::Removed(e(1, 1, 1.0)),
                LinkUpdate::Reweighted {
                    previous: e(2, 2, 2.0),
                    current: e(2, 2, 2.5)
                },
                LinkUpdate::Added(e(4, 4, 4.0)),
            ]
        );
    }

    #[test]
    fn exact_match_and_threshold_without_method_keeps_matching() {
        let cfg = SlimConfig {
            threshold_method: slim_core::ThresholdMethod::None,
            ..SlimConfig::default()
        };
        let edges = vec![e(1, 1, 1.0), e(1, 2, 0.5), e(2, 2, 2.0)];
        let (links, threshold) = exact_match_and_threshold(&cfg, &edges);
        // One-to-one matching picks the heavy pairings; no threshold cut.
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|l| l.left == l.right));
        assert_eq!(threshold, None, "ThresholdMethod::None selects nothing");
    }

    fn key(l: u64, r: u64) -> PairKey {
        (EntityId(l), EntityId(r))
    }

    #[test]
    fn kway_merge_interleaves_disjoint_sorted_runs() {
        let runs = vec![
            vec![(key(1, 5), "a"), (key(4, 0), "d")],
            vec![],
            vec![(key(2, 9), "b"), (key(3, 1), "c"), (key(9, 9), "e")],
        ];
        let merged = kway_merge(runs);
        let order: Vec<&str> = merged.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c", "d", "e"]);
        assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(kway_merge::<()>(vec![]).is_empty());
    }

    #[test]
    fn merge_delta_runs_keeps_upserts_and_removals() {
        let runs = vec![
            vec![(key(1, 1), Some(2.0)), (key(3, 3), None)],
            vec![(key(2, 2), Some(1.0))],
        ];
        let deltas = merge_delta_runs(runs);
        assert_eq!(
            deltas,
            vec![
                EdgeDelta {
                    left: EntityId(1),
                    right: EntityId(1),
                    weight: Some(2.0)
                },
                EdgeDelta {
                    left: EntityId(2),
                    right: EntityId(2),
                    weight: Some(1.0)
                },
                EdgeDelta {
                    left: EntityId(3),
                    right: EntityId(3),
                    weight: None
                },
            ]
        );
    }
}
