//! The single merge barrier of a refresh tick.
//!
//! Everything the sharded engine computes in parallel is per-entity or
//! per-pair; only the dataset-global steps meet here: assembling the
//! edge set from every shard's contribution cache, bipartite matching
//! (greedy or exact Hungarian), GMM stop thresholding, and diffing the
//! served link set. Each helper is deterministic in the face of
//! arbitrary shard counts and thread interleavings: edges are sorted by
//! `(left, right)` before matching, link diffs are sorted by pair, and
//! every statistic folded across shards is a commutative sum.

use std::collections::HashMap;

use slim_core::df::DfStats;
use slim_core::matching::{exact_max_matching, greedy_max_matching};
use slim_core::similarity::SimilarityScorer;
use slim_core::threshold::select_threshold;
use slim_core::{Edge, EntityId, MatchingMethod, SlimConfig};

use crate::engine::LinkUpdate;
use crate::event::Side;
use crate::shard::{lookup_history, run_per_shard, EngineShard};

/// Assembles the bipartite edge set from every shard's pair cache:
/// `score = Σ cached window contributions / pair length norm`, positive
/// scores only, sorted by `(left, right)` — the same arithmetic and
/// order the unsharded engine used, so the result is independent of the
/// shard count.
pub(crate) fn assemble_edges(
    shards: &[EngineShard],
    df: &[DfStats; 2],
    cfg: &SlimConfig,
) -> Vec<Edge> {
    let scorer = SimilarityScorer::from_df_stats(cfg, &df[0], &df[1]);
    let collect_one = |shard: &EngineShard| -> Vec<Edge> {
        let mut edges = Vec::with_capacity(shard.cache.len());
        for (&(u, v), windows) in &shard.cache {
            if windows.is_empty() {
                continue;
            }
            let bins_u = lookup_history(shards, Side::Left, u)
                .map(|h| h.num_bins())
                .unwrap_or(0);
            let bins_v = lookup_history(shards, Side::Right, v)
                .map(|h| h.num_bins())
                .unwrap_or(0);
            let score: f64 = windows.values().sum::<f64>() / scorer.pair_norm_bins(bins_u, bins_v);
            if score > 0.0 {
                edges.push(Edge {
                    left: u,
                    right: v,
                    weight: score,
                });
            }
        }
        edges
    };

    let total_cached: usize = shards.iter().map(|s| s.cache.len()).sum();
    let mut edges: Vec<Edge> =
        run_per_shard(shards.iter().collect(), total_cached >= 64, |shard| {
            collect_one(shard)
        })
        .into_iter()
        .flatten()
        .collect();
    edges.sort_by_key(|e| (e.left, e.right));
    edges
}

/// Matching + stop thresholding over the assembled edges — the barrier
/// steps shared verbatim with the batch pipeline.
pub(crate) fn match_and_threshold(cfg: &SlimConfig, edges: &[Edge]) -> Vec<Edge> {
    let matching = match cfg.matching_method {
        MatchingMethod::Greedy => greedy_max_matching(edges),
        MatchingMethod::HungarianExact => exact_max_matching(edges),
    };
    let weights: Vec<f64> = matching.iter().map(|e| e.weight).collect();
    let threshold = select_threshold(&weights, cfg.threshold_method);
    match &threshold {
        Some(t) => matching
            .into_iter()
            .filter(|e| e.weight >= t.threshold)
            .collect(),
        None => matching,
    }
}

/// Difference between two served link sets, ordered by `(left, right)`.
pub(crate) fn diff_links(old: &[Edge], new: &[Edge]) -> Vec<LinkUpdate> {
    let old_by_pair: HashMap<(EntityId, EntityId), Edge> =
        old.iter().map(|e| ((e.left, e.right), *e)).collect();
    let new_by_pair: HashMap<(EntityId, EntityId), Edge> =
        new.iter().map(|e| ((e.left, e.right), *e)).collect();
    let mut updates: Vec<((EntityId, EntityId), LinkUpdate)> = Vec::new();
    for (&pair, &edge) in &new_by_pair {
        match old_by_pair.get(&pair) {
            None => updates.push((pair, LinkUpdate::Added(edge))),
            Some(&prev) if prev.weight != edge.weight => updates.push((
                pair,
                LinkUpdate::Reweighted {
                    previous: prev,
                    current: edge,
                },
            )),
            Some(_) => {}
        }
    }
    for (&pair, &edge) in &old_by_pair {
        if !new_by_pair.contains_key(&pair) {
            updates.push((pair, LinkUpdate::Removed(edge)));
        }
    }
    updates.sort_by_key(|&(pair, _)| pair);
    updates.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn diff_links_reports_all_transitions() {
        let old = vec![e(1, 1, 1.0), e(2, 2, 2.0), e(3, 3, 3.0)];
        let new = vec![e(2, 2, 2.5), e(3, 3, 3.0), e(4, 4, 4.0)];
        let updates = diff_links(&old, &new);
        assert_eq!(
            updates,
            vec![
                LinkUpdate::Removed(e(1, 1, 1.0)),
                LinkUpdate::Reweighted {
                    previous: e(2, 2, 2.0),
                    current: e(2, 2, 2.5)
                },
                LinkUpdate::Added(e(4, 4, 4.0)),
            ]
        );
    }

    #[test]
    fn match_and_threshold_without_method_keeps_matching() {
        let cfg = SlimConfig {
            threshold_method: slim_core::ThresholdMethod::None,
            ..SlimConfig::default()
        };
        let edges = vec![e(1, 1, 1.0), e(1, 2, 0.5), e(2, 2, 2.0)];
        let links = match_and_threshold(&cfg, &edges);
        // One-to-one matching picks the heavy pairings; no threshold cut.
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|l| l.left == l.right));
    }
}
