//! The link-query server: answers `LINKS` / `THRESHOLD` / `EPOCH`
//! queries from the current epoch snapshot while the engine ingests.
//!
//! Architecture mirrors [`slim_telemetry::MetricsServer`] (bind
//! `127.0.0.1:0`-style, a named accept thread, a shutdown flag plus a
//! self-connect to wake the final accept), with two differences: each
//! connection gets its own handler thread running a request/response
//! **line protocol** (many queries per connection, not one-shot HTTP),
//! and every answer comes from [`EpochPointer::load`] — an `Arc` clone
//! of the immutable snapshot the last tick barrier published, so
//! serving never touches engine state and never blocks a barrier.
//!
//! ## Protocol
//!
//! One request per line, one reply per request; replies start with
//! `OK` or `ERR`:
//!
//! ```text
//! → EPOCH
//! ← OK epoch=4 links=17 events=4200 frontier=12600
//! → THRESHOLD
//! ← OK 0.3271
//! → LINKS 42
//! ← OK 2
//! ← 42,1042,0.8312
//! ← 42,977,0.4519
//! → anything else
//! ← ERR unknown command
//! ```
//!
//! `LINKS` replies carry a count header followed by that many
//! [`slim_core::matching::Edge::wire_line`] rows (snapshot order,
//! heaviest first). Malformed input never panics and never wedges a
//! connection: garbage and truncated lines get a one-line `ERR` reply
//! and the connection keeps serving; only a line longer than
//! [`MAX_QUERY_LINE`] closes the connection (after an `ERR` reply),
//! because an unframed byte stream cannot be resynchronized past it.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use slim_core::EntityId;
use slim_telemetry::Histogram;

use crate::snapshot::EpochPointer;
use crate::source::{Clock, WallClock};

/// Longest accepted request line in bytes (newline excluded). Longer
/// lines are answered with `ERR line too long` and the connection is
/// closed.
pub const MAX_QUERY_LINE: usize = 1024;

/// How long a connection handler blocks on a read before re-checking
/// the shutdown flag — bounds how long [`LinkQueryServer`]'s drop can
/// wait on an idle connection.
const READ_POLL: Duration = Duration::from_millis(100);

/// What one server run did: the counters the CLI folds into
/// [`crate::StreamStats`] via
/// [`crate::StreamEngine::absorb_serve_report`].
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Query lines answered (with `OK` or `ERR`).
    pub queries_served: u64,
    /// Per-query server-side handling spans (nanoseconds from a parsed
    /// request line to its reply handed to the socket).
    pub query_latency: Histogram,
}

/// State shared between the accept loop, the connection handlers, and
/// the owning [`LinkQueryServer`].
struct ServeShared {
    epoch: EpochPointer,
    shutdown: AtomicBool,
    queries: AtomicU64,
    latency: Mutex<Histogram>,
    clock: Arc<dyn Clock + Sync>,
}

/// A loopback TCP server answering the query protocol from the current
/// epoch. Bind it with the engine's [`crate::StreamEngine::epoch_pointer`]
/// before a drive starts: it serves epoch 0 (empty) until the first
/// tick, tracks every published epoch during the drive, and keeps
/// serving the final epoch until dropped. Dropping stops the accept
/// loop and joins every connection handler.
pub struct LinkQueryServer {
    addr: SocketAddr,
    shared: Arc<ServeShared>,
    accept_loop: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl LinkQueryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting query connections against `epoch`.
    pub fn bind(addr: &str, epoch: EpochPointer) -> Result<Self, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("serve: binding {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("serve: local addr: {e}"))?;
        let shared = Arc::new(ServeShared {
            epoch,
            shutdown: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
            clock: Arc::new(WallClock::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_loop = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("slim-serve".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(conn) = conn else { continue };
                        let shared = Arc::clone(&shared);
                        let handler = std::thread::Builder::new()
                            .name("slim-serve-conn".into())
                            .spawn(move || serve_connection(conn, &shared));
                        if let Ok(handler) = handler {
                            handlers
                                .lock()
                                .expect("handler list poisoned")
                                .push(handler);
                        }
                    }
                })
                .map_err(|e| format!("serve: spawning accept loop: {e}"))?
        };
        Ok(Self {
            addr: local,
            shared,
            accept_loop: Some(accept_loop),
            handlers,
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Query lines answered so far (live — readable mid-drive).
    pub fn queries_served(&self) -> u64 {
        self.shared.queries.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of the serve counters — fold into the
    /// engine with [`crate::StreamEngine::absorb_serve_report`] once
    /// serving is done.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            queries_served: self.queries_served(),
            query_latency: self
                .shared
                .latency
                .lock()
                .expect("latency histogram poisoned")
                .clone(),
        }
    }
}

impl Drop for LinkQueryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_loop.take() {
            let _ = h.join();
        }
        // Handlers observe the flag within one read-poll interval.
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// The read timed out mid-line; the partial line stays buffered.
    Poll,
    /// Clean EOF (or EOF mid-line — a truncated final line is not a
    /// query, matching the lenient ingest framing).
    Eof,
    /// The line exceeded [`MAX_QUERY_LINE`] bytes.
    Oversized,
    /// The connection failed.
    Err,
}

/// Reads one `\n`-terminated line into `buf` (appending to whatever a
/// previous [`LineRead::Poll`] left there), never more than
/// [`MAX_QUERY_LINE`] bytes of it. Byte-at-a-time over the
/// `BufReader` — the buffering makes that cheap, and it keeps the
/// bound exact without reading past the newline.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> LineRead {
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return LineRead::Eof,
            Ok(_) => {
                if byte[0] == b'\n' {
                    return LineRead::Line;
                }
                if buf.len() >= MAX_QUERY_LINE {
                    return LineRead::Oversized;
                }
                buf.push(byte[0]);
            }
            Err(e) => {
                return match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => LineRead::Poll,
                    std::io::ErrorKind::Interrupted => continue,
                    _ => LineRead::Err,
                }
            }
        }
    }
}

/// One connection's life: read query lines, answer each from the
/// current epoch, until EOF, an IO error, an oversized line, or server
/// shutdown. Never panics on any input; errors are answered, not
/// thrown.
fn serve_connection(conn: TcpStream, shared: &ServeShared) {
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_bounded_line(&mut reader, &mut buf) {
            LineRead::Poll => continue,
            LineRead::Eof | LineRead::Err => return,
            LineRead::Oversized => {
                let _ = writer.write_all(b"ERR line too long\n");
                return;
            }
            LineRead::Line => {
                let t0 = shared.clock.now_ns();
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                let reply = answer(&line, &shared.epoch);
                // Count + record before the reply hits the socket, so a
                // client that has read its reply always observes the
                // query in the counters.
                shared.queries.fetch_add(1, Ordering::SeqCst);
                shared
                    .latency
                    .lock()
                    .expect("latency histogram poisoned")
                    .record(shared.clock.now_ns().saturating_sub(t0));
                if writer.write_all(reply.as_bytes()).is_err() {
                    return;
                }
            }
        }
    }
}

/// Answers one query line from the current epoch. Total: every input —
/// valid, truncated, or garbage — maps to exactly one `OK`/`ERR` reply
/// string (newline-terminated; `LINKS` appends its rows).
fn answer(line: &str, epoch: &EpochPointer) -> String {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("EPOCH"), None, _) => {
            let snap = epoch.load();
            let frontier = snap
                .frontier
                .map_or_else(|| "none".to_string(), |t| t.secs().to_string());
            format!(
                "OK epoch={} links={} events={} frontier={}\n",
                snap.epoch,
                snap.links.len(),
                snap.events,
                frontier
            )
        }
        (Some("THRESHOLD"), None, _) => {
            let snap = epoch.load();
            match snap.threshold {
                Some(t) => format!("OK {t}\n"),
                None => "OK none\n".to_string(),
            }
        }
        (Some("LINKS"), Some(entity), None) => match entity.parse::<u64>() {
            Ok(id) => {
                let snap = epoch.load();
                let links = snap.links_of(EntityId(id));
                let mut reply = format!("OK {}\n", links.len());
                for e in &links {
                    reply.push_str(&e.wire_line());
                    reply.push('\n');
                }
                reply
            }
            Err(_) => "ERR LINKS takes one entity id\n".to_string(),
        },
        (Some("LINKS"), _, _) => "ERR LINKS takes one entity id\n".to_string(),
        (None, _, _) => "ERR empty query\n".to_string(),
        _ => "ERR unknown command\n".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};
    use std::sync::Arc;

    use slim_core::{Edge, Timestamp};

    use crate::snapshot::LinkSnapshot;

    fn edge(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    fn published() -> EpochPointer {
        let pointer = EpochPointer::new();
        pointer.publish(Arc::new(LinkSnapshot {
            epoch: 4,
            events: 4200,
            links: vec![edge(42, 1042, 0.75), edge(7, 8, 0.5), edge(9, 42, 0.25)],
            threshold: Some(0.25),
            frontier: Some(Timestamp(12600)),
        }));
        pointer
    }

    /// One connection, every command, replies read line-by-line.
    #[test]
    fn answers_the_protocol_over_loopback() {
        let server = LinkQueryServer::bind("127.0.0.1:0", published()).expect("bind");
        let conn = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        let mut ask = |query: &str, reply_lines: usize| -> Vec<String> {
            writer.write_all(query.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            (0..reply_lines)
                .map(|_| {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    line.trim_end().to_string()
                })
                .collect()
        };
        assert_eq!(
            ask("EPOCH", 1),
            vec!["OK epoch=4 links=3 events=4200 frontier=12600"]
        );
        assert_eq!(ask("THRESHOLD", 1), vec!["OK 0.25"]);
        assert_eq!(
            ask("LINKS 42", 3),
            vec!["OK 2", "42,1042,0.75", "9,42,0.25"]
        );
        assert_eq!(ask("LINKS 12345", 1), vec!["OK 0"]);
        assert_eq!(
            ask("LINKS forty-two", 1),
            vec!["ERR LINKS takes one entity id"]
        );
        assert_eq!(ask("NOPE", 1), vec!["ERR unknown command"]);
        // The connection survives the errors: a valid query still works.
        assert_eq!(ask("THRESHOLD", 1), vec!["OK 0.25"]);
        drop(writer);
        drop(reader);
        assert_eq!(server.queries_served(), 7);
        let report = server.report();
        assert_eq!(report.queries_served, 7);
        assert_eq!(report.query_latency.count(), 7);
    }

    /// Publications are visible to later queries on the same
    /// connection: the server always answers from the *current* epoch.
    #[test]
    fn later_epochs_are_served_as_published() {
        let pointer = EpochPointer::new();
        let server = LinkQueryServer::bind("127.0.0.1:0", pointer.clone()).expect("bind");
        let conn = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        let mut ask = |query: &str| -> String {
            writer.write_all(query.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("EPOCH"), "OK epoch=0 links=0 events=0 frontier=none");
        assert_eq!(ask("THRESHOLD"), "OK none");
        pointer.publish(Arc::new(LinkSnapshot {
            epoch: 1,
            events: 10,
            links: vec![edge(1, 2, 0.9)],
            threshold: Some(0.5),
            frontier: Some(Timestamp(900)),
        }));
        assert_eq!(ask("EPOCH"), "OK epoch=1 links=1 events=10 frontier=900");
    }

    /// An oversized line gets one `ERR` reply and the connection is
    /// closed — never a hang, never a panic.
    #[test]
    fn oversized_line_is_answered_and_closed() {
        let server = LinkQueryServer::bind("127.0.0.1:0", published()).expect("bind");
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        let long = vec![b'A'; MAX_QUERY_LINE + 64];
        conn.write_all(&long).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reply = String::new();
        let mut reader = std::io::BufReader::new(&mut conn);
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ERR line too long");
        // EOF follows: the server closed its side.
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).unwrap();
        assert_eq!(n, 0, "connection must be closed after an oversized line");
    }

    /// The answer function is total over arbitrary text: every input
    /// maps to exactly one newline-terminated `OK`/`ERR` reply.
    #[test]
    fn answer_is_total() {
        let pointer = published();
        let cases = ["", " ", "LINKS", "LINKS 1 2", "EPOCH extra", "\u{1F600}"];
        for line in cases {
            let reply = answer(line, &pointer);
            assert!(reply.starts_with("ERR"), "{line:?} → {reply:?}");
            assert!(reply.ends_with('\n'));
        }
        // Commands are case-sensitive: lowercase is unknown.
        assert!(answer("links 42", &pointer).starts_with("ERR"));
    }
}
