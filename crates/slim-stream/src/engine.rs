//! The incremental linkage engine — a coordinator over sharded state.
//!
//! ```text
//! events ──► control scan (watermark / late-drop / tick schedule)
//!              └► per-shard queues ──► shard-∥ apply: histories, rings,
//!                                      min-records buffers, dirty marks
//!              barrier: df/idf deltas · LSH partition upserts ·
//!                       candidate registration (pair owner = Left shard)
//! refresh ──► shard-∥ rescore of adjacency-reachable dirty pairs,
//!              patching each shard's sorted edge cache in place
//!              barrier: k-way merge of per-shard edge-delta runs ·
//!                       region-local incremental matching ·
//!                       warm-started GMM threshold · link diff
//! finalize ─► exact batch pipeline over the merged live histories
//! ```
//!
//! Every piece of per-entity and per-pair state lives on one
//! [`EngineShard`] keyed by entity hash; the engine owns only the
//! dataset-global residue: the merged df/idf statistics, the
//! partitioned LSH bucket index, the watermark, and the served link
//! set. Parallel phases run on a **persistent work-stealing worker
//! pool** ([`crate::pool`]) spawned once per engine and reused across
//! every ingest, refresh, and finalize phase: each phase's work is cut
//! into deterministic chunks (fixed-size slices of binning / rescore
//! queues, one chunk per shard where per-shard order matters) whose
//! outputs are merged in chunk-id order at the barrier, and cross-shard
//! effects are folded in as commutative deltas or coalesced ordered
//! sets — which makes the engine's observable behaviour — served
//! links, emitted [`LinkUpdate`] order, [`StreamStats`], and the
//! finalized output — **bit-identical for every shard count, worker
//! count, and steal schedule**.
//!
//! A refresh tick discovers its work through the per-shard entity→pair
//! [`crate::adjacency::AdjacencyIndex`]: only pairs adjacent to
//! entities dirtied since the last tick are visited
//! (`StreamStats::dirty_pairs_visited` vs
//! `StreamStats::cached_pairs_at_ticks` measures the saving against
//! the full cache sweep this replaced).
//!
//! Between ticks, cached contributions of *untouched* windows may lag
//! the globally drifting idf statistics — refreshed lazily, exactly
//! when one of their endpoints changes. [`StreamEngine::finalize`]
//! closes the gap: it runs the unmodified batch pipeline over the
//! incrementally built history sets, so an unbounded-window replay
//! finalizes to the bit-identical output of [`slim_core::Slim::link`]
//! on the same data — provided the window origins agree. An engine
//! left to infer its origin takes the first event's timestamp; the
//! batch pipeline takes the post-min-records-filter minimum. The two
//! coincide unless the stream opens with a record of a sparse entity
//! the batch filter drops; replay paths pin the origin via
//! [`StreamEngine::with_origin`] + [`crate::batch_equivalent_origin`]
//! to cover that case too.

use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use slim_core::df::DfStats;
use slim_core::similarity::SimilarityScorer;
use slim_core::{
    Edge, EdgeDelta, EntityId, HistorySet, IncrementalMatcher, LinkageOutput, LinkageStats,
    MatchingMethod, MobilityHistory, PreparedLinkage, ThresholdState, Timestamp, WindowIdx,
    WindowScheme,
};
use slim_lsh::{signature_buckets, signatures_collide, BucketIndex};
use slim_telemetry::{Histogram, MetricsRegistry, Snapshot, SnapshotSink};

use crate::adjacency::PairKey;
use crate::checkpoint::{
    self, CheckpointPolicy, CheckpointState, ConfigFingerprint, DfDump, EngineDump, MetaDump,
    ResumeState, ShardsDump,
};
use crate::config::StreamConfig;
use crate::event::{Side, StreamEvent};
use crate::lsh::LshGeometry;
use crate::merge;
use crate::pool::{chunk_ranges, WorkerPool};
use crate::shard::{
    bin_event, entity_shard, lookup_view, BinnedEvent, EngineShard, ExpiryEffects, IngestEffects,
    RescoreJob, RescoreOutcome, ScoredPair,
};
use crate::snapshot::{EpochLog, EpochPointer, LinkSnapshot};
use crate::source::Clock;
use crate::steal::PoolMode;
use crate::store::{common_windows_of, for_common_runs, window_contribution_view, HistoryView};
use crate::telemetry::{EngineTelemetry, PhaseId};
use crate::testing::FaultPlan;

/// One change to the served link set, emitted by a refresh tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkUpdate {
    /// A pair entered the link set.
    Added(Edge),
    /// A pair left the link set.
    Removed(Edge),
    /// A pair stayed linked but its score changed.
    Reweighted {
        /// The link as served before this tick.
        previous: Edge,
        /// The link as served now.
        current: Edge,
    },
}

/// Engine work counters. Every counter except
/// [`StreamStats::arena_compactions`], the scheduling telemetry
/// ([`StreamStats::steal_events`],
/// [`StreamStats::max_worker_busy_ns`],
/// [`StreamStats::min_worker_busy_ns`]), and the stall-timing-dependent
/// [`StreamStats::idle_evictions`] is defined over per-entity or
/// per-pair events (or deterministic barrier merges), so the values are
/// identical for any shard count, worker count, and steal schedule on
/// the same event stream. The scheduling telemetry reports *how* the
/// worker pool ran — it legitimately varies run to run — and arena
/// compaction counts follow the per-shard partition; both are
/// therefore **excluded from `PartialEq`** (the bit-identity contract
/// the equivalence tests compare).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Events accepted (including ones still in min-records buffers).
    pub events: u64,
    /// Events dropped because their window had already expired.
    pub late_dropped: u64,
    /// Refresh ticks run.
    pub ticks: u64,
    /// `(pair, window)` contribution recomputations across all ticks.
    pub rescored_windows: u64,
    /// Candidate pairs visited by refresh ticks. Every visited pair was
    /// either freshly discovered or reached through the entity→pair
    /// adjacency index from a dirty entity — never a blind cache sweep.
    pub dirty_pairs_visited: u64,
    /// Σ over ticks of the cached-pair total at tick time: the work a
    /// full-cache sweep would have done. `dirty_pairs_visited` staying
    /// below this is the adjacency index paying off.
    pub cached_pairs_at_ticks: u64,
    /// Cached pairs retired because their ring signatures no longer
    /// collide in any LSH band *and* all their cached window
    /// contributions were evicted.
    pub retired_pairs: u64,
    /// Temporal windows expired out of the sliding window.
    pub evicted_windows: u64,
    /// Edge-cache entries patched (inserted, reweighted, or removed)
    /// across all barriers. Every patch is one pair's cached edge
    /// changing, so on a localized update this stays proportional to
    /// the update footprint — never to the cache size the pre-refactor
    /// barrier swept.
    pub edges_patched: u64,
    /// Σ over ticks of the incremental matcher's conflict-region size
    /// (edges greedy selection actually re-ran over). Bounded by the
    /// connected components the patched edges touch, not the edge set.
    pub matching_region_size: u64,
    /// Σ EM iterations spent in warm-started GMM threshold fits (0 on
    /// cold fits — first tick, warm non-convergence fallback, or a
    /// non-GMM threshold method).
    pub em_warm_iters: u64,
    /// Total nanoseconds an ingestion-front-end producer spent blocked
    /// on a full bounded channel across [`StreamEngine::drive`] runs —
    /// nonzero means backpressure reached the feed (the engine is the
    /// bottleneck, not the source).
    pub blocked_producer_ns: u64,
    /// Highest bounded-channel occupancy observed by any
    /// [`StreamEngine::drive`] run (≤ its `queue_cap`).
    pub queue_high_watermark: u64,
    /// Arrivals rejected by the front-end watermark reorder buffer for
    /// exceeding the configured out-of-order lag. Distinct from
    /// [`StreamStats::late_dropped`], which counts events whose
    /// *window* had already expired out of the sliding window.
    pub late_events: u64,
    /// Entities demoted because expiry left them at or below the
    /// min-records threshold.
    pub demoted_entities: u64,
    /// Still-live records unwound from the active slice by those
    /// demotions. The records are not lost: they move back into the
    /// entity's min-records pending buffer (the demotion re-buffer
    /// ring), so they keep counting toward reactivation exactly as a
    /// batch run over the live slice would count them.
    pub demoted_records: u64,
    /// Columnar-arena compaction passes across all shards (0 under
    /// [`crate::StorageMode::Legacy`]). Compaction triggers on
    /// per-shard arena fill, which depends on how entities partition
    /// across shards — deterministic for a fixed shard count but
    /// legitimately different across shard counts, so this is
    /// **excluded from `PartialEq`** like the scheduling telemetry.
    pub arena_compactions: u64,
    /// Chunks of shard work executed by a pool worker other than the
    /// one they were placed on — nonzero means the stealing pool
    /// actually rebalanced a skewed phase. Scheduling telemetry:
    /// varies with worker count and schedule, excluded from equality.
    pub steal_events: u64,
    /// Highest per-worker busy time (nanoseconds) across the pool over
    /// the engine's lifetime. Under a static partition with a hot
    /// shard, this diverges from [`StreamStats::min_worker_busy_ns`];
    /// with stealing the two converge. Scheduling telemetry, excluded
    /// from equality.
    pub max_worker_busy_ns: u64,
    /// Lowest per-worker busy time (nanoseconds) across the pool — `0`
    /// until every worker has executed at least one chunk. Scheduling
    /// telemetry, excluded from equality.
    pub min_worker_busy_ns: u64,
    /// Wire lines that failed to parse on a lenient (multi-connection)
    /// ingest path and were counted + skipped instead of killing the
    /// connection. A pure function of the fed bytes, so included in
    /// equality.
    pub malformed_lines: u64,
    /// Connections that completed the fan-in protocol (joined the
    /// frontier) across [`StreamEngine::drive_fan_in`] runs. A function
    /// of the scripted/accepted connection set, so included in equality.
    pub connections_served: u64,
    /// Connections evicted from the frontier merge for exceeding the
    /// idle timeout. Depends on wall-clock arrival timing (which thread
    /// stalled how long), so — like the scheduling telemetry —
    /// **excluded from `PartialEq`**.
    pub idle_evictions: u64,
    /// Epoch snapshots published at tick barriers (one per refresh tick
    /// that ran with a window scheme). A pure function of the stream
    /// prefix + tick schedule, so included in equality.
    pub snapshots_published: u64,
    /// Link queries answered by epoch-snapshot query servers, folded in
    /// via [`StreamEngine::absorb_serve_report`] after a serving run. A
    /// function of the queries the clients issued, so included in
    /// equality (both sides of a comparison fold in the same report —
    /// or none).
    pub queries_served: u64,
    /// Checkpoint files written durably (temp + fsync + rename
    /// completed). A function of the checkpoint cadence, not of the
    /// event stream — a checkpoint-off run has 0 while producing
    /// identical output — so **excluded from `PartialEq`** like the
    /// scheduling telemetry.
    pub checkpoints_written: u64,
    /// Checkpoint files rejected during recovery (bad magic, torn
    /// frame, checksum mismatch) before a valid one loaded. Only a
    /// recovered run can have these; the unbroken reference it must
    /// compare equal to never does — **excluded from `PartialEq`**.
    pub checkpoints_rejected: u64,
    /// Total bytes of durable checkpoint payload written. Follows
    /// `checkpoints_written`, so likewise **excluded from `PartialEq`**.
    pub checkpoint_bytes: u64,
}

impl PartialEq for StreamStats {
    /// Equality over the deterministic counters only: the scheduling
    /// telemetry (`steal_events`, `max_worker_busy_ns`,
    /// `min_worker_busy_ns`) describes where and when chunks ran, and
    /// `arena_compactions` follows the per-shard arena fill — both are
    /// degrees of freedom the bit-identity contract explicitly leaves
    /// free.
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.late_dropped == other.late_dropped
            && self.ticks == other.ticks
            && self.rescored_windows == other.rescored_windows
            && self.dirty_pairs_visited == other.dirty_pairs_visited
            && self.cached_pairs_at_ticks == other.cached_pairs_at_ticks
            && self.retired_pairs == other.retired_pairs
            && self.evicted_windows == other.evicted_windows
            && self.edges_patched == other.edges_patched
            && self.matching_region_size == other.matching_region_size
            && self.em_warm_iters == other.em_warm_iters
            && self.blocked_producer_ns == other.blocked_producer_ns
            && self.queue_high_watermark == other.queue_high_watermark
            && self.late_events == other.late_events
            && self.demoted_entities == other.demoted_entities
            && self.demoted_records == other.demoted_records
            && self.malformed_lines == other.malformed_lines
            && self.connections_served == other.connections_served
            && self.snapshots_published == other.snapshots_published
            && self.queries_served == other.queries_served
        // arena_compactions deliberately absent: shard-partition-dependent.
        // idle_evictions deliberately absent: stall-timing-dependent.
        // checkpoints_written / checkpoints_rejected / checkpoint_bytes
        // deliberately absent: durability-cadence-dependent (a recovered
        // run must compare equal to the unbroken reference).
    }
}

impl Eq for StreamStats {}

/// The partitioned LSH runtime: shared banding geometry plus one
/// [`BucketIndex`] partition per shard. At each merge barrier the same
/// coalesced signature-update sequence is offered to every partition;
/// each touches only the `(band, bucket)` slots it owns and the
/// partners it reports are unioned per entity — the cross-shard
/// candidate handoff.
struct LshRuntime {
    geom: LshGeometry,
    partitions: Vec<BucketIndex>,
}

impl LshRuntime {
    fn new(cfg: &crate::config::StreamLshConfig, num_shards: usize) -> Self {
        let geom = LshGeometry::new(cfg);
        let partitions = (0..num_shards)
            .map(|p| {
                BucketIndex::partitioned(
                    geom.bands,
                    geom.rows,
                    geom.num_buckets,
                    p as u64,
                    num_shards as u64,
                )
            })
            .collect();
        Self { geom, partitions }
    }
}

/// Minimum work items (queued events, signature updates, expiring
/// entities) before a phase is dispatched to the worker pool; below it
/// the per-shard work runs inline (single-event `ingest` stays
/// allocation-light and dispatch-free).
const PARALLEL_THRESHOLD: usize = 128;

/// Pool gate for tick rescoring — lower than [`PARALLEL_THRESHOLD`]
/// because one rescore job (a pair's dirty windows) carries far more
/// work than one ingest event.
const PARALLEL_RESCORE_THRESHOLD: usize = 32;

/// Events per binning chunk. Fixed (never derived from the worker
/// count) so chunk ids — and the chunk-id-ordered reassembly — are
/// identical for every worker count.
const INGEST_BIN_CHUNK: usize = 512;

/// Rescore jobs per chunk: a hot shard's job list splits into many
/// stealable chunks, which is what makes tick latency track total
/// dirty work instead of the hottest shard. Fixed for the same
/// determinism reason as [`INGEST_BIN_CHUNK`].
const RESCORE_CHUNK: usize = 32;

/// The event-driven linkage engine. See the module docs for the data
/// flow; see [`StreamConfig`] for the knobs.
pub struct StreamEngine {
    cfg: StreamConfig,
    /// Resolved shard count (≥ 1).
    num_shards: usize,
    /// Resolved pool worker count (≥ 1).
    num_workers: usize,
    /// The persistent execution pool: spawned once (lazily, on the
    /// first phase big enough to parallelize) and reused by every
    /// ingest, refresh, and finalize phase until the engine drops.
    pool: WorkerPool,
    scheme: Option<WindowScheme>,
    shards: Vec<EngineShard>,
    /// Barrier-merged dataset-level statistics, `[left, right]`.
    df: [DfStats; 2],
    /// Total window domain (max appended window + 1).
    domain: u32,
    lsh: Option<LshRuntime>,
    /// Highest window index seen.
    watermark: WindowIdx,
    /// Windows below this index have expired.
    expired_below: WindowIdx,
    /// The currently served link set (as of the last tick).
    links: Vec<Edge>,
    /// The greedy matching maintained under edge deltas — mirrors the
    /// union of the per-shard edge caches; repaired region-locally at
    /// each barrier.
    matcher: IncrementalMatcher,
    /// Warm-started stop-threshold state over the matched weights.
    threshold_state: ThresholdState,
    events_since_refresh: usize,
    stats: StreamStats,
    scoring_stats: LinkageStats,
    /// Connections currently merged into the fan-in frontier (a gauge:
    /// rises on Join, falls on Leave/eviction, `0` outside
    /// [`StreamEngine::drive_fan_in`] runs).
    live_connections: u64,
    /// Engine-thread spans, event latency, and the snapshot plumbing.
    tel: EngineTelemetry,
    /// The published epoch pointer: swapped at each tick barrier, loaded
    /// by query servers and reader threads holding a clone.
    epoch: EpochPointer,
    /// Optional observation hook recording every published epoch (the
    /// equivalence tests' complete publication sequence).
    epoch_log: Option<EpochLog>,
    /// Active durability policy (`None` = checkpointing off). Lives on
    /// the engine — not on the `Copy + Eq` [`StreamConfig`] /
    /// `DriveOptions` — because it holds a path and never participates
    /// in equality contracts.
    checkpoint: Option<CheckpointPolicy>,
    /// Deterministic fault injection for the crash/recover harness
    /// (default: no faults).
    fault_plan: FaultPlan,
    /// Pump-side resume state loaded by [`StreamEngine::recover`],
    /// consumed by the next drive.
    resume: Option<ResumeState>,
}

impl StreamEngine {
    /// Creates an engine after validating the configuration. The window
    /// scheme's origin is taken from the first ingested event; use
    /// [`StreamEngine::with_origin`] to pin it (e.g. to compare against
    /// a batch run over data whose earliest record is known).
    pub fn new(cfg: StreamConfig) -> Result<Self, String> {
        cfg.validate()?;
        let num_shards = cfg.effective_shards();
        let num_workers = cfg.effective_workers();
        let storage = cfg.storage;
        // Demotion (and with it the re-buffer ring) only exists under a
        // bounded window — unbounded engines never expire evidence.
        let retain_live = cfg.window_capacity.is_some();
        Ok(Self {
            lsh: cfg.lsh.as_ref().map(|l| LshRuntime::new(l, num_shards)),
            pool: WorkerPool::new(num_workers, cfg.pool_mode, cfg.telemetry),
            tel: EngineTelemetry::new(cfg.telemetry),
            cfg,
            num_shards,
            num_workers,
            scheme: None,
            shards: (0..num_shards)
                .map(|_| EngineShard::new(storage, retain_live))
                .collect(),
            df: [DfStats::new(), DfStats::new()],
            domain: 0,
            watermark: 0,
            expired_below: 0,
            links: Vec::new(),
            matcher: IncrementalMatcher::new(),
            threshold_state: ThresholdState::new(),
            events_since_refresh: 0,
            stats: StreamStats::default(),
            scoring_stats: LinkageStats::default(),
            live_connections: 0,
            epoch: EpochPointer::new(),
            epoch_log: None,
            checkpoint: None,
            fault_plan: FaultPlan::default(),
            resume: None,
        })
    }

    /// [`StreamEngine::new`] with the window origin pinned up front.
    pub fn with_origin(cfg: StreamConfig, origin: Timestamp) -> Result<Self, String> {
        let mut engine = Self::new(cfg)?;
        engine.init_scheme(origin);
        Ok(engine)
    }

    fn init_scheme(&mut self, origin: Timestamp) {
        self.scheme = Some(WindowScheme::new(origin, self.cfg.slim.window_width_secs));
    }

    /// The engine's window scheme (`None` until the first event).
    pub fn scheme(&self) -> Option<&WindowScheme> {
        self.scheme.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The resolved shard count.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The resolved worker-pool size (decoupled from
    /// [`StreamEngine::num_shards`]).
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Refreshes the scheduling telemetry in [`StreamStats`] from the
    /// pool's lifetime counters. Called after every phase that may have
    /// dispatched chunks.
    fn sync_pool_stats(&mut self) {
        self.stats.steal_events = self.pool.steal_events();
        let (max, min) = self.pool.busy_spread_ns();
        self.stats.max_worker_busy_ns = max;
        self.stats.min_worker_busy_ns = min;
    }

    /// Refreshes [`StreamStats::arena_compactions`] from the per-shard
    /// stores. Called after phases that append or evict history.
    fn sync_arena_stats(&mut self) {
        self.stats.arena_compactions = self
            .shards
            .iter()
            .map(|s| s.histories[0].compactions() + s.histories[1].compactions())
            .sum();
    }

    /// Work counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Cumulative similarity-scoring counters across all ticks.
    pub fn scoring_stats(&self) -> &LinkageStats {
        &self.scoring_stats
    }

    /// The link set as of the last refresh tick.
    pub fn links(&self) -> &[Edge] {
        &self.links
    }

    /// Number of active (past the min-records filter) entities.
    pub fn num_active(&self, side: Side) -> usize {
        self.shards.iter().map(|s| s.active[side.idx()].len()).sum()
    }

    /// Number of candidate pairs currently tracked (across all shards).
    pub fn num_candidate_pairs(&self) -> usize {
        self.shards.iter().map(|s| s.cache.len()).sum()
    }

    /// Number of live edges across the per-shard edge caches (pairs
    /// whose assembled score was strictly positive at their last
    /// rescore).
    pub fn num_live_edges(&self) -> usize {
        self.shards.iter().map(|s| s.edges.len()).sum()
    }

    /// The live history of one entity (`None` if filtered or expired).
    /// Owned: the arena storage materializes the per-entity struct on
    /// demand; this is an inspection API, not a hot path.
    pub fn history(&self, side: Side, entity: EntityId) -> Option<MobilityHistory> {
        self.shards[entity_shard(side, entity, self.num_shards)].histories[side.idx()]
            .materialize(entity)
    }

    /// Number of entities with a live history on one side.
    pub fn num_tracked_entities(&self, side: Side) -> usize {
        self.shards
            .iter()
            .map(|s| s.histories[side.idx()].len())
            .sum()
    }

    /// Entity ids with a live history on one side, sorted.
    pub fn tracked_entities_sorted(&self, side: Side) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .shards
            .iter()
            .flat_map(|s| s.histories[side.idx()].entity_ids())
            .collect();
        out.sort_unstable();
        out
    }

    fn lsh_level(&self) -> Option<u8> {
        self.lsh.as_ref().map(|l| l.geom.spatial_level)
    }

    /// Drains a [`crate::source::StreamSource`] to EOF through the
    /// bounded ingestion front-end: the source runs on a producer
    /// thread behind a backpressured channel, arrivals are restored to
    /// canonical order by the watermark reorder buffer, and refresh
    /// ticks fire per [`crate::source::TickPolicy`] — the inverted
    /// loop where the engine pulls its feed instead of being pushed
    /// events. Overrides the engine's `refresh_every` with the policy
    /// (an `EveryN(n)` policy installs `n`; the others disable the
    /// internal counter and tick from the pump). Does *not* refresh or
    /// finalize at EOF; callers decide how to close the stream.
    pub fn drive<S: crate::source::StreamSource + Send>(
        &mut self,
        source: S,
        opts: &crate::source::DriveOptions,
    ) -> Result<crate::source::IngestReport, String> {
        crate::source::pump::run(self, source, opts)
    }

    /// Installs the tick policy's internal refresh interval (the pump
    /// owns external ticking for the non-`EveryN` policies).
    pub(crate) fn set_refresh_every(&mut self, n: usize) {
        self.cfg.refresh_every = n;
        // A pending recovery resume carries the checkpointed tick
        // counter; resetting it would shift every subsequent `EveryN`
        // tick relative to the unbroken run.
        if self.resume.is_none() {
            self.events_since_refresh = 0;
        }
    }

    /// Folds one drive run's channel/watermark counters into the stats.
    pub(crate) fn absorb_ingest_report(&mut self, blocked_ns: u64, high_wm: u64, late: u64) {
        self.stats.blocked_producer_ns += blocked_ns;
        self.stats.queue_high_watermark = self.stats.queue_high_watermark.max(high_wm);
        self.stats.late_events += late;
    }

    /// Folds one fan-in run's connection counters into the stats.
    pub(crate) fn absorb_fan_in_report(
        &mut self,
        connections: u64,
        malformed_lines: u64,
        idle_evictions: u64,
    ) {
        self.stats.connections_served += connections;
        self.stats.malformed_lines += malformed_lines;
        self.stats.idle_evictions += idle_evictions;
    }

    /// Updates the `live_connections` gauge (connections currently
    /// merged into the fan-in frontier). Maintained by the fan-in pump
    /// as connections join and leave; returns to `0` when a drive ends.
    pub(crate) fn set_live_connections(&mut self, live: u64) {
        self.live_connections = live;
    }

    /// Records one per-connection frontier-lag observation (how far a
    /// connection's watermark trails the leader's, in event-time
    /// seconds — a pure function of the fed events, so the histogram is
    /// reproducible run to run). No-op with telemetry disabled.
    pub(crate) fn record_frontier_lag(&mut self, lag_secs: u64) {
        if self.tel.enabled {
            self.tel.frontier_lag.record(lag_secs);
        }
    }

    /// The per-connection frontier-lag histogram (event-time seconds a
    /// connection's watermark trailed the frontier leader at each
    /// advance), recorded by [`StreamEngine::drive_fan_in`].
    pub fn frontier_lag_histogram(&self) -> Histogram {
        self.tel.frontier_lag.clone()
    }

    /// Drains a multi-connection fan-in tier to EOF: every connection
    /// produces into one bounded MPSC channel (Join/Event/Leave
    /// protocol), per-connection watermarks are merged into the global
    /// min-frontier by [`crate::source::ConnectionFrontier`], and the
    /// frontier governs reorder-buffer release and `Watermark` ticks.
    /// The multi-producer sibling of [`StreamEngine::drive`].
    pub fn drive_fan_in<F: crate::source::FanIn + Send>(
        &mut self,
        fan_in: F,
        opts: &crate::source::DriveOptions,
    ) -> Result<crate::source::IngestReport, String> {
        crate::source::pump::run_fan_in(self, fan_in, opts)
    }

    /// Enables crash-safe checkpointing: every `every` consumed source
    /// events, [`StreamEngine::drive`] serializes the complete engine +
    /// pump state into `dir` (atomic temp-file + fsync + rename),
    /// retaining the newest `keep` files. `every = 0` disables
    /// checkpointing again. See [`StreamEngine::recover`] for the read
    /// side and the `checkpoint` module docs for the file format.
    pub fn set_checkpoint_policy(&mut self, dir: PathBuf, every: u64, keep: usize) {
        self.checkpoint = (every > 0).then(|| CheckpointPolicy {
            dir,
            every,
            keep: keep.max(1),
        });
    }

    /// The active durability policy, if any.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// Installs a deterministic fault plan (kill-at-event, torn write,
    /// bit flip) for the crash/recover test harness. Strictly a testing
    /// hook: the default plan injects nothing.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The installed fault plan (all-`None` by default).
    pub(crate) fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// Hands the recovered pump state (reorder buffer, ticker, resume
    /// offset) to the drive loop — present exactly once, on the first
    /// drive after [`StreamEngine::recover`].
    pub(crate) fn take_resume_state(&mut self) -> Option<ResumeState> {
        self.resume.take()
    }

    /// Serializes the complete current state plus `pump` and installs
    /// it atomically in the policy directory, then prunes beyond the
    /// retention count. `corrupt` applies the fault plan's torn-write /
    /// bit-flip corruption to the image first (the harness's
    /// crash-mid-write simulation). No-op without a policy.
    pub(crate) fn write_checkpoint(
        &mut self,
        pump: ResumeState,
        corrupt: bool,
    ) -> Result<(), String> {
        let Some(policy) = self.checkpoint.clone() else {
            return Ok(());
        };
        let t0 = self.tel.enabled.then(|| self.tel.now_ns());
        let consumed = pump.consumed;
        let state = self.capture_state(pump);
        let mut bytes = checkpoint::encode(&state);
        if corrupt {
            checkpoint::apply_fault(&mut bytes, &self.fault_plan);
        }
        let written = checkpoint::write_atomic(&policy.dir, consumed, &bytes)?;
        checkpoint::prune_old(&policy.dir, policy.keep);
        self.stats.checkpoints_written += 1;
        self.stats.checkpoint_bytes += written;
        if let Some(t0) = t0 {
            let span = self.tel.now_ns().saturating_sub(t0);
            self.tel.checkpoint_write.record(span);
        }
        Ok(())
    }

    /// Freezes the engine into its checkpoint image. Shard state is
    /// merged into globally sorted collections (the image is
    /// shard-agnostic); the published epoch's scalars are read back
    /// from the epoch pointer so recovery can republish it verbatim.
    fn capture_state(&self, pump: ResumeState) -> CheckpointState {
        let snap = self.epoch.load();
        let mut shards = ShardsDump::default();
        for shard in &self.shards {
            for side in [Side::Left, Side::Right] {
                let i = side.idx();
                for e in shard.histories[i].entity_ids() {
                    let dump = shard.histories[i]
                        .export_entity(e)
                        .expect("listed by entity_ids");
                    shards.histories[i].push((e, dump));
                }
                shards.pending[i].extend(shard.pending[i].iter().map(|(&e, v)| (e, v.clone())));
                shards.live_events[i]
                    .extend(shard.live_events[i].iter().map(|(&e, v)| (e, v.clone())));
                shards.active[i].extend(shard.active[i].iter().copied());
                shards.dirty[i].extend(
                    shard.dirty[i]
                        .iter()
                        .map(|(&e, ws)| (e, ws.iter().copied().collect::<Vec<_>>())),
                );
                shards.dead[i].extend(shard.dead[i].iter().copied());
            }
            shards.rings.extend(shard.rings.export());
            shards.cache.extend(
                shard
                    .cache
                    .iter()
                    .map(|(&p, m)| (p, m.iter().map(|(&w, &v)| (w, v)).collect::<Vec<_>>())),
            );
            shards.fresh.extend(shard.fresh.iter().copied());
            shards
                .edges
                .extend(shard.edges.iter().map(|(&p, &w)| (p, w)));
            shards
                .edge_deltas
                .extend(shard.edge_deltas.iter().map(|(&p, &w)| (p, w)));
        }
        // Canonical global order: the image must be byte-identical for
        // every shard count (and the per-shard maps iterate in hash
        // order anyway).
        for i in 0..2 {
            shards.histories[i].sort_unstable_by_key(|&(e, _)| e);
            shards.pending[i].sort_unstable_by_key(|&(e, _)| e);
            shards.live_events[i].sort_unstable_by_key(|&(e, _)| e);
            shards.active[i].sort_unstable();
            shards.dirty[i].sort_unstable_by_key(|&(e, _)| e);
            shards.dead[i].sort_unstable();
        }
        shards.rings.sort_unstable_by_key(|d| (d.side, d.entity));
        shards.cache.sort_unstable_by_key(|&(p, _)| p);
        shards.fresh.sort_unstable();
        shards.edges.sort_unstable_by_key(|&(p, _)| p);
        shards.edge_deltas.sort_unstable_by_key(|&(p, _)| p);

        CheckpointState {
            meta: MetaDump {
                consumed: pump.consumed,
                fingerprint: ConfigFingerprint::of(&self.cfg),
            },
            engine: EngineDump {
                origin: self.scheme.as_ref().map(|s| s.window_start(0).secs()),
                domain: self.domain,
                watermark: self.watermark,
                expired_below: self.expired_below,
                events_since_refresh: self.events_since_refresh as u64,
                stats: self.stats,
                scoring: self.scoring_stats,
                links: self.links.clone(),
                epoch_events: snap.events,
                epoch_threshold: snap.threshold,
                epoch_frontier: snap.frontier.map(|t| t.secs()),
                matcher_edges: self.matcher.edges_sorted(),
                warm_seed: self.threshold_state.warm_seed(),
                df: [0, 1].map(|i| DfDump {
                    entries: self.df[i].sorted_entries(),
                    total_bins: self.df[i].total_bins() as u64,
                    num_entities: self.df[i].num_entities() as u64,
                }),
            },
            shards,
            pump,
        }
    }

    /// Rebuilds an engine from the newest valid checkpoint in `dir`,
    /// falling back past torn or corrupted files (each one counted in
    /// [`StreamStats::checkpoints_rejected`]). `cfg` must fingerprint
    /// identically to the checkpoint's configuration (shard and worker
    /// counts excepted — checkpoints are shard-agnostic). The next
    /// [`StreamEngine::drive`] over the *same source* resumes after the
    /// checkpointed accepted prefix, and everything observable from
    /// then on — published epochs, served links, stats, finalized
    /// output — is bit-identical to a run that never crashed.
    pub fn recover(cfg: StreamConfig, dir: &Path) -> Result<Self, String> {
        let (state, rejected) = checkpoint::load_latest(dir)?;
        state.meta.fingerprint.check(&cfg)?;
        let mut engine = Self::new(cfg)?;
        engine.restore_state(state)?;
        engine.stats.checkpoints_rejected += rejected;
        Ok(engine)
    }

    /// The recovery inverse of [`StreamEngine::capture_state`]:
    /// redistributes the merged dumps across this engine's shards by
    /// the deterministic entity hash and rebuilds every derived
    /// structure (window membership, adjacency, bucket partitions,
    /// matching, threshold multiset, published epoch).
    fn restore_state(&mut self, state: CheckpointState) -> Result<(), String> {
        let CheckpointState {
            meta: _,
            engine: e,
            shards: s,
            pump,
        } = state;
        if let Some(origin) = e.origin {
            self.init_scheme(Timestamp(origin));
        }
        self.domain = e.domain;
        self.watermark = e.watermark;
        self.expired_below = e.expired_below;
        self.events_since_refresh = e.events_since_refresh as usize;
        self.stats = e.stats;
        self.scoring_stats = e.scoring;
        self.links = e.links;
        self.df = e.df.map(|d| {
            DfStats::from_parts(d.entries, d.total_bins as usize, d.num_entities as usize)
        });

        let n = self.num_shards;
        let ring_keys: Vec<(Side, EntityId)> = s.rings.iter().map(|d| (d.side, d.entity)).collect();
        let ShardsDump {
            histories,
            pending,
            live_events,
            active,
            dirty,
            dead,
            rings,
            cache,
            fresh,
            edges,
            edge_deltas,
        } = s;
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(histories) {
            let i = side.idx();
            for (ent, dump) in per_side {
                let home = &mut self.shards[entity_shard(side, ent, n)];
                // Window membership is derivable: the per-window record
                // counts carry exactly one entry per live window.
                for &(w, _) in &dump.window_records {
                    home.window_entities.entry(w).or_default()[i].insert(ent);
                }
                home.histories[i].restore_entity(ent, dump);
            }
        }
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(pending) {
            for (ent, evs) in per_side {
                self.shards[entity_shard(side, ent, n)].pending[side.idx()].insert(ent, evs);
            }
        }
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(live_events) {
            for (ent, evs) in per_side {
                self.shards[entity_shard(side, ent, n)].live_events[side.idx()].insert(ent, evs);
            }
        }
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(active) {
            for ent in per_side {
                self.shards[entity_shard(side, ent, n)].active[side.idx()].insert(ent);
            }
        }
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(dirty) {
            for (ent, ws) in per_side {
                self.shards[entity_shard(side, ent, n)].dirty[side.idx()]
                    .insert(ent, ws.into_iter().collect());
            }
        }
        for (side, per_side) in [Side::Left, Side::Right].into_iter().zip(dead) {
            for ent in per_side {
                self.shards[entity_shard(side, ent, n)].dead[side.idx()].insert(ent);
            }
        }
        for dump in rings {
            let home = entity_shard(dump.side, dump.entity, n);
            self.shards[home].rings.restore(dump);
        }
        // Re-upsert every restored signature into the bucket partitions
        // — deliberately NOT via candidate registration: the serialized
        // cache below is the authoritative candidate set, and
        // re-registering would resurrect pairs the unbroken run had
        // already retired.
        if let Some(geom) = self.lsh.as_ref().map(|l| l.geom) {
            let mut updates: Vec<(Side, EntityId, Vec<Option<u64>>)> = Vec::new();
            for (side, ent) in ring_keys {
                let home = &self.shards[entity_shard(side, ent, n)];
                if let Some(sig) = home.rings.signature(side, ent) {
                    updates.push((
                        side,
                        ent,
                        signature_buckets(&sig, geom.bands, geom.rows, geom.num_buckets),
                    ));
                }
            }
            let lsh = self.lsh.as_mut().expect("checked above");
            for partition in &mut lsh.partitions {
                for (side, ent, buckets) in &updates {
                    let _ = partition.upsert_hashed(side.index_side(), *ent, buckets);
                }
            }
        }
        for (pair, wins) in cache {
            let owner = &mut self.shards[entity_shard(Side::Left, pair.0, n)];
            owner.cache.insert(pair, wins.into_iter().collect());
            owner.adjacency.insert(pair);
        }
        for pair in fresh {
            self.shards[entity_shard(Side::Left, pair.0, n)]
                .fresh
                .insert(pair);
        }
        for (pair, w) in edges {
            self.shards[entity_shard(Side::Left, pair.0, n)]
                .edges
                .insert(pair, w);
        }
        for (pair, w) in edge_deltas {
            self.shards[entity_shard(Side::Left, pair.0, n)]
                .edge_deltas
                .insert(pair, w);
        }

        // The matcher travels as its full edge set (its caches lag the
        // shard edge caches by the unconsumed deltas above) and is
        // rebuilt in one upsert batch; the threshold multiset is by
        // construction the current matching's weights.
        let deltas: Vec<EdgeDelta> = e
            .matcher_edges
            .iter()
            .map(|edge| EdgeDelta {
                left: edge.left,
                right: edge.right,
                weight: Some(edge.weight),
            })
            .collect();
        self.matcher.apply_deltas(&deltas);
        for edge in self.matcher.matching() {
            self.threshold_state.insert(edge.weight);
        }
        self.threshold_state.set_warm_seed(e.warm_seed);

        // Republish the checkpointed epoch behind the pointer (never
        // into the epoch log: a log installed on the recovered engine
        // observes only post-recovery publications, which is what the
        // equivalence tests splice against). The next tick then
        // publishes `snapshots_published + 1`, exactly like the
        // unbroken run.
        if self.stats.snapshots_published > 0 {
            self.epoch.publish(Arc::new(LinkSnapshot {
                epoch: self.stats.snapshots_published,
                events: e.epoch_events,
                links: self.links.clone(),
                threshold: e.epoch_threshold,
                frontier: e.epoch_frontier.map(Timestamp),
            }));
        }
        self.sync_arena_stats();
        self.resume = Some(pump);
        Ok(())
    }

    /// Swaps the telemetry clock everywhere spans are timed: the
    /// engine-thread barrier spans, the pool's per-chunk spans and busy
    /// totals, event latency, and snapshot timestamps. Substituting a
    /// [`crate::testing::VirtualClock`] makes every recorded value an
    /// exact function of the test's clock advances — CI never sleeps to
    /// observe telemetry.
    pub fn set_telemetry_clock(&mut self, clock: Arc<dyn Clock + Sync>) {
        self.pool.set_clock(Arc::clone(&clock));
        self.tel.set_clock(clock);
    }

    /// Installs the consumer of periodic snapshots (JSONL writer,
    /// test collector, scrape-page publisher). Snapshots are emitted by
    /// [`StreamEngine::emit_snapshot`] — on a cadence by the drive loop
    /// when [`crate::DriveOptions::metrics_every`] is set, or whenever
    /// the caller asks.
    pub fn set_metrics_sink(&mut self, sink: Box<dyn SnapshotSink>) {
        self.tel.set_sink(sink);
    }

    /// A point-in-time metrics snapshot: every [`StreamStats`] counter,
    /// the engine gauges (served links, live edges, candidate pairs),
    /// and all span/busy/latency histograms. Does not consume a
    /// sequence number — the returned snapshot carries the sequence the
    /// *next* emission would get.
    pub fn snapshot(&self) -> Snapshot {
        self.registry().snapshot(self.tel.seq(), self.tel.now_ns())
    }

    /// Builds one snapshot, advances the sequence, and hands it to the
    /// installed sink (no-op without one).
    pub fn emit_snapshot(&mut self) {
        let snapshot = self.registry().snapshot(self.tel.seq(), self.tel.now_ns());
        self.tel.emit(&snapshot);
    }

    /// The merged phase-span histograms by series name: the six
    /// pool-dispatched phases (per-worker recorders folded in worker-id
    /// order) followed by the engine-thread barrier spans and the
    /// whole-tick span.
    pub fn phase_histograms(&self) -> Vec<(&'static str, Histogram)> {
        let mut out: Vec<(&'static str, Histogram)> = PhaseId::ALL
            .iter()
            .zip(self.pool.phase_histograms())
            .map(|(p, h)| (p.name(), h))
            .collect();
        out.push(("phase.edge_merge", self.tel.edge_merge.clone()));
        out.push(("phase.match", self.tel.matching.clone()));
        out.push(("phase.threshold", self.tel.threshold.clone()));
        out.push(("score_kernel_ns", self.tel.score_kernel.clone()));
        out.push(("tick", self.tel.tick.clone()));
        out
    }

    /// The rescore scoring-kernel histogram: one span per `(pair,
    /// window)` contribution recomputed during refresh ticks, in
    /// nanoseconds per window (the `score_kernel_ns` series).
    pub fn score_kernel_histogram(&self) -> Histogram {
        self.tel.score_kernel.clone()
    }

    /// The end-to-end event-latency histogram (source admit → served at
    /// a refresh tick), recorded by [`StreamEngine::drive`].
    pub fn event_latency_histogram(&self) -> Histogram {
        self.tel.event_latency.clone()
    }

    /// Records `n` events served with the given admit→tick latency
    /// (no-op with telemetry disabled). Called by the pump.
    pub(crate) fn record_event_latency(&mut self, latency_ns: u64, n: u64) {
        if self.tel.enabled {
            self.tel.event_latency.record_n(latency_ns, n);
        }
    }

    /// A clone of the epoch pointer — hand it to a
    /// [`crate::serve::LinkQueryServer`] (or any reader thread) to serve
    /// the engine's published snapshots. Loads through the clone observe
    /// every subsequent tick-barrier publication.
    pub fn epoch_pointer(&self) -> EpochPointer {
        self.epoch.clone()
    }

    /// Installs an observation log that records every epoch published
    /// from now on (see [`EpochLog`]). Strictly observational — the
    /// served snapshots are the same `Arc`s with or without a log.
    pub fn set_epoch_log(&mut self, log: EpochLog) {
        self.epoch_log = Some(log);
    }

    /// Folds a query server's post-run report into the engine's
    /// counters: `queries` lands in [`StreamStats::queries_served`], and
    /// the per-query handling spans merge into the `query_latency`
    /// histogram (histogram merge skipped with telemetry disabled — a
    /// disabled engine snapshots its counters with empty histograms).
    pub fn absorb_serve_report(&mut self, queries: u64, latency: &Histogram) {
        self.stats.queries_served += queries;
        if self.tel.enabled {
            self.tel.query_latency.merge(latency);
        }
    }

    /// The per-query handling-span histogram folded in by
    /// [`StreamEngine::absorb_serve_report`].
    pub fn query_latency_histogram(&self) -> Histogram {
        self.tel.query_latency.clone()
    }

    /// The per-checkpoint write-span histogram (serialize + temp file +
    /// fsync + rename), recorded at the checkpoint cadence.
    pub fn checkpoint_write_histogram(&self) -> Histogram {
        self.tel.checkpoint_write.clone()
    }

    /// The clock the telemetry layer reads (shared with the pump so
    /// admit timestamps and span timestamps agree).
    pub(crate) fn telemetry_clock(&self) -> Arc<dyn Clock + Sync> {
        self.tel.clock()
    }

    /// Whether span/latency recording is on.
    pub(crate) fn telemetry_enabled(&self) -> bool {
        self.tel.enabled
    }

    /// Assembles the full metric registry behind every snapshot — the
    /// single serialization path the CLI, the bench harness, and the
    /// scrape endpoint all consume.
    fn registry(&self) -> MetricsRegistry {
        let s = &self.stats;
        let mut reg = MetricsRegistry::new();
        reg.counter_set("events", s.events);
        reg.counter_set("late_dropped", s.late_dropped);
        reg.counter_set("ticks", s.ticks);
        reg.counter_set("rescored_windows", s.rescored_windows);
        reg.counter_set("dirty_pairs_visited", s.dirty_pairs_visited);
        reg.counter_set("cached_pairs_at_ticks", s.cached_pairs_at_ticks);
        reg.counter_set("retired_pairs", s.retired_pairs);
        reg.counter_set("evicted_windows", s.evicted_windows);
        reg.counter_set("edges_patched", s.edges_patched);
        reg.counter_set("matching_region_size", s.matching_region_size);
        reg.counter_set("em_warm_iters", s.em_warm_iters);
        reg.counter_set("blocked_producer_ns", s.blocked_producer_ns);
        reg.counter_set("queue_high_watermark", s.queue_high_watermark);
        reg.counter_set("late_events", s.late_events);
        reg.counter_set("demoted_entities", s.demoted_entities);
        reg.counter_set("demoted_records", s.demoted_records);
        reg.counter_set("arena_compactions", s.arena_compactions);
        reg.counter_set("steal_events", s.steal_events);
        reg.counter_set("malformed_lines", s.malformed_lines);
        reg.counter_set("connections_served", s.connections_served);
        reg.counter_set("idle_evictions", s.idle_evictions);
        reg.counter_set("snapshots_published", s.snapshots_published);
        reg.counter_set("queries_served", s.queries_served);
        reg.counter_set("checkpoints_written", s.checkpoints_written);
        reg.counter_set("checkpoints_rejected", s.checkpoints_rejected);
        reg.counter_set("checkpoint_bytes", s.checkpoint_bytes);
        reg.gauge_set("links", self.links.len() as f64);
        reg.gauge_set("live_edges", self.num_live_edges() as f64);
        reg.gauge_set("candidate_pairs", self.num_candidate_pairs() as f64);
        reg.gauge_set("live_connections", self.live_connections as f64);
        for (name, h) in self.phase_histograms() {
            reg.histogram_set(name, h);
        }
        reg.histogram_set("event_latency", self.tel.event_latency.clone());
        reg.histogram_set("frontier_lag", self.tel.frontier_lag.clone());
        reg.histogram_set("query_latency", self.tel.query_latency.clone());
        reg.histogram_set("checkpoint_write", self.tel.checkpoint_write.clone());
        reg.histogram_set("worker_busy", self.pool.busy_histogram());
        reg
    }

    /// Ingests one event. Returns link updates when this event completed
    /// a refresh interval (empty otherwise).
    pub fn ingest(&mut self, ev: &StreamEvent) -> Vec<LinkUpdate> {
        if self.scheme.is_none() {
            self.init_scheme(ev.time);
        }
        let scheme = self.scheme.expect("initialized above");
        let binned = bin_event(ev, &scheme, self.cfg.slim.spatial_level, self.lsh_level());
        self.run(vec![binned])
    }

    /// Ingests a batch of events, spreading the spatial binning (the
    /// trigonometry-heavy part of ingestion) across the worker pool as
    /// fixed-size chunks of the event list — skew-proof by
    /// construction: a hot entity's events land in many stealable
    /// chunks instead of one shard's bin queue — then applying the
    /// appends shard-parallel in stream order. Tick and expiry
    /// boundaries fire inside the batch
    /// exactly as they would one event at a time (the control scan is
    /// identical), and so do histories, statistics, and brute-force
    /// candidates. With LSH enabled, collision checks are coalesced:
    /// each entity's *final* signature per barrier segment is what hits
    /// the bucket index, so a signature that collides only transiently
    /// *within* one segment may not surface the candidate a one-event-
    /// at-a-time replay would have seen (and vice versa) — an
    /// approximation difference inside an already-approximate filter,
    /// chosen deliberately: it is what makes candidate discovery
    /// independent of the shard count.
    pub fn ingest_batch(&mut self, events: &[StreamEvent]) -> Vec<LinkUpdate> {
        let Some(first) = events.first() else {
            return Vec::new();
        };
        if self.scheme.is_none() {
            self.init_scheme(first.time);
        }
        let scheme = self.scheme.expect("initialized above");
        let level = self.cfg.slim.spatial_level;
        let lsh_level = self.lsh_level();

        let binned_parallel = self.num_workers > 1 && events.len() >= PARALLEL_THRESHOLD;
        let binned: Vec<BinnedEvent> = if !binned_parallel {
            events
                .iter()
                .map(|ev| bin_event(ev, &scheme, level, lsh_level))
                .collect()
        } else if matches!(self.cfg.pool_mode, PoolMode::Static) {
            // The legacy static partition (benchmark baseline): event
            // indices are partitioned by home shard and each partition
            // is one pinned chunk — a hot entity's events all bin on
            // one worker.
            let mut shard_indices: Vec<Vec<usize>> = vec![Vec::new(); self.num_shards];
            for (i, ev) in events.iter().enumerate() {
                shard_indices[entity_shard(ev.side, ev.entity, self.num_shards)].push(i);
            }
            let per_shard: Vec<Vec<(usize, BinnedEvent)>> =
                self.pool.run(PhaseId::Bin, shard_indices, |indices| {
                    indices
                        .iter()
                        .map(|&i| (i, bin_event(&events[i], &scheme, level, lsh_level)))
                        .collect()
                });
            let mut binned: Vec<Option<BinnedEvent>> = vec![None; events.len()];
            for shard in per_shard {
                for (i, b) in shard {
                    binned[i] = Some(b);
                }
            }
            binned
                .into_iter()
                .map(|b| b.expect("every event binned"))
                .collect()
        } else {
            // Stealing modes: fixed-size contiguous chunks, reassembled
            // in chunk-id order — identical output to the serial map
            // for every worker count and schedule.
            let chunks: Vec<&[StreamEvent]> = chunk_ranges(events.len(), INGEST_BIN_CHUNK)
                .into_iter()
                .map(|r| &events[r])
                .collect();
            self.pool
                .run(PhaseId::Bin, chunks, |chunk| {
                    chunk
                        .iter()
                        .map(|ev| bin_event(ev, &scheme, level, lsh_level))
                        .collect::<Vec<BinnedEvent>>()
                })
                .into_iter()
                .flatten()
                .collect()
        };
        let updates = self.run(binned);
        if binned_parallel {
            // The control scan's flushes may all have run inline (e.g.
            // a mostly-late-dropped batch); the binning phase above
            // still dispatched chunks, so refresh the telemetry here.
            self.sync_pool_stats();
        }
        updates
    }

    /// The control scan: walks the binned events in stream order making
    /// only the cheap global decisions (late-drop, watermark, expiry
    /// and tick boundaries) and queues everything else per shard;
    /// queues are flushed shard-parallel at each boundary. The control
    /// decisions depend only on the event sequence, never on shard
    /// state, so the segment structure — and with it every downstream
    /// barrier — is identical for any shard count.
    fn run(&mut self, binned: Vec<BinnedEvent>) -> Vec<LinkUpdate> {
        let mut queues: Vec<Vec<BinnedEvent>> = (0..self.num_shards).map(|_| Vec::new()).collect();
        let mut queued = 0usize;
        let mut updates = Vec::new();
        for b in binned {
            if b.w < self.expired_below {
                self.stats.late_dropped += 1;
                continue;
            }
            self.stats.events += 1;
            if b.w > self.watermark {
                self.watermark = b.w;
            }
            let expire_to = self.cfg.window_capacity.and_then(|cap| {
                let keep_from = (self.watermark + 1).saturating_sub(cap);
                (keep_from > self.expired_below).then_some(keep_from)
            });
            queues[entity_shard(b.side, b.entity, self.num_shards)].push(b);
            queued += 1;
            if let Some(keep_from) = expire_to {
                self.flush(&mut queues, &mut queued);
                self.expire(keep_from);
            }
            self.events_since_refresh += 1;
            if self.cfg.refresh_every > 0 && self.events_since_refresh >= self.cfg.refresh_every {
                self.flush(&mut queues, &mut queued);
                updates.extend(self.refresh());
            }
        }
        self.flush(&mut queues, &mut queued);
        updates
    }

    /// Applies the queued segment on every shard (parallel when it
    /// pays) and folds the effects in at the barrier. Application must
    /// respect per-shard stream order, so the chunk grain here is one
    /// shard's queue — stealing still lets idle workers take whole
    /// shard queues off a busy worker's deque.
    fn flush(&mut self, queues: &mut [Vec<BinnedEvent>], queued: &mut usize) {
        if *queued == 0 {
            return;
        }
        let min_records = self.cfg.slim.min_records;
        let lsh_geom = self.lsh.as_ref().map(|l| l.geom);
        let work: Vec<(&mut EngineShard, Vec<BinnedEvent>)> = self
            .shards
            .iter_mut()
            .zip(queues.iter_mut())
            .map(|(shard, queue)| (shard, std::mem::take(queue)))
            .collect();
        let parallel = *queued >= PARALLEL_THRESHOLD;
        let effects: Vec<IngestEffects> =
            self.pool
                .run_gated(PhaseId::Apply, parallel, work, |(shard, events)| {
                    shard.apply_events(events, min_records, lsh_geom.as_ref())
                });
        *queued = 0;

        let mut activations: Vec<(Side, EntityId)> = Vec::new();
        let mut rebirths: Vec<(Side, EntityId)> = Vec::new();
        let mut sig_changes: BTreeSet<(Side, EntityId)> = BTreeSet::new();
        for fx in effects {
            self.df[0].apply(&fx.df[0]);
            self.df[1].apply(&fx.df[1]);
            self.domain = self.domain.max(fx.domain);
            sig_changes.extend(fx.sig_changes);
            activations.extend(fx.activations);
            rebirths.extend(fx.rebirths);
        }
        // An entity that expired away entirely and reactivated *before*
        // a refresh tick processed its death still has cached pairs
        // holding contributions from evicted windows that no dirty mark
        // references anymore — they would be served as ghost links
        // forever. Purge them first (O(degree) via the adjacency index),
        // then let candidate registration rediscover live pairs fresh.
        // `links` is left untouched: it is defined as "as of the last
        // tick", and the next tick emits the Removed updates.
        for (side, e) in rebirths {
            for shard in &mut self.shards {
                shard.drop_pairs_of(side, e);
            }
        }
        if self.lsh.is_some() {
            self.register_lsh_candidates(sig_changes);
        } else {
            // Brute force: each newly activated entity pairs with every
            // active entity on the other side. Registration is
            // idempotent and symmetric, so barrier timing yields exactly
            // the per-event candidate set.
            for (side, e) in activations {
                let other = side.other();
                let partners: Vec<EntityId> = self
                    .shards
                    .iter()
                    .flat_map(|s| s.active[other.idx()].iter().copied())
                    .collect();
                for p in partners {
                    self.add_candidate(side, e, p);
                }
            }
        }
        if parallel {
            // Telemetry refresh only when chunks may have dispatched —
            // the below-threshold (single-event) path stays free of the
            // pool's atomic counters.
            self.sync_pool_stats();
        }
        self.sync_arena_stats();
    }

    /// Registers one discovered candidate pair with its owning shard.
    fn add_candidate(&mut self, side: Side, entity: EntityId, partner: EntityId) {
        let pair = match side {
            Side::Left => (entity, partner),
            Side::Right => (partner, entity),
        };
        let owner = entity_shard(Side::Left, pair.0, self.num_shards);
        self.shards[owner].add_candidate(pair);
    }

    /// Applies a coalesced signature-update set to every bucket
    /// partition and registers the unioned collision partners — the
    /// cross-shard candidate handoff. Each entity's *final* signature is
    /// applied exactly once, so the discovered pair set is independent
    /// of both the application order and the shard count.
    fn register_lsh_candidates(&mut self, changes: BTreeSet<(Side, EntityId)>) {
        if changes.is_empty() {
            return;
        }
        /// One coalesced update: the entity's precomputed per-band
        /// buckets, or `None` when its ring vanished (index removal).
        type SigUpdate = (Side, EntityId, Option<Vec<Option<u64>>>);
        let geom = self.lsh.as_ref().expect("caller checked").geom;
        // Resolve final signatures from the home-shard rings and hash
        // each one's band buckets ONCE — every partition then filters
        // the shared hashes to its owned slots, so the banding FNV cost
        // stays independent of the partition count.
        let updates: Vec<SigUpdate> = changes
            .into_iter()
            .map(|(side, e)| {
                let home = &self.shards[entity_shard(side, e, self.num_shards)];
                let buckets = home
                    .rings
                    .signature(side, e)
                    .map(|sig| signature_buckets(&sig, geom.bands, geom.rows, geom.num_buckets));
                (side, e, buckets)
            })
            .collect();

        let lsh = self.lsh.as_mut().expect("caller checked");
        let apply_one = |partition: &mut BucketIndex| -> Vec<Vec<EntityId>> {
            updates
                .iter()
                .map(|(side, e, buckets)| match buckets {
                    Some(buckets) => partition.upsert_hashed(side.index_side(), *e, buckets),
                    None => {
                        partition.remove(side.index_side(), *e);
                        Vec::new()
                    }
                })
                .collect()
        };
        let partitions: Vec<&mut BucketIndex> = lsh.partitions.iter_mut().collect();
        let parallel = updates.len() >= PARALLEL_THRESHOLD;
        let reports: Vec<Vec<Vec<EntityId>>> =
            self.pool
                .run_gated(PhaseId::Lsh, parallel, partitions, apply_one);

        for (i, (side, e, _)) in updates.iter().enumerate() {
            let mut partners: Vec<EntityId> = reports
                .iter()
                .flat_map(|per_partition| per_partition[i].iter().copied())
                .collect();
            partners.sort_unstable();
            partners.dedup();
            let other = side.other();
            for p in partners {
                let active = self.shards[entity_shard(other, p, self.num_shards)].active
                    [other.idx()]
                .contains(&p);
                if active {
                    self.add_candidate(*side, *e, p);
                }
            }
        }
    }

    /// Expires every window below `keep_from` shard-parallel, then
    /// merges the effects: df deltas, demotion counters, the distinct
    /// expired-window count, and eviction-driven signature changes.
    fn expire(&mut self, keep_from: WindowIdx) {
        let min_records = self.cfg.slim.min_records;
        let lsh_geom = self.lsh.as_ref().map(|l| l.geom);
        // Gate the spawns on the actual eviction footprint: a
        // single-window rollover on the per-event ingest path touches a
        // handful of entities and runs inline.
        let expiring: usize = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .window_entities
                    .range(..keep_from)
                    .map(|(_, sides)| sides[0].len() + sides[1].len())
                    .sum::<usize>()
            })
            .sum();
        let work: Vec<&mut EngineShard> = self.shards.iter_mut().collect();
        let parallel = expiring >= PARALLEL_THRESHOLD;
        let effects: Vec<ExpiryEffects> =
            self.pool
                .run_gated(PhaseId::Expire, parallel, work, |shard| {
                    shard.expire(keep_from, min_records, lsh_geom.as_ref())
                });

        let mut evicted: BTreeSet<WindowIdx> = BTreeSet::new();
        let mut sig_changes: BTreeSet<(Side, EntityId)> = BTreeSet::new();
        for fx in effects {
            self.df[0].apply(&fx.df[0]);
            self.df[1].apply(&fx.df[1]);
            evicted.extend(fx.windows);
            self.stats.demoted_entities += fx.demoted_entities;
            self.stats.demoted_records += fx.demoted_records;
            sig_changes.extend(fx.sig_changes);
        }
        self.stats.evicted_windows += evicted.len() as u64;
        if self.lsh.is_some() {
            self.register_lsh_candidates(sig_changes);
        }
        if parallel {
            self.sync_pool_stats();
        }
        self.sync_arena_stats();
        self.expired_below = keep_from;
    }

    /// Runs a refresh tick: drops dead-endpoint pairs, rescores exactly
    /// the adjacency-reachable dirty `(pair, window)` contributions
    /// shard-parallel (patching the per-shard edge caches in place),
    /// retires collision-less empty pairs, then — at the merge barrier
    /// — k-way merges the per-shard edge-delta runs, repairs the
    /// maintained matching over the affected conflict region, refits
    /// the stop threshold warm, and returns the difference to the
    /// previously served link set.
    pub fn refresh(&mut self) -> Vec<LinkUpdate> {
        self.events_since_refresh = 0;
        if self.scheme.is_none() {
            return Vec::new();
        }
        // Span starts (`None` with telemetry off, skipping the clock
        // reads entirely). Recording happens strictly after the output
        // is computed, so it can never perturb it.
        let t_tick = self.tel.enabled.then(|| self.tel.now_ns());
        self.stats.ticks += 1;

        // Dead endpoints: drop their pairs wherever owned — O(degree)
        // per entity through the adjacency index.
        let mut dead: Vec<(Side, EntityId)> = Vec::new();
        for shard in &mut self.shards {
            for side in [Side::Left, Side::Right] {
                dead.extend(shard.dead[side.idx()].drain().map(|e| (side, e)));
            }
        }
        dead.sort_unstable();
        for &(side, e) in &dead {
            for shard in &mut self.shards {
                shard.drop_pairs_of(side, e);
            }
        }

        // Gather the global dirty list (sorted for reproducible job
        // construction) and resolve it to per-shard work through each
        // shard's adjacency index.
        let mut dirty: Vec<(Side, EntityId, Vec<WindowIdx>)> = Vec::new();
        for shard in &self.shards {
            for side in [Side::Left, Side::Right] {
                for (&e, windows) in &shard.dirty[side.idx()] {
                    dirty.push((side, e, windows.iter().copied().collect()));
                }
            }
        }
        dirty.sort_unstable_by_key(|&(side, e, _)| (side, e));

        let jobs: Vec<Vec<RescoreJob>> =
            self.shards.iter().map(|s| s.gather_jobs(&dirty)).collect();
        self.stats.dirty_pairs_visited += jobs.iter().map(|j| j.len() as u64).sum::<u64>();
        self.stats.cached_pairs_at_ticks += self
            .shards
            .iter()
            .map(|s| s.cache.len() as u64)
            .sum::<u64>();

        // Rescore shard-parallel (read-only over all shards + merged
        // stats), then apply each shard's outcomes to its own cache.
        let outcomes = self.score_jobs(&jobs);
        let mut emptied: Vec<(usize, (EntityId, EntityId))> = Vec::new();
        for (idx, (shard, (shard_outcomes, shard_stats, shard_kernel))) in
            self.shards.iter_mut().zip(outcomes).enumerate()
        {
            self.scoring_stats.merge(&shard_stats);
            self.tel.score_kernel.merge(&shard_kernel);
            let report = shard.apply_outcomes(shard_outcomes);
            self.stats.rescored_windows += report.rescored_windows;
            emptied.extend(report.emptied.into_iter().map(|p| (idx, p)));
        }

        // Candidate-set retirement: a pair whose cached contributions
        // all evicted *and* whose ring signatures no longer share any
        // LSH band has no path back into the link set except a fresh
        // collision — drop it now; the bucket index would rediscover it.
        // Only pairs visited this tick can have newly emptied, so the
        // check is O(dirty), not O(cache).
        if let Some(lsh) = &self.lsh {
            let geom = lsh.geom;
            let retire: Vec<(usize, (EntityId, EntityId))> = emptied
                .into_iter()
                .filter(|&(_, (u, v))| {
                    let su = &self.shards[entity_shard(Side::Left, u, self.num_shards)];
                    let sv = &self.shards[entity_shard(Side::Right, v, self.num_shards)];
                    match (
                        su.rings.signature(Side::Left, u),
                        sv.rings.signature(Side::Right, v),
                    ) {
                        (Some(a), Some(b)) => {
                            !signatures_collide(&a, &b, geom.bands, geom.rows, geom.num_buckets)
                        }
                        _ => true,
                    }
                })
                .collect();
            for (idx, pair) in retire {
                self.shards[idx].retire(pair);
                self.stats.retired_pairs += 1;
            }
        }

        // The merge barrier, delta-driven: drain each shard's
        // pair-sorted edge-cache patch run, k-way merge the runs into
        // the global delta batch, repair the maintained matching over
        // the affected conflict region only, and refit the stop
        // threshold warm from the previous tick's mixture — O(dirty +
        // links) instead of the full-cache sweep this replaced.
        let t_merge = self.tel.enabled.then(|| self.tel.now_ns());
        let runs: Vec<Vec<(PairKey, Option<f64>)>> = self
            .shards
            .iter_mut()
            .map(|s| s.take_edge_deltas().into_iter().collect())
            .collect();
        let deltas = merge::merge_delta_runs(runs);
        self.stats.edges_patched += deltas.len() as u64;
        if let Some(t0) = t_merge {
            let span = self.tel.now_ns().saturating_sub(t0);
            self.tel.edge_merge.record(span);
        }
        let new_links = match self.cfg.slim.matching_method {
            MatchingMethod::Greedy => {
                let t_match = self.tel.enabled.then(|| self.tel.now_ns());
                let report = self.matcher.apply_deltas(&deltas);
                self.stats.matching_region_size += report.region_edges as u64;
                for e in &report.unmatched {
                    self.threshold_state.remove(e.weight);
                }
                for e in &report.matched {
                    self.threshold_state.insert(e.weight);
                }
                let matching = self.matcher.matching();
                if let Some(t0) = t_match {
                    let span = self.tel.now_ns().saturating_sub(t0);
                    self.tel.matching.record(span);
                }
                let t_thresh = self.tel.enabled.then(|| self.tel.now_ns());
                let selection = self.threshold_state.select(self.cfg.slim.threshold_method);
                self.stats.em_warm_iters += u64::from(selection.warm_iters);
                let links = match selection.threshold {
                    Some(t) => matching
                        .into_iter()
                        .filter(|e| e.weight >= t.threshold)
                        .collect(),
                    None => matching,
                };
                if let Some(t0) = t_thresh {
                    let span = self.tel.now_ns().saturating_sub(t0);
                    self.tel.threshold.record(span);
                }
                (links, selection.threshold.map(|t| t.threshold))
            }
            // The exact Hungarian matching has no incremental form:
            // assemble the full edge set by k-way-merging the per-shard
            // sorted edge caches (no re-sort, no rescoring) and re-match
            // from scratch. The whole arm (including its embedded
            // threshold selection) counts as matching time.
            MatchingMethod::HungarianExact => {
                let t_match = self.tel.enabled.then(|| self.tel.now_ns());
                let edge_runs: Vec<Vec<(PairKey, f64)>> = self
                    .shards
                    .iter()
                    .map(|s| s.edges.iter().map(|(&p, &w)| (p, w)).collect())
                    .collect();
                let edges = merge::kway_merge_edge_runs(edge_runs);
                let (links, threshold) = merge::exact_match_and_threshold(&self.cfg.slim, &edges);
                if let Some(t0) = t_match {
                    let span = self.tel.now_ns().saturating_sub(t0);
                    self.tel.matching.record(span);
                }
                (links, threshold)
            }
        };
        let (new_links, tick_threshold) = new_links;
        let updates = merge::diff_links(&self.links, &new_links);
        self.links = new_links;
        self.publish_epoch(tick_threshold);
        self.sync_pool_stats();
        if let Some(t0) = t_tick {
            let span = self.tel.now_ns().saturating_sub(t0);
            self.tel.tick.record(span);
        }
        updates
    }

    /// The tick barrier's publication step: freezes the served state
    /// into an immutable [`LinkSnapshot`] and swaps it behind the epoch
    /// pointer. Runs after the link set settles and before the tick span
    /// closes; readers loading mid-barrier keep the previous epoch —
    /// nothing torn is ever visible.
    fn publish_epoch(&mut self, threshold: Option<f64>) {
        self.stats.snapshots_published += 1;
        let scheme = self.scheme.expect("refresh ran, so the scheme exists");
        let snapshot = Arc::new(LinkSnapshot {
            epoch: self.stats.snapshots_published,
            events: self.stats.events,
            links: self.links.clone(),
            threshold,
            frontier: Some(scheme.window_start(self.watermark + 1)),
        });
        if let Some(log) = &self.epoch_log {
            log.push(&snapshot);
        }
        self.epoch.publish(snapshot);
    }

    /// Rescores the given per-shard job lists against the merged df
    /// statistics, resolving endpoint histories across shards, and
    /// re-assembles each touched pair's edge score on the worker: the
    /// recomputed contributions are merged with the pair's untouched
    /// cached windows and normalized, so the barrier only has to patch
    /// the outcome into the caches. Pure reads — dispatched to the
    /// worker pool as fixed-size **chunks of each shard's job list**
    /// when the tick is big enough to pay: a hot shard's jobs split
    /// into many stealable chunks, so tick latency tracks total dirty
    /// work, not the hottest shard ([`PoolMode::Static`] keeps the
    /// legacy one-chunk-per-shard partition as the benchmark baseline).
    /// Chunk outputs are regrouped per owning shard in chunk-id order,
    /// which reproduces the sequential job order exactly.
    fn score_jobs(
        &self,
        jobs: &[Vec<RescoreJob>],
    ) -> Vec<(Vec<RescoreOutcome>, LinkageStats, Histogram)> {
        let scorer = SimilarityScorer::from_df_stats(&self.cfg.slim, &self.df[0], &self.df[1]);
        // Per-window kernel timing: one chained clock read per scored
        // window, recorded into a chunk-local histogram and merged at
        // the barrier — `None` with telemetry off, skipping every read.
        let clock = self.tel.enabled.then(|| self.tel.clock());
        fn lap(clock: &Option<Arc<dyn Clock + Sync>>, t_last: &mut u64, hist: &mut Histogram) {
            if let Some(c) = clock {
                let t = c.now_ns();
                hist.record(t.saturating_sub(*t_last));
                *t_last = t;
            }
        }
        let score_list = |(owner, list): (usize, &[RescoreJob])| -> (
            Vec<RescoreOutcome>,
            LinkageStats,
            Histogram,
        ) {
            let mut out = Vec::with_capacity(list.len());
            let mut stats = LinkageStats::default();
            let mut kernel = Histogram::new();
            for (pair, spec) in list {
                let (Some(hu), Some(hv)) = (
                    lookup_view(&self.shards, Side::Left, pair.0),
                    lookup_view(&self.shards, Side::Right, pair.1),
                ) else {
                    out.push((*pair, None));
                    continue;
                };
                // Start from the owning shard's cached contributions of
                // the pair's untouched windows and patch in the
                // recomputed ones (dropping zeros), exactly as the
                // barrier-side apply used to.
                let mut merged = self.shards[owner]
                    .cache
                    .get(pair)
                    .cloned()
                    .unwrap_or_default();
                let mut t_last = clock.as_ref().map(|c| c.now_ns()).unwrap_or(0);
                let rescored = match (spec, hu, hv) {
                    // The batch kernel: a fresh pair with both endpoints
                    // in arena storage is scored by one linear merge
                    // over the two entities' window columns, feeding
                    // contiguous cell/count slices straight into the
                    // scorer — no hashing, no per-window lookup. The
                    // per-window arithmetic (and its accumulation
                    // order) is exactly `window_contribution`'s, so the
                    // result is bit-identical to the legacy path.
                    (None, HistoryView::Arena(vu), HistoryView::Arena(vv)) => {
                        let mut n = 0u64;
                        for_common_runs(&vu, &vv, |w, ru, rv| {
                            let c = scorer.window_contribution_cells(w, ru, rv, &mut stats);
                            if c == 0.0 {
                                merged.remove(&w);
                            } else {
                                merged.insert(w, c);
                            }
                            n += 1;
                            lap(&clock, &mut t_last, &mut kernel);
                        });
                        n
                    }
                    _ => {
                        let windows: Vec<WindowIdx> = match spec {
                            Some(ws) => ws.clone(),
                            None => common_windows_of(&hu, &hv),
                        };
                        let n = windows.len() as u64;
                        for w in windows {
                            let c = window_contribution_view(&scorer, &hu, &hv, w, &mut stats);
                            if c == 0.0 {
                                merged.remove(&w);
                            } else {
                                merged.insert(w, c);
                            }
                            lap(&clock, &mut t_last, &mut kernel);
                        }
                        n
                    }
                };
                // `Σ contributions / pair norm` in ascending window
                // order — the same arithmetic and order the full
                // assembly sweep used, so a pair scored fresh here is
                // bit-identical to a from-scratch edge assembly.
                let sum: f64 = merged.values().sum();
                let score = sum / scorer.pair_norm_bins(hu.num_bins(), hv.num_bins());
                out.push((
                    *pair,
                    Some(ScoredPair {
                        windows: merged,
                        rescored,
                        score,
                    }),
                ));
            }
            (out, stats, kernel)
        };

        let total: usize = jobs.iter().map(Vec::len).sum();
        if total < PARALLEL_RESCORE_THRESHOLD || self.num_workers == 1 {
            return jobs
                .iter()
                .enumerate()
                .map(|(owner, list)| score_list((owner, list.as_slice())))
                .collect();
        }
        // Chunk each shard's job list; the grain is per-shard under
        // the static baseline and RESCORE_CHUNK under stealing modes.
        let mut owners: Vec<usize> = Vec::new();
        let mut chunks: Vec<(usize, &[RescoreJob])> = Vec::new();
        for (owner, list) in jobs.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let grain = if matches!(self.cfg.pool_mode, PoolMode::Static) {
                list.len()
            } else {
                RESCORE_CHUNK
            };
            for range in chunk_ranges(list.len(), grain) {
                owners.push(owner);
                chunks.push((owner, &list[range]));
            }
        }
        let outs = self.pool.run(PhaseId::Rescore, chunks, score_list);
        // Regroup per owning shard; chunks were pushed (shard asc,
        // range asc), so concatenation restores the sequential order.
        let mut per_shard: Vec<(Vec<RescoreOutcome>, LinkageStats, Histogram)> = jobs
            .iter()
            .map(|_| (Vec::new(), LinkageStats::default(), Histogram::new()))
            .collect();
        for (owner, (outcomes, stats, kernel)) in owners.into_iter().zip(outs) {
            per_shard[owner].0.extend(outcomes);
            per_shard[owner].1.merge(&stats);
            per_shard[owner].2.merge(&kernel);
        }
        per_shard
    }

    /// Runs the **exact batch pipeline** over the incrementally built
    /// history sets (merged across shards): brute-force candidates
    /// without LSH, the accumulated candidate set with it. With an
    /// unbounded window this returns output identical to
    /// [`slim_core::Slim::link`] over the same records — the
    /// stream/batch equivalence contract, for every shard count.
    pub fn finalize(&self) -> Result<LinkageOutput, String> {
        let Some(scheme) = self.scheme else {
            return Ok(empty_output());
        };
        // Materializing owned histories (deep clones from the legacy
        // map, struct rebuilds from the arena columns) is the expensive
        // part of the borrowing finalizer; hand one chunk per shard to
        // the pool when the state is big enough to pay. The merged map
        // contents are independent of chunk scheduling.
        let clone_one = |shard: &EngineShard| -> [Vec<(EntityId, MobilityHistory)>; 2] {
            [Side::Left, Side::Right].map(|side| {
                shard.histories[side.idx()]
                    .materialize_all()
                    .into_iter()
                    .collect()
            })
        };
        let total: usize = self
            .shards
            .iter()
            .map(|s| s.histories[0].len() + s.histories[1].len())
            .sum();
        let shards: Vec<&EngineShard> = self.shards.iter().collect();
        let cloned: Vec<[Vec<(EntityId, MobilityHistory)>; 2]> = self.pool.run_gated(
            PhaseId::FinalizeClone,
            total >= PARALLEL_THRESHOLD,
            shards,
            clone_one,
        );
        let mut sets = [HashMap::new(), HashMap::new()];
        for [left, right] in cloned {
            sets[0].extend(left);
            sets[1].extend(right);
        }
        let [left, right] = sets;
        self.finalize_sets(scheme, left, right)
    }

    /// [`StreamEngine::finalize`] that consumes the engine, moving the
    /// history sets into the batch pipeline instead of deep-cloning them
    /// — use this at the end of a replay to avoid a transient 2x of the
    /// engine's dominant state (the CLI `--stream` path does).
    pub fn into_finalized(mut self) -> Result<LinkageOutput, String> {
        let Some(scheme) = self.scheme else {
            return Ok(empty_output());
        };
        let mut sets = [HashMap::new(), HashMap::new()];
        for shard in &mut self.shards {
            for side in [Side::Left, Side::Right] {
                sets[side.idx()].extend(shard.histories[side.idx()].drain_map());
            }
        }
        let [left, right] = sets;
        self.finalize_sets(scheme, left, right)
    }

    fn finalize_sets(
        &self,
        scheme: WindowScheme,
        left: HashMap<EntityId, MobilityHistory>,
        right: HashMap<EntityId, MobilityHistory>,
    ) -> Result<LinkageOutput, String> {
        let level = self.cfg.slim.spatial_level;
        let left_set = HistorySet::from_parts(scheme, level, self.domain, left, self.df[0].clone());
        let right_set =
            HistorySet::from_parts(scheme, level, self.domain, right, self.df[1].clone());
        let prepared = PreparedLinkage::from_history_sets(self.cfg.slim, left_set, right_set)?;
        Ok(if self.lsh.is_some() {
            let mut candidates: Vec<(EntityId, EntityId)> = self
                .shards
                .iter()
                .flat_map(|s| s.cache.keys().copied())
                .collect();
            candidates.sort_unstable();
            prepared.link_with_candidates(&candidates)
        } else {
            prepared.link()
        })
    }
}

fn empty_output() -> LinkageOutput {
    LinkageOutput {
        links: Vec::new(),
        matching: Vec::new(),
        num_edges: 0,
        threshold: None,
        stats: LinkageStats::default(),
        elapsed: Duration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;
    use slim_core::{LocationDataset, Record, Slim, SlimConfig};

    use crate::event::merge_datasets;

    fn rec(e: u64, t: i64, lat: f64, lng: f64) -> Record {
        Record::new(EntityId(e), LatLng::from_degrees(lat, lng), Timestamp(t))
    }

    /// Guard on the manual `PartialEq`: every `StreamStats` field
    /// participates in equality except exactly the scheduling-telemetry
    /// trio (`steal_events`, `max_worker_busy_ns`,
    /// `min_worker_busy_ns`). The exhaustive destructuring (no `..`)
    /// makes adding a field a compile error here, forcing an explicit
    /// decision about which side of the contract it lands on — and the
    /// probe below then verifies the `eq` impl agrees.
    #[test]
    fn stream_stats_equality_covers_exactly_the_deterministic_fields() {
        let base = StreamStats::default();
        // Compile-time field inventory.
        let StreamStats {
            events: _,
            late_dropped: _,
            ticks: _,
            rescored_windows: _,
            dirty_pairs_visited: _,
            cached_pairs_at_ticks: _,
            retired_pairs: _,
            evicted_windows: _,
            edges_patched: _,
            matching_region_size: _,
            em_warm_iters: _,
            blocked_producer_ns: _,
            queue_high_watermark: _,
            late_events: _,
            demoted_entities: _,
            demoted_records: _,
            arena_compactions: _,
            steal_events: _,
            max_worker_busy_ns: _,
            min_worker_busy_ns: _,
            malformed_lines: _,
            connections_served: _,
            idle_evictions: _,
            snapshots_published: _,
            queries_served: _,
            checkpoints_written: _,
            checkpoints_rejected: _,
            checkpoint_bytes: _,
        } = base;
        let excluded = [
            "arena_compactions",
            "steal_events",
            "max_worker_busy_ns",
            "min_worker_busy_ns",
            "idle_evictions",
            "checkpoints_written",
            "checkpoints_rejected",
            "checkpoint_bytes",
        ];
        // One probe per field of the inventory above, same order.
        type Probe = (&'static str, fn(&mut StreamStats));
        let fields: [Probe; 28] = [
            ("events", |s| s.events += 1),
            ("late_dropped", |s| s.late_dropped += 1),
            ("ticks", |s| s.ticks += 1),
            ("rescored_windows", |s| s.rescored_windows += 1),
            ("dirty_pairs_visited", |s| s.dirty_pairs_visited += 1),
            ("cached_pairs_at_ticks", |s| s.cached_pairs_at_ticks += 1),
            ("retired_pairs", |s| s.retired_pairs += 1),
            ("evicted_windows", |s| s.evicted_windows += 1),
            ("edges_patched", |s| s.edges_patched += 1),
            ("matching_region_size", |s| s.matching_region_size += 1),
            ("em_warm_iters", |s| s.em_warm_iters += 1),
            ("blocked_producer_ns", |s| s.blocked_producer_ns += 1),
            ("queue_high_watermark", |s| s.queue_high_watermark += 1),
            ("late_events", |s| s.late_events += 1),
            ("demoted_entities", |s| s.demoted_entities += 1),
            ("demoted_records", |s| s.demoted_records += 1),
            ("arena_compactions", |s| s.arena_compactions += 1),
            ("steal_events", |s| s.steal_events += 1),
            ("max_worker_busy_ns", |s| s.max_worker_busy_ns += 1),
            ("min_worker_busy_ns", |s| s.min_worker_busy_ns += 1),
            ("malformed_lines", |s| s.malformed_lines += 1),
            ("connections_served", |s| s.connections_served += 1),
            ("idle_evictions", |s| s.idle_evictions += 1),
            ("snapshots_published", |s| s.snapshots_published += 1),
            ("queries_served", |s| s.queries_served += 1),
            ("checkpoints_written", |s| s.checkpoints_written += 1),
            ("checkpoints_rejected", |s| s.checkpoints_rejected += 1),
            ("checkpoint_bytes", |s| s.checkpoint_bytes += 1),
        ];
        for (name, bump) in fields {
            let mut probe = base;
            bump(&mut probe);
            let participates = probe != base;
            assert_eq!(
                participates,
                !excluded.contains(&name),
                "field `{name}` is on the wrong side of the StreamStats equality contract"
            );
        }
    }

    /// `n` entities seen by both services (right ids offset by 1000),
    /// first `common` of them co-located, the rest in distinct regions.
    fn two_views(n: u64, common: u64) -> (LocationDataset, LocationDataset) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in 0..n {
            let (lat0, lng0) = (37.0 + 0.03 * e as f64, -122.0 - 0.02 * e as f64);
            for k in 0..25i64 {
                left.push(rec(e, k * 900 + 10, lat0 + 0.001 * ((k % 4) as f64), lng0));
                if e < common {
                    right.push(rec(
                        1000 + e,
                        k * 900 + 500,
                        lat0 + 0.001 * ((k % 4) as f64) + 0.0004,
                        lng0 + 0.0003,
                    ));
                } else {
                    right.push(rec(
                        1000 + e,
                        k * 900 + 500,
                        30.0 - 0.05 * e as f64,
                        20.0 + 0.04 * e as f64,
                    ));
                }
            }
        }
        (
            LocationDataset::from_records(left),
            LocationDataset::from_records(right),
        )
    }

    fn stream_cfg() -> StreamConfig {
        StreamConfig {
            refresh_every: 0,
            num_shards: 2,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn unbounded_replay_finalizes_to_batch_output() {
        let (l, r) = two_views(8, 5);
        let slim_cfg = SlimConfig::default();
        let batch = Slim::new(slim_cfg).unwrap().link(&l, &r);

        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        for ev in merge_datasets(&l, &r) {
            engine.ingest(&ev);
        }
        // The borrowing and consuming finalizers agree.
        let streamed = engine.finalize().unwrap();
        let consumed = engine.into_finalized().unwrap();
        assert_eq!(streamed.links.len(), consumed.links.len());
        for (a, b) in streamed.links.iter().zip(&consumed.links) {
            assert_eq!(a.weight, b.weight);
        }

        assert_eq!(streamed.num_edges, batch.num_edges);
        assert_eq!(streamed.matching.len(), batch.matching.len());
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight, "weights must be bit-identical");
        }
    }

    /// The tentpole contract: the whole observable behaviour — served
    /// links, stats, candidate pairs, finalized output — is
    /// bit-identical for every shard count.
    #[test]
    fn shard_counts_are_observationally_identical() {
        let (l, r) = two_views(7, 4);
        let events = merge_datasets(&l, &r);
        let run = |shards: usize| {
            let mut cfg = stream_cfg();
            cfg.num_shards = shards;
            cfg.refresh_every = 40;
            cfg.window_capacity = Some(12);
            let mut engine = StreamEngine::new(cfg).unwrap();
            let mut updates = Vec::new();
            for chunk in events.chunks(64) {
                updates.extend(engine.ingest_batch(chunk));
            }
            updates.extend(engine.refresh());
            let links = engine.links().to_vec();
            let stats = *engine.stats();
            let scoring = *engine.scoring_stats();
            let pairs = engine.num_candidate_pairs();
            let finalized = engine.into_finalized().unwrap();
            (updates, links, stats, scoring, pairs, finalized)
        };
        let reference = run(1);
        assert!(reference.2.ticks > 0 && reference.2.evicted_windows > 0);
        for shards in [2usize, 4, 7] {
            let other = run(shards);
            assert_eq!(reference.0, other.0, "{shards} shards: update streams");
            assert_eq!(reference.1, other.1, "{shards} shards: served links");
            assert_eq!(reference.2, other.2, "{shards} shards: stream stats");
            assert_eq!(reference.3, other.3, "{shards} shards: scoring stats");
            assert_eq!(reference.4, other.4, "{shards} shards: candidate pairs");
            assert_eq!(reference.5.links.len(), other.5.links.len());
            for (a, b) in reference.5.links.iter().zip(&other.5.links) {
                assert_eq!((a.left, a.right), (b.left, b.right));
                assert_eq!(a.weight, b.weight, "{shards} shards: finalized weights");
            }
        }
    }

    /// The execution-pool contract: worker count, pool mode, and steal
    /// schedule may only move chunks between threads — links, updates,
    /// stats (scheduling telemetry excluded by `PartialEq`), and
    /// finalized output stay bit-identical. Batches are large enough to
    /// actually engage the pool (≥ the parallel thresholds).
    #[test]
    fn worker_counts_and_steal_schedules_are_observationally_identical() {
        let (l, r) = two_views(7, 4);
        let events = merge_datasets(&l, &r);
        let run = |workers: usize, mode: PoolMode| {
            let mut cfg = stream_cfg();
            cfg.num_shards = 4;
            cfg.num_workers = workers;
            cfg.pool_mode = mode;
            cfg.refresh_every = 150;
            cfg.window_capacity = Some(12);
            let mut engine = StreamEngine::new(cfg).unwrap();
            let mut updates = Vec::new();
            for chunk in events.chunks(400) {
                updates.extend(engine.ingest_batch(chunk));
            }
            updates.extend(engine.refresh());
            let links = engine.links().to_vec();
            let stats = *engine.stats();
            let scoring = *engine.scoring_stats();
            let pairs = engine.num_candidate_pairs();
            let finalized = engine.into_finalized().unwrap();
            (updates, links, stats, scoring, pairs, finalized)
        };
        let reference = run(1, PoolMode::Stealing);
        assert!(reference.2.ticks > 0);
        for (workers, mode) in [
            (2, PoolMode::Stealing),
            (4, PoolMode::Stealing),
            (4, PoolMode::Static),
            (3, PoolMode::Scripted { seed: 0xFEED }),
            (3, PoolMode::Scripted { seed: 7 }),
        ] {
            let other = run(workers, mode);
            let tag = format!("{workers} workers, {mode:?}");
            assert_eq!(reference.0, other.0, "{tag}: update streams");
            assert_eq!(reference.1, other.1, "{tag}: served links");
            assert_eq!(reference.2, other.2, "{tag}: stream stats");
            assert_eq!(reference.3, other.3, "{tag}: scoring stats");
            assert_eq!(reference.4, other.4, "{tag}: candidate pairs");
            assert_eq!(reference.5.links.len(), other.5.links.len(), "{tag}");
            for (a, b) in reference.5.links.iter().zip(&other.5.links) {
                assert_eq!((a.left, a.right), (b.left, b.right), "{tag}");
                assert_eq!(a.weight, b.weight, "{tag}: finalized weights");
            }
        }
    }

    /// The scheduling telemetry moves when the pool actually runs: a
    /// multi-worker replay with pool-sized batches must record busy
    /// time, and a 1-worker engine reports workers = 1.
    #[test]
    fn pool_telemetry_is_wired_through_stats() {
        let (l, r) = two_views(7, 4);
        let events = merge_datasets(&l, &r);
        let mut cfg = stream_cfg();
        cfg.num_shards = 4;
        cfg.num_workers = 4;
        cfg.refresh_every = 0;
        let mut engine = StreamEngine::new(cfg).unwrap();
        assert_eq!(engine.num_workers(), 4);
        for chunk in events.chunks(600) {
            engine.ingest_batch(chunk);
        }
        engine.refresh();
        let stats = engine.stats();
        assert!(
            stats.max_worker_busy_ns > 0,
            "pool phases must record busy time"
        );
        assert!(stats.max_worker_busy_ns >= stats.min_worker_busy_ns);
    }

    /// The snapshot is a faithful projection of the engine: every
    /// `StreamStats` counter by name, the live gauges, and one series
    /// per span histogram — under a virtual clock the span values are
    /// exact (all zero), only the counts move.
    #[test]
    fn telemetry_snapshot_reflects_stats_and_phases() {
        use crate::testing::VirtualClock;
        let (l, r) = two_views(7, 4);
        let events = merge_datasets(&l, &r);
        let mut cfg = stream_cfg();
        cfg.num_shards = 4;
        cfg.num_workers = 2;
        cfg.refresh_every = 150;
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.set_telemetry_clock(Arc::new(VirtualClock::new()));
        for chunk in events.chunks(400) {
            engine.ingest_batch(chunk);
        }
        engine.refresh();

        let snap = engine.snapshot();
        let stats = *engine.stats();
        assert_eq!(snap.counter("events"), Some(stats.events));
        assert_eq!(snap.counter("ticks"), Some(stats.ticks));
        assert_eq!(
            snap.counter("rescored_windows"),
            Some(stats.rescored_windows)
        );
        assert_eq!(snap.gauge("links"), Some(engine.links().len() as f64));
        let tick = snap.hist("tick").expect("tick histogram present");
        assert_eq!(tick.count, stats.ticks);
        assert_eq!((tick.sum, tick.max), (0, 0), "virtual clock: exact zeros");
        let by_name = engine.phase_histograms();
        let bin = &by_name
            .iter()
            .find(|(n, _)| *n == "phase.bin")
            .expect("bin phase present")
            .1;
        assert!(bin.count() > 0, "binning chunks must have recorded spans");
        assert_eq!((bin.sum(), bin.max()), (0, 0));
        // Exactness: an identical second run reproduces the span
        // histograms bit-for-bit (worker-busy and steals may differ).
        let mut again = StreamEngine::new(cfg).unwrap();
        again.set_telemetry_clock(Arc::new(VirtualClock::new()));
        for chunk in events.chunks(400) {
            again.ingest_batch(chunk);
        }
        again.refresh();
        assert_eq!(engine.phase_histograms(), again.phase_histograms());
    }

    /// `telemetry: false` records nothing — and (the house invariant,
    /// property-tested end to end in `tests/telemetry_equivalence.rs`)
    /// changes nothing observable.
    #[test]
    fn disabled_telemetry_records_nothing() {
        let (l, r) = two_views(6, 3);
        let mut cfg = stream_cfg();
        cfg.telemetry = false;
        cfg.refresh_every = 200;
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        assert!(engine
            .phase_histograms()
            .iter()
            .all(|(_, h)| h.count() == 0));
        assert_eq!(engine.event_latency_histogram().count(), 0);
        // Snapshots still carry the counters.
        let snap = engine.snapshot();
        assert_eq!(snap.counter("events"), Some(engine.stats().events));
    }

    #[test]
    fn single_tick_at_end_equals_finalize() {
        // With no intermediate ticks, every window is still dirty at the
        // first refresh, so the incremental path must agree exactly with
        // the batch reassembly.
        let (l, r) = two_views(6, 4);
        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        let finalized = engine.finalize().unwrap();
        assert_eq!(engine.links().len(), finalized.links.len());
        for (a, b) in engine.links().iter().zip(&finalized.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn batch_ingest_matches_event_at_a_time() {
        let (l, r) = two_views(5, 3);
        let events = merge_datasets(&l, &r);
        let mut one = StreamEngine::new(stream_cfg()).unwrap();
        for ev in &events {
            one.ingest(ev);
        }
        let mut many = StreamEngine::new(stream_cfg()).unwrap();
        many.ingest_batch(&events);
        let (a, b) = (one.finalize().unwrap(), many.finalize().unwrap());
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!((x.left, x.right), (y.left, y.right));
            assert_eq!(x.weight, y.weight);
        }
        assert_eq!(one.stats().events, many.stats().events);
    }

    #[test]
    fn ticks_emit_added_links() {
        let (l, r) = two_views(5, 5);
        let mut cfg = stream_cfg();
        cfg.refresh_every = 100;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let mut added = 0usize;
        for ev in merge_datasets(&l, &r) {
            for u in engine.ingest(&ev) {
                if matches!(u, LinkUpdate::Added(_)) {
                    added += 1;
                }
            }
        }
        assert!(
            added >= 5,
            "expected the true pairs to surface, got {added}"
        );
        assert!(engine.stats().ticks > 0);
        // All served links are true pairs.
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
    }

    /// A refresh tick must visit exactly the pairs adjacent to the
    /// entities dirtied since the last tick — the adjacency index's
    /// marking contract, and the counter the full-cache sweep
    /// comparison hangs off.
    #[test]
    fn adjacency_marks_exactly_the_touched_pairs() {
        let (l, r) = two_views(4, 4);
        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        let cached = engine.num_candidate_pairs();
        assert_eq!(cached, 16, "brute force tracks all 4×4 pairs");

        // A clean tick visits nothing.
        let visited_before = engine.stats().dirty_pairs_visited;
        engine.refresh();
        assert_eq!(
            engine.stats().dirty_pairs_visited,
            visited_before,
            "no dirty entities → no visited pairs"
        );

        // One event for one left entity dirties exactly its 4 pairs.
        engine.ingest(&StreamEvent::new(
            Side::Left,
            EntityId(2),
            LatLng::from_degrees(37.06, -122.04),
            Timestamp(26 * 900),
        ));
        let visited_before = engine.stats().dirty_pairs_visited;
        engine.refresh();
        let visited = engine.stats().dirty_pairs_visited - visited_before;
        assert_eq!(
            visited, 4,
            "exactly the pairs containing the ingested entity"
        );
        // The tick-level proof that refresh no longer sweeps the cache.
        assert!(engine.stats().dirty_pairs_visited < engine.stats().cached_pairs_at_ticks);
    }

    /// The globally earliest record belonging to a sparse entity the
    /// batch filter drops shifts the inferred origin; pinning via
    /// `batch_equivalent_origin` restores bit-identical finalization.
    #[test]
    fn sparse_straggler_origin_pinning_restores_equivalence() {
        // Dense pairs at 890 + k·900 (left) / 910 + k·900 (right): with
        // the batch origin 890 each pair shares window k; with a naive
        // origin 0 (set by the sparse straggler below) the right records
        // shift into window k + 1 and every score changes.
        let mut left_records: Vec<Record> = vec![rec(4999, 0, 5.0, 5.0)];
        let mut right_records: Vec<Record> = Vec::new();
        for e in 0..5u64 {
            let (lat, lng) = (37.0 + 0.04 * e as f64, -122.0 - 0.03 * e as f64);
            for k in 0..20i64 {
                left_records.push(rec(e, 890 + k * 900, lat + 0.001 * ((k % 3) as f64), lng));
                right_records.push(rec(
                    1000 + e,
                    910 + k * 900,
                    lat + 0.001 * ((k % 3) as f64) + 0.0003,
                    lng + 0.0002,
                ));
            }
        }
        let l = LocationDataset::from_records(left_records);
        let r = LocationDataset::from_records(right_records);
        let batch = Slim::new(SlimConfig::default()).unwrap().link(&l, &r);
        assert!(!batch.links.is_empty());

        let origin =
            crate::event::batch_equivalent_origin(&l, &r, SlimConfig::default().min_records)
                .unwrap();
        assert_eq!(
            origin,
            Timestamp(890),
            "sparse straggler must not set the origin"
        );
        let mut engine = StreamEngine::with_origin(stream_cfg(), origin).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        let streamed = engine.finalize().unwrap();
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight, "weights must be bit-identical");
        }

        // Control: the naive first-event origin (0, the straggler's
        // timestamp) shifts window boundaries and the weights diverge —
        // this is exactly what origin pinning exists to prevent.
        let mut naive = StreamEngine::new(stream_cfg()).unwrap();
        naive.ingest_batch(&merge_datasets(&l, &r));
        let naive_out = naive.finalize().unwrap();
        let diverges = naive_out.links.len() != batch.links.len()
            || naive_out
                .links
                .iter()
                .zip(&batch.links)
                .any(|(a, b)| a.weight != b.weight);
        assert!(diverges, "fixture must actually straddle a window boundary");
    }

    #[test]
    fn min_records_buffering_matches_batch_filter() {
        let (l, r) = two_views(3, 3);
        // A sparse right entity below the min-records threshold.
        let mut right_records: Vec<Record> = Vec::new();
        for e in r.entities_sorted() {
            right_records.extend_from_slice(r.records_of(e));
        }
        right_records.push(rec(2999, 100, 10.0, 10.0));
        right_records.push(rec(2999, 1100, 10.0, 10.0));
        let r = LocationDataset::from_records(right_records);

        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        assert!(engine.history(Side::Right, EntityId(2999)).is_none());
        assert_eq!(engine.num_active(Side::Right), 3);

        let batch = Slim::new(SlimConfig::default()).unwrap().link(&l, &r);
        let streamed = engine.finalize().unwrap();
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn sliding_window_expires_old_evidence() {
        let (l, r) = two_views(4, 4);
        let mut cfg = stream_cfg();
        // The 25-window trace has one record per window: a capacity of 10
        // lets entities pass the min-records filter from live evidence
        // alone while still forcing plenty of expiry.
        cfg.window_capacity = Some(10);
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        assert!(engine.stats().evicted_windows > 0);
        let entities = engine.tracked_entities_sorted(Side::Left);
        assert!(!entities.is_empty(), "entities must survive activation");
        // Only the last 10 windows of history remain.
        for e in entities {
            let h = engine.history(Side::Left, e).unwrap();
            assert!(
                h.num_windows() <= 10,
                "{e} kept {} windows",
                h.num_windows()
            );
            assert!(h.windows().all(|w| w + 10 > engine.watermark));
        }
        // Still linkable from recent windows alone.
        assert!(!engine.links().is_empty());
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
    }

    #[test]
    fn pending_buffers_respect_window_expiry() {
        // One record per window with a window capacity below the
        // min-records threshold: the entity never has enough *live*
        // records to activate, exactly like the batch filter applied to
        // any window-sized slice of its history.
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(4);
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        for k in 0..25i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(1),
                ll,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(engine.num_active(Side::Left), 0);
        assert_eq!(engine.num_tracked_entities(Side::Left), 0);
    }

    /// An entity whose history expires away and who reactivates *before*
    /// the next tick must not keep serving links backed by evicted
    /// windows: its cached pair contributions are purged at rebirth.
    #[test]
    fn reactivation_purges_stale_pair_cache() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(8);
        cfg.slim.min_records = 2;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let at = |lat: f64, lng: f64, k: i64| (LatLng::from_degrees(lat, lng), Timestamp(k * 900));
        let feed = |eng: &mut StreamEngine, side, id: u64, lat: f64, lng: f64, k: i64| {
            let (ll, t) = at(lat, lng, k);
            eng.ingest(&StreamEvent::new(side, EntityId(id), ll, t));
        };
        // Windows 0..3: the linkable pair 1 ↔ 1001 co-located in region
        // A, fillers 2 ↔ 1002 in region B, watermark-driver 3 on the left.
        for k in 0..4 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0, k);
            feed(&mut engine, Side::Right, 1001, 37.0, -122.0, k);
            feed(&mut engine, Side::Left, 2, 10.0, 10.0, k);
            feed(&mut engine, Side::Right, 1002, 10.0, 10.0, k);
            feed(&mut engine, Side::Left, 3, -20.0, 60.0, k);
        }
        engine.refresh();
        assert!(
            engine
                .links()
                .iter()
                .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))),
            "pair must link while co-located: {:?}",
            engine.links()
        );

        // Entity 3 jumps far ahead: every window below 94 expires, so 1,
        // 1001, 2, and 1002 die — with NO tick in between.
        feed(&mut engine, Side::Left, 3, -20.0, 60.0, 100);
        feed(&mut engine, Side::Left, 3, -20.0, 60.0, 101);
        assert_eq!(engine.num_active(Side::Right), 0);

        // Both endpoints reactivate before the next tick — in disjoint
        // windows AND distant regions, so nothing links them anymore.
        for k in 100..103 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0, k);
            feed(&mut engine, Side::Left, 2, 10.0, 10.0, k);
        }
        for k in 104..107 {
            feed(&mut engine, Side::Right, 1001, -35.0, 140.0, k);
            feed(&mut engine, Side::Right, 1002, 10.0, 10.0, k);
        }
        engine.refresh();
        assert!(
            !engine
                .links()
                .iter()
                .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))),
            "ghost link served from evicted evidence: {:?}",
            engine.links()
        );
        // The exact pipeline over the live histories agrees.
        let finalized = engine.finalize().unwrap();
        assert!(!finalized
            .links
            .iter()
            .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))));
    }

    /// Expiry that leaves an entity with min_records or fewer live
    /// records must demote it entirely — the batch filter over the live
    /// slice would exclude it, and a fresh entity with identical live
    /// evidence would still be buffering.
    #[test]
    fn expiry_below_min_records_demotes_entity() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(10);
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        // Entity 1: 7 records in windows 0..7, then silence.
        for k in 0..7i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(1),
                ll,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(engine.num_active(Side::Left), 1);
        // Entity 2 drives the watermark forward; as soon as entity 1's
        // live records drop to min_records (5), it is demoted outright.
        let far = LatLng::from_degrees(10.0, 10.0);
        for k in 11..13i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(2),
                far,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(
            engine.num_active(Side::Left),
            0,
            "below-threshold entity demoted"
        );
        assert!(engine.history(Side::Left, EntityId(1)).is_none());
        // The discarded live evidence is accounted for.
        assert_eq!(engine.stats().demoted_entities, 1);
        assert_eq!(engine.stats().demoted_records, 5);
    }

    #[test]
    fn late_events_beyond_expiry_are_dropped() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(2);
        cfg.slim.min_records = 0;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        engine.ingest(&StreamEvent::new(Side::Left, EntityId(1), ll, Timestamp(0)));
        engine.ingest(&StreamEvent::new(
            Side::Left,
            EntityId(1),
            ll,
            Timestamp(10 * 900),
        ));
        // Window 0 has expired: a straggler event there must be dropped.
        engine.ingest(&StreamEvent::new(
            Side::Left,
            EntityId(1),
            ll,
            Timestamp(100),
        ));
        assert_eq!(engine.stats().late_dropped, 1);
    }

    #[test]
    fn lsh_mode_links_planted_pair() {
        let (l, r) = two_views(6, 4);
        let mut cfg = stream_cfg();
        cfg.lsh = Some(crate::config::StreamLshConfig {
            spans: 16,
            base: slim_lsh::LshConfig {
                step_windows: 2,
                spatial_level: 12,
                ..slim_lsh::LshConfig::default()
            },
        });
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        let brute = (engine.num_active(Side::Left) * engine.num_active(Side::Right)) as f64;
        assert!(
            (engine.num_candidate_pairs() as f64) < brute,
            "LSH should prune candidates: {} of {brute}",
            engine.num_candidate_pairs()
        );
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
        assert!(!engine.links().is_empty());
    }

    /// Candidate-set retirement: a pair whose signatures stop colliding
    /// and whose cached contributions all expire must leave the cache,
    /// with the retirement counted.
    #[test]
    fn drifted_apart_pairs_retire() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(8);
        cfg.slim.min_records = 2;
        cfg.lsh = Some(crate::config::StreamLshConfig {
            spans: 8,
            base: slim_lsh::LshConfig {
                step_windows: 1,
                spatial_level: 12,
                ..slim_lsh::LshConfig::default()
            },
        });
        let mut engine = StreamEngine::new(cfg).unwrap();
        let feed = |eng: &mut StreamEngine, side, id: u64, lat: f64, lng: f64, k: i64| {
            eng.ingest(&StreamEvent::new(
                side,
                EntityId(id),
                LatLng::from_degrees(lat, lng),
                Timestamp(k * 900),
            ));
        };
        // Windows 0..4: 1 ↔ 1001 co-located (collide, become a pair).
        for k in 0..4 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0, k);
            feed(&mut engine, Side::Right, 1001, 37.0, -122.0, k);
        }
        engine.refresh();
        assert_eq!(engine.num_candidate_pairs(), 1, "collision discovered");

        // Both keep streaming but from different continents: the old
        // co-located windows expire, the rings drift apart, and the pair
        // has no evidence and no collision left.
        for k in 4..20 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0 + (k - 3) as f64, k);
            feed(
                &mut engine,
                Side::Right,
                1001,
                -33.0,
                151.0 + (k - 3) as f64,
                k,
            );
        }
        engine.refresh();
        assert_eq!(
            engine.num_candidate_pairs(),
            0,
            "drifted pair must retire from the cache"
        );
        assert_eq!(engine.stats().retired_pairs, 1);
    }
}
