//! The incremental linkage engine.
//!
//! ```text
//! events ──► shard-by-entity binning ──► incremental histories + df/idf
//!                                     └► incremental LSH ring signatures
//!        refresh tick ──► dirty-pair window rescore ──► matching + GMM
//!                                                      └► link updates
//!        finalize ─────► exact batch pipeline over the live histories
//! ```
//!
//! The engine maintains, per side, a [`HistorySet`] built record by
//! record, a per-entity min-records buffer (mirroring the batch
//! pipeline's sparse-entity filter), and a per-pair cache of
//! *unnormalized per-window score contributions*. An arriving record
//! only dirties its own window of its own entity; a refresh tick
//! recomputes exactly the dirty `(pair, window)` contributions in
//! parallel, reassembles scores as `Σ contributions / norm`, and re-runs
//! matching + stop thresholding over the full cached edge set, emitting
//! the resulting link deltas.
//!
//! Between ticks, cached contributions of *untouched* windows may lag
//! the globally drifting idf statistics — refreshed lazily, exactly when
//! one of their endpoints changes. [`StreamEngine::finalize`] closes the
//! gap: it runs the unmodified batch pipeline over the incrementally
//! built history sets, so an unbounded-window replay finalizes to the
//! bit-identical output of [`slim_core::Slim::link`] on the same data —
//! provided the window origins agree. An engine left to infer its
//! origin takes the first event's timestamp; the batch pipeline takes
//! the post-min-records-filter minimum. The two coincide unless the
//! stream opens with a record of a sparse entity the batch filter
//! drops; replay paths pin the origin via [`StreamEngine::with_origin`]
//! + [`crate::batch_equivalent_origin`] to cover that case too.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Duration;

use geocell::CellId;
use slim_core::history::record_cells;
use slim_core::matching::{exact_max_matching, greedy_max_matching};
use slim_core::similarity::SimilarityScorer;
use slim_core::threshold::select_threshold;
use slim_core::{
    Edge, EntityId, HistorySet, LinkageOutput, LinkageStats, MatchingMethod, PreparedLinkage,
    Timestamp, WindowIdx, WindowScheme,
};

use crate::config::StreamConfig;
use crate::event::{Side, StreamEvent};
use crate::lsh::StreamLshIndex;

/// One change to the served link set, emitted by a refresh tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkUpdate {
    /// A pair entered the link set.
    Added(Edge),
    /// A pair left the link set.
    Removed(Edge),
    /// A pair stayed linked but its score changed.
    Reweighted {
        /// The link as served before this tick.
        previous: Edge,
        /// The link as served now.
        current: Edge,
    },
}

/// Engine work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events accepted (including ones still in min-records buffers).
    pub events: u64,
    /// Events dropped because their window had already expired.
    pub late_dropped: u64,
    /// Refresh ticks run.
    pub ticks: u64,
    /// `(pair, window)` contribution recomputations across all ticks.
    pub rescored_windows: u64,
    /// Temporal windows expired out of the sliding window.
    pub evicted_windows: u64,
    /// Entities demoted because expiry left them at or below the
    /// min-records threshold.
    pub demoted_entities: u64,
    /// Still-live records discarded by those demotions. An entity
    /// hovering around the threshold therefore under-links relative to
    /// a batch run over the live slice (which would count these records
    /// toward the filter) — a deliberately conservative trade: the
    /// engine would otherwise have to retain raw events for every
    /// active entity just to re-buffer them.
    pub demoted_records: u64,
}

/// An event with its temporal/spatial binning done — the unit of work
/// the sharded ingest path precomputes on worker threads.
#[derive(Debug, Clone)]
struct BinnedEvent {
    side: Side,
    entity: EntityId,
    w: WindowIdx,
    /// `record_cells` output at the similarity spatial level.
    cells: Vec<CellId>,
    /// `record_cells` output at the LSH spatial level (empty when LSH
    /// is disabled).
    lsh_cells: Vec<CellId>,
}

/// The event-driven linkage engine. See the module docs for the data
/// flow; see [`StreamConfig`] for the knobs.
pub struct StreamEngine {
    cfg: StreamConfig,
    shards: usize,
    scheme: Option<WindowScheme>,
    /// Incremental history sets, `[left, right]`; allocated on the first
    /// event (whose timestamp becomes the window origin).
    sets: Option<[HistorySet; 2]>,
    /// Min-records buffers: entities whose record count has not yet
    /// exceeded `slim.min_records` are parked here, exactly like the
    /// batch pipeline's sparse-entity filter.
    pending: [HashMap<EntityId, Vec<BinnedEvent>>; 2],
    /// Entities that crossed the min-records threshold.
    active: [HashSet<EntityId>; 2],
    /// Windows touched per entity since the last tick.
    dirty: [HashMap<EntityId, BTreeSet<WindowIdx>>; 2],
    /// Candidate pairs discovered since the last tick; their full common
    /// window set is scored at the next tick (their endpoints may carry
    /// history predating the discovery).
    fresh: HashSet<(EntityId, EntityId)>,
    /// Entities whose history expired entirely; their pairs are dropped
    /// at the next tick.
    dead: [HashSet<EntityId>; 2],
    /// Which entities have bins in which window — drives expiry.
    window_entities: BTreeMap<WindowIdx, [BTreeSet<EntityId>; 2]>,
    /// Highest window index seen.
    watermark: WindowIdx,
    /// Windows below this index have expired.
    expired_below: WindowIdx,
    /// Per candidate pair: window → unnormalized score contribution.
    cache: HashMap<(EntityId, EntityId), BTreeMap<WindowIdx, f64>>,
    lsh: Option<StreamLshIndex>,
    /// The currently served link set (as of the last tick).
    links: Vec<Edge>,
    events_since_refresh: usize,
    stats: StreamStats,
    scoring_stats: LinkageStats,
}

impl StreamEngine {
    /// Creates an engine after validating the configuration. The window
    /// scheme's origin is taken from the first ingested event; use
    /// [`StreamEngine::with_origin`] to pin it (e.g. to compare against
    /// a batch run over data whose earliest record is known).
    pub fn new(cfg: StreamConfig) -> Result<Self, String> {
        cfg.validate()?;
        let shards = cfg.effective_shards();
        Ok(Self {
            lsh: cfg.lsh.map(StreamLshIndex::new),
            cfg,
            shards,
            scheme: None,
            sets: None,
            pending: [HashMap::new(), HashMap::new()],
            active: [HashSet::new(), HashSet::new()],
            dirty: [HashMap::new(), HashMap::new()],
            fresh: HashSet::new(),
            dead: [HashSet::new(), HashSet::new()],
            window_entities: BTreeMap::new(),
            watermark: 0,
            expired_below: 0,
            cache: HashMap::new(),
            links: Vec::new(),
            events_since_refresh: 0,
            stats: StreamStats::default(),
            scoring_stats: LinkageStats::default(),
        })
    }

    /// [`StreamEngine::new`] with the window origin pinned up front.
    pub fn with_origin(cfg: StreamConfig, origin: Timestamp) -> Result<Self, String> {
        let mut engine = Self::new(cfg)?;
        engine.init_scheme(origin);
        Ok(engine)
    }

    fn init_scheme(&mut self, origin: Timestamp) {
        let scheme = WindowScheme::new(origin, self.cfg.slim.window_width_secs);
        self.sets = Some([
            HistorySet::new_incremental(scheme, self.cfg.slim.spatial_level),
            HistorySet::new_incremental(scheme, self.cfg.slim.spatial_level),
        ]);
        self.scheme = Some(scheme);
    }

    /// The engine's window scheme (`None` until the first event).
    pub fn scheme(&self) -> Option<&WindowScheme> {
        self.scheme.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Work counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Cumulative similarity-scoring counters across all ticks.
    pub fn scoring_stats(&self) -> &LinkageStats {
        &self.scoring_stats
    }

    /// The link set as of the last refresh tick.
    pub fn links(&self) -> &[Edge] {
        &self.links
    }

    /// Number of active (past the min-records filter) entities.
    pub fn num_active(&self, side: Side) -> usize {
        self.active[side.idx()].len()
    }

    /// Number of candidate pairs currently tracked.
    pub fn num_candidate_pairs(&self) -> usize {
        self.cache.len()
    }

    /// The live history set of one side (`None` until the first event).
    pub fn history_set(&self, side: Side) -> Option<&HistorySet> {
        self.sets.as_ref().map(|s| &s[side.idx()])
    }

    fn bin_event(
        ev: &StreamEvent,
        scheme: &WindowScheme,
        level: u8,
        lsh_level: Option<u8>,
    ) -> BinnedEvent {
        let record = ev.to_record();
        // Point records at a finer LSH level share the geometry work:
        // one fine lookup, coarsened exactly via the cell hierarchy.
        let (cells, lsh_cells) = match lsh_level {
            Some(l) if l >= level && !record.is_region() => {
                let fine = CellId::from_latlng(record.location, l);
                (vec![fine.parent(level)], vec![fine])
            }
            Some(l) => (record_cells(&record, level), record_cells(&record, l)),
            None => (record_cells(&record, level), Vec::new()),
        };
        BinnedEvent {
            side: ev.side,
            entity: ev.entity,
            w: scheme.window_of(ev.time),
            cells,
            lsh_cells,
        }
    }

    /// Ingests one event. Returns link updates when this event completed
    /// a refresh interval (empty otherwise).
    pub fn ingest(&mut self, ev: &StreamEvent) -> Vec<LinkUpdate> {
        if self.scheme.is_none() {
            self.init_scheme(ev.time);
        }
        let scheme = self.scheme.expect("initialized above");
        let binned = Self::bin_event(
            ev,
            &scheme,
            self.cfg.slim.spatial_level,
            self.lsh.as_ref().map(|l| l.spatial_level()),
        );
        self.apply(binned)
    }

    /// Ingests a batch of events, sharding the spatial binning (the
    /// trigonometry-heavy part of ingestion) by entity hash across
    /// worker threads, then applying the appends in stream order. Ticks
    /// fire inside the batch exactly as they would one event at a time.
    pub fn ingest_batch(&mut self, events: &[StreamEvent]) -> Vec<LinkUpdate> {
        let Some(first) = events.first() else {
            return Vec::new();
        };
        if self.scheme.is_none() {
            self.init_scheme(first.time);
        }
        let scheme = self.scheme.expect("initialized above");
        let level = self.cfg.slim.spatial_level;
        let lsh_level = self.lsh.as_ref().map(|l| l.spatial_level());
        let shards = self.shards.clamp(1, events.len());

        let mut binned: Vec<Option<BinnedEvent>> = vec![None; events.len()];
        if shards == 1 {
            for (i, ev) in events.iter().enumerate() {
                binned[i] = Some(Self::bin_event(ev, &scheme, level, lsh_level));
            }
        } else {
            // One pass partitions event indices by entity hash; each
            // worker then bins exactly its shard's events.
            let mut shard_indices: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for (i, ev) in events.iter().enumerate() {
                shard_indices[entity_shard(ev.side, ev.entity, shards)].push(i);
            }
            let per_shard: Vec<Vec<(usize, BinnedEvent)>> = std::thread::scope(|s| {
                let handles: Vec<_> = shard_indices
                    .iter()
                    .map(|indices| {
                        let scheme = &scheme;
                        s.spawn(move || {
                            indices
                                .iter()
                                .map(|&i| {
                                    (i, Self::bin_event(&events[i], scheme, level, lsh_level))
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("binning threads must not panic"))
                    .collect()
            });
            for shard in per_shard {
                for (i, b) in shard {
                    binned[i] = Some(b);
                }
            }
        }

        let mut updates = Vec::new();
        for b in binned.into_iter().flatten() {
            updates.extend(self.apply(b));
        }
        updates
    }

    fn apply(&mut self, binned: BinnedEvent) -> Vec<LinkUpdate> {
        if binned.w < self.expired_below {
            self.stats.late_dropped += 1;
            return Vec::new();
        }
        self.stats.events += 1;
        let side = binned.side;
        let entity = binned.entity;
        let w = binned.w;

        if self.active[side.idx()].contains(&entity) {
            self.append_active(binned);
        } else {
            let buffer = self.pending[side.idx()].entry(entity).or_default();
            buffer.push(binned);
            if buffer.len() > self.cfg.slim.min_records {
                self.activate(side, entity);
            }
        }

        self.advance_watermark(w);

        self.events_since_refresh += 1;
        if self.cfg.refresh_every > 0 && self.events_since_refresh >= self.cfg.refresh_every {
            self.refresh()
        } else {
            Vec::new()
        }
    }

    /// Moves a buffered entity past the min-records filter: replays its
    /// buffer into the history set and registers its candidate pairs.
    fn activate(&mut self, side: Side, entity: EntityId) {
        let buffered = self.pending[side.idx()].remove(&entity).unwrap_or_default();
        self.active[side.idx()].insert(entity);
        if self.dead[side.idx()].remove(&entity) {
            // The entity expired away entirely and is now being reborn
            // *before* a refresh tick processed its death. Its cached
            // pairs still hold contributions from evicted windows that
            // no dirty mark references anymore (death wiped them) — they
            // would be served as ghost links forever. Drop them now; the
            // candidate registration below rediscovers live pairs fresh.
            let drop_pair = |&(u, v): &(EntityId, EntityId)| match side {
                Side::Left => u == entity,
                Side::Right => v == entity,
            };
            self.cache.retain(|pair, _| !drop_pair(pair));
            self.fresh.retain(|pair| !drop_pair(pair));
            // self.links is left untouched: it is defined as "as of the
            // last tick", and the next tick emits the Removed updates.
        }
        for b in buffered {
            self.append_active(b);
        }
        if self.lsh.is_none() {
            // Brute force: pair with every active entity on the other side.
            let partners: Vec<EntityId> = self.active[side.other().idx()].iter().copied().collect();
            for p in partners {
                self.add_candidate(side, entity, p);
            }
        }
    }

    fn add_candidate(&mut self, side: Side, entity: EntityId, partner: EntityId) {
        let pair = match side {
            Side::Left => (entity, partner),
            Side::Right => (partner, entity),
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = self.cache.entry(pair) {
            slot.insert(BTreeMap::new());
            self.fresh.insert(pair);
        }
    }

    fn append_active(&mut self, b: BinnedEvent) {
        let side = b.side;
        let sets = self.sets.as_mut().expect("scheme initialized");
        sets[side.idx()].append_record_binned(b.entity, b.w, &b.cells);
        self.dirty[side.idx()]
            .entry(b.entity)
            .or_default()
            .insert(b.w);
        self.window_entities.entry(b.w).or_default()[side.idx()].insert(b.entity);
        let partners = self
            .lsh
            .as_mut()
            .and_then(|lsh| lsh.add(side, b.entity, b.w, &b.lsh_cells));
        if let Some(partners) = partners {
            for p in partners {
                if self.active[side.other().idx()].contains(&p) {
                    self.add_candidate(side, b.entity, p);
                }
            }
        }
    }

    /// Advances the watermark and expires windows that slid out of the
    /// configured capacity.
    fn advance_watermark(&mut self, w: WindowIdx) {
        if w > self.watermark {
            self.watermark = w;
        }
        let Some(capacity) = self.cfg.window_capacity else {
            return;
        };
        let keep_from = (self.watermark + 1).saturating_sub(capacity);
        if keep_from <= self.expired_below {
            return;
        }
        let expired: Vec<WindowIdx> = self
            .window_entities
            .range(..keep_from)
            .map(|(&win, _)| win)
            .collect();
        for win in expired {
            let sides = self.window_entities.remove(&win).expect("collected above");
            self.stats.evicted_windows += 1;
            for side in [Side::Left, Side::Right] {
                for &e in &sides[side.idx()] {
                    let sets = self.sets.as_mut().expect("scheme initialized");
                    sets[side.idx()].evict_entity_window(e, win);
                    self.dirty[side.idx()].entry(e).or_default().insert(win);
                    // Expiry can *change* a ring signature (a formerly
                    // dominated cell takes over the slot) — collisions
                    // surfacing from that are candidates like any other.
                    let partners = self.lsh.as_mut().and_then(|lsh| lsh.evict(side, e, win));
                    if let Some(partners) = partners {
                        for p in partners {
                            if self.active[side.other().idx()].contains(&p) {
                                self.add_candidate(side, e, p);
                            }
                        }
                    }
                    // Approximate the batch filter on the *live* slice:
                    // an entity whose remaining records no longer exceed
                    // min_records would be excluded by `Slim::prepare`
                    // over the same window, so demote it — its leftover
                    // evidence is discarded (counted in
                    // `StreamStats::demoted_records`) and its pairs die
                    // at the next tick. Fresh records re-buffer it like
                    // any other sparse entity; the discarded ones no
                    // longer count toward reactivation, which is the
                    // conservative side of the batch semantics.
                    let sets = self.sets.as_ref().expect("scheme initialized");
                    let demote = match sets[side.idx()].history(e) {
                        None => true,
                        Some(h) => h.num_records() as usize <= self.cfg.slim.min_records,
                    };
                    if demote {
                        self.stats.demoted_entities += 1;
                        self.stats.demoted_records += sets[side.idx()]
                            .history(e)
                            .map(|h| h.num_records() as u64)
                            .unwrap_or(0);
                        let leftover: Vec<WindowIdx> = sets[side.idx()]
                            .history(e)
                            .map(|h| h.windows().collect())
                            .unwrap_or_default();
                        let sets = self.sets.as_mut().expect("scheme initialized");
                        for lw in leftover {
                            sets[side.idx()].evict_entity_window(e, lw);
                            if let Some(sides) = self.window_entities.get_mut(&lw) {
                                sides[side.idx()].remove(&e);
                            }
                        }
                        if let Some(lsh) = &mut self.lsh {
                            lsh.remove_entity(side, e);
                        }
                        self.active[side.idx()].remove(&e);
                        self.dead[side.idx()].insert(e);
                        self.dirty[side.idx()].remove(&e);
                    }
                }
            }
        }
        // Min-records buffers must not resurrect expired windows either.
        for side in [Side::Left, Side::Right] {
            for buffer in self.pending[side.idx()].values_mut() {
                buffer.retain(|b| b.w >= keep_from);
            }
            self.pending[side.idx()].retain(|_, buffer| !buffer.is_empty());
        }
        self.expired_below = keep_from;
    }

    /// Runs a refresh tick: recomputes the dirty `(pair, window)`
    /// contributions in parallel, rebuilds the edge set from the cache,
    /// re-runs matching + stop thresholding, and returns the difference
    /// to the previously served link set.
    pub fn refresh(&mut self) -> Vec<LinkUpdate> {
        self.events_since_refresh = 0;
        let Some(sets) = self.sets.as_ref() else {
            return Vec::new();
        };
        self.stats.ticks += 1;

        // Drop pairs whose endpoint expired away entirely.
        if !self.dead[0].is_empty() || !self.dead[1].is_empty() {
            let (dead_l, dead_r) = (&self.dead[0], &self.dead[1]);
            self.cache
                .retain(|(u, v), _| !dead_l.contains(u) && !dead_r.contains(v));
            self.fresh
                .retain(|(u, v)| !dead_l.contains(u) && !dead_r.contains(v));
            self.dead[0].clear();
            self.dead[1].clear();
        }

        // Gather dirty work: fresh pairs rescore all common windows,
        // known pairs only the union of their endpoints' dirty windows.
        type Job = ((EntityId, EntityId), Option<Vec<WindowIdx>>);
        let jobs: Vec<Job> = self
            .cache
            .keys()
            .filter_map(|&(u, v)| {
                if self.fresh.contains(&(u, v)) {
                    return Some(((u, v), None));
                }
                let du = self.dirty[0].get(&u);
                let dv = self.dirty[1].get(&v);
                if du.is_none() && dv.is_none() {
                    return None;
                }
                let mut windows: Vec<WindowIdx> = Vec::new();
                if let Some(du) = du {
                    windows.extend(du.iter().copied());
                }
                if let Some(dv) = dv {
                    windows.extend(dv.iter().copied());
                }
                windows.sort_unstable();
                windows.dedup();
                Some(((u, v), Some(windows)))
            })
            .collect();

        let [left_set, right_set] = sets;
        let scorer = SimilarityScorer::new(&self.cfg.slim, left_set, right_set);
        type JobResult = (usize, Option<Vec<(WindowIdx, f64)>>);
        let threads = self.shards.clamp(1, jobs.len().max(1));
        let chunk = jobs.len().div_ceil(threads).max(1);
        let results: Vec<(Vec<JobResult>, LinkageStats)> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .enumerate()
                .map(|(chunk_idx, part)| {
                    let scorer = &scorer;
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(part.len());
                        let mut stats = LinkageStats::default();
                        for (j, ((u, v), spec)) in part.iter().enumerate() {
                            let idx = chunk_idx * chunk + j;
                            let (Some(hu), Some(hv)) =
                                (left_set.history(*u), right_set.history(*v))
                            else {
                                out.push((idx, None));
                                continue;
                            };
                            let windows: Vec<WindowIdx> = match spec {
                                Some(ws) => ws.clone(),
                                None => slim_core::similarity::common_windows(hu, hv).collect(),
                            };
                            let contributions: Vec<(WindowIdx, f64)> = windows
                                .into_iter()
                                .map(|w| (w, scorer.window_contribution(hu, hv, w, &mut stats)))
                                .collect();
                            out.push((idx, Some(contributions)));
                        }
                        (out, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rescoring threads must not panic"))
                .collect()
        });

        // Apply the recomputed contributions to the cache.
        for (part, stats) in results {
            self.scoring_stats.merge(&stats);
            for (idx, contributions) in part {
                let pair = jobs[idx].0;
                match contributions {
                    None => {
                        self.cache.remove(&pair);
                    }
                    Some(contributions) => {
                        self.stats.rescored_windows += contributions.len() as u64;
                        let windows = self.cache.entry(pair).or_default();
                        for (w, c) in contributions {
                            if c == 0.0 {
                                windows.remove(&w);
                            } else {
                                windows.insert(w, c);
                            }
                        }
                    }
                }
            }
        }
        self.fresh.clear();
        self.dirty[0].clear();
        self.dirty[1].clear();

        // Reassemble edges from the cache and re-run matching +
        // thresholding — the same arithmetic as the batch pipeline:
        // score = Σ window contributions / pair norm.
        let scorer = {
            let [left_set, right_set] = self.sets.as_ref().expect("checked above");
            SimilarityScorer::new(&self.cfg.slim, left_set, right_set)
        };
        let mut edges: Vec<Edge> = self
            .cache
            .iter()
            .filter_map(|(&(u, v), windows)| {
                if windows.is_empty() {
                    return None;
                }
                let score: f64 = windows.values().sum::<f64>() / scorer.pair_norm(u, v);
                (score > 0.0).then_some(Edge {
                    left: u,
                    right: v,
                    weight: score,
                })
            })
            .collect();
        edges.sort_by_key(|e| (e.left, e.right));
        let matching = match self.cfg.slim.matching_method {
            MatchingMethod::Greedy => greedy_max_matching(&edges),
            MatchingMethod::HungarianExact => exact_max_matching(&edges),
        };
        let weights: Vec<f64> = matching.iter().map(|e| e.weight).collect();
        let threshold = select_threshold(&weights, self.cfg.slim.threshold_method);
        let new_links: Vec<Edge> = match &threshold {
            Some(t) => matching
                .iter()
                .filter(|e| e.weight >= t.threshold)
                .copied()
                .collect(),
            None => matching,
        };

        let updates = diff_links(&self.links, &new_links);
        self.links = new_links;
        updates
    }

    /// Runs the **exact batch pipeline** over the incrementally built
    /// history sets: brute-force candidates without LSH, the accumulated
    /// candidate set with it. With an unbounded window this returns
    /// output identical to [`slim_core::Slim::link`] over the same
    /// records — the stream/batch equivalence contract.
    pub fn finalize(&self) -> Result<LinkageOutput, String> {
        let Some([left_set, right_set]) = self.sets.as_ref() else {
            return Ok(LinkageOutput {
                links: Vec::new(),
                matching: Vec::new(),
                num_edges: 0,
                threshold: None,
                stats: LinkageStats::default(),
                elapsed: Duration::ZERO,
            });
        };
        let left_set = left_set.clone();
        let right_set = right_set.clone();
        self.finalize_sets(left_set, right_set)
    }

    /// [`StreamEngine::finalize`] that consumes the engine, moving the
    /// history sets into the batch pipeline instead of deep-cloning them
    /// — use this at the end of a replay to avoid a transient 2x of the
    /// engine's dominant state (the CLI `--stream` path does).
    pub fn into_finalized(mut self) -> Result<LinkageOutput, String> {
        let Some([left_set, right_set]) = self.sets.take() else {
            return self.finalize(); // empty-engine path
        };
        self.finalize_sets(left_set, right_set)
    }

    fn finalize_sets(
        &self,
        left_set: HistorySet,
        right_set: HistorySet,
    ) -> Result<LinkageOutput, String> {
        let prepared = PreparedLinkage::from_history_sets(self.cfg.slim, left_set, right_set)?;
        Ok(if self.lsh.is_some() {
            let mut candidates: Vec<(EntityId, EntityId)> = self.cache.keys().copied().collect();
            candidates.sort_unstable();
            prepared.link_with_candidates(&candidates)
        } else {
            prepared.link()
        })
    }
}

/// Deterministic entity→shard assignment (FNV-1a over side + id).
fn entity_shard(side: Side, entity: EntityId, shards: usize) -> usize {
    (slim_lsh::fnv1a([side.idx() as u64, entity.0].into_iter()) % shards as u64) as usize
}

/// Difference between two served link sets, ordered by `(left, right)`.
fn diff_links(old: &[Edge], new: &[Edge]) -> Vec<LinkUpdate> {
    let old_by_pair: HashMap<(EntityId, EntityId), Edge> =
        old.iter().map(|e| ((e.left, e.right), *e)).collect();
    let new_by_pair: HashMap<(EntityId, EntityId), Edge> =
        new.iter().map(|e| ((e.left, e.right), *e)).collect();
    let mut updates: Vec<((EntityId, EntityId), LinkUpdate)> = Vec::new();
    for (&pair, &edge) in &new_by_pair {
        match old_by_pair.get(&pair) {
            None => updates.push((pair, LinkUpdate::Added(edge))),
            Some(&prev) if prev.weight != edge.weight => updates.push((
                pair,
                LinkUpdate::Reweighted {
                    previous: prev,
                    current: edge,
                },
            )),
            Some(_) => {}
        }
    }
    for (&pair, &edge) in &old_by_pair {
        if !new_by_pair.contains_key(&pair) {
            updates.push((pair, LinkUpdate::Removed(edge)));
        }
    }
    updates.sort_by_key(|&(pair, _)| pair);
    updates.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;
    use slim_core::{LocationDataset, Record, Slim, SlimConfig};

    use crate::event::merge_datasets;

    fn rec(e: u64, t: i64, lat: f64, lng: f64) -> Record {
        Record::new(EntityId(e), LatLng::from_degrees(lat, lng), Timestamp(t))
    }

    /// `n` entities seen by both services (right ids offset by 1000),
    /// first `common` of them co-located, the rest in distinct regions.
    fn two_views(n: u64, common: u64) -> (LocationDataset, LocationDataset) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for e in 0..n {
            let (lat0, lng0) = (37.0 + 0.03 * e as f64, -122.0 - 0.02 * e as f64);
            for k in 0..25i64 {
                left.push(rec(e, k * 900 + 10, lat0 + 0.001 * ((k % 4) as f64), lng0));
                if e < common {
                    right.push(rec(
                        1000 + e,
                        k * 900 + 500,
                        lat0 + 0.001 * ((k % 4) as f64) + 0.0004,
                        lng0 + 0.0003,
                    ));
                } else {
                    right.push(rec(
                        1000 + e,
                        k * 900 + 500,
                        30.0 - 0.05 * e as f64,
                        20.0 + 0.04 * e as f64,
                    ));
                }
            }
        }
        (
            LocationDataset::from_records(left),
            LocationDataset::from_records(right),
        )
    }

    fn stream_cfg() -> StreamConfig {
        StreamConfig {
            refresh_every: 0,
            num_shards: 2,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn unbounded_replay_finalizes_to_batch_output() {
        let (l, r) = two_views(8, 5);
        let slim_cfg = SlimConfig::default();
        let batch = Slim::new(slim_cfg).unwrap().link(&l, &r);

        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        for ev in merge_datasets(&l, &r) {
            engine.ingest(&ev);
        }
        // The borrowing and consuming finalizers agree.
        let streamed = engine.finalize().unwrap();
        let consumed = engine.into_finalized().unwrap();
        assert_eq!(streamed.links.len(), consumed.links.len());
        for (a, b) in streamed.links.iter().zip(&consumed.links) {
            assert_eq!(a.weight, b.weight);
        }

        assert_eq!(streamed.num_edges, batch.num_edges);
        assert_eq!(streamed.matching.len(), batch.matching.len());
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight, "weights must be bit-identical");
        }
    }

    #[test]
    fn single_tick_at_end_equals_finalize() {
        // With no intermediate ticks, every window is still dirty at the
        // first refresh, so the incremental path must agree exactly with
        // the batch reassembly.
        let (l, r) = two_views(6, 4);
        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        let finalized = engine.finalize().unwrap();
        assert_eq!(engine.links().len(), finalized.links.len());
        for (a, b) in engine.links().iter().zip(&finalized.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn batch_ingest_matches_event_at_a_time() {
        let (l, r) = two_views(5, 3);
        let events = merge_datasets(&l, &r);
        let mut one = StreamEngine::new(stream_cfg()).unwrap();
        for ev in &events {
            one.ingest(ev);
        }
        let mut many = StreamEngine::new(stream_cfg()).unwrap();
        many.ingest_batch(&events);
        let (a, b) = (one.finalize().unwrap(), many.finalize().unwrap());
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!((x.left, x.right), (y.left, y.right));
            assert_eq!(x.weight, y.weight);
        }
        assert_eq!(one.stats().events, many.stats().events);
    }

    #[test]
    fn ticks_emit_added_links() {
        let (l, r) = two_views(5, 5);
        let mut cfg = stream_cfg();
        cfg.refresh_every = 100;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let mut added = 0usize;
        for ev in merge_datasets(&l, &r) {
            for u in engine.ingest(&ev) {
                if matches!(u, LinkUpdate::Added(_)) {
                    added += 1;
                }
            }
        }
        assert!(
            added >= 5,
            "expected the true pairs to surface, got {added}"
        );
        assert!(engine.stats().ticks > 0);
        // All served links are true pairs.
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
    }

    /// The globally earliest record belonging to a sparse entity the
    /// batch filter drops shifts the inferred origin; pinning via
    /// `batch_equivalent_origin` restores bit-identical finalization.
    #[test]
    fn sparse_straggler_origin_pinning_restores_equivalence() {
        // Dense pairs at 890 + k·900 (left) / 910 + k·900 (right): with
        // the batch origin 890 each pair shares window k; with a naive
        // origin 0 (set by the sparse straggler below) the right records
        // shift into window k + 1 and every score changes.
        let mut left_records: Vec<Record> = vec![rec(4999, 0, 5.0, 5.0)];
        let mut right_records: Vec<Record> = Vec::new();
        for e in 0..5u64 {
            let (lat, lng) = (37.0 + 0.04 * e as f64, -122.0 - 0.03 * e as f64);
            for k in 0..20i64 {
                left_records.push(rec(e, 890 + k * 900, lat + 0.001 * ((k % 3) as f64), lng));
                right_records.push(rec(
                    1000 + e,
                    910 + k * 900,
                    lat + 0.001 * ((k % 3) as f64) + 0.0003,
                    lng + 0.0002,
                ));
            }
        }
        let l = LocationDataset::from_records(left_records);
        let r = LocationDataset::from_records(right_records);
        let batch = Slim::new(SlimConfig::default()).unwrap().link(&l, &r);
        assert!(!batch.links.is_empty());

        let origin =
            crate::event::batch_equivalent_origin(&l, &r, SlimConfig::default().min_records)
                .unwrap();
        assert_eq!(
            origin,
            Timestamp(890),
            "sparse straggler must not set the origin"
        );
        let mut engine = StreamEngine::with_origin(stream_cfg(), origin).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        let streamed = engine.finalize().unwrap();
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.weight, b.weight, "weights must be bit-identical");
        }

        // Control: the naive first-event origin (0, the straggler's
        // timestamp) shifts window boundaries and the weights diverge —
        // this is exactly what origin pinning exists to prevent.
        let mut naive = StreamEngine::new(stream_cfg()).unwrap();
        naive.ingest_batch(&merge_datasets(&l, &r));
        let naive_out = naive.finalize().unwrap();
        let diverges = naive_out.links.len() != batch.links.len()
            || naive_out
                .links
                .iter()
                .zip(&batch.links)
                .any(|(a, b)| a.weight != b.weight);
        assert!(diverges, "fixture must actually straddle a window boundary");
    }

    #[test]
    fn min_records_buffering_matches_batch_filter() {
        let (l, r) = two_views(3, 3);
        // A sparse right entity below the min-records threshold.
        let mut right_records: Vec<Record> = Vec::new();
        for e in r.entities_sorted() {
            right_records.extend_from_slice(r.records_of(e));
        }
        right_records.push(rec(2999, 100, 10.0, 10.0));
        right_records.push(rec(2999, 1100, 10.0, 10.0));
        let r = LocationDataset::from_records(right_records);

        let mut engine = StreamEngine::new(stream_cfg()).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        assert!(engine
            .history_set(Side::Right)
            .unwrap()
            .history(EntityId(2999))
            .is_none());
        assert_eq!(engine.num_active(Side::Right), 3);

        let batch = Slim::new(SlimConfig::default()).unwrap().link(&l, &r);
        let streamed = engine.finalize().unwrap();
        assert_eq!(streamed.links.len(), batch.links.len());
        for (a, b) in streamed.links.iter().zip(&batch.links) {
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn sliding_window_expires_old_evidence() {
        let (l, r) = two_views(4, 4);
        let mut cfg = stream_cfg();
        // The 25-window trace has one record per window: a capacity of 10
        // lets entities pass the min-records filter from live evidence
        // alone while still forcing plenty of expiry.
        cfg.window_capacity = Some(10);
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        assert!(engine.stats().evicted_windows > 0);
        let hs = engine.history_set(Side::Left).unwrap();
        assert!(hs.num_entities() > 0, "entities must survive activation");
        // Only the last 10 windows of history remain.
        for e in hs.entities_sorted() {
            let h = hs.history(e).unwrap();
            assert!(
                h.num_windows() <= 10,
                "{e} kept {} windows",
                h.num_windows()
            );
            assert!(h.windows().all(|w| w + 10 > engine.watermark));
        }
        // Still linkable from recent windows alone.
        assert!(!engine.links().is_empty());
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
    }

    #[test]
    fn pending_buffers_respect_window_expiry() {
        // One record per window with a window capacity below the
        // min-records threshold: the entity never has enough *live*
        // records to activate, exactly like the batch filter applied to
        // any window-sized slice of its history.
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(4);
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        for k in 0..25i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(1),
                ll,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(engine.num_active(Side::Left), 0);
        assert!(engine
            .history_set(Side::Left)
            .map(|hs| hs.num_entities() == 0)
            .unwrap_or(true));
    }

    /// An entity whose history expires away and who reactivates *before*
    /// the next tick must not keep serving links backed by evicted
    /// windows: its cached pair contributions are purged at rebirth.
    #[test]
    fn reactivation_purges_stale_pair_cache() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(8);
        cfg.slim.min_records = 2;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let at = |lat: f64, lng: f64, k: i64| (LatLng::from_degrees(lat, lng), Timestamp(k * 900));
        let feed = |eng: &mut StreamEngine, side, id: u64, lat: f64, lng: f64, k: i64| {
            let (ll, t) = at(lat, lng, k);
            eng.ingest(&StreamEvent::new(side, EntityId(id), ll, t));
        };
        // Windows 0..3: the linkable pair 1 ↔ 1001 co-located in region
        // A, fillers 2 ↔ 1002 in region B, watermark-driver 3 on the left.
        for k in 0..4 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0, k);
            feed(&mut engine, Side::Right, 1001, 37.0, -122.0, k);
            feed(&mut engine, Side::Left, 2, 10.0, 10.0, k);
            feed(&mut engine, Side::Right, 1002, 10.0, 10.0, k);
            feed(&mut engine, Side::Left, 3, -20.0, 60.0, k);
        }
        engine.refresh();
        assert!(
            engine
                .links()
                .iter()
                .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))),
            "pair must link while co-located: {:?}",
            engine.links()
        );

        // Entity 3 jumps far ahead: every window below 94 expires, so 1,
        // 1001, 2, and 1002 die — with NO tick in between.
        feed(&mut engine, Side::Left, 3, -20.0, 60.0, 100);
        feed(&mut engine, Side::Left, 3, -20.0, 60.0, 101);
        assert_eq!(engine.num_active(Side::Right), 0);

        // Both endpoints reactivate before the next tick — in disjoint
        // windows AND distant regions, so nothing links them anymore.
        for k in 100..103 {
            feed(&mut engine, Side::Left, 1, 37.0, -122.0, k);
            feed(&mut engine, Side::Left, 2, 10.0, 10.0, k);
        }
        for k in 104..107 {
            feed(&mut engine, Side::Right, 1001, -35.0, 140.0, k);
            feed(&mut engine, Side::Right, 1002, 10.0, 10.0, k);
        }
        engine.refresh();
        assert!(
            !engine
                .links()
                .iter()
                .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))),
            "ghost link served from evicted evidence: {:?}",
            engine.links()
        );
        // The exact pipeline over the live histories agrees.
        let finalized = engine.finalize().unwrap();
        assert!(!finalized
            .links
            .iter()
            .any(|e| (e.left, e.right) == (EntityId(1), EntityId(1001))));
    }

    /// Expiry that leaves an entity with min_records or fewer live
    /// records must demote it entirely — the batch filter over the live
    /// slice would exclude it, and a fresh entity with identical live
    /// evidence would still be buffering.
    #[test]
    fn expiry_below_min_records_demotes_entity() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(10);
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        // Entity 1: 7 records in windows 0..7, then silence.
        for k in 0..7i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(1),
                ll,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(engine.num_active(Side::Left), 1);
        // Entity 2 drives the watermark forward; as soon as entity 1's
        // live records drop to min_records (5), it is demoted outright.
        let far = LatLng::from_degrees(10.0, 10.0);
        for k in 11..13i64 {
            engine.ingest(&StreamEvent::new(
                Side::Left,
                EntityId(2),
                far,
                Timestamp(k * 900),
            ));
        }
        assert_eq!(
            engine.num_active(Side::Left),
            0,
            "below-threshold entity demoted"
        );
        assert!(engine
            .history_set(Side::Left)
            .map(|hs| hs.history(EntityId(1)).is_none())
            .unwrap_or(true));
        // The discarded live evidence is accounted for.
        assert_eq!(engine.stats().demoted_entities, 1);
        assert_eq!(engine.stats().demoted_records, 5);
    }

    #[test]
    fn late_events_beyond_expiry_are_dropped() {
        let mut cfg = stream_cfg();
        cfg.window_capacity = Some(2);
        cfg.slim.min_records = 0;
        let mut engine = StreamEngine::new(cfg).unwrap();
        let ll = LatLng::from_degrees(37.0, -122.0);
        engine.ingest(&StreamEvent::new(Side::Left, EntityId(1), ll, Timestamp(0)));
        engine.ingest(&StreamEvent::new(
            Side::Left,
            EntityId(1),
            ll,
            Timestamp(10 * 900),
        ));
        // Window 0 has expired: a straggler event there must be dropped.
        engine.ingest(&StreamEvent::new(
            Side::Left,
            EntityId(1),
            ll,
            Timestamp(100),
        ));
        assert_eq!(engine.stats().late_dropped, 1);
    }

    #[test]
    fn lsh_mode_links_planted_pair() {
        let (l, r) = two_views(6, 4);
        let mut cfg = stream_cfg();
        cfg.lsh = Some(crate::config::StreamLshConfig {
            spans: 16,
            base: slim_lsh::LshConfig {
                step_windows: 2,
                spatial_level: 12,
                ..slim_lsh::LshConfig::default()
            },
        });
        let mut engine = StreamEngine::new(cfg).unwrap();
        engine.ingest_batch(&merge_datasets(&l, &r));
        engine.refresh();
        let brute = (engine.num_active(Side::Left) * engine.num_active(Side::Right)) as f64;
        assert!(
            (engine.num_candidate_pairs() as f64) < brute,
            "LSH should prune candidates: {} of {brute}",
            engine.num_candidate_pairs()
        );
        for link in engine.links() {
            assert_eq!(link.right.0, 1000 + link.left.0, "false link {link:?}");
        }
        assert!(!engine.links().is_empty());
    }

    #[test]
    fn diff_links_reports_all_transitions() {
        let e = |l: u64, r: u64, w: f64| Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        };
        let old = vec![e(1, 1, 1.0), e(2, 2, 2.0), e(3, 3, 3.0)];
        let new = vec![e(2, 2, 2.5), e(3, 3, 3.0), e(4, 4, 4.0)];
        let updates = diff_links(&old, &new);
        assert_eq!(
            updates,
            vec![
                LinkUpdate::Removed(e(1, 1, 1.0)),
                LinkUpdate::Reweighted {
                    previous: e(2, 2, 2.0),
                    current: e(2, 2, 2.5)
                },
                LinkUpdate::Added(e(4, 4, 4.0)),
            ]
        );
    }
}
