//! One shard of the engine state.
//!
//! The engine partitions every piece of per-entity and per-pair state by
//! a deterministic entity hash ([`entity_shard`]): a shard owns the
//! min-records buffers, mobility histories, dirty marks, LSH rings, and
//! window membership of the entities homed on it, plus the cached
//! `(pair, window)` score contributions and the entity→pair
//! [`AdjacencyIndex`] of the pairs it owns (**owner = home shard of the
//! pair's Left entity**).
//!
//! Shard methods are designed for the engine's phase structure: during a
//! parallel phase each shard mutates only its own state and *describes*
//! every cross-shard effect (df/idf adjustments, changed LSH signatures,
//! activations, rebirths) in an effects value the engine folds in at the
//! next merge barrier. Every effect is either commutative (integer
//! deltas) or coalesced into ordered sets, so the barrier result — and
//! with it the whole engine — is bit-identical for any shard count.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use geocell::CellId;
use slim_core::df::DfDelta;
use slim_core::history::record_cells;
use slim_core::{EntityId, WindowIdx, WindowScheme};

use crate::adjacency::{AdjacencyIndex, PairKey};
use crate::config::StorageMode;
use crate::event::{Side, StreamEvent};
use crate::lsh::{LshGeometry, ShardRings};
use crate::store::{HistoryStore, HistoryView};

/// An event with its temporal/spatial binning done — the unit of work
/// the sharded ingest path precomputes on worker threads.
#[derive(Debug, Clone)]
pub(crate) struct BinnedEvent {
    pub(crate) side: Side,
    pub(crate) entity: EntityId,
    pub(crate) w: WindowIdx,
    /// `record_cells` output at the similarity spatial level.
    pub(crate) cells: Vec<CellId>,
    /// `record_cells` output at the LSH spatial level (empty when LSH
    /// is disabled).
    pub(crate) lsh_cells: Vec<CellId>,
}

/// Bins one event: the trigonometry-heavy part of ingestion, safe to
/// run on any worker thread.
pub(crate) fn bin_event(
    ev: &StreamEvent,
    scheme: &WindowScheme,
    level: u8,
    lsh_level: Option<u8>,
) -> BinnedEvent {
    let record = ev.to_record();
    // Point records at a finer LSH level share the geometry work:
    // one fine lookup, coarsened exactly via the cell hierarchy.
    let (cells, lsh_cells) = match lsh_level {
        Some(l) if l >= level && !record.is_region() => {
            let fine = geocell::CellId::from_latlng(record.location, l);
            (vec![fine.parent(level)], vec![fine])
        }
        Some(l) => (record_cells(&record, level), record_cells(&record, l)),
        None => (record_cells(&record, level), Vec::new()),
    };
    BinnedEvent {
        side: ev.side,
        entity: ev.entity,
        w: scheme.window_of(ev.time),
        cells,
        lsh_cells,
    }
}

/// Deterministic entity→shard assignment (FNV-1a over side + id).
pub(crate) fn entity_shard(side: Side, entity: EntityId, shards: usize) -> usize {
    (slim_lsh::fnv1a([side.idx() as u64, entity.0].into_iter()) % shards as u64) as usize
}

/// Resolves an entity's history view across the shard partition.
pub(crate) fn lookup_view(
    shards: &[EngineShard],
    side: Side,
    entity: EntityId,
) -> Option<HistoryView<'_>> {
    shards[entity_shard(side, entity, shards.len())].histories[side.idx()].view(entity)
}

/// Cross-shard effects of one shard's ingest phase, folded in at the
/// merge barrier.
#[derive(Debug, Default)]
pub(crate) struct IngestEffects {
    /// Per-side df/idf adjustments (commutative integer deltas).
    pub(crate) df: [DfDelta; 2],
    /// Entities whose LSH ring signature changed — coalesced: the
    /// barrier upserts each entity's *final* signature once.
    pub(crate) sig_changes: BTreeSet<(Side, EntityId)>,
    /// Entities that crossed the min-records filter, in shard-local
    /// stream order.
    pub(crate) activations: Vec<(Side, EntityId)>,
    /// Entities that died (expired away entirely) and re-activated
    /// before a refresh tick processed the death: their cached pairs
    /// hold ghost contributions and must be purged at the barrier —
    /// before new candidate registration, so freshly discovered pairs
    /// survive.
    pub(crate) rebirths: Vec<(Side, EntityId)>,
    /// Highest appended window + 1 (merged with `max`).
    pub(crate) domain: u32,
}

/// Cross-shard effects of one shard's expiry phase.
#[derive(Debug, Default)]
pub(crate) struct ExpiryEffects {
    /// Per-side df/idf adjustments.
    pub(crate) df: [DfDelta; 2],
    /// Entities whose ring signature changed (or whose ring vanished).
    pub(crate) sig_changes: BTreeSet<(Side, EntityId)>,
    /// Expired windows that had content on this shard; the engine
    /// counts the cross-shard union so `evicted_windows` is
    /// shard-count-independent.
    pub(crate) windows: Vec<WindowIdx>,
    /// Entities demoted below the min-records filter.
    pub(crate) demoted_entities: u64,
    /// Still-live records discarded by those demotions.
    pub(crate) demoted_records: u64,
}

/// A rescore work item: one owned pair plus the windows to recompute
/// (`None` = fresh pair, rescore all common windows).
pub(crate) type RescoreJob = (PairKey, Option<Vec<WindowIdx>>);

/// The result of rescoring one pair: the pair's *merged* contribution
/// cache (untouched windows carried over, dirty windows recomputed,
/// zeros dropped) plus its re-assembled edge score — computed on the
/// worker so the barrier only patches. `None` = an endpoint history
/// vanished; drop the pair.
#[derive(Debug)]
pub(crate) struct ScoredPair {
    /// The pair's full window → contribution map after this tick.
    pub(crate) windows: BTreeMap<WindowIdx, f64>,
    /// How many windows were actually recomputed.
    pub(crate) rescored: u64,
    /// The normalized edge score over `windows` (`Σ contributions /
    /// pair norm`); an edge exists iff it is strictly positive.
    pub(crate) score: f64,
}

/// See [`ScoredPair`].
pub(crate) type RescoreOutcome = (PairKey, Option<ScoredPair>);

/// What applying a tick's rescore outcomes changed on this shard.
#[derive(Debug, Default)]
pub(crate) struct ApplyReport {
    /// `(pair, window)` contributions recomputed.
    pub(crate) rescored_windows: u64,
    /// Owned pairs whose cached contributions ended the tick empty —
    /// the retirement candidates.
    pub(crate) emptied: Vec<PairKey>,
}

/// One shard of engine state. See the module docs for the ownership
/// rules and the phase/barrier contract.
#[derive(Debug)]
pub(crate) struct EngineShard {
    /// Min-records buffers: entities whose record count has not yet
    /// exceeded `slim.min_records` are parked here, exactly like the
    /// batch pipeline's sparse-entity filter.
    pub(crate) pending: [HashMap<EntityId, Vec<BinnedEvent>>; 2],
    /// Entities that crossed the min-records threshold.
    pub(crate) active: [HashSet<EntityId>; 2],
    /// This shard's slice of the per-side mobility histories.
    pub(crate) histories: [HistoryStore; 2],
    /// Raw still-live events of active homed entities, in stream order
    /// — the demotion re-buffer ring. Maintained only in
    /// sliding-window mode (`retain_live`): when expiry demotes an
    /// entity below the min-records filter, its live events move back
    /// into the pending buffer instead of being discarded, so they
    /// keep counting toward reactivation exactly like any other
    /// sparse entity's. Entries expire with their windows.
    pub(crate) live_events: [HashMap<EntityId, Vec<BinnedEvent>>; 2],
    /// Whether `live_events` is maintained (true iff the engine has a
    /// bounded window — unbounded engines never demote).
    retain_live: bool,
    /// Windows touched per homed entity since the last tick.
    pub(crate) dirty: [HashMap<EntityId, BTreeSet<WindowIdx>>; 2],
    /// Homed entities whose history expired entirely; their pairs are
    /// dropped at the next tick.
    pub(crate) dead: [HashSet<EntityId>; 2],
    /// Which homed entities have bins in which window — drives expiry.
    pub(crate) window_entities: BTreeMap<WindowIdx, [BTreeSet<EntityId>; 2]>,
    /// LSH rings of homed entities (empty when LSH is disabled).
    pub(crate) rings: ShardRings,
    /// Per owned candidate pair: window → unnormalized score
    /// contribution.
    pub(crate) cache: HashMap<PairKey, BTreeMap<WindowIdx, f64>>,
    /// Owned pairs discovered since the last tick; their full common
    /// window set is scored at the next tick.
    pub(crate) fresh: HashSet<PairKey>,
    /// Entity→pair adjacency over the owned pairs.
    pub(crate) adjacency: AdjacencyIndex,
    /// The shard's **edge cache**: assembled, normalized scores of its
    /// owned pairs (strictly positive only), sorted by pair. Patched in
    /// place by rescore outcomes instead of being rebuilt at every
    /// barrier.
    pub(crate) edges: BTreeMap<PairKey, f64>,
    /// Edge-cache patches since the last barrier, coalesced by pair
    /// (last write wins): `Some(score)` upserted, `None` removed. The
    /// barrier drains these as one sorted run per shard and k-way
    /// merges the runs into the global delta batch.
    pub(crate) edge_deltas: BTreeMap<PairKey, Option<f64>>,
}

impl EngineShard {
    /// An empty shard using the given history representation.
    /// `retain_live` enables the demotion re-buffer ring (pointless —
    /// and therefore off — when the window is unbounded).
    pub(crate) fn new(storage: StorageMode, retain_live: bool) -> Self {
        Self {
            pending: Default::default(),
            active: Default::default(),
            histories: [HistoryStore::new(storage), HistoryStore::new(storage)],
            live_events: Default::default(),
            retain_live,
            dirty: Default::default(),
            dead: Default::default(),
            window_entities: BTreeMap::new(),
            rings: ShardRings::default(),
            cache: HashMap::new(),
            fresh: HashSet::new(),
            adjacency: AdjacencyIndex::default(),
            edges: BTreeMap::new(),
            edge_deltas: BTreeMap::new(),
        }
    }

    /// Applies this shard's slice of one ingest segment, in stream
    /// order, describing all cross-shard effects.
    pub(crate) fn apply_events(
        &mut self,
        events: Vec<BinnedEvent>,
        min_records: usize,
        lsh: Option<&LshGeometry>,
    ) -> IngestEffects {
        let mut fx = IngestEffects::default();
        for b in events {
            let (side, entity) = (b.side, b.entity);
            if self.active[side.idx()].contains(&entity) {
                self.append_active(b, lsh, &mut fx);
            } else {
                let buffer = self.pending[side.idx()].entry(entity).or_default();
                buffer.push(b);
                if buffer.len() > min_records {
                    self.activate(side, entity, lsh, &mut fx);
                }
            }
        }
        fx
    }

    /// Moves a buffered entity past the min-records filter: replays its
    /// buffer into the history slice and records the activation for
    /// barrier-time candidate registration.
    fn activate(
        &mut self,
        side: Side,
        entity: EntityId,
        lsh: Option<&LshGeometry>,
        fx: &mut IngestEffects,
    ) {
        let buffered = self.pending[side.idx()].remove(&entity).unwrap_or_default();
        self.active[side.idx()].insert(entity);
        if self.dead[side.idx()].remove(&entity) {
            fx.rebirths.push((side, entity));
        }
        for b in buffered {
            self.append_active(b, lsh, fx);
        }
        fx.activations.push((side, entity));
    }

    fn append_active(&mut self, b: BinnedEvent, lsh: Option<&LshGeometry>, fx: &mut IngestEffects) {
        let side = b.side;
        let (new_bins, created) = self.histories[side.idx()].append(b.entity, b.w, &b.cells);
        if created {
            fx.df[side.idx()].add_entity();
        }
        for c in new_bins {
            fx.df[side.idx()].add_bin(b.w, c);
        }
        fx.domain = fx.domain.max(b.w + 1);
        self.dirty[side.idx()]
            .entry(b.entity)
            .or_default()
            .insert(b.w);
        self.window_entities.entry(b.w).or_default()[side.idx()].insert(b.entity);
        if let Some(geom) = lsh {
            if self.rings.add(geom, side, b.entity, b.w, &b.lsh_cells) {
                fx.sig_changes.insert((side, b.entity));
            }
        }
        if self.retain_live {
            // Park the consumed event in the re-buffer ring (no clone —
            // the event is moved, its cells already applied above).
            self.live_events[side.idx()]
                .entry(b.entity)
                .or_default()
                .push(b);
        }
    }

    /// Expires every window below `keep_from` on this shard: evicts the
    /// affected histories (marking them dirty), unwinds df statistics
    /// and rings, and demotes entities whose live evidence fell to the
    /// min-records filter — all per-entity work, independent across
    /// shards.
    pub(crate) fn expire(
        &mut self,
        keep_from: WindowIdx,
        min_records: usize,
        lsh: Option<&LshGeometry>,
    ) -> ExpiryEffects {
        let mut fx = ExpiryEffects::default();
        let expired: Vec<WindowIdx> = self
            .window_entities
            .range(..keep_from)
            .map(|(&win, _)| win)
            .collect();
        for win in expired {
            let sides = self.window_entities.remove(&win).expect("collected above");
            fx.windows.push(win);
            for side in [Side::Left, Side::Right] {
                for &e in &sides[side.idx()] {
                    self.evict_history_window(side, e, win, &mut fx.df);
                    // The re-buffer ring expires in lockstep with the
                    // history: only still-live raw events may re-buffer.
                    let mut ring_emptied = false;
                    if let Some(ring) = self.live_events[side.idx()].get_mut(&e) {
                        ring.retain(|b| b.w >= keep_from);
                        ring_emptied = ring.is_empty();
                    }
                    if ring_emptied {
                        self.live_events[side.idx()].remove(&e);
                    }
                    // Expiry can *change* a ring signature (a formerly
                    // dominated cell takes over the slot) — collisions
                    // surfacing from that are candidates like any other.
                    if let Some(geom) = lsh {
                        if self.rings.evict(geom, side, e, win) {
                            fx.sig_changes.insert((side, e));
                        }
                    }
                    // Approximate the batch filter on the *live* slice:
                    // an entity whose remaining records no longer exceed
                    // min_records would be excluded by `Slim::prepare`
                    // over the same window, so demote it — its leftover
                    // evidence is unwound from histories/df/rings
                    // (counted in `StreamStats::demoted_records`) and
                    // its pairs die at the next tick. The raw live
                    // events move back into the pending buffer, so they
                    // keep counting toward reactivation exactly like
                    // any other sparse entity's — the batch filter over
                    // the same live slice would make the same call once
                    // fresh records push it past min_records again.
                    let live = self.histories[side.idx()].num_records(e);
                    let demote = live as usize <= min_records;
                    if demote {
                        fx.demoted_entities += 1;
                        fx.demoted_records += live as u64;
                        let leftover = self.histories[side.idx()].windows_of(e);
                        for lw in leftover {
                            self.evict_history_window(side, e, lw, &mut fx.df);
                            if let Some(sides) = self.window_entities.get_mut(&lw) {
                                sides[side.idx()].remove(&e);
                            }
                        }
                        if lsh.is_some() && self.rings.remove_entity(side, e) {
                            fx.sig_changes.insert((side, e));
                        }
                        self.active[side.idx()].remove(&e);
                        self.dead[side.idx()].insert(e);
                        self.dirty[side.idx()].remove(&e);
                        // Re-buffer the still-live raw events (pruned to
                        // the window above). `live <= min_records`, so
                        // the buffer cannot immediately re-activate.
                        if let Some(events) = self.live_events[side.idx()].remove(&e) {
                            if !events.is_empty() {
                                self.pending[side.idx()].insert(e, events);
                            }
                        }
                    }
                }
            }
        }
        // Min-records buffers must not resurrect expired windows either.
        for side in [Side::Left, Side::Right] {
            for buffer in self.pending[side.idx()].values_mut() {
                buffer.retain(|b| b.w >= keep_from);
            }
            self.pending[side.idx()].retain(|_, buffer| !buffer.is_empty());
        }
        fx
    }

    /// Evicts one window of one homed entity's history, unwinding the
    /// df delta and marking the entity dirty for the next tick.
    fn evict_history_window(
        &mut self,
        side: Side,
        e: EntityId,
        w: WindowIdx,
        df: &mut [DfDelta; 2],
    ) {
        if !self.histories[side.idx()].contains(e) {
            return;
        }
        let (bins, emptied) = self.histories[side.idx()].evict_window(e, w);
        for &(c, _) in &bins {
            df[side.idx()].remove_bin(w, c);
        }
        if emptied {
            df[side.idx()].remove_entity();
        }
        self.dirty[side.idx()].entry(e).or_default().insert(w);
    }

    /// Registers an owned candidate pair (idempotent): an empty
    /// contribution cache, a fresh mark, and both adjacency endpoints.
    pub(crate) fn add_candidate(&mut self, pair: PairKey) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.cache.entry(pair) {
            slot.insert(BTreeMap::new());
            self.fresh.insert(pair);
            self.adjacency.insert(pair);
        }
    }

    /// Patches one owned pair's entry in the edge cache: upsert when
    /// the score is strictly positive, removal otherwise. Records a
    /// delta for the next barrier only when the cached edge actually
    /// changed, so no-op rescores cost nothing downstream.
    pub(crate) fn patch_edge(&mut self, pair: PairKey, score: Option<f64>) {
        let changed = match score {
            Some(s) => self.edges.insert(pair, s) != Some(s),
            None => self.edges.remove(&pair).is_some(),
        };
        if changed {
            self.edge_deltas.insert(pair, score);
        }
    }

    /// Drains the edge-cache patches accumulated since the last
    /// barrier, sorted by pair.
    pub(crate) fn take_edge_deltas(&mut self) -> BTreeMap<PairKey, Option<f64>> {
        std::mem::take(&mut self.edge_deltas)
    }

    /// Drops every owned pair adjacent to `(side, entity)` — the
    /// adjacency index makes this O(degree) instead of an O(cache)
    /// sweep. Used for dead-endpoint cleanup and rebirth purges.
    pub(crate) fn drop_pairs_of(&mut self, side: Side, entity: EntityId) -> usize {
        let pairs = self.adjacency.pairs_of_sorted(side, entity);
        for &pair in &pairs {
            self.cache.remove(&pair);
            self.fresh.remove(&pair);
            self.adjacency.remove(pair);
            self.patch_edge(pair, None);
        }
        pairs.len()
    }

    /// Builds this tick's rescore jobs: every owned fresh pair (all
    /// common windows) plus every owned pair adjacent to a globally
    /// dirty entity (exactly the union of its endpoints' dirty
    /// windows). Sorted by pair for reproducible work lists.
    pub(crate) fn gather_jobs(
        &self,
        dirty: &[(Side, EntityId, Vec<WindowIdx>)],
    ) -> Vec<RescoreJob> {
        let mut dirty_jobs: HashMap<PairKey, BTreeSet<WindowIdx>> = HashMap::new();
        for (side, e, windows) in dirty {
            let Some(pairs) = self.adjacency.pairs_of(*side, *e) else {
                continue;
            };
            for &pair in pairs {
                if self.fresh.contains(&pair) {
                    continue;
                }
                dirty_jobs
                    .entry(pair)
                    .or_default()
                    .extend(windows.iter().copied());
            }
        }
        let mut jobs: Vec<RescoreJob> = self.fresh.iter().map(|&p| (p, None)).collect();
        jobs.extend(
            dirty_jobs
                .into_iter()
                .map(|(p, ws)| (p, Some(ws.into_iter().collect::<Vec<_>>()))),
        );
        jobs.sort_unstable_by_key(|&(pair, _)| pair);
        jobs
    }

    /// Applies one tick's rescore outcomes to the owned pair cache —
    /// swapping in the worker-merged window maps and patching the edge
    /// cache — and resets the fresh/dirty marks.
    pub(crate) fn apply_outcomes(&mut self, outcomes: Vec<RescoreOutcome>) -> ApplyReport {
        let mut report = ApplyReport::default();
        for (pair, scored) in outcomes {
            match scored {
                None => {
                    // An endpoint history vanished between discovery and
                    // scoring: drop the pair.
                    self.cache.remove(&pair);
                    self.fresh.remove(&pair);
                    self.adjacency.remove(pair);
                    self.patch_edge(pair, None);
                }
                Some(scored) => {
                    report.rescored_windows += scored.rescored;
                    let score = (scored.score > 0.0).then_some(scored.score);
                    if scored.windows.is_empty() {
                        report.emptied.push(pair);
                    }
                    self.cache.insert(pair, scored.windows);
                    self.patch_edge(pair, score);
                }
            }
        }
        self.fresh.clear();
        self.dirty[0].clear();
        self.dirty[1].clear();
        report
    }

    /// Retires one owned pair (candidate-set retirement).
    pub(crate) fn retire(&mut self, pair: PairKey) {
        self.cache.remove(&pair);
        self.adjacency.remove(pair);
        self.patch_edge(pair, None);
    }
}
