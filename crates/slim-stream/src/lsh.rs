//! Incrementally maintained LSH signatures over a ring of query spans.
//!
//! The batch LSH filter derives one dominating-cell query per fixed span
//! of the (known) time axis. A stream has no known end, so each entity's
//! signature here is a **ring**: slot `s` of the signature holds the
//! dominating cell of the span currently mapped to `s = (w / step) mod
//! spans`. As the watermark advances and old windows expire, slots roll
//! over to newer spans.
//!
//! The state is split to match the sharded engine:
//!
//! * [`ShardRings`] — the per-entity ring counters, owned by the
//!   entity's home [`crate::shard::EngineShard`] and mutated lock-free
//!   during shard-parallel phases. Ring updates report whether the
//!   derived signature *changed*; the shard coalesces changed entities
//!   and the engine resolves their final signatures at the next merge
//!   barrier.
//! * [`LshGeometry`] — the banding parameters shared by every shard and
//!   every partition of the engine's partitioned
//!   [`slim_lsh::BucketIndex`] (see the engine for the partition
//!   upsert/handoff protocol).

use std::collections::{BTreeMap, HashMap};

use geocell::CellId;
use slim_core::{EntityId, WindowIdx};
use slim_lsh::{bands_for_threshold, IndexSide, Signature};

use crate::config::StreamLshConfig;
use crate::event::Side;

impl Side {
    pub(crate) fn index_side(self) -> IndexSide {
        match self {
            Side::Left => IndexSide::Left,
            Side::Right => IndexSide::Right,
        }
    }
}

/// The banding/ring geometry every shard and bucket partition shares.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LshGeometry {
    pub(crate) spans: usize,
    pub(crate) step_windows: u32,
    pub(crate) spatial_level: u8,
    pub(crate) bands: usize,
    pub(crate) rows: usize,
    pub(crate) num_buckets: u64,
}

impl LshGeometry {
    pub(crate) fn new(cfg: &StreamLshConfig) -> Self {
        let (bands, rows) = bands_for_threshold(cfg.spans, cfg.base.threshold);
        Self {
            spans: cfg.spans,
            step_windows: cfg.base.step_windows,
            spatial_level: cfg.base.spatial_level,
            bands,
            rows,
            num_buckets: cfg.base.num_buckets,
        }
    }

    fn slot_of(&self, w: WindowIdx) -> usize {
        (w / self.step_windows) as usize % self.spans
    }
}

/// Per-entity ring state: raw counts per slot plus the current
/// signature derived from them.
#[derive(Debug, Clone)]
struct SpanRing {
    /// Per slot: `(window, cell)` → record count. Keeping the window in
    /// the key lets expiry remove exactly one window's contribution.
    slots: Vec<BTreeMap<(WindowIdx, CellId), u32>>,
    /// Which span (epoch `w / step`) currently owns each slot. Slots
    /// alias every `spans` spans; when a newer span claims a slot its
    /// stale content is cleared, so a slot never blends distant epochs
    /// (and per-slot memory stays bounded) even without window expiry.
    owners: Vec<Option<u32>>,
    sig: Vec<Option<CellId>>,
}

impl SpanRing {
    fn new(spans: usize) -> Self {
        Self {
            slots: vec![BTreeMap::new(); spans],
            owners: vec![None; spans],
            sig: vec![None; spans],
        }
    }

    /// Recomputes the dominating cell of one slot (mirroring the batch
    /// tie-break: highest count, then smallest cell id). Slots hold a
    /// handful of cells, so a linear aggregate beats a hash map here.
    fn dominating(&self, slot: usize) -> Option<CellId> {
        let mut agg: Vec<(CellId, u32)> = Vec::new();
        for (&(_, cell), &n) in &self.slots[slot] {
            match agg.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, count)) => *count += n,
                None => agg.push((cell, n)),
            }
        }
        agg.into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(BTreeMap::is_empty)
    }
}

/// One shard's ring state: the rings of every `(side, entity)` homed on
/// that shard. All methods are shard-local; bucket-index effects are
/// deferred to the engine's merge barrier via the returned
/// changed-signature flags.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardRings {
    rings: HashMap<(Side, EntityId), SpanRing>,
}

impl ShardRings {
    /// Records one observation's cells for `(side, entity)` in window
    /// `w`. Returns `true` when the entity's derived signature changed
    /// (the engine must re-upsert it into the bucket partitions at the
    /// next barrier).
    ///
    /// Each slot is owned by one span epoch at a time: content from an
    /// older epoch is cleared when a newer one claims the slot, and
    /// events older than the slot's current epoch are ignored — the ring
    /// is a recency signature by construction, with or without
    /// sliding-window expiry.
    pub(crate) fn add(
        &mut self,
        geom: &LshGeometry,
        side: Side,
        entity: EntityId,
        w: WindowIdx,
        cells: &[CellId],
    ) -> bool {
        let slot = geom.slot_of(w);
        let span = w / geom.step_windows;
        let ring = self
            .rings
            .entry((side, entity))
            .or_insert_with(|| SpanRing::new(geom.spans));
        match ring.owners[slot] {
            Some(owner) if owner > span => return false, // pre-ring straggler
            Some(owner) if owner < span => {
                ring.slots[slot].clear();
                ring.owners[slot] = Some(span);
            }
            Some(_) => {}
            None => ring.owners[slot] = Some(span),
        }
        for &c in cells {
            *ring.slots[slot].entry((w, c)).or_insert(0) += 1;
        }
        let dom = ring.dominating(slot);
        if dom == ring.sig[slot] {
            return false;
        }
        ring.sig[slot] = dom;
        true
    }

    /// Expires window `w` for `(side, entity)`: removes its counts from
    /// the ring, re-deriving the affected slot. Returns `true` when the
    /// signature changed — including the ring emptying out entirely
    /// (the entity's [`ShardRings::signature`] then resolves to `None`
    /// and the barrier removes it from the bucket partitions).
    pub(crate) fn evict(
        &mut self,
        geom: &LshGeometry,
        side: Side,
        entity: EntityId,
        w: WindowIdx,
    ) -> bool {
        let slot = geom.slot_of(w);
        let Some(ring) = self.rings.get_mut(&(side, entity)) else {
            return false;
        };
        let before = ring.slots[slot].len();
        ring.slots[slot].retain(|&(win, _), _| win != w);
        if ring.slots[slot].len() == before {
            return false;
        }
        if ring.is_empty() {
            self.rings.remove(&(side, entity));
            return true;
        }
        let dom = ring.dominating(slot);
        if dom == ring.sig[slot] {
            return false;
        }
        ring.sig[slot] = dom;
        true
    }

    /// Drops an entity's ring entirely (the engine demoted it). Returns
    /// `true` if a ring existed — the barrier must then remove the
    /// entity from the bucket partitions.
    pub(crate) fn remove_entity(&mut self, side: Side, entity: EntityId) -> bool {
        self.rings.remove(&(side, entity)).is_some()
    }

    /// The entity's current signature (`None` = no live ring; the
    /// barrier translates that into a bucket-index removal).
    pub(crate) fn signature(&self, side: Side, entity: EntityId) -> Option<Signature> {
        self.rings.get(&(side, entity)).map(|ring| Signature {
            entity,
            cells: ring.sig.clone(),
        })
    }

    /// Every ring's raw state in canonical `(side, entity)` order — the
    /// checkpoint export (the internal map iterates in hash order).
    pub(crate) fn export(&self) -> Vec<RingDump> {
        let mut out: Vec<RingDump> = self
            .rings
            .iter()
            .map(|(&(side, entity), ring)| RingDump {
                side,
                entity,
                slots: ring
                    .slots
                    .iter()
                    .map(|slot| slot.iter().map(|(&(w, c), &n)| (w, c, n)).collect())
                    .collect(),
                owners: ring.owners.clone(),
                sig: ring.sig.clone(),
            })
            .collect();
        out.sort_by_key(|d| (d.side, d.entity));
        out
    }

    /// Restores one ring from a [`ShardRings::export`] dump — the
    /// recovery inverse; the rebuilt ring answers `signature` and every
    /// subsequent `add`/`evict` exactly like the checkpointed one.
    pub(crate) fn restore(&mut self, dump: RingDump) {
        let ring = SpanRing {
            slots: dump
                .slots
                .into_iter()
                .map(|entries| entries.into_iter().map(|(w, c, n)| ((w, c), n)).collect())
                .collect(),
            owners: dump.owners,
            sig: dump.sig,
        };
        self.rings.insert((dump.side, dump.entity), ring);
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }
}

/// One entity's raw ring state in serializable form (per-slot sorted
/// `(window, cell, count)` entries, slot owners, derived signature) —
/// the unit [`ShardRings::export`] emits and [`ShardRings::restore`]
/// consumes.
#[derive(Debug, Clone)]
pub(crate) struct RingDump {
    pub(crate) side: Side,
    pub(crate) entity: EntityId,
    pub(crate) slots: Vec<Vec<(WindowIdx, CellId, u32)>>,
    pub(crate) owners: Vec<Option<u32>>,
    pub(crate) sig: Vec<Option<CellId>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;
    use slim_lsh::LshConfig;

    fn cell(lng: f64) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(20.0, lng), 16)
    }

    fn geom(spans: usize, step: u32) -> LshGeometry {
        LshGeometry::new(&StreamLshConfig {
            spans,
            base: LshConfig {
                step_windows: step,
                spatial_level: 16,
                ..LshConfig::default()
            },
        })
    }

    /// Barrier-style collision check: upsert both current signatures
    /// into one unpartitioned index and report the second one's
    /// partners — what the engine's merge step computes.
    fn collide(g: &LshGeometry, rings: &ShardRings) -> Vec<EntityId> {
        let mut index = slim_lsh::BucketIndex::new(g.bands, g.rows, g.num_buckets);
        let left = rings.signature(Side::Left, EntityId(1));
        let right = rings.signature(Side::Right, EntityId(100));
        if let Some(sig) = &left {
            index.upsert(IndexSide::Left, sig);
        }
        match &right {
            Some(sig) => index.upsert(IndexSide::Right, sig),
            None => Vec::new(),
        }
    }

    #[test]
    fn matching_rings_collide() {
        let g = geom(4, 2);
        let mut rings = ShardRings::default();
        for w in 0..8 {
            rings.add(&g, Side::Left, EntityId(1), w, &[cell(0.0 + w as f64)]);
            rings.add(&g, Side::Right, EntityId(100), w, &[cell(0.0 + w as f64)]);
        }
        assert_eq!(
            collide(&g, &rings),
            vec![EntityId(1)],
            "identical rings must collide"
        );
    }

    #[test]
    fn disjoint_rings_do_not_collide() {
        let g = geom(4, 2);
        let mut rings = ShardRings::default();
        for w in 0..8 {
            rings.add(&g, Side::Left, EntityId(1), w, &[cell(w as f64)]);
            rings.add(&g, Side::Right, EntityId(100), w, &[cell(90.0 + w as f64)]);
        }
        assert!(collide(&g, &rings).is_empty());
    }

    #[test]
    fn eviction_rolls_slots_over() {
        let g = geom(2, 1);
        let mut rings = ShardRings::default();
        rings.add(&g, Side::Left, EntityId(1), 0, &[cell(0.0)]);
        rings.add(&g, Side::Left, EntityId(1), 1, &[cell(1.0)]);
        // Window 2 aliases slot 0; evict window 0 first (as the engine
        // does before reusing the slot), then fill it with new content.
        rings.evict(&g, Side::Left, EntityId(1), 0);
        rings.add(&g, Side::Left, EntityId(1), 2, &[cell(2.0)]);
        let sig = rings.signature(Side::Left, EntityId(1)).unwrap();
        assert_eq!(sig.cells[0], Some(cell(2.0)));
        assert_eq!(sig.cells[1], Some(cell(1.0)));
        // Evicting everything drops the ring; the signature resolves to
        // None, which the barrier turns into a bucket-index removal.
        rings.evict(&g, Side::Left, EntityId(1), 1);
        rings.evict(&g, Side::Left, EntityId(1), 2);
        assert!(rings.signature(Side::Left, EntityId(1)).is_none());
        assert!(rings.is_empty());
    }

    /// Without sliding-window expiry (unbounded engine), slot aliasing
    /// must not blend distant epochs: a newer span claims the slot and
    /// clears the stale counts, and pre-ring stragglers are ignored.
    #[test]
    fn slot_epochs_roll_without_eviction() {
        let g = geom(2, 1);
        let mut rings = ShardRings::default();
        rings.add(&g, Side::Left, EntityId(1), 0, &[cell(0.0)]);
        rings.add(&g, Side::Left, EntityId(1), 1, &[cell(1.0)]);
        // Window 2 aliases slot 0 (epoch 2 > epoch 0): old content must
        // be dropped, not merged.
        assert!(rings.add(&g, Side::Left, EntityId(1), 2, &[cell(2.0)]));
        let sig = rings.signature(Side::Left, EntityId(1)).unwrap();
        assert_eq!(sig.cells[0], Some(cell(2.0)));
        // A straggler for the long-gone window 0 must not resurrect it.
        assert!(!rings.add(&g, Side::Left, EntityId(1), 0, &[cell(0.0)]));
        let sig = rings.signature(Side::Left, EntityId(1)).unwrap();
        assert_eq!(sig.cells[0], Some(cell(2.0)));
        // Repeated visits within the live epoch still accumulate.
        rings.add(&g, Side::Left, EntityId(1), 2, &[cell(5.0)]);
        rings.add(&g, Side::Left, EntityId(1), 2, &[cell(5.0)]);
        let sig = rings.signature(Side::Left, EntityId(1)).unwrap();
        assert_eq!(sig.cells[0], Some(cell(5.0)));
    }

    #[test]
    fn dominating_cell_tracks_counts() {
        let g = geom(1, 4);
        let mut rings = ShardRings::default();
        rings.add(&g, Side::Left, EntityId(1), 0, &[cell(0.0)]);
        rings.add(&g, Side::Left, EntityId(1), 1, &[cell(5.0)]);
        let first = rings.signature(Side::Left, EntityId(1)).unwrap().cells[0];
        // A second visit to cell(5.0) makes it dominate.
        rings.add(&g, Side::Left, EntityId(1), 2, &[cell(5.0)]);
        let sig = rings.signature(Side::Left, EntityId(1)).unwrap();
        assert_eq!(sig.cells[0], Some(cell(5.0)));
        assert!(first.is_some());
    }

    #[test]
    fn remove_entity_reports_presence() {
        let g = geom(2, 1);
        let mut rings = ShardRings::default();
        assert!(!rings.remove_entity(Side::Left, EntityId(9)));
        rings.add(&g, Side::Left, EntityId(9), 0, &[cell(0.0)]);
        assert!(rings.remove_entity(Side::Left, EntityId(9)));
        assert!(rings.signature(Side::Left, EntityId(9)).is_none());
    }
}
