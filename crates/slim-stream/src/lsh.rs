//! Incrementally maintained LSH signatures over a ring of query spans.
//!
//! The batch LSH filter derives one dominating-cell query per fixed span
//! of the (known) time axis. A stream has no known end, so each entity's
//! signature here is a **ring**: slot `s` of the signature holds the
//! dominating cell of the span currently mapped to `s = (w / step) mod
//! spans`. As the watermark advances and old windows expire, slots roll
//! over to newer spans; every slot change re-upserts the signature into
//! the shared [`BucketIndex`], and the cross-side collisions reported by
//! the upsert feed the engine's candidate set.

use std::collections::{BTreeMap, HashMap};

use geocell::CellId;
use slim_core::{EntityId, WindowIdx};
use slim_lsh::{bands_for_threshold, BucketIndex, IndexSide, Signature};

use crate::config::StreamLshConfig;
use crate::event::Side;

impl Side {
    fn index_side(self) -> IndexSide {
        match self {
            Side::Left => IndexSide::Left,
            Side::Right => IndexSide::Right,
        }
    }
}

/// Per-entity ring state: raw counts per slot plus the current
/// signature derived from them.
#[derive(Debug, Clone)]
struct SpanRing {
    /// Per slot: `(window, cell)` → record count. Keeping the window in
    /// the key lets expiry remove exactly one window's contribution.
    slots: Vec<BTreeMap<(WindowIdx, CellId), u32>>,
    /// Which span (epoch `w / step`) currently owns each slot. Slots
    /// alias every `spans` spans; when a newer span claims a slot its
    /// stale content is cleared, so a slot never blends distant epochs
    /// (and per-slot memory stays bounded) even without window expiry.
    owners: Vec<Option<u32>>,
    sig: Vec<Option<CellId>>,
}

impl SpanRing {
    fn new(spans: usize) -> Self {
        Self {
            slots: vec![BTreeMap::new(); spans],
            owners: vec![None; spans],
            sig: vec![None; spans],
        }
    }

    /// Recomputes the dominating cell of one slot (mirroring the batch
    /// tie-break: highest count, then smallest cell id). Slots hold a
    /// handful of cells, so a linear aggregate beats a hash map here.
    fn dominating(&self, slot: usize) -> Option<CellId> {
        let mut agg: Vec<(CellId, u32)> = Vec::new();
        for (&(_, cell), &n) in &self.slots[slot] {
            match agg.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, count)) => *count += n,
                None => agg.push((cell, n)),
            }
        }
        agg.into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(BTreeMap::is_empty)
    }
}

/// The engine-side streaming LSH state: one ring per (side, entity) and
/// the shared incremental bucket index.
#[derive(Debug, Clone)]
pub(crate) struct StreamLshIndex {
    cfg: StreamLshConfig,
    index: BucketIndex,
    rings: HashMap<(Side, EntityId), SpanRing>,
}

impl StreamLshIndex {
    pub(crate) fn new(cfg: StreamLshConfig) -> Self {
        let (bands, rows) = bands_for_threshold(cfg.spans, cfg.base.threshold);
        Self {
            cfg,
            index: BucketIndex::new(bands, rows, cfg.base.num_buckets),
            rings: HashMap::new(),
        }
    }

    /// The spatial level signatures are built at.
    pub(crate) fn spatial_level(&self) -> u8 {
        self.cfg.base.spatial_level
    }

    fn slot_of(&self, w: WindowIdx) -> usize {
        (w / self.cfg.base.step_windows) as usize % self.cfg.spans
    }

    /// Records one observation's cells for `(side, entity)` in window
    /// `w`. Returns the entity's current cross-side collision partners
    /// when its signature changed (`None` = signature unchanged).
    ///
    /// Each slot is owned by one span epoch at a time: content from an
    /// older epoch is cleared when a newer one claims the slot, and
    /// events older than the slot's current epoch are ignored — the ring
    /// is a recency signature by construction, with or without
    /// sliding-window expiry.
    pub(crate) fn add(
        &mut self,
        side: Side,
        entity: EntityId,
        w: WindowIdx,
        cells: &[CellId],
    ) -> Option<Vec<EntityId>> {
        let slot = self.slot_of(w);
        let span = w / self.cfg.base.step_windows;
        let spans = self.cfg.spans;
        let ring = self
            .rings
            .entry((side, entity))
            .or_insert_with(|| SpanRing::new(spans));
        match ring.owners[slot] {
            Some(owner) if owner > span => return None, // pre-ring straggler
            Some(owner) if owner < span => {
                ring.slots[slot].clear();
                ring.owners[slot] = Some(span);
            }
            Some(_) => {}
            None => ring.owners[slot] = Some(span),
        }
        for &c in cells {
            *ring.slots[slot].entry((w, c)).or_insert(0) += 1;
        }
        let dom = ring.dominating(slot);
        if dom == ring.sig[slot] {
            return None;
        }
        ring.sig[slot] = dom;
        let sig = Signature {
            entity,
            cells: ring.sig.clone(),
        };
        Some(self.index.upsert(side.index_side(), &sig))
    }

    /// Drops an entity's ring and bucket placements entirely (used when
    /// the engine demotes an entity whose live evidence fell below the
    /// min-records filter).
    pub(crate) fn remove_entity(&mut self, side: Side, entity: EntityId) {
        if self.rings.remove(&(side, entity)).is_some() {
            self.index.remove(side.index_side(), entity);
        }
    }

    /// Expires window `w` for `(side, entity)`: removes its counts from
    /// the ring, re-deriving the affected slot. Returns collision
    /// partners when the signature changed.
    pub(crate) fn evict(
        &mut self,
        side: Side,
        entity: EntityId,
        w: WindowIdx,
    ) -> Option<Vec<EntityId>> {
        let slot = self.slot_of(w);
        let ring = self.rings.get_mut(&(side, entity))?;
        let before = ring.slots[slot].len();
        ring.slots[slot].retain(|&(win, _), _| win != w);
        if ring.slots[slot].len() == before {
            return None;
        }
        if ring.is_empty() {
            self.rings.remove(&(side, entity));
            self.index.remove(side.index_side(), entity);
            return None;
        }
        let dom = ring.dominating(slot);
        if dom == ring.sig[slot] {
            return None;
        }
        ring.sig[slot] = dom;
        let sig = Signature {
            entity,
            cells: ring.sig.clone(),
        };
        Some(self.index.upsert(side.index_side(), &sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geocell::LatLng;
    use slim_lsh::LshConfig;

    fn cell(lng: f64) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(20.0, lng), 16)
    }

    fn index(spans: usize, step: u32) -> StreamLshIndex {
        StreamLshIndex::new(StreamLshConfig {
            spans,
            base: LshConfig {
                step_windows: step,
                spatial_level: 16,
                ..LshConfig::default()
            },
        })
    }

    #[test]
    fn matching_rings_collide() {
        let mut idx = index(4, 2);
        for w in 0..8 {
            idx.add(Side::Left, EntityId(1), w, &[cell(0.0 + w as f64)]);
        }
        let mut partners = Vec::new();
        for w in 0..8 {
            if let Some(p) = idx.add(Side::Right, EntityId(100), w, &[cell(0.0 + w as f64)]) {
                partners = p;
            }
        }
        assert_eq!(partners, vec![EntityId(1)], "identical rings must collide");
    }

    #[test]
    fn disjoint_rings_do_not_collide() {
        let mut idx = index(4, 2);
        for w in 0..8 {
            idx.add(Side::Left, EntityId(1), w, &[cell(w as f64)]);
            let p = idx.add(Side::Right, EntityId(100), w, &[cell(90.0 + w as f64)]);
            assert!(p.map(|v| v.is_empty()).unwrap_or(true), "window {w}");
        }
    }

    #[test]
    fn eviction_rolls_slots_over() {
        let mut idx = index(2, 1);
        idx.add(Side::Left, EntityId(1), 0, &[cell(0.0)]);
        idx.add(Side::Left, EntityId(1), 1, &[cell(1.0)]);
        // Window 2 aliases slot 0; evict window 0 first (as the engine
        // does before reusing the slot), then fill it with new content.
        idx.evict(Side::Left, EntityId(1), 0);
        idx.add(Side::Left, EntityId(1), 2, &[cell(2.0)]);
        let ring = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        assert_eq!(ring.sig[0], Some(cell(2.0)));
        assert_eq!(ring.sig[1], Some(cell(1.0)));
        // Evicting everything drops the entity from the bucket index.
        idx.evict(Side::Left, EntityId(1), 1);
        idx.evict(Side::Left, EntityId(1), 2);
        assert!(idx.rings.is_empty());
        assert!(idx.index.is_empty());
    }

    /// Without sliding-window expiry (unbounded engine), slot aliasing
    /// must not blend distant epochs: a newer span claims the slot and
    /// clears the stale counts, and pre-ring stragglers are ignored.
    #[test]
    fn slot_epochs_roll_without_eviction() {
        let mut idx = index(2, 1);
        idx.add(Side::Left, EntityId(1), 0, &[cell(0.0)]);
        idx.add(Side::Left, EntityId(1), 1, &[cell(1.0)]);
        // Window 2 aliases slot 0 (epoch 2 > epoch 0): old content must
        // be dropped, not merged.
        idx.add(Side::Left, EntityId(1), 2, &[cell(2.0)]);
        let ring = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        assert_eq!(ring.sig[0], Some(cell(2.0)));
        assert_eq!(ring.slots[0].len(), 1, "stale epoch content cleared");
        // A straggler for the long-gone window 0 must not resurrect it.
        assert!(idx.add(Side::Left, EntityId(1), 0, &[cell(0.0)]).is_none());
        let ring = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        assert_eq!(ring.sig[0], Some(cell(2.0)));
        // Repeated visits within the live epoch still accumulate.
        idx.add(Side::Left, EntityId(1), 2, &[cell(5.0)]);
        idx.add(Side::Left, EntityId(1), 2, &[cell(5.0)]);
        let ring = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        assert_eq!(ring.sig[0], Some(cell(5.0)));
    }

    #[test]
    fn dominating_cell_tracks_counts() {
        let mut idx = index(1, 4);
        idx.add(Side::Left, EntityId(1), 0, &[cell(0.0)]);
        idx.add(Side::Left, EntityId(1), 1, &[cell(5.0)]);
        let r = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        let first = r.sig[0];
        // A second visit to cell(5.0) makes it dominate.
        idx.add(Side::Left, EntityId(1), 2, &[cell(5.0)]);
        let r = idx.rings.get(&(Side::Left, EntityId(1))).unwrap();
        assert_eq!(r.sig[0], Some(cell(5.0)));
        assert!(first.is_some());
    }
}
