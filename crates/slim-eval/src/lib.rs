//! # slim-eval — experiment harness for the SLIM reproduction
//!
//! Ground-truth metrics ([`metrics`]) and drivers ([`figures`])
//! regenerating every figure of the paper's evaluation section (§5) on
//! the synthetic Cab/SM workloads from `slim-datagen`:
//!
//! | Paper figure | Driver |
//! |---|---|
//! | Fig 2 (GMM fit) | [`figures::fig2`] |
//! | Fig 4 (Cab spatio-temporal grid) | [`figures::fig4_5::run_cab`] |
//! | Fig 5 (SM spatio-temporal grid) | [`figures::fig4_5::run_sm`] |
//! | Fig 6 (score histograms) | [`figures::fig6`] |
//! | Fig 7 (workload sensitivity) | [`figures::fig7`] |
//! | Fig 8 (LSH grid) | [`figures::fig8`] |
//! | Fig 9 (bucket sweep) | [`figures::fig9`] |
//! | Fig 10 (ablations) | [`figures::fig10`] |
//! | Fig 11 (vs ST-Link / GM) | [`figures::fig11`] |
//!
//! Each driver returns structured points plus a [`table::Table`]
//! rendering the same series the paper plots. The repository-level
//! `reproduce` example prints all of them; EXPERIMENTS.md records
//! paper-vs-measured shapes.

#![warn(missing_docs)]

pub mod figures;
pub mod metrics;
pub mod table;

pub use figures::RunSettings;
pub use metrics::{evaluate_edges, evaluate_links, hit_precision_at_k, LinkageMetrics};
pub use table::Table;
