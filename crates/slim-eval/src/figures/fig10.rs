//! Figure 10 — ablation study: the contribution of MFN alibi detection,
//! MNN pairing, IDF weighting, and length normalization, as functions of
//! the spatial level (10a) and the window width (10b).

use slim_core::{PairingMode, SlimConfig};

use crate::figures::{run_slim, RunSettings};
use crate::table::{f3, Table};

/// The ablation variants of the paper (Fig. 10 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full SLIM.
    Original,
    /// MNN pairing without the optional MFN alibi pass.
    MnnOnly,
    /// Cartesian-product pairing.
    AllPairs,
    /// IDF multiplier removed.
    NoIdf,
    /// Length normalization removed.
    NoNormalization,
}

impl Variant {
    /// All variants in the paper's order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::Original,
            Variant::MnnOnly,
            Variant::AllPairs,
            Variant::NoIdf,
            Variant::NoNormalization,
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Original => "Original",
            Variant::MnnOnly => "MNN",
            Variant::AllPairs => "All_Pairs",
            Variant::NoIdf => "No IDF",
            Variant::NoNormalization => "No Normalization",
        }
    }

    /// The config modification implementing the variant.
    pub fn apply(&self, mut cfg: SlimConfig) -> SlimConfig {
        match self {
            Variant::Original => {}
            Variant::MnnOnly => cfg.use_mfn = false,
            Variant::AllPairs => {
                cfg.pairing = PairingMode::AllPairs;
                cfg.use_mfn = false;
            }
            Variant::NoIdf => cfg.use_idf = false,
            Variant::NoNormalization => cfg.use_normalization = false,
        }
        cfg
    }
}

/// One ablation measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// Which variant.
    pub variant: Variant,
    /// Spatial level used.
    pub spatial_level: u8,
    /// Window width (minutes).
    pub window_min: i64,
    /// F1 against ground truth.
    pub f1: f64,
    /// Mean matched score of false-positive pairs (the paper quotes this
    /// to show MFN lowers FP scores).
    pub fp_mean_score: f64,
}

/// Sweeps variants over spatial levels at a fixed 15-minute window
/// (Fig. 10a).
pub fn run_spatial(settings: &RunSettings, levels: &[u8]) -> Vec<AblationPoint> {
    let sample = settings.cab().sample(0.5, settings.seed ^ 0x10);
    let mut out = Vec::new();
    for &level in levels {
        for variant in Variant::all() {
            let cfg = variant.apply(SlimConfig {
                spatial_level: level,
                ..SlimConfig::default()
            });
            let (res, metrics) = run_slim(&sample, &cfg);
            let (_, fp) = crate::figures::split_by_truth(&res.matching, &sample.ground_truth);
            out.push(AblationPoint {
                variant,
                spatial_level: level,
                window_min: 15,
                f1: metrics.f1,
                fp_mean_score: mean(&fp),
            });
        }
    }
    out
}

/// Sweeps variants over window widths at spatial level 12 (Fig. 10b).
pub fn run_window(settings: &RunSettings, windows_min: &[i64]) -> Vec<AblationPoint> {
    let sample = settings.cab().sample(0.5, settings.seed ^ 0x10);
    let mut out = Vec::new();
    for &wmin in windows_min {
        for variant in Variant::all() {
            let cfg = variant.apply(SlimConfig {
                window_width_secs: wmin * 60,
                ..SlimConfig::default()
            });
            let (res, metrics) = run_slim(&sample, &cfg);
            let (_, fp) = crate::figures::split_by_truth(&res.matching, &sample.ground_truth);
            out.push(AblationPoint {
                variant,
                spatial_level: 12,
                window_min: wmin,
                f1: metrics.f1,
                fp_mean_score: mean(&fp),
            });
        }
    }
    out
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Default sweeps: paper's Fig. 10a uses levels 8-24, 10b windows 5-720.
pub fn default_ranges() -> (Vec<u8>, Vec<i64>) {
    (vec![8, 12, 16, 20, 24], vec![5, 15, 90, 360, 720])
}

/// Renders points (grouped by x-axis then variant).
pub fn render(name: &str, points: &[AblationPoint], by_window: bool) -> Table {
    let x_name = if by_window { "window_min" } else { "spatial" };
    let mut t = Table::new(
        format!("{name} — ablation study"),
        &[x_name, "variant", "f1", "fp_mean_score"],
    );
    for p in points {
        let x = if by_window {
            p.window_min.to_string()
        } else {
            p.spatial_level.to_string()
        };
        t.row(vec![
            x,
            p.variant.name().to_string(),
            f3(p.f1),
            format!("{:.1}", p.fp_mean_score),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_produce_configs() {
        let base = SlimConfig::default();
        assert!(!Variant::MnnOnly.apply(base).use_mfn);
        assert_eq!(Variant::AllPairs.apply(base).pairing, PairingMode::AllPairs);
        assert!(!Variant::NoIdf.apply(base).use_idf);
        assert!(!Variant::NoNormalization.apply(base).use_normalization);
        assert_eq!(Variant::Original.apply(base), base);
    }

    #[test]
    fn ablation_smoke() {
        let settings = RunSettings::tiny();
        let pts = run_spatial(&settings, &[12]);
        assert_eq!(pts.len(), 5);
        let original = pts.iter().find(|p| p.variant == Variant::Original).unwrap();
        // At a 15-minute window the paper reports all pairing variants
        // performing similarly; at test scale GMM-threshold noise adds
        // slack, so only require the full algorithm to stay in the game.
        assert!(original.f1 > 0.3, "original f1 {}", original.f1);
        for p in &pts {
            assert!(p.f1.is_finite() && (0.0..=1.0).contains(&p.f1));
        }
        let t = render("Fig 10a", &pts, false);
        assert_eq!(t.len(), 5);
    }
}
