//! Figure 8 — LSH accuracy (relative F1) and speed-up as a function of
//! the signature spatial level and temporal step size (Cab & SM).
//!
//! Relative F1 = F1 with LSH / F1 of brute force; speed-up = pairwise
//! record comparisons without LSH / with LSH (both as defined in §5.3).

use slim_core::SlimConfig;
use slim_datagen::Scenario;
use slim_lsh::{LshConfig, LshFilter};

use crate::figures::{run_slim, run_slim_with_candidates, RunSettings};
use crate::table::{f3, human, Table};

/// One LSH grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshPoint {
    /// Signature spatial level.
    pub spatial_level: u8,
    /// Temporal step size (leaf windows per dominating-cell query).
    pub step_windows: u32,
    /// F1 with LSH / F1 brute force.
    pub relative_f1: f64,
    /// Comparison-count speed-up.
    pub speedup: f64,
    /// Candidate pairs produced by the filter.
    pub candidates: usize,
    /// Record comparisons with LSH.
    pub record_comparisons: u64,
}

/// Default grid (paper: levels 4-20 × steps up to ~200).
pub fn default_grid() -> (Vec<u8>, Vec<u32>) {
    (vec![8, 12, 16, 20], vec![6, 24, 48, 96])
}

/// Runs the LSH grid for one scenario.
pub fn run_grid(
    scenario: &Scenario,
    levels: &[u8],
    steps: &[u32],
    settings: &RunSettings,
) -> Vec<LshPoint> {
    run_grid_with_threshold(scenario, levels, steps, 0.6, settings)
}

/// Runs the LSH grid with an explicit similarity threshold. The sparse
/// SM scenario needs a lower `t`: with ~12 records over dozens of query
/// spans, placeholders cap even a true pair's signature similarity near
/// 0.2 under this crate's strict placeholder-counting similarity (the
/// paper's definition is ambiguous on whether placeholders count toward
/// the signature size; see EXPERIMENTS.md).
pub fn run_grid_with_threshold(
    scenario: &Scenario,
    levels: &[u8],
    steps: &[u32],
    threshold: f64,
    settings: &RunSettings,
) -> Vec<LshPoint> {
    let sample = scenario.sample(0.5, settings.seed ^ 0x8);
    let base_cfg = SlimConfig::default();
    let (brute, brute_metrics) = run_slim(&sample, &base_cfg);
    let brute_cmp = brute.stats.record_pair_comparisons.max(1);

    let mut out = Vec::new();
    for &level in levels {
        for &step in steps {
            let lsh_cfg = LshConfig {
                threshold,
                step_windows: step,
                spatial_level: level,
                num_buckets: 4096,
            };
            let filter = LshFilter::build_auto(
                lsh_cfg,
                &sample.left,
                &sample.right,
                base_cfg.window_width_secs,
            );
            let candidates = filter.candidates();
            let (res, metrics) = run_slim_with_candidates(&sample, &base_cfg, &candidates);
            let rel_f1 = if brute_metrics.f1 > 0.0 {
                metrics.f1 / brute_metrics.f1
            } else {
                1.0
            };
            out.push(LshPoint {
                spatial_level: level,
                step_windows: step,
                relative_f1: rel_f1,
                speedup: brute_cmp as f64 / res.stats.record_pair_comparisons.max(1) as f64,
                candidates: candidates.len(),
                record_comparisons: res.stats.record_pair_comparisons,
            });
        }
    }
    out
}

/// Fig. 8a/8b: Cab.
pub fn run_cab(settings: &RunSettings) -> Vec<LshPoint> {
    let (levels, steps) = default_grid();
    run_grid(&settings.cab(), &levels, &steps, settings)
}

/// Fig. 8c/8d: SM (lower threshold — see [`run_grid_with_threshold`]).
pub fn run_sm(settings: &RunSettings) -> Vec<LshPoint> {
    let (levels, steps) = default_grid();
    run_grid_with_threshold(&settings.sm(), &levels, &steps, 0.25, settings)
}

/// Renders the grid.
pub fn render(name: &str, points: &[LshPoint]) -> Table {
    let mut t = Table::new(
        format!("{name} — LSH relative F1 and speed-up"),
        &[
            "spatial",
            "step",
            "relative_f1",
            "speedup",
            "candidates",
            "record_cmp",
        ],
    );
    for p in points {
        t.row(vec![
            p.spatial_level.to_string(),
            p.step_windows.to_string(),
            f3(p.relative_f1),
            format!("{:.1}x", p.speedup),
            p.candidates.to_string(),
            human(p.record_comparisons),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsh_speeds_up_and_mostly_preserves_f1() {
        let settings = RunSettings::tiny();
        // Long step: tiny samples span few windows, so short steps give
        // unstable dominating cells (see lsh_integration.rs).
        let pts = run_grid(&settings.cab(), &[12], &[96], &settings);
        assert_eq!(pts.len(), 1);
        let p = pts[0];
        // Paper shape: at a fine signature level, LSH prunes pairs (>1×
        // speedup) while preserving most of the F1.
        assert!(p.speedup >= 1.0, "speedup {}", p.speedup);
        assert!(p.relative_f1 > 0.5, "relative F1 {}", p.relative_f1);
    }

    #[test]
    fn coarse_levels_give_no_speedup() {
        // At a very coarse level all dominating cells coincide, LSH
        // cannot prune (paper: "Cab … spatially too dense").
        let settings = RunSettings::tiny();
        let pts = run_grid(&settings.cab(), &[4, 14], &[96], &settings);
        assert!(
            pts[0].speedup <= pts[1].speedup + 1e-9,
            "coarse {} vs fine {}",
            pts[0].speedup,
            pts[1].speedup
        );
    }
}
