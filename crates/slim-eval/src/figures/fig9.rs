//! Figure 9 — LSH speed-up as a function of the number of hash buckets,
//! for several similarity thresholds (Cab & SM).
//!
//! More buckets reduce accidental hash collisions, so fewer spurious
//! candidate pairs survive and the speed-up grows; the relative F1 is
//! unaffected by the bucket count (identical bands still collide) but
//! falls with looser thresholds.

use slim_core::SlimConfig;
use slim_datagen::Scenario;
use slim_lsh::{LshConfig, LshFilter};

use crate::figures::{run_slim, run_slim_with_candidates, RunSettings};
use crate::table::{f3, Table};

/// One bucket-sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketPoint {
    /// LSH similarity threshold.
    pub threshold: f64,
    /// Number of hash buckets.
    pub num_buckets: u64,
    /// Comparison-count speed-up over brute force.
    pub speedup: f64,
    /// Relative F1 vs brute force.
    pub relative_f1: f64,
    /// Candidate pair count.
    pub candidates: usize,
}

/// Default ranges (paper: 2^8..2^20 buckets × t ∈ {0.4..0.8}).
pub fn default_ranges() -> (Vec<u64>, Vec<f64>) {
    (
        vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
        vec![0.4, 0.6, 0.8],
    )
}

/// Runs the sweep. Signature level/step fixed to the paper's 16/48
/// unless overridden by `step_windows`.
pub fn run_sweep(
    scenario: &Scenario,
    buckets: &[u64],
    thresholds: &[f64],
    step_windows: u32,
    settings: &RunSettings,
) -> Vec<BucketPoint> {
    let sample = scenario.sample(0.5, settings.seed ^ 0x9);
    let base_cfg = SlimConfig::default();
    let (brute, brute_metrics) = run_slim(&sample, &base_cfg);
    let brute_cmp = brute.stats.record_pair_comparisons.max(1);

    let mut out = Vec::new();
    for &t in thresholds {
        for &b in buckets {
            let lsh_cfg = LshConfig {
                threshold: t,
                step_windows,
                spatial_level: 16,
                num_buckets: b,
            };
            let filter = LshFilter::build_auto(
                lsh_cfg,
                &sample.left,
                &sample.right,
                base_cfg.window_width_secs,
            );
            let candidates = filter.candidates();
            let (res, metrics) = run_slim_with_candidates(&sample, &base_cfg, &candidates);
            out.push(BucketPoint {
                threshold: t,
                num_buckets: b,
                speedup: brute_cmp as f64 / res.stats.record_pair_comparisons.max(1) as f64,
                relative_f1: if brute_metrics.f1 > 0.0 {
                    metrics.f1 / brute_metrics.f1
                } else {
                    1.0
                },
                candidates: candidates.len(),
            });
        }
    }
    out
}

/// Fig. 9a: Cab.
pub fn run_cab(settings: &RunSettings) -> Vec<BucketPoint> {
    let (buckets, thresholds) = default_ranges();
    run_sweep(&settings.cab(), &buckets, &thresholds, 48, settings)
}

/// Fig. 9b: SM. Lower thresholds than Cab — the sparse signatures cap
/// true-pair similarity (see fig8).
pub fn run_sm(settings: &RunSettings) -> Vec<BucketPoint> {
    let (buckets, _) = default_ranges();
    run_sweep(&settings.sm(), &buckets, &[0.1, 0.2, 0.3], 96, settings)
}

/// Renders the sweep.
pub fn render(name: &str, points: &[BucketPoint]) -> Table {
    let mut t = Table::new(
        format!("{name} — speed-up vs number of buckets"),
        &["t", "buckets", "speedup", "relative_f1", "candidates"],
    );
    for p in points {
        t.row(vec![
            f3(p.threshold),
            p.num_buckets.to_string(),
            format!("{:.1}x", p.speedup),
            f3(p.relative_f1),
            p.candidates.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_buckets_never_slow_things_down() {
        let settings = RunSettings::tiny();
        let pts = run_sweep(&settings.cab(), &[4, 1 << 14], &[0.6], 8, &settings);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].speedup >= pts[0].speedup,
            "tiny buckets {} vs many buckets {}",
            pts[0].speedup,
            pts[1].speedup
        );
        assert!(pts[1].candidates <= pts[0].candidates);
    }
}
