//! Figure 11 — comparison with existing work (ST-Link, GM): hit
//! precision@40, F1 (including no-LSH SLIM), runtime, and record
//! comparisons as functions of the average number of records per entity.
//!
//! The record density is driven through the record-inclusion
//! probability, exactly like the paper sampled its Cab subsets. GM is
//! only run up to `gm_max_avg_records` (the paper, likewise, restricts
//! GM to a 1-week subset because it lacks any scaling mechanism).

use std::time::Instant;

use slim_baselines::{gm, stlink, GmConfig, StLinkConfig};
use slim_core::{SlimConfig, ThresholdMethod};
use slim_lsh::{LshConfig, LshFilter};

use crate::figures::{run_slim, run_slim_with_candidates, RunSettings};
use crate::metrics::{evaluate_links, hit_precision_at_k};
use crate::table::{f3, human, Table};

/// Results of one algorithm at one density point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgoResult {
    /// Hit precision@40 over the raw pair scores.
    pub hit_precision_40: f64,
    /// F1 of the final links.
    pub f1: f64,
    /// Wall time, seconds.
    pub runtime_secs: f64,
    /// Pairwise record comparisons.
    pub record_comparisons: u64,
}

/// One density point of the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonPoint {
    /// Average records per entity (left view).
    pub avg_records: f64,
    /// SLIM with the LSH filter.
    pub slim_lsh: AlgoResult,
    /// SLIM brute force (the "no-LSH" series of Fig. 11b).
    pub slim_full: AlgoResult,
    /// ST-Link.
    pub stlink: AlgoResult,
    /// GM, when run (None above its density cap).
    pub gm: Option<AlgoResult>,
}

/// Comparison settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonConfig {
    /// Inclusion probabilities driving the density sweep.
    pub inclusion_probs: [f64; 4],
    /// Entity intersection ratio.
    pub intersection_ratio: f64,
    /// GM runs only while avg records ≤ this (it is quadratic in
    /// records; the paper also caps it).
    pub gm_max_avg_records: f64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        Self {
            inclusion_probs: [0.1, 0.3, 0.6, 0.9],
            intersection_ratio: 0.5,
            gm_max_avg_records: 400.0,
        }
    }
}

/// Runs the comparison on the Cab scenario.
pub fn run(settings: &RunSettings, cmp: &ComparisonConfig) -> Vec<ComparisonPoint> {
    let scenario = settings.cab();
    let mut out = Vec::new();
    for &inc in &cmp.inclusion_probs {
        let sample =
            scenario.sample_with_inclusion(cmp.intersection_ratio, inc, settings.seed ^ 0x11);
        let avg_records = sample.left.avg_records_per_entity();
        let lefts = sample.left.entities_sorted();
        let base_cfg = SlimConfig::default();

        // SLIM brute force (also provides the raw scores for HP@40).
        let t0 = Instant::now();
        let (full_out, full_metrics) = run_slim(&sample, &base_cfg);
        let full_time = t0.elapsed().as_secs_f64();
        let slim_prepared = slim_core::Slim::new(base_cfg).unwrap();
        let prepared = slim_prepared.prepare(&sample.left, &sample.right);
        let (raw_edges, _) = prepared.score_pairs(&prepared.all_pairs());
        let slim_hp = hit_precision_at_k(&raw_edges, &lefts, &sample.ground_truth, 40);
        let slim_full = AlgoResult {
            hit_precision_40: slim_hp,
            f1: full_metrics.f1,
            runtime_secs: full_time,
            record_comparisons: full_out.stats.record_pair_comparisons,
        };

        // SLIM + LSH (paper: 4096 buckets, t = 0.6).
        let t0 = Instant::now();
        let filter = LshFilter::build_auto(
            // Longer steps and a moderate threshold keep sparse low-density
            // signatures from starving the filter (see fig8 docs).
            LshConfig {
                threshold: 0.4,
                step_windows: 48,
                spatial_level: 12,
                num_buckets: 4096,
            },
            &sample.left,
            &sample.right,
            base_cfg.window_width_secs,
        );
        let candidates = filter.candidates();
        let (lsh_out, lsh_metrics) = run_slim_with_candidates(&sample, &base_cfg, &candidates);
        let slim_lsh = AlgoResult {
            hit_precision_40: slim_hp, // ranking unchanged by the filter for survivors
            f1: lsh_metrics.f1,
            runtime_secs: t0.elapsed().as_secs_f64(),
            record_comparisons: lsh_out.stats.record_pair_comparisons,
        };

        // ST-Link.
        let t0 = Instant::now();
        let st = stlink(&sample.left, &sample.right, &StLinkConfig::default());
        let st_time = t0.elapsed().as_secs_f64();
        let st_metrics = evaluate_links(&st.links, &sample.ground_truth);
        let stlink_res = AlgoResult {
            hit_precision_40: hit_precision_at_k(&st.scores, &lefts, &sample.ground_truth, 40),
            f1: st_metrics.f1,
            runtime_secs: st_time,
            record_comparisons: st.stats.record_pair_comparisons,
        };

        // GM, density-capped.
        let gm_res = if avg_records <= cmp.gm_max_avg_records {
            let t0 = Instant::now();
            let g = gm(
                &sample.left,
                &sample.right,
                &GmConfig {
                    threshold_method: ThresholdMethod::GmmExpectedF1,
                    ..GmConfig::default()
                },
            );
            let gm_time = t0.elapsed().as_secs_f64();
            let links: Vec<_> = g.links.iter().map(|e| (e.left, e.right)).collect();
            let m = evaluate_links(&links, &sample.ground_truth);
            Some(AlgoResult {
                hit_precision_40: hit_precision_at_k(&g.scores, &lefts, &sample.ground_truth, 40),
                f1: m.f1,
                runtime_secs: gm_time,
                record_comparisons: g.stats.record_pair_comparisons,
            })
        } else {
            None
        };

        out.push(ComparisonPoint {
            avg_records,
            slim_lsh,
            slim_full,
            stlink: stlink_res,
            gm: gm_res,
        });
    }
    out
}

/// Renders the comparison (one row per algorithm per density).
pub fn render(points: &[ComparisonPoint]) -> Table {
    let mut t = Table::new(
        "Fig 11 — comparison with ST-Link and GM (Cab)",
        &[
            "avg_records",
            "algorithm",
            "hp@40",
            "f1",
            "runtime_s",
            "record_cmp",
        ],
    );
    for p in points {
        let mut row = |name: &str, a: &AlgoResult| {
            t.row(vec![
                format!("{:.0}", p.avg_records),
                name.to_string(),
                f3(a.hit_precision_40),
                f3(a.f1),
                format!("{:.2}", a.runtime_secs),
                human(a.record_comparisons),
            ]);
        };
        row("SLIM+LSH", &p.slim_lsh);
        row("SLIM", &p.slim_full);
        row("ST-Link", &p.stlink);
        if let Some(g) = &p.gm {
            row("GM", g);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_smoke() {
        let settings = RunSettings::tiny();
        let cmp = ComparisonConfig {
            inclusion_probs: [0.5, 0.5, 0.5, 0.5],
            ..ComparisonConfig::default()
        };
        // Single-density quick check (all probs equal → reuse).
        let pts = run(
            &settings,
            &ComparisonConfig {
                inclusion_probs: [0.6, 0.6, 0.6, 0.6],
                ..cmp
            },
        );
        assert_eq!(pts.len(), 4);
        let p = &pts[0];
        // SLIM's LSH variant must do far fewer comparisons than ST-Link
        // (the paper's headline Fig. 11d shape).
        assert!(
            p.slim_lsh.record_comparisons <= p.stlink.record_comparisons,
            "slim+lsh {} vs stlink {}",
            p.slim_lsh.record_comparisons,
            p.stlink.record_comparisons
        );
        // SLIM's F1 should be competitive (allow slack at tiny scale).
        assert!(p.slim_full.f1 >= p.stlink.f1 - 0.3);
        let table = render(&pts);
        assert!(table.len() >= 12);
    }
}
