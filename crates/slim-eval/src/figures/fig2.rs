//! Figure 2 — sample GMM fit over matched similarity scores.
//!
//! The paper shows the two fitted Gaussian components over the edge
//! weights selected by the bipartite matching, the true/false-positive
//! histogram (ground truth used only for coloring), and the detected
//! stop threshold. This driver reproduces all of those as a table: one
//! row per histogram bucket plus the fitted parameters.

use slim_core::gmm::Gmm2;
use slim_core::{SlimConfig, StopThreshold};

use crate::figures::{run_slim, split_by_truth, RunSettings};
use crate::table::{f3, Table};

/// Result of the Fig. 2 driver.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Fitted mixture over matched edge weights.
    pub gmm: Option<Gmm2>,
    /// Detected stop threshold.
    pub threshold: Option<StopThreshold>,
    /// True-positive edge weights (ground truth, illustration only).
    pub tp_weights: Vec<f64>,
    /// False-positive edge weights.
    pub fp_weights: Vec<f64>,
}

/// Runs the driver on the Cab scenario at default parameters.
pub fn run(settings: &RunSettings) -> Fig2Result {
    let sample = settings.cab().sample(0.5, settings.seed ^ 0x2);
    let (out, _) = run_slim(&sample, &SlimConfig::default());
    let weights: Vec<f64> = out.matching.iter().map(|e| e.weight).collect();
    let (tp, fp) = split_by_truth(&out.matching, &sample.ground_truth);
    Fig2Result {
        gmm: Gmm2::fit(&weights),
        threshold: out.threshold,
        tp_weights: tp,
        fp_weights: fp,
    }
}

/// Renders the result: fitted parameters and a 12-bucket histogram.
pub fn render(r: &Fig2Result) -> Table {
    let mut t = Table::new(
        "Fig 2 — GMM fit over matched similarity scores (Cab)",
        &["bucket_lo", "bucket_hi", "true_pos", "false_pos"],
    );
    let all: Vec<f64> = r.tp_weights.iter().chain(&r.fp_weights).copied().collect();
    if all.is_empty() {
        return t;
    }
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let buckets = 12usize;
    let width = ((hi - lo) / buckets as f64).max(1e-9);
    for b in 0..buckets {
        let b_lo = lo + b as f64 * width;
        let b_hi = b_lo + width;
        let count = |v: &[f64]| {
            v.iter()
                .filter(|&&x| x >= b_lo && (x < b_hi || b == buckets - 1))
                .count()
        };
        t.row(vec![
            f3(b_lo),
            f3(b_hi),
            count(&r.tp_weights).to_string(),
            count(&r.fp_weights).to_string(),
        ]);
    }
    t
}

/// One-line summary of the fit (component means/weights + threshold).
pub fn summary(r: &Fig2Result) -> String {
    match (&r.gmm, &r.threshold) {
        (Some(g), Some(t)) => format!(
            "components: fp(mean {:.1}, w {:.2}) tp(mean {:.1}, w {:.2}); threshold {:.1} (expected F1 {:.3})",
            g.low.mean, g.low.weight, g.high.mean, g.high.weight, t.threshold, t.expected_f1
        ),
        _ => "degenerate score distribution (no threshold)".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_smoke() {
        let r = run(&RunSettings::tiny());
        assert!(!r.tp_weights.is_empty(), "matching should find true pairs");
        let table = render(&r);
        assert_eq!(table.len(), 12);
        let s = summary(&r);
        assert!(!s.is_empty());
    }

    #[test]
    fn true_positives_score_above_false_positives_on_average() {
        let r = run(&RunSettings::tiny());
        if r.tp_weights.is_empty() || r.fp_weights.is_empty() {
            return; // tiny scale may have no FPs at all — fine
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&r.tp_weights) > mean(&r.fp_weights),
            "tp mean {} vs fp mean {}",
            mean(&r.tp_weights),
            mean(&r.fp_weights)
        );
    }
}
