//! Figure 6 — similarity-score histograms and GMM fits for spatial
//! detail 4, 8, 12, 16 at a 90-minute window (Cab).
//!
//! The paper's point: with increasing spatial detail the true-positive
//! and false-positive score clusters separate, and the detected stop
//! threshold tightens.

use slim_core::gmm::Gmm2;
use slim_core::{SlimConfig, StopThreshold};

use crate::figures::{run_slim, split_by_truth, RunSettings};
use crate::table::{f1 as fmt1, f3, Table};

/// The fit at one spatial level.
#[derive(Debug, Clone)]
pub struct LevelFit {
    /// Spatial level.
    pub spatial_level: u8,
    /// Fitted mixture (None when degenerate).
    pub gmm: Option<Gmm2>,
    /// Detected threshold.
    pub threshold: Option<StopThreshold>,
    /// True-positive matched weights.
    pub tp_weights: Vec<f64>,
    /// False-positive matched weights.
    pub fp_weights: Vec<f64>,
    /// Separation between component means in pooled-σ units (a proxy for
    /// the paper's "distance between two components of GMM").
    pub separation: f64,
}

/// Runs the driver.
pub fn run(settings: &RunSettings) -> Vec<LevelFit> {
    run_with_levels(settings, &[4, 8, 12, 16])
}

/// Runs with explicit levels (tests use fewer).
pub fn run_with_levels(settings: &RunSettings, levels: &[u8]) -> Vec<LevelFit> {
    let sample = settings.cab().sample(0.5, settings.seed ^ 0x6);
    levels
        .iter()
        .map(|&level| {
            let cfg = SlimConfig {
                spatial_level: level,
                window_width_secs: 90 * 60,
                ..SlimConfig::default()
            };
            let (out, _) = run_slim(&sample, &cfg);
            let weights: Vec<f64> = out.matching.iter().map(|e| e.weight).collect();
            let gmm = Gmm2::fit(&weights);
            let separation = gmm
                .as_ref()
                .map(|g| {
                    let pooled = ((g.low.std_dev.powi(2) + g.high.std_dev.powi(2)) / 2.0).sqrt();
                    (g.high.mean - g.low.mean) / pooled.max(1e-12)
                })
                .unwrap_or(0.0);
            let (tp, fp) = split_by_truth(&out.matching, &sample.ground_truth);
            LevelFit {
                spatial_level: level,
                gmm,
                threshold: out.threshold,
                tp_weights: tp,
                fp_weights: fp,
                separation,
            }
        })
        .collect()
}

/// Renders one row per level.
pub fn render(fits: &[LevelFit]) -> Table {
    let mut t = Table::new(
        "Fig 6 — score histograms & GMM fits, window 90 min (Cab)",
        &[
            "spatial",
            "tp_links",
            "fp_links",
            "fp_mean",
            "tp_mean",
            "separation",
            "threshold",
        ],
    );
    for f in fits {
        let (lo_m, hi_m) = f
            .gmm
            .as_ref()
            .map(|g| (g.low.mean, g.high.mean))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(vec![
            f.spatial_level.to_string(),
            f.tp_weights.len().to_string(),
            f.fp_weights.len().to_string(),
            fmt1(lo_m),
            fmt1(hi_m),
            f3(f.separation),
            f.threshold
                .map(|t| fmt1(t.threshold))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_are_well_formed() {
        let fits = run_with_levels(&RunSettings::tiny(), &[6, 14]);
        assert_eq!(fits.len(), 2);
        for f in &fits {
            assert!(f.separation >= 0.0 && f.separation.is_finite());
            assert!(!f.tp_weights.is_empty(), "true pairs must match");
        }
        // At the fine level the TP cluster must clearly out-score FPs
        // (the full separation-grows-with-detail claim needs paper-scale
        // data and is exercised by the reproduce harness / EXPERIMENTS.md).
        let fine = &fits[1];
        if !fine.fp_weights.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&fine.tp_weights) > mean(&fine.fp_weights));
        }
        let table = render(&fits);
        assert_eq!(table.len(), 2);
    }
}
