//! Experiment drivers — one submodule per figure of the paper's
//! evaluation (§5). Every driver returns a structured result plus a
//! [`crate::table::Table`] rendering the same rows/series the paper
//! plots. The `reproduce` example binary and the Criterion benches are
//! thin wrappers over these functions.

pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig4_5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use std::collections::HashMap;

use slim_core::{EntityId, LinkageOutput, Slim, SlimConfig};
use slim_datagen::{Scenario, TwoViewSample};

use crate::metrics::{evaluate_edges, LinkageMetrics};

/// Global knobs for the experiment drivers: workload scales and the
/// base RNG seed. The defaults run the full suite in minutes; raise the
/// scales toward 1.0 to approach paper-sized workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSettings {
    /// Scale of the Cab scenario (1.0 ≈ 265 entities/view, 24 days).
    pub cab_scale: f64,
    /// Scale of the SM scenario (1.0 ≈ 30,000 entities/view).
    pub sm_scale: f64,
    /// Base seed; drivers derive per-run seeds from it.
    pub seed: u64,
}

impl Default for RunSettings {
    fn default() -> Self {
        Self {
            cab_scale: 0.12,
            sm_scale: 0.03,
            seed: 20_200_614, // SIGMOD'20 started June 14, 2020
        }
    }
}

impl RunSettings {
    /// Tiny settings for unit tests and Criterion benches.
    pub fn tiny() -> Self {
        Self {
            cab_scale: 0.08,
            sm_scale: 0.008,
            seed: 7,
        }
    }

    /// The Cab scenario at the configured scale.
    pub fn cab(&self) -> Scenario {
        Scenario::cab(self.cab_scale, self.seed)
    }

    /// The SM scenario at the configured scale.
    pub fn sm(&self) -> Scenario {
        Scenario::sm(self.sm_scale, self.seed)
    }
}

/// Runs SLIM end-to-end on a sample and evaluates against ground truth.
pub fn run_slim(sample: &TwoViewSample, cfg: &SlimConfig) -> (LinkageOutput, LinkageMetrics) {
    let slim = Slim::new(*cfg).expect("valid config");
    let out = slim.link(&sample.left, &sample.right);
    let metrics = evaluate_edges(&out.links, &sample.ground_truth);
    (out, metrics)
}

/// Runs SLIM restricted to the given candidate pairs.
pub fn run_slim_with_candidates(
    sample: &TwoViewSample,
    cfg: &SlimConfig,
    candidates: &[(EntityId, EntityId)],
) -> (LinkageOutput, LinkageMetrics) {
    let slim = Slim::new(*cfg).expect("valid config");
    let out = slim.link_with_candidates(&sample.left, &sample.right, candidates);
    let metrics = evaluate_edges(&out.links, &sample.ground_truth);
    (out, metrics)
}

/// Splits matched-edge weights into true-positive and false-positive
/// groups using ground truth — only for *illustration* (the paper does
/// the same in Figs. 2 and 6; the threshold itself never sees truth).
pub fn split_by_truth(
    matching: &[slim_core::Edge],
    ground_truth: &HashMap<EntityId, EntityId>,
) -> (Vec<f64>, Vec<f64>) {
    let mut tp = Vec::new();
    let mut fp = Vec::new();
    for e in matching {
        if ground_truth.get(&e.left) == Some(&e.right) {
            tp.push(e.weight);
        } else {
            fp.push(e.weight);
        }
    }
    (tp, fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_scaled_down() {
        let s = RunSettings::default();
        assert!(s.cab_scale < 1.0 && s.sm_scale < 1.0);
    }

    #[test]
    fn run_slim_smoke() {
        let settings = RunSettings::tiny();
        let sample = settings.cab().sample(0.5, settings.seed);
        let (out, metrics) = run_slim(&sample, &SlimConfig::default());
        assert!(out.stats.scored_entity_pairs > 0);
        assert!(metrics.precision >= 0.0 && metrics.precision <= 1.0);
    }

    #[test]
    fn split_by_truth_partitions() {
        use slim_core::Edge;
        let gt: HashMap<EntityId, EntityId> = [(EntityId(1), EntityId(10))].into();
        let edges = vec![
            Edge {
                left: EntityId(1),
                right: EntityId(10),
                weight: 5.0,
            },
            Edge {
                left: EntityId(2),
                right: EntityId(11),
                weight: 1.0,
            },
        ];
        let (tp, fp) = split_by_truth(&edges, &gt);
        assert_eq!(tp, vec![5.0]);
        assert_eq!(fp, vec![1.0]);
    }
}
