//! Figure 7 — F1-score and runtime as a function of the record-inclusion
//! probability, for several entity-intersection ratios (Cab & SM).

use slim_core::SlimConfig;
use slim_datagen::Scenario;

use crate::figures::{run_slim, RunSettings};
use crate::table::{f3, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Entity intersection ratio of the sampled views.
    pub intersection_ratio: f64,
    /// Record-inclusion probability.
    pub inclusion_prob: f64,
    /// Resulting average records per entity (left view).
    pub avg_records: f64,
    /// F1 against ground truth.
    pub f1: f64,
    /// Linkage wall time, seconds.
    pub runtime_secs: f64,
}

/// Default parameter ranges (paper: inclusion .1-.9 × ratio .3/.5/.7/.9).
pub fn default_ranges() -> (Vec<f64>, Vec<f64>) {
    (vec![0.1, 0.3, 0.5, 0.7, 0.9], vec![0.3, 0.5, 0.7, 0.9])
}

/// Runs the sweep for one scenario.
pub fn run_sweep(
    scenario: &Scenario,
    inclusion_probs: &[f64],
    ratios: &[f64],
    settings: &RunSettings,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &ratio in ratios {
        for &inc in inclusion_probs {
            let sample = scenario.sample_with_inclusion(ratio, inc, settings.seed ^ 0x7);
            let (res, metrics) = run_slim(&sample, &SlimConfig::default());
            out.push(SweepPoint {
                intersection_ratio: ratio,
                inclusion_prob: inc,
                avg_records: sample.left.avg_records_per_entity(),
                f1: metrics.f1,
                runtime_secs: res.elapsed.as_secs_f64(),
            });
        }
    }
    out
}

/// Fig. 7a/7b: the Cab scenario.
pub fn run_cab(settings: &RunSettings) -> Vec<SweepPoint> {
    let (incs, ratios) = default_ranges();
    run_sweep(&settings.cab(), &incs, &ratios, settings)
}

/// Fig. 7c/7d: the SM scenario.
pub fn run_sm(settings: &RunSettings) -> Vec<SweepPoint> {
    let (incs, ratios) = default_ranges();
    run_sweep(&settings.sm(), &incs, &ratios, settings)
}

/// Renders the sweep.
pub fn render(name: &str, points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        format!("{name} — F1 & runtime vs inclusion probability"),
        &["ratio", "inclusion", "avg_records", "f1", "runtime_s"],
    );
    for p in points {
        t.row(vec![
            f3(p.intersection_ratio),
            f3(p.inclusion_prob),
            format!("{:.0}", p.avg_records),
            f3(p.f1),
            format!("{:.2}", p.runtime_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_records_do_not_hurt_f1() {
        let settings = RunSettings::tiny();
        let pts = run_sweep(&settings.cab(), &[0.2, 0.9], &[0.5], &settings);
        assert_eq!(pts.len(), 2);
        // Paper shape (Cab): F1 stays high across inclusion probabilities,
        // and more records never hurt much.
        assert!(
            pts[1].f1 >= pts[0].f1 - 0.15,
            "f1 degraded with more data: {} → {}",
            pts[0].f1,
            pts[1].f1
        );
        assert!(pts[1].avg_records > pts[0].avg_records);
    }
}
