//! Figures 4 & 5 — precision, recall, alibi pairs, and record
//! comparisons as a function of the spatio-temporal level, for the Cab
//! (Fig. 4) and SM (Fig. 5) scenarios.

use slim_core::SlimConfig;
use slim_datagen::Scenario;

use crate::figures::{run_slim, RunSettings};
use crate::table::{f3, human, Table};

/// One grid point of the spatio-temporal sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Spatial grid level.
    pub spatial_level: u8,
    /// Temporal window width in minutes.
    pub window_min: i64,
    /// Linkage precision.
    pub precision: f64,
    /// Linkage recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Detected alibi bin pairs.
    pub alibi_pairs: u64,
    /// Pairwise record comparisons (level-independent upper bound).
    pub record_comparisons: u64,
    /// Time-location bin pair comparisons — the work measure that grows
    /// with spatial detail, matching the trend of the paper's Fig. 4d
    /// "record pair" counts (finer levels → more bins per window).
    pub bin_comparisons: u64,
}

/// The default sweep used by the drivers: the paper's ranges thinned to
/// keep runtime tractable (paper: levels 4-20, windows 15-360 min).
pub fn default_grid() -> (Vec<u8>, Vec<i64>) {
    (vec![4, 8, 12, 16, 20], vec![15, 90, 180, 360])
}

/// Runs the sweep for one scenario.
pub fn run_grid(
    scenario: &Scenario,
    levels: &[u8],
    windows_min: &[i64],
    settings: &RunSettings,
) -> Vec<GridPoint> {
    let sample = scenario.sample(0.5, settings.seed ^ 0x45);
    let mut out = Vec::with_capacity(levels.len() * windows_min.len());
    for &level in levels {
        for &wmin in windows_min {
            let cfg = SlimConfig {
                spatial_level: level,
                window_width_secs: wmin * 60,
                ..SlimConfig::default()
            };
            let (res, metrics) = run_slim(&sample, &cfg);
            out.push(GridPoint {
                spatial_level: level,
                window_min: wmin,
                precision: metrics.precision,
                recall: metrics.recall,
                f1: metrics.f1,
                alibi_pairs: res.stats.alibi_pairs,
                record_comparisons: res.stats.record_pair_comparisons,
                bin_comparisons: res.stats.bin_pair_comparisons,
            });
        }
    }
    out
}

/// Fig. 4: the Cab scenario.
pub fn run_cab(settings: &RunSettings) -> Vec<GridPoint> {
    let (levels, windows) = default_grid();
    run_grid(&settings.cab(), &levels, &windows, settings)
}

/// Fig. 5: the SM scenario.
pub fn run_sm(settings: &RunSettings) -> Vec<GridPoint> {
    let (levels, windows) = default_grid();
    run_grid(&settings.sm(), &levels, &windows, settings)
}

/// Renders a grid as the paper's four sub-figures in one table.
pub fn render(name: &str, grid: &[GridPoint]) -> Table {
    let mut t = Table::new(
        format!("{name} — effect of the spatio-temporal level"),
        &[
            "spatial",
            "window_min",
            "precision",
            "recall",
            "f1",
            "alibi",
            "record_cmp",
            "bin_cmp",
        ],
    );
    for p in grid {
        t.row(vec![
            p.spatial_level.to_string(),
            p.window_min.to_string(),
            f3(p.precision),
            f3(p.recall),
            f3(p.f1),
            human(p.alibi_pairs),
            human(p.record_comparisons),
            human(p.bin_comparisons),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_smoke_and_paper_shape() {
        let settings = RunSettings::tiny();
        let grid = run_grid(&settings.cab(), &[6, 12], &[15, 90], &settings);
        assert_eq!(grid.len(), 4);
        // Paper shape: accuracy at fine spatial detail beats coarse.
        let f1_at = |level: u8, w: i64| {
            grid.iter()
                .find(|p| p.spatial_level == level && p.window_min == w)
                .unwrap()
                .f1
        };
        assert!(
            f1_at(12, 15) >= f1_at(6, 15),
            "finer spatial detail should not hurt: {} vs {}",
            f1_at(12, 15),
            f1_at(6, 15)
        );
        // Comparisons grow (weakly) with spatial detail.
        let cmp_at = |level: u8, w: i64| {
            grid.iter()
                .find(|p| p.spatial_level == level && p.window_min == w)
                .unwrap()
                .bin_comparisons
        };
        assert!(cmp_at(12, 15) > 0);
        // Bin comparisons grow with spatial detail (Fig 4d trend).
        assert!(cmp_at(12, 15) >= cmp_at(6, 15));
        let table = render("Fig 4 (Cab)", &grid);
        assert_eq!(table.len(), 4);
    }
}
