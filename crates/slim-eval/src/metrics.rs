//! Ground-truth evaluation metrics (paper §5).
//!
//! * Precision / recall / F1 of a produced linkage against the sampled
//!   ground truth (recall's denominator is the number of truly common
//!   entities).
//! * Hit-precision@k (§5.5): per left entity, `(k − (rank − 1)) / k` if
//!   the true counterpart ranks within the top `k` candidates by score,
//!   else 0; averaged over *all* left entities — so with intersection
//!   ratio 0.5 the best achievable value is 0.5, exactly as the paper
//!   notes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use slim_core::{Edge, EntityId};

/// Precision/recall/F1 of a linkage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkageMetrics {
    /// Correct links / produced links (1 if no links were produced).
    pub precision: f64,
    /// Correct links / truly common entities (1 if nothing was common).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of correct links.
    pub true_positives: usize,
    /// Number of incorrect links.
    pub false_positives: usize,
    /// Links produced.
    pub num_links: usize,
    /// Truly common entities.
    pub num_truth: usize,
}

/// Scores a set of links against ground truth.
pub fn evaluate_links(
    links: &[(EntityId, EntityId)],
    ground_truth: &HashMap<EntityId, EntityId>,
) -> LinkageMetrics {
    let tp = links
        .iter()
        .filter(|(l, r)| ground_truth.get(l) == Some(r))
        .count();
    let fp = links.len() - tp;
    let precision = if links.is_empty() {
        1.0
    } else {
        tp as f64 / links.len() as f64
    };
    let recall = if ground_truth.is_empty() {
        1.0
    } else {
        tp as f64 / ground_truth.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    LinkageMetrics {
        precision,
        recall,
        f1,
        true_positives: tp,
        false_positives: fp,
        num_links: links.len(),
        num_truth: ground_truth.len(),
    }
}

/// Convenience: evaluates weighted edges.
pub fn evaluate_edges(
    links: &[Edge],
    ground_truth: &HashMap<EntityId, EntityId>,
) -> LinkageMetrics {
    let pairs: Vec<(EntityId, EntityId)> = links.iter().map(|e| (e.left, e.right)).collect();
    evaluate_links(&pairs, ground_truth)
}

/// Hit-precision@k over raw pair scores (before matching). `left_entities`
/// enumerates every entity the average runs over, including those without
/// a true counterpart (they contribute 0).
pub fn hit_precision_at_k(
    scores: &[Edge],
    left_entities: &[EntityId],
    ground_truth: &HashMap<EntityId, EntityId>,
    k: usize,
) -> f64 {
    assert!(k > 0, "k must be positive");
    if left_entities.is_empty() {
        return 0.0;
    }
    // Candidate lists per left entity, sorted by score descending.
    let mut per_left: HashMap<EntityId, Vec<(f64, EntityId)>> = HashMap::new();
    for e in scores {
        per_left
            .entry(e.left)
            .or_default()
            .push((e.weight, e.right));
    }
    let mut total = 0.0;
    for &u in left_entities {
        let Some(truth) = ground_truth.get(&u) else {
            continue; // no counterpart → contributes 0
        };
        let Some(cands) = per_left.get_mut(&u) else {
            continue;
        };
        cands.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(rank0) = cands.iter().position(|(_, v)| v == truth) {
            if rank0 < k {
                total += (k - rank0) as f64 / k as f64;
            }
        }
    }
    total / left_entities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(l: u64, r: u64) -> (EntityId, EntityId) {
        (EntityId(l), EntityId(r))
    }

    fn truth(pairs: &[(u64, u64)]) -> HashMap<EntityId, EntityId> {
        pairs
            .iter()
            .map(|&(l, r)| (EntityId(l), EntityId(r)))
            .collect()
    }

    #[test]
    fn perfect_linkage() {
        let gt = truth(&[(1, 10), (2, 20)]);
        let m = evaluate_links(&[e(1, 10), e(2, 20)], &gt);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.true_positives, 2);
    }

    #[test]
    fn partial_linkage() {
        let gt = truth(&[(1, 10), (2, 20), (3, 30), (4, 40)]);
        // 2 correct, 1 wrong, 2 missed.
        let m = evaluate_links(&[e(1, 10), e(2, 20), e(3, 99)], &gt);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(m.false_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let m = evaluate_links(&[], &truth(&[(1, 10)]));
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        let m = evaluate_links(&[e(1, 10)], &HashMap::new());
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 0.0);
    }

    fn edge(l: u64, r: u64, w: f64) -> Edge {
        Edge {
            left: EntityId(l),
            right: EntityId(r),
            weight: w,
        }
    }

    #[test]
    fn hit_precision_ranks() {
        let gt = truth(&[(1, 10)]);
        let lefts = vec![EntityId(1)];
        // Truth ranked first of three candidates.
        let scores = vec![edge(1, 10, 9.0), edge(1, 11, 5.0), edge(1, 12, 1.0)];
        assert!((hit_precision_at_k(&scores, &lefts, &gt, 40) - 1.0).abs() < 1e-12);
        // Truth ranked second: (40 − 1)/40.
        let scores = vec![edge(1, 10, 5.0), edge(1, 11, 9.0)];
        let hp = hit_precision_at_k(&scores, &lefts, &gt, 40);
        assert!((hp - 39.0 / 40.0).abs() < 1e-12);
        // Truth outside top-k.
        let mut scores: Vec<Edge> = (0..50).map(|i| edge(1, 100 + i, 50.0 - i as f64)).collect();
        scores.push(edge(1, 10, -1.0));
        assert_eq!(hit_precision_at_k(&scores, &lefts, &gt, 40), 0.0);
    }

    #[test]
    fn hit_precision_averages_over_unmatched_entities() {
        // Two left entities, only one has a counterpart: max achievable 0.5.
        let gt = truth(&[(1, 10)]);
        let lefts = vec![EntityId(1), EntityId(2)];
        let scores = vec![edge(1, 10, 9.0), edge(2, 11, 9.0)];
        let hp = hit_precision_at_k(&scores, &lefts, &gt, 40);
        assert!((hp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_precision_missing_scores_contribute_zero() {
        let gt = truth(&[(1, 10), (2, 20)]);
        let lefts = vec![EntityId(1), EntityId(2)];
        let scores = vec![edge(1, 10, 9.0)]; // entity 2 never scored
        let hp = hit_precision_at_k(&scores, &lefts, &gt, 40);
        assert!((hp - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = hit_precision_at_k(&[], &[], &HashMap::new(), 0);
    }
}
